//! Fault-injection oracle for checkpoint/restore: kill a run at a random
//! step, snapshot it, restore the snapshot into a fresh engine, and pin the
//! resumed run's observable outcome to an uninterrupted run's.
//!
//! The network is a deterministic Kahn network, so it is *confluent*: every
//! fair schedule reaches the same terminal configuration.  A restored run
//! is just another fair schedule of the same network whose prefix happens
//! to have executed in a previous incarnation — so its verdict, per-edge
//! data/dummy counts and sink firings must be **identical** to never having
//! been killed at all.  (`steps` is schedule-*dependent* bookkeeping and is
//! deliberately not part of the oracle.)
//!
//! The snapshot additionally makes a byte-level round trip on every case,
//! so the versioned wire codec is exercised under the full variety of
//! generated states (staged messages, EOS markers, deadlocked residue).

use fila::prelude::*;
use fila::workloads::generators::{
    layered_dag, periodic_filtered_topology, random_ladder, random_sp_dag, GeneratorConfig,
    LadderConfig,
};
use proptest::prelude::*;

/// One generated kill/restore case.
#[derive(Debug, Clone, Copy)]
enum Scenario {
    /// Random series-parallel DAG, protected by a planner-produced plan.
    Sp { seed: u64 },
    /// Random CS4 ladder, protected by a planner-produced plan.
    Ladder { seed: u64 },
    /// Layered random DAG run without avoidance, so snapshots of runs that
    /// end **deadlocked** are restored and must re-deadlock identically.
    Layered { seed: u64 },
}

fn scenario() -> impl Strategy<Value = Scenario> {
    prop_oneof![
        (0u64..1 << 48).prop_map(|seed| Scenario::Sp { seed }),
        (0u64..1 << 48).prop_map(|seed| Scenario::Ladder { seed }),
        (0u64..1 << 48).prop_map(|seed| Scenario::Layered { seed }),
    ]
}

/// Deterministic per-(seed, node) parameter derivation.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// The canonical periodic filter with a seed-derived period per node;
/// shared with the engine-equivalence tests.
fn with_filters(g: &Graph, seed: u64) -> Topology {
    periodic_filtered_topology(g, |n| 1 + mix(seed ^ (0x9e37 + n.index() as u64)) % 5)
}

fn build(scenario: Scenario) -> (Graph, Option<fila::avoidance::AvoidancePlan>, u64) {
    match scenario {
        Scenario::Sp { seed } => {
            let (g, _) = random_sp_dag(&GeneratorConfig {
                target_edges: 12 + (mix(seed) % 24) as usize,
                max_fanout: 3,
                capacity_range: (1, 6),
                seed,
            });
            let algorithm = if mix(seed ^ 1) % 2 == 0 {
                Algorithm::Propagation
            } else {
                Algorithm::NonPropagation
            };
            let plan = Planner::new(&g).algorithm(algorithm).plan().unwrap();
            (g, Some(plan), 40 + mix(seed ^ 2) % 60)
        }
        Scenario::Ladder { seed } => {
            let g = random_ladder(&LadderConfig {
                rungs: 1 + (mix(seed) % 6) as usize,
                capacity_range: (1, 6),
                reverse_probability: 0.3,
                seed,
            });
            let algorithm = if mix(seed ^ 1) % 2 == 0 {
                Algorithm::Propagation
            } else {
                Algorithm::NonPropagation
            };
            let plan = Planner::new(&g).algorithm(algorithm).plan().unwrap();
            (g, Some(plan), 40 + mix(seed ^ 2) % 60)
        }
        Scenario::Layered { seed } => {
            let g = layered_dag(
                2 + (mix(seed) % 3) as usize,
                1 + (mix(seed ^ 1) % 3) as usize,
                1 + mix(seed ^ 2) % 3,
                seed,
            );
            (g, None, 40 + mix(seed ^ 3) % 60)
        }
    }
}

/// Kills one simulator run at a seed-derived step, round-trips the snapshot
/// through bytes, restores it, and pins the resumed outcome to the
/// uninterrupted run's.
fn assert_restore_equivalent(scenario: Scenario) -> Result<(), TestCaseError> {
    let (g, plan, inputs) = build(scenario);
    let (Scenario::Sp { seed } | Scenario::Ladder { seed } | Scenario::Layered { seed }) =
        scenario;
    let topo = with_filters(&g, seed);
    let sim = {
        let s = Simulator::new(&topo);
        match &plan {
            Some(p) => s.with_plan(p),
            None => s,
        }
    };
    // The reference: the same network never killed.
    let reference = sim.run(inputs);
    let kill_at = mix(seed ^ 6) % 500;
    let resumed = match sim.run_with_checkpoint(inputs, kill_at) {
        CheckpointOutcome::Finished(report) => {
            // The run outran the kill point; it must literally *be* the
            // reference run.
            prop_assert_eq!(&report.per_edge_data, &reference.per_edge_data);
            prop_assert_eq!(report.steps, reference.steps);
            prop_assert!(report.resumed_from.is_none());
            return Ok(());
        }
        CheckpointOutcome::Killed(snapshot) => {
            // The wire codec must reproduce the snapshot exactly.
            let bytes = snapshot.to_bytes();
            let decoded = JobSnapshot::from_bytes(&bytes).expect("own bytes decode");
            prop_assert_eq!(&decoded, snapshot.as_ref());
            prop_assert!(snapshot.steps <= kill_at.max(1));
            let resumed = sim.resume(&decoded);
            prop_assert!(resumed.is_ok(), "restore failed: {:?}", resumed.err());
            resumed.unwrap()
        }
    };
    // The oracle: a killed-and-restored run is observationally equivalent
    // to never having been killed (cumulative counts, same verdict).
    prop_assert_eq!(reference.completed, resumed.completed);
    prop_assert_eq!(reference.deadlocked, resumed.deadlocked);
    prop_assert_eq!(reference.data_messages, resumed.data_messages);
    prop_assert_eq!(reference.dummy_messages, resumed.dummy_messages);
    prop_assert_eq!(reference.sink_firings, resumed.sink_firings);
    prop_assert_eq!(&reference.per_edge_data, &resumed.per_edge_data);
    prop_assert_eq!(&reference.per_edge_dummies, &resumed.per_edge_dummies);
    prop_assert!(resumed.resumed_from.is_some());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    #[test]
    fn killed_and_restored_run_matches_uninterrupted_run(s in scenario()) {
        assert_restore_equivalent(s)?;
    }
}

/// A deterministic deadlock-side case (beyond whatever the generator
/// produces): unprotected Fig. 2 deadlocks, and a snapshot taken mid-run
/// restores to the **same** deadlock verdict and counts.
#[test]
fn deadlocked_run_restores_to_same_deadlock() {
    use fila::runtime::filters::Predicate;
    let g = fila::workloads::figures::fig2_triangle(2);
    let a = g.node_by_name("A").unwrap();
    let topo = Topology::from_graph(&g).with(a, || Predicate::new(2, |_seq, out| out == 0));
    let sim = Simulator::new(&topo);
    let reference = sim.run(600);
    assert!(reference.deadlocked, "{reference:?}");
    let mut restored_any = false;
    for kill_at in [1, 3, 10, 50] {
        if let CheckpointOutcome::Killed(snapshot) = sim.run_with_checkpoint(600, kill_at) {
            let resumed = sim.resume(&snapshot).expect("same plan restores");
            assert!(resumed.deadlocked);
            assert_eq!(reference.per_edge_data, resumed.per_edge_data);
            assert_eq!(reference.per_edge_dummies, resumed.per_edge_dummies);
            restored_any = true;
        }
    }
    assert!(restored_any, "every kill point outran the deadlock");
}

/// Restoring under a *different* plan than the snapshot was captured under
/// is a [`RestoreError::PlanMismatch`] — never a silent re-plan.
#[test]
fn drifted_plan_is_rejected_not_replanned() {
    let (g, _) = random_sp_dag(&GeneratorConfig {
        target_edges: 14,
        max_fanout: 3,
        capacity_range: (2, 5),
        seed: 11,
    });
    let topo = with_filters(&g, 11);
    let prop_plan = Planner::new(&g)
        .algorithm(Algorithm::Propagation)
        .plan()
        .unwrap();
    let nonprop_plan = Planner::new(&g)
        .algorithm(Algorithm::NonPropagation)
        .plan()
        .unwrap();
    let sim = Simulator::new(&topo).with_plan(&prop_plan);
    let snapshot = match sim.run_with_checkpoint(200, 5) {
        CheckpointOutcome::Killed(s) => s,
        CheckpointOutcome::Finished(_) => panic!("kill point 5 must interrupt"),
    };
    // Same topology, different plan: the certification changed.
    let other = Simulator::new(&topo).with_plan(&nonprop_plan);
    assert!(matches!(
        other.resume(&snapshot),
        Err(RestoreError::PlanMismatch(_))
    ));
    // No plan at all is drift too.
    let unplanned = Simulator::new(&topo);
    assert!(matches!(
        unplanned.resume(&snapshot),
        Err(RestoreError::PlanMismatch(_))
    ));
    // The exact original plan restores fine.
    assert!(sim.resume(&snapshot).is_ok());
}

/// Restoring onto a topologically different graph (extra edge, different
/// capacities) is a [`RestoreError::PlanMismatch`] on the labeled
/// topology fingerprint.
#[test]
fn drifted_topology_is_rejected() {
    let (g, _) = random_sp_dag(&GeneratorConfig {
        target_edges: 12,
        max_fanout: 3,
        capacity_range: (2, 5),
        seed: 23,
    });
    let topo = with_filters(&g, 23);
    let sim = Simulator::new(&topo);
    let snapshot = match sim.run_with_checkpoint(200, 5) {
        CheckpointOutcome::Killed(s) => s,
        CheckpointOutcome::Finished(_) => panic!("kill point 5 must interrupt"),
    };
    let (g2, _) = random_sp_dag(&GeneratorConfig {
        target_edges: 12,
        max_fanout: 3,
        capacity_range: (2, 5),
        seed: 24,
    });
    let topo2 = with_filters(&g2, 23);
    let other = Simulator::new(&topo2);
    assert!(matches!(
        other.resume(&snapshot),
        Err(RestoreError::PlanMismatch(_))
    ));
}
