//! Flight-recorder and metrics properties, exercised through the facade:
//! histogram merge exactness, quantile error bounds, event-ring overflow
//! semantics, and an end-to-end service telemetry smoke.

use fila::prelude::*;
use fila::runtime::telemetry::{chrome_trace, EventKind, TelemetryHandle, TraceEvent};
use fila_service::LatencyHistogram;
use proptest::prelude::*;

// ------------------------------------------------------- histograms ----

/// The true nearest-rank sample quantile (rank `ceil(q*n)` clamped to
/// `[1, n]`) the log-bucketed histogram approximates from above.
fn sample_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// merge(a, b) is *exactly* the histogram of the concatenated samples:
    /// identical bucket arrays mean bucket-wise addition loses nothing, so
    /// every quantile of the merged histogram equals the quantile of a
    /// histogram built from a ++ b directly.
    #[test]
    fn merge_quantiles_equal_concatenated_quantiles(
        (a, b) in prop::collection::vec(0u64..1u64 << 41, 0..400).prop_map(|raw| {
            // One generated vec, split by the low bit: the vendored proptest
            // shim takes a single strategy per test, so both operands ride in.
            let mut a = Vec::new();
            let mut b = Vec::new();
            for v in raw {
                if v & 1 == 0 { a.push(v >> 1) } else { b.push(v >> 1) }
            }
            (a, b)
        })
    ) {
        let mut ha = LatencyHistogram::new();
        let mut hb = LatencyHistogram::new();
        let mut hc = LatencyHistogram::new();
        for &v in &a {
            ha.record(v);
            hc.record(v);
        }
        for &v in &b {
            hb.record(v);
            hc.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hc.count());
        prop_assert_eq!(ha.sum_ns(), hc.sum_ns());
        prop_assert_eq!(ha.max_ns(), hc.max_ns());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            prop_assert_eq!(ha.quantile(q), hc.quantile(q));
        }
        prop_assert_eq!(ha.summary(), hc.summary());
    }

    /// The log-bucketed quantile never under-reports and over-reports by
    /// less than 2x (one power-of-two bucket), clamped to the observed
    /// maximum.
    #[test]
    fn quantile_error_is_bounded_by_one_bucket(
        (samples, q) in prop::collection::vec(0u64..1u64 << 40, 2..300)
            .prop_map(|mut v| {
                // First element doubles as the quantile seed (single-strategy
                // shim); the rest are the samples.
                let seed = v.remove(0);
                (v, (seed % 1001) as f64 / 1000.0)
            })
    ) {
        let mut h = LatencyHistogram::new();
        for &v in &samples {
            h.record(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let truth = sample_quantile(&sorted, q);
        let approx = h.quantile(q);
        prop_assert!(approx >= truth, "approx {} < true {}", approx, truth);
        if truth > 0 {
            prop_assert!(approx < 2 * truth, "approx {} >= 2x true {}", approx, truth);
        } else {
            prop_assert_eq!(approx, 0);
        }
        prop_assert!(approx <= h.max_ns().max(truth));
    }

    /// A full event ring drops the *newest* records and counts every drop;
    /// committed records survive verbatim, in order.
    #[test]
    fn ring_overflow_drops_newest_with_count(
        (capacity, extra) in (0u64..62 * 50)
            .prop_map(|x| (2 + (x % 62) as usize, x / 62))
    ) {
        let telemetry = TelemetryHandle::with_capacity(1, capacity);
        let total = capacity as u64 + extra;
        for i in 0..total {
            telemetry.record(0, TraceEvent {
                kind: EventKind::Firing,
                worker: 0,
                node: i as u32,
                job: 7,
                t_start_ns: i,
                t_end_ns: i + 1,
                arg: i,
            });
        }
        let drained = telemetry.drain_new();
        // Monotonic head/tail indices let the ring fill every slot;
        // everything beyond capacity was dropped-and-counted.
        let kept = capacity.min(total as usize);
        prop_assert_eq!(drained.len(), kept);
        prop_assert_eq!(telemetry.dropped(), total - kept as u64);
        // Survivors are the oldest records, uncorrupted and in order.
        for (i, e) in drained.iter().enumerate() {
            prop_assert_eq!(e.arg, i as u64);
            prop_assert_eq!(e.node, i as u32);
            prop_assert_eq!(e.t_start_ns, i as u64);
            prop_assert_eq!(e.job, 7);
        }
    }
}

// ---------------------------------------------- end-to-end telemetry ----

fn fork_cycle() -> Graph {
    let mut b = GraphBuilder::new();
    b.edge_with_capacity("a", "b", 2).unwrap();
    b.edge_with_capacity("b", "c", 2).unwrap();
    b.edge_with_capacity("a", "c", 2).unwrap();
    b.build().unwrap()
}

#[test]
fn service_telemetry_end_to_end() {
    let svc = JobService::new(ServiceConfig {
        workers: 2,
        max_in_flight: 8,
        telemetry: true,
        ..ServiceConfig::default()
    });
    for tenant in ["acme", "acme", "globex"] {
        let spec = JobSpec::new(fork_cycle(), FilterSpec::Fork(2), 200).with_tenant(tenant);
        let outcome = svc.submit(spec).expect("admitted").wait();
        assert_eq!(outcome.verdict, JobVerdict::Completed);
    }

    // Stats schema v6: non-zero settle percentiles, both tenants keyed.
    let stats = svc.stats();
    assert_eq!(stats.latency_settle.count, 3);
    assert!(stats.latency_settle.p99_ns > 0);
    assert!(stats.latency_firing.count > 0);
    let tenants: Vec<&str> = stats.tenants.iter().map(|t| t.tenant.as_str()).collect();
    assert_eq!(tenants, ["acme", "globex"]);
    assert_eq!(stats.tenants[0].jobs, 2);
    assert!(stats.tenants[0].latency.p50_ns > 0);
    let json = stats.to_json();
    assert!(json.contains("\"schema_version\": 6"));
    assert!(json.contains("\"tenant\": \"acme\""));

    // The dummy-traffic profiler attributed messages to plan intervals.
    let metrics = svc.metrics().expect("telemetry on");
    let traffic = metrics.interval_traffic();
    assert!(!traffic.is_empty(), "planned fork job must yield interval traffic");
    assert!(traffic.iter().any(|(_, t)| t.data > 0));

    // Prometheus text: tenant series and summary quantiles render.
    let prom = metrics.prometheus();
    assert!(prom.contains("fila_jobs_settled_total 3"));
    assert!(prom.contains("fila_tenant_settle_latency_ns{tenant=\"acme\",quantile=\"0.99\"}"));
    assert!(prom.contains("fila_edge_messages_total"));

    // Chrome trace: firing spans and the per-job spans export one per line.
    let telemetry = svc.telemetry().expect("telemetry on");
    let events = telemetry.all_events();
    assert!(events.iter().any(|e| e.kind == EventKind::Firing));
    assert_eq!(events.iter().filter(|e| e.kind == EventKind::Job).count(), 3);
    let trace = chrome_trace(&events);
    assert!(trace.starts_with("{\"traceEvents\":[\n"));
    assert!(trace.lines().filter(|l| l.contains("\"name\":\"firing\"")).count() > 0);
}

#[test]
fn firing_spans_sum_to_delivered_messages() {
    // The `Firing` span arg is the number of messages the slice delivered
    // into its output rings (`messages_in_run`): data plus dummies, EOS
    // markers excluded.  Summed over a job's trace it must equal the
    // report's total channel traffic — in every container batching mode,
    // whether a slice ships one message or a whole run.
    use std::sync::Arc;

    use fila::runtime::filters::Predicate;
    use fila::runtime::AvoidanceMode;

    let g = fork_cycle();
    let plan = Arc::new(
        Planner::new(&g)
            .algorithm(Algorithm::Propagation)
            .plan()
            .unwrap(),
    );
    let a = g.node_by_name("a").unwrap();
    for batching in [Batching::Scalar, Batching::Messages(16), Batching::Unbounded] {
        let topo = Topology::from_graph(&g)
            .with(a, || Predicate::new(2, |seq, out| out == 0 || seq % 64 == 0));
        let pool = fila::runtime::SharedPool::with_options(2, 8, None, true, batching);
        let report = pool
            .submit_with(&topo, AvoidanceMode::Plan(Arc::clone(&plan)), 500)
            .wait();
        assert!(report.completed, "{report:?}");
        assert!(report.dummy_messages > 0, "plan must generate dummy traffic");

        let telemetry = pool.telemetry_handle().expect("telemetry on");
        let events = telemetry.all_events();
        assert_eq!(telemetry.dropped(), 0, "ring sized for this workload");
        let span_sum: u64 = events
            .iter()
            .filter(|e| e.kind == EventKind::Firing)
            .map(|e| e.arg)
            .sum();
        let traffic: u64 = report.per_edge_data.iter().sum::<u64>()
            + report.per_edge_dummies.iter().sum::<u64>();
        assert_eq!(
            span_sum, traffic,
            "firing spans must sum to delivered messages under {batching:?}"
        );
    }
}

#[test]
fn telemetry_off_records_nothing_and_stats_stay_empty() {
    let svc = JobService::default();
    let spec = JobSpec::new(fork_cycle(), FilterSpec::Fork(2), 50).with_tenant("acme");
    let outcome = svc.submit(spec).expect("admitted").wait();
    assert_eq!(outcome.verdict, JobVerdict::Completed);
    assert!(svc.telemetry().is_none());
    assert!(svc.metrics().is_none());
    let stats = svc.stats();
    assert_eq!(stats.latency_settle.count, 0);
    assert!(stats.tenants.is_empty());
    assert!(stats.to_json().contains("\"tenants\": []"));
}
