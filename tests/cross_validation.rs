//! Experiment E11: the efficient interval algorithms agree with (or are
//! safely tighter than) the exponential cycle-enumeration baseline on
//! randomly generated topologies.

use fila::avoidance::{verify_plan, Algorithm, GraphClass, Planner, Rounding};
use fila::workloads::generators::{
    random_ladder, random_sp_dag, GeneratorConfig, LadderConfig,
};

#[test]
fn sp_dag_plans_are_exact_for_both_protocols() {
    for seed in 0..10u64 {
        let (g, _) = random_sp_dag(&GeneratorConfig {
            target_edges: 30,
            seed,
            ..Default::default()
        });
        for algorithm in [Algorithm::Propagation, Algorithm::NonPropagation] {
            for rounding in [Rounding::Ceil, Rounding::Floor] {
                let (class, plan) = Planner::new(&g)
                    .algorithm(algorithm)
                    .rounding(rounding)
                    .plan_with_class()
                    .unwrap();
                assert_eq!(class, GraphClass::SeriesParallel, "seed {seed}");
                let v = verify_plan(&g, &plan).unwrap();
                assert!(v.exact, "seed {seed} {algorithm} {rounding:?}: {}", v.summary());
            }
        }
    }
}

#[test]
fn ladder_plans_are_safe_and_propagation_is_exact_on_simple_ladders() {
    for seed in 0..8u64 {
        let g = random_ladder(&LadderConfig {
            rungs: 6,
            seed,
            reverse_probability: 0.25,
            ..Default::default()
        });
        for algorithm in [Algorithm::Propagation, Algorithm::NonPropagation] {
            let (class, plan) = Planner::new(&g)
                .algorithm(algorithm)
                .plan_with_class()
                .unwrap();
            assert_eq!(class, GraphClass::Cs4, "seed {seed}");
            let v = verify_plan(&g, &plan).unwrap();
            assert!(v.safe, "seed {seed} {algorithm}: {}", v.summary());
        }
    }
}

#[test]
fn forced_exhaustive_never_disagrees_with_structural_dispatch_on_sp() {
    for seed in 20..26u64 {
        let (g, _) = random_sp_dag(&GeneratorConfig {
            target_edges: 24,
            seed,
            ..Default::default()
        });
        let fast = Planner::new(&g).plan().unwrap();
        let slow = Planner::new(&g).force_exhaustive(true).plan().unwrap();
        assert_eq!(fast.intervals(), slow.intervals(), "seed {seed}");
    }
}
