//! Fuzzing the snapshot wire codec: `JobSnapshot::from_bytes` is the one
//! decoder that eats bytes from *outside* the process (checkpoint stores,
//! crash-recovery archives, the chaos storm's deliberately corrupted
//! blobs), so it must never panic and never let a corrupted length field
//! drive an allocation — whatever it is fed: random garbage, bit-flipped
//! real snapshots, truncations, or absurd declared lengths.  Every
//! rejection must be a typed [`RestoreError`].

use std::sync::OnceLock;

use fila::prelude::*;
use fila::workloads::figures::fig2_triangle;
use fila::workloads::generators::periodic_filtered_topology;
use proptest::prelude::*;

/// Real snapshot buffers killed at several depths: a bare pipeline (data
/// messages and staged sends only) and a planned filtering triangle
/// (dummies in flight, gap counters, Eos markers).  Built once — the
/// corpus is the honest half of every mutation strategy below.
fn corpus() -> &'static Vec<Vec<u8>> {
    static CORPUS: OnceLock<Vec<Vec<u8>>> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let mut corpus = Vec::new();
        let mut b = GraphBuilder::new().default_capacity(3);
        b.chain(&["s", "m0", "m1", "sink"]).unwrap();
        let pipeline = b.build().unwrap();
        let bare = periodic_filtered_topology(&pipeline, |_| 1);
        let triangle = fig2_triangle(3);
        let plan = Planner::new(&triangle)
            .algorithm(Algorithm::Propagation)
            .plan()
            .unwrap();
        let fork = triangle.node_by_name("A").unwrap();
        let filtered = periodic_filtered_topology(&triangle, |n| if n == fork { 2 } else { 1 });
        for kill_at in [1, 7, 40, 200] {
            for (topology, plan) in [(&bare, None), (&filtered, Some(&plan))] {
                let sim = match plan {
                    Some(p) => Simulator::new(topology).with_plan(p),
                    None => Simulator::new(topology),
                };
                if let CheckpointOutcome::Killed(snapshot) = sim.run_with_checkpoint(120, kill_at)
                {
                    corpus.push(snapshot.to_bytes());
                }
            }
        }
        assert!(corpus.len() >= 6, "corpus kills must land mid-run");
        corpus
    })
}

/// splitmix64 — derives the mutation coordinates (corpus pick, offset,
/// bit, bomb value) from the single proptest seed, since the vendored
/// proptest shim generates one strategy argument per test.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary bytes: decode returns, it never panics.  (An OOM from a
    /// corrupted length field would abort the whole test binary, so this
    /// also pins the allocation guard.)
    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(0u8..=255, 0..512)) {
        let _ = JobSnapshot::from_bytes(&bytes);
    }

    /// Random garbage behind a *valid* magic + version header — the
    /// adversarial case the magic check no longer shields.
    #[test]
    fn garbage_behind_valid_header_never_panics(seed in 0u64..u64::MAX) {
        let corpus = corpus();
        let mut buf = corpus[mix(seed) as usize % corpus.len()][..12].to_vec();
        let n = (mix(seed ^ 1) % 384) as usize;
        buf.extend((0..n).map(|i| mix(seed ^ (i as u64) << 9) as u8));
        let _ = JobSnapshot::from_bytes(&buf);
    }

    /// Every strict prefix of a real snapshot is rejected with a typed
    /// error (the parse is deterministic, so a cut buffer must run out of
    /// bytes or fail a length bound before the trailing-bytes check).
    #[test]
    fn truncations_error_cleanly(seed in 0u64..u64::MAX) {
        let corpus = corpus();
        let full = &corpus[mix(seed) as usize % corpus.len()];
        let len = mix(seed ^ 2) as usize % full.len();
        prop_assert!(JobSnapshot::from_bytes(&full[..len]).is_err());
    }

    /// A single flipped bit anywhere: decode returns Ok or a typed Err,
    /// never a panic; flips inside the magic/version header always reject.
    #[test]
    fn bit_flips_never_panic(seed in 0u64..u64::MAX) {
        let corpus = corpus();
        let mut bytes = corpus[mix(seed) as usize % corpus.len()].clone();
        let pos = mix(seed ^ 3) as usize % bytes.len();
        bytes[pos] ^= 1 << (mix(seed ^ 4) % 8);
        let decoded = JobSnapshot::from_bytes(&bytes);
        if pos < 12 {
            prop_assert!(decoded.is_err(), "corrupted header byte {} decoded", pos);
        }
    }

    /// Length-field bombs: stamp `u64::MAX` (and friends) over any
    /// 8-byte window of a real snapshot.  The reader bounds every
    /// declared count by the bytes actually remaining, so the decode must
    /// return (with an error or a reinterpreted-but-valid snapshot)
    /// instead of attempting a multi-exabyte allocation.
    #[test]
    fn huge_declared_lengths_never_allocate(seed in 0u64..u64::MAX) {
        let corpus = corpus();
        let mut bytes = corpus[mix(seed) as usize % corpus.len()].clone();
        let bomb = match mix(seed ^ 5) % 4 {
            0 => u64::MAX,
            1 => u64::MAX / 8,
            2 => 1u64 << 56,
            _ => (1u64 << 32) | mix(seed ^ 6),
        };
        let pos = mix(seed ^ 7) as usize % bytes.len();
        let end = (pos + 8).min(bytes.len());
        bytes[pos..end].copy_from_slice(&bomb.to_le_bytes()[..end - pos]);
        let _ = JobSnapshot::from_bytes(&bytes);
    }

    /// The honest half: every corpus buffer round-trips bit-exactly.
    #[test]
    fn corpus_round_trips(seed in 0u64..u64::MAX) {
        let corpus = corpus();
        let bytes = &corpus[mix(seed) as usize % corpus.len()];
        let decoded = JobSnapshot::from_bytes(bytes).expect("own bytes decode");
        prop_assert_eq!(&decoded.to_bytes(), bytes);
    }
}
