//! Property-based tests over randomly generated SP specifications:
//! structural invariants of the decomposition and exactness of the interval
//! algorithms against the exponential baseline.

use fila::avoidance::exhaustive::exhaustive_intervals;
use fila::avoidance::{Algorithm, Rounding};
use fila::spdag::validate::validate_decomposition;
use fila::spdag::{build_sp, recognize, SpSpec};
use proptest::prelude::*;

/// Strategy producing small random SP specifications.
fn sp_spec(depth: u32) -> impl Strategy<Value = SpSpec> {
    let leaf = (1u64..6).prop_map(SpSpec::Edge);
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(SpSpec::Series),
            prop::collection::vec(inner, 2..4).prop_map(SpSpec::Parallel),
            prop::collection::vec(1u64..6, 2..4).prop_map(SpSpec::MultiEdge),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_sp_dags_are_recognised(spec in sp_spec(3)) {
        let (g, d) = build_sp(&spec);
        validate_decomposition(&g, &d).unwrap();
        prop_assert!(recognize(&g).unwrap().is_sp());
    }

    #[test]
    fn every_cycle_of_an_sp_dag_has_one_source_and_sink(spec in sp_spec(3)) {
        let (g, _) = build_sp(&spec);
        prop_assert!(fila::graph::cycles::all_cycles_single_source_sink(&g));
    }

    #[test]
    fn setivals_matches_the_exhaustive_definition(spec in sp_spec(3)) {
        let (g, d) = build_sp(&spec);
        prop_assume!(g.edge_count() <= 40);
        let fast = fila::avoidance::prop_sp::setivals(&g, &d);
        let exact = exhaustive_intervals(&g, Algorithm::Propagation, Rounding::Ceil).unwrap();
        prop_assert_eq!(fast, exact);
    }

    #[test]
    fn nonprop_matches_the_exhaustive_definition(spec in sp_spec(3)) {
        let (g, d) = build_sp(&spec);
        prop_assume!(g.edge_count() <= 40);
        for rounding in [Rounding::Ceil, Rounding::Floor] {
            let fast = fila::avoidance::nonprop_sp::nonprop_intervals(&g, &d, rounding);
            let exact = exhaustive_intervals(&g, Algorithm::NonPropagation, rounding).unwrap();
            prop_assert_eq!(fast, exact);
        }
    }

    #[test]
    fn intervals_never_exceed_the_opposite_branch_capacity(spec in sp_spec(3)) {
        let (g, d) = build_sp(&spec);
        let total: u64 = g.total_capacity();
        let ivals = fila::avoidance::prop_sp::setivals(&g, &d);
        for (_, iv) in ivals.iter() {
            if let Some(v) = iv.finite() {
                prop_assert!(v <= total);
            }
        }
    }
}
