//! Experiment E12: end-to-end safety.  With computed intervals the runtime
//! never deadlocks on filtering workloads whose filtering happens at cycle
//! fork nodes; with avoidance disabled the same workloads deadlock.

use std::time::Duration;

use fila::prelude::*;
use fila::runtime::filters::Predicate;
use fila::runtime::Bernoulli;
use fila::workloads::figures;

fn fork_filtering_topology(buffer: u64, period: u64) -> (fila::graph::Graph, Topology) {
    let g = figures::fig2_triangle(buffer);
    let a = g.node_by_name("A").unwrap();
    let topo = Topology::from_graph(&g)
        .with(a, move || Predicate::new(2, move |seq, out| out == 0 || seq % period == 0));
    (g, topo)
}

#[test]
fn simulator_never_deadlocks_with_plans_across_buffer_sweep() {
    for buffer in [1u64, 2, 3, 5, 9, 17] {
        for period in [3u64, 16, 257] {
            let (g, topo) = fork_filtering_topology(buffer, period);
            // The unprotected run deadlocks whenever the filtered stretch
            // exceeds what the opposite branch can buffer.
            let unprotected = Simulator::new(&topo).run(5_000);
            if period > 2 * buffer + 2 {
                assert!(
                    unprotected.deadlocked,
                    "buffer {buffer} period {period}: expected deadlock, got {unprotected:?}"
                );
            }
            for algorithm in [Algorithm::Propagation, Algorithm::NonPropagation] {
                let plan = Planner::new(&g).algorithm(algorithm).plan().unwrap();
                let report = Simulator::new(&topo).with_plan(&plan).run(5_000);
                assert!(
                    report.completed,
                    "buffer {buffer} period {period} {algorithm}: {report:?}"
                );
            }
        }
    }
}

#[test]
fn threaded_engine_completes_with_plans() {
    let (g, topo) = fork_filtering_topology(3, 64);
    for algorithm in [Algorithm::Propagation, Algorithm::NonPropagation] {
        let plan = Planner::new(&g).algorithm(algorithm).plan().unwrap();
        let report = ThreadedExecutor::new(&topo)
            .with_plan(&plan)
            .quiet_period(Duration::from_millis(800))
            .run(2_000);
        assert!(report.completed, "{algorithm}: {report:?}");
    }
}

#[test]
fn randomised_split_join_workloads_are_safe_with_nonpropagation() {
    for seed in 0..5u64 {
        let g = figures::fig1_split_join(3);
        let b = g.node_by_name("B").unwrap();
        let c = g.node_by_name("C").unwrap();
        let topo = Topology::from_graph(&g)
            .with(b, move || Bernoulli::new(1, 0.05, seed))
            .with(c, move || Bernoulli::new(1, 0.08, seed + 100));
        let plan = Planner::new(&g).algorithm(Algorithm::NonPropagation).plan().unwrap();
        let report = Simulator::new(&topo).with_plan(&plan).run(20_000);
        assert!(report.completed, "seed {seed}: {report:?}");
        let unprotected = Simulator::new(&topo).run(20_000);
        assert!(unprotected.deadlocked, "seed {seed}");
    }
}

#[test]
fn dummy_overhead_decreases_with_buffer_size() {
    // E13 flavour: larger buffers mean larger intervals and fewer dummies.
    let mut overheads = Vec::new();
    for buffer in [2u64, 8, 32] {
        let (g, topo) = fork_filtering_topology(buffer, 1_000_000);
        let plan = Planner::new(&g).algorithm(Algorithm::Propagation).plan().unwrap();
        let report = Simulator::new(&topo).with_plan(&plan).run(50_000);
        assert!(report.completed);
        overheads.push(report.dummy_overhead());
    }
    assert!(overheads[0] > overheads[1] && overheads[1] > overheads[2], "{overheads:?}");
}
