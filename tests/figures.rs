//! Integration tests regenerating the paper's worked figures end to end
//! (experiments E1, E3, E4, E5 in DESIGN.md).

use fila::avoidance::{classify, verify_plan, GraphClass, Rounding};
use fila::prelude::*;
use fila::workloads::figures;

#[test]
fn fig3_propagation_intervals_match_the_paper() {
    let g = figures::fig3_cycle();
    let plan = Planner::new(&g).algorithm(Algorithm::Propagation).plan().unwrap();
    let e = |s: &str, t: &str| g.edge_by_names(s, t).unwrap();
    assert_eq!(plan.interval(e("a", "b")), DummyInterval::Finite(6));
    assert_eq!(plan.interval(e("a", "c")), DummyInterval::Finite(8));
    for (s, t) in [("b", "e"), ("e", "f"), ("c", "d"), ("d", "f")] {
        assert_eq!(plan.interval(e(s, t)), DummyInterval::Infinite, "[{s}{t}]");
    }
    assert!(verify_plan(&g, &plan).unwrap().exact);
}

#[test]
fn fig3_nonpropagation_intervals_are_the_robust_tightening_of_the_paper() {
    // The paper's Fig. 3 divides the opposite slack by the hop count
    // ([ab] = 6/3 = 2, [ac] = ⌈8/3⌉ = 3).  That recurrence assumes interior
    // nodes re-emit data; this reproduction's runtime counts dummy gaps per
    // accepted input, so the sound bound is the integer hop-count root of
    // the slack (E17 postmortem, DESIGN.md) — a strict tightening of the
    // printed values, and rounding-independent.
    let g = figures::fig3_cycle();
    let e = |s: &str, t: &str| g.edge_by_names(s, t).unwrap();
    for rounding in [Rounding::Ceil, Rounding::Floor] {
        let plan = Planner::new(&g)
            .algorithm(Algorithm::NonPropagation)
            .rounding(rounding)
            .plan()
            .unwrap();
        for (s, t, paper) in [("a", "b", 2), ("b", "e", 2), ("e", "f", 2)] {
            assert_eq!(plan.interval(e(s, t)), DummyInterval::Finite(1), "[{s}{t}]");
            assert!(plan.interval(e(s, t)) <= DummyInterval::Finite(paper));
        }
        for (s, t, paper) in [("a", "c", 3), ("c", "d", 3), ("d", "f", 3)] {
            assert_eq!(plan.interval(e(s, t)), DummyInterval::Finite(2), "[{s}{t}]");
            assert!(plan.interval(e(s, t)) <= DummyInterval::Finite(paper));
        }
        assert!(verify_plan(&g, &plan).unwrap().exact);
    }
}

#[test]
fn fig1_split_join_runs_with_filtering() {
    use fila::runtime::Bernoulli;
    let g = figures::fig1_split_join(4);
    let b = g.node_by_name("B").unwrap();
    let c = g.node_by_name("C").unwrap();
    let topo = Topology::from_graph(&g)
        .with(b, || Bernoulli::new(1, 0.1, 3))
        .with(c, || Bernoulli::new(1, 0.2, 4));
    let plan = Planner::new(&g).algorithm(Algorithm::NonPropagation).plan().unwrap();
    let report = Simulator::new(&topo).with_plan(&plan).run(20_000);
    assert!(report.completed);
    assert!(report.sink_firings > 0);
}

#[test]
fn fig4_and_fig5_classifications() {
    assert_eq!(
        classify(&figures::fig4_crosslink(2)).unwrap(),
        GraphClass::Cs4
    );
    assert_eq!(
        classify(&figures::fig4_butterfly(2)).unwrap(),
        GraphClass::General
    );
    assert_eq!(
        classify(&figures::butterfly_rewritten(2)).unwrap(),
        GraphClass::Cs4
    );
    assert_eq!(classify(&figures::fig5_ladder(3)).unwrap(), GraphClass::Cs4);
}

#[test]
fn fig5_ladder_plans_are_safe_for_both_protocols() {
    let g = figures::fig5_ladder(3);
    for algorithm in [Algorithm::Propagation, Algorithm::NonPropagation] {
        let plan = Planner::new(&g).algorithm(algorithm).plan().unwrap();
        let v = verify_plan(&g, &plan).unwrap();
        assert!(v.safe, "{algorithm}: {}", v.summary());
    }
}

#[test]
fn butterfly_still_gets_a_plan_via_the_exhaustive_fallback() {
    let g = figures::fig4_butterfly(2);
    let plan = Planner::new(&g).plan().unwrap();
    assert!(plan.channels_needing_dummies() >= 6);
    assert!(verify_plan(&g, &plan).unwrap().exact);
}
