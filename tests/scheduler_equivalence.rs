//! Property-based equivalence of the simulator's two schedulers.
//!
//! The event-driven worklist scheduler (the default) must be observationally
//! identical to the original full-scan scheduler, which stays available
//! behind [`Scheduler::Scan`] as the executable reference: for any topology
//! and any (deterministic) filtering behaviour, both must agree on
//! completion, the deadlock verdict, and the exact per-channel data and
//! dummy message counts.  The topologies are drawn from all three workload
//! generators — random series-parallel DAGs, random CS4 ladders, and layered
//! random DAGs that are in general neither.

use fila::prelude::*;
use fila::workloads::generators::{
    layered_dag, periodic_filtered_topology, random_ladder, random_sp_dag, GeneratorConfig,
    LadderConfig,
};
use proptest::prelude::*;

/// One generated equivalence case.
#[derive(Debug, Clone, Copy)]
enum Scenario {
    /// Random series-parallel DAG, protected by a planner-produced plan.
    Sp { seed: u64 },
    /// Random CS4 ladder, protected by a planner-produced plan.
    Ladder { seed: u64 },
    /// Layered random DAG (generally not CS4), run without avoidance so the
    /// deadlock path of both schedulers is exercised too.
    Layered { seed: u64 },
}

fn scenario() -> impl Strategy<Value = Scenario> {
    prop_oneof![
        (0u64..1 << 48).prop_map(|seed| Scenario::Sp { seed }),
        (0u64..1 << 48).prop_map(|seed| Scenario::Ladder { seed }),
        (0u64..1 << 48).prop_map(|seed| Scenario::Layered { seed }),
    ]
}

/// Deterministic per-(seed, node) parameter derivation.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Installs the canonical periodic filter (shared with the `throughput`
/// bench via `fila::workloads::generators::periodic_filtered_topology`)
/// with a seed-derived period per node: period 1 = broadcast, larger
/// periods filter most of the stream.
fn with_filters(g: &Graph, seed: u64) -> Topology {
    periodic_filtered_topology(g, |n| 1 + mix(seed ^ (0x9e37 + n.index() as u64)) % 5)
}

/// Runs one scenario under both schedulers and asserts the reports match on
/// every schedule-independent field.
fn assert_equivalent(scenario: Scenario) -> Result<(), TestCaseError> {
    let (g, plan, inputs) = match scenario {
        Scenario::Sp { seed } => {
            let (g, _) = random_sp_dag(&GeneratorConfig {
                target_edges: 12 + (mix(seed) % 24) as usize,
                max_fanout: 3,
                capacity_range: (1, 6),
                seed,
            });
            let algorithm = if mix(seed ^ 1) % 2 == 0 {
                Algorithm::Propagation
            } else {
                Algorithm::NonPropagation
            };
            let plan = Planner::new(&g).algorithm(algorithm).plan().unwrap();
            (g, Some(plan), 40 + mix(seed ^ 2) % 60)
        }
        Scenario::Ladder { seed } => {
            let g = random_ladder(&LadderConfig {
                rungs: 1 + (mix(seed) % 6) as usize,
                capacity_range: (1, 6),
                reverse_probability: 0.3,
                seed,
            });
            let algorithm = if mix(seed ^ 1) % 2 == 0 {
                Algorithm::Propagation
            } else {
                Algorithm::NonPropagation
            };
            let plan = Planner::new(&g).algorithm(algorithm).plan().unwrap();
            (g, Some(plan), 40 + mix(seed ^ 2) % 60)
        }
        Scenario::Layered { seed } => {
            let g = layered_dag(
                2 + (mix(seed) % 3) as usize,
                1 + (mix(seed ^ 1) % 3) as usize,
                1 + mix(seed ^ 2) % 3,
                seed,
            );
            (g, None, 40 + mix(seed ^ 3) % 60)
        }
    };
    let (Scenario::Sp { seed } | Scenario::Ladder { seed } | Scenario::Layered { seed }) =
        scenario;
    let topo = with_filters(&g, seed);
    let build = |scheduler: Scheduler| {
        let sim = Simulator::new(&topo).scheduler(scheduler);
        let sim = match &plan {
            Some(p) => sim.with_plan(p),
            None => sim,
        };
        sim.run(inputs)
    };
    let worklist = build(Scheduler::Worklist);
    let scan = build(Scheduler::Scan);
    prop_assert_eq!(worklist.completed, scan.completed);
    prop_assert_eq!(worklist.deadlocked, scan.deadlocked);
    prop_assert_eq!(worklist.data_messages, scan.data_messages);
    prop_assert_eq!(worklist.dummy_messages, scan.dummy_messages);
    prop_assert_eq!(worklist.sink_firings, scan.sink_firings);
    prop_assert_eq!(&worklist.per_edge_data, &scan.per_edge_data);
    prop_assert_eq!(&worklist.per_edge_dummies, &scan.per_edge_dummies);
    // Either verdict must be conclusive: an unbounded run ends in
    // completion or deadlock, never by the step bound.
    prop_assert!(!worklist.inconclusive());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    #[test]
    fn worklist_scheduler_is_equivalent_to_scan(s in scenario()) {
        assert_equivalent(s)?;
    }
}
