//! The adaptive runtime end to end: filter-drift detection, certified plan
//! hot-swap, and the graceful-degradation response ladder.
//!
//! Three layers of oracle:
//!
//! 1. **Rebase soundness** (proptest): a snapshot killed at a random step
//!    under plan A, rebased onto plan B (certified for the *observed*
//!    profile) with a [`SwapToken`], resumes on the shared pool to exactly
//!    the counts of an uninterrupted continuation under plan B from the
//!    same barrier cut — the simulator's resume of the same rebased
//!    snapshot is the reference schedule.
//! 2. **Hot-swap path**: a drifting planned job on a busy shared pool is
//!    detected, migrated live (the pool and a bystander job keep running),
//!    and finishes with the verdict and per-edge data counts of an
//!    uninterrupted run of the executed profile.
//! 3. **Cancel path**: a drifting bare job on a dense unplannable graph is
//!    detected, fails re-certification at both ladder budgets, and lands
//!    in [`AdaptiveOutcome::DriftCancelled`] with the offending node and
//!    its observed rate.

use std::sync::Arc;
use std::time::Duration;

use fila::prelude::*;
use fila::runtime::checkpoint::plan_digest;
use fila::runtime::{AvoidanceMode, PropagationTrigger};
use fila::service::drift::DriftOffender;
use fila::workloads::figures::fig2_triangle;
use fila::workloads::generators::{periodic_filtered_topology, random_sp_dag, GeneratorConfig};
use fila::workloads::jobs::dense_drifter;
use proptest::prelude::*;

/// Deterministic per-seed parameter derivation (shared idiom with the
/// snapshot-equivalence suite).
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// A drift-tuned supervisor policy: windows and polls small enough that a
/// multi-thousand-input job is always detected long before it completes.
fn tight_policy() -> DriftPolicy {
    DriftPolicy {
        window: 16,
        breaches: 2,
        poll: Duration::from_micros(50),
        ..DriftPolicy::default()
    }
}

/// Oracle for one rebase case: kill a run of the *executed* (drifted)
/// topology under the declared-profile plan A, rebase the snapshot onto
/// plan B (certified for the executed profile), and resume it twice — on
/// the reference simulator and on a busy shared pool via
/// [`SharedPool::resume_swapped`].  Both continuations must agree with
/// each other on verdict, per-edge data counts and sink firings: the
/// hot-swapped pool job *is* an uninterrupted run under the swapped plan
/// from the barrier cut.
fn assert_swap_equivalent(seed: u64) -> Result<(), TestCaseError> {
    let (g, _) = random_sp_dag(&GeneratorConfig {
        target_edges: 10 + (mix(seed) % 16) as usize,
        max_fanout: 3,
        capacity_range: (2, 6),
        seed,
    });
    // Declared: fork-filtering with a seed-derived period.  Executed: the
    // same profile drifted to double the filtering.
    let source = g.single_source().unwrap();
    let declared: Vec<u64> = g
        .node_ids()
        .map(|n| if n == source { 2 + mix(seed ^ 1) % 3 } else { 1 })
        .collect();
    let executed: Vec<u64> = declared.iter().map(|&p| if p > 1 { p * 2 } else { 1 }).collect();
    let topo = {
        let executed = executed.clone();
        periodic_filtered_topology(&g, move |n| executed[n.index()])
    };
    let inputs = 60 + mix(seed ^ 2) % 80;

    // Captured under a Propagation plan (safe for pure fork filtering),
    // swapped onto a Non-Propagation plan certified for the executed
    // profile — the digests genuinely differ, so the rebase is load-
    // bearing, not a same-plan no-op.
    let plan_a = Arc::new(
        Planner::new(&g)
            .algorithm(Algorithm::Propagation)
            .plan()
            .expect("SP DAGs always have a Propagation plan"),
    );
    let plan_b = Planner::new(&g)
        .algorithm(Algorithm::NonPropagation)
        .certify(&executed)
        .expect("the drifted profile still certifies under Non-Propagation")
        .plan;
    let mode_a = AvoidanceMode::Plan(Arc::clone(&plan_a));
    let mode_b = AvoidanceMode::Plan(Arc::clone(&plan_b));

    let sim = Simulator::new(&topo).with_shared_plan(Arc::clone(&plan_a));
    let kill_at = 1 + mix(seed ^ 3) % 200;
    let CheckpointOutcome::Killed(snapshot) = sim.run_with_checkpoint(inputs, kill_at) else {
        return Ok(()); // the run outran the kill point; nothing to swap
    };
    let token = SwapToken::authorise(&mode_a, &mode_b);

    // Reference: the simulator's continuation of the rebased snapshot
    // under plan B.
    let mut rebased = snapshot.clone();
    rebased
        .rebase(&topo, &mode_b, &token)
        .expect("token names both digests");
    prop_assert_eq!(rebased.plan_digest, plan_digest(&mode_b));
    let reference = Simulator::new(&topo)
        .with_shared_plan(Arc::clone(&plan_b))
        .resume(&rebased)
        .expect("rebased snapshot passes validation under plan B");

    // Subject: the pool's one-call swapped resume of the *original*
    // snapshot, with a bystander keeping the workers busy.
    let pool = SharedPool::new(2);
    let bystander_g = fig2_triangle(4);
    let bystander = pool.submit(&Topology::from_graph(&bystander_g), 2_000);
    let swapped = pool
        .resume_swapped(&topo, mode_b, PropagationTrigger::default(), &snapshot, token, None)
        .expect("authorised swap restores")
        .wait();
    prop_assert!(bystander.wait().completed);

    prop_assert_eq!(reference.completed, swapped.completed);
    prop_assert_eq!(reference.deadlocked, swapped.deadlocked);
    prop_assert_eq!(&reference.per_edge_data, &swapped.per_edge_data);
    prop_assert_eq!(reference.sink_firings, swapped.sink_firings);
    prop_assert_eq!(swapped.resumed_from, Some(snapshot.steps));
    prop_assert!(reference.completed, "{:?}", reference);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn hot_swapped_resume_matches_uninterrupted_run_under_new_plan(seed in 0u64..1 << 48) {
        assert_swap_equivalent(seed)?;
    }
}

#[test]
fn unauthorised_or_mismatched_swaps_fail_closed() {
    let g = fig2_triangle(4);
    let executed = vec![4u64, 1, 1];
    let topo = {
        let executed = executed.clone();
        periodic_filtered_topology(&g, move |n| executed[n.index()])
    };
    let plan_a = Arc::new(Planner::new(&g).algorithm(Algorithm::Propagation).plan().unwrap());
    let plan_b = Arc::new(Planner::new(&g).algorithm(Algorithm::NonPropagation).plan().unwrap());
    let mode_a = AvoidanceMode::Plan(Arc::clone(&plan_a));
    let mode_b = AvoidanceMode::Plan(Arc::clone(&plan_b));
    let sim = Simulator::new(&topo).with_shared_plan(Arc::clone(&plan_a));
    let CheckpointOutcome::Killed(snapshot) = sim.run_with_checkpoint(300, 20) else {
        panic!("kill point 20 must interrupt a 300-input run");
    };

    // Without a token, a plan change is still a PlanMismatch.
    let pool = SharedPool::new(1);
    assert!(matches!(
        pool.resume_full(&topo, mode_b.clone(), PropagationTrigger::default(), &snapshot, None),
        Err(RestoreError::PlanMismatch(_))
    ));
    // A token naming the wrong source digest fails closed.
    let stale = SwapToken::authorise(&mode_b, &mode_b);
    let mut clone = snapshot.clone();
    assert!(matches!(
        clone.rebase(&topo, &mode_b, &stale),
        Err(RestoreError::PlanMismatch(_))
    ));
    // A token whose target does not match the restore-side mode fails too.
    let wrong_target = SwapToken::authorise(&mode_a, &mode_a);
    let mut clone = snapshot.clone();
    assert!(matches!(
        clone.rebase(&topo, &mode_b, &wrong_target),
        Err(RestoreError::PlanMismatch(_))
    ));
    // The well-formed token swaps fine.
    let token = SwapToken::authorise(&mode_a, &mode_b);
    let handle = pool
        .resume_swapped(&topo, mode_b, PropagationTrigger::default(), &snapshot, token, None)
        .expect("authorised swap restores");
    assert!(handle.wait().completed);
}

#[test]
fn resume_validates_gaps_against_the_plan_intervals() {
    let g = fig2_triangle(4);
    let declared = vec![2, 1, 1];
    let topo = {
        let declared = declared.clone();
        periodic_filtered_topology(&g, move |n| declared[n.index()])
    };
    let plan = Arc::new(
        Planner::new(&g)
            .algorithm(Algorithm::NonPropagation)
            .plan()
            .unwrap(),
    );
    let mode = AvoidanceMode::Plan(Arc::clone(&plan));
    let sim = Simulator::new(&topo).with_shared_plan(Arc::clone(&plan));
    let CheckpointOutcome::Killed(mut snapshot) = sim.run_with_checkpoint(300, 20) else {
        panic!("kill point 20 must interrupt a 300-input run");
    };

    // Corrupt one gap counter beyond its edge's certified interval: the
    // restore must reject it (a gap at or past the threshold could emit a
    // dummy burst the plan never certified).
    let a = g.node_by_name("A").unwrap();
    let interval = plan
        .interval(g.out_edges(a)[0])
        .finite()
        .expect("fig2 fork edge has a finite interval");
    snapshot.nodes[a.index()].gaps[0] = interval;
    let pool = SharedPool::new(1);
    match pool.resume_full(&topo, mode.clone(), PropagationTrigger::default(), &snapshot, None) {
        Err(RestoreError::GapExceedsInterval { node, gap, interval: i, .. }) => {
            assert_eq!(node, a.index() as u32);
            assert_eq!(gap, interval);
            assert_eq!(i, interval);
        }
        other => panic!("expected GapExceedsInterval, got {other:?}"),
    }

    // A rebase onto the same plan clamps the runaway gap back into range,
    // after which the restore passes.
    let token = SwapToken::authorise(&mode, &mode);
    snapshot.rebase(&topo, &mode, &token).unwrap();
    assert_eq!(snapshot.nodes[a.index()].gaps[0], interval - 1);
    assert!(pool
        .resume_full(&topo, mode, PropagationTrigger::default(), &snapshot, None)
        .is_ok());
}

#[test]
fn drifting_planned_job_is_hot_swapped_live() {
    let svc = JobService::new(ServiceConfig {
        workers: 3,
        ..ServiceConfig::default()
    });
    let g = fig2_triangle(4);
    // Declared fork period 2, executed period 4: half the declared rate,
    // well past the detector's tolerance.  Enough inputs that detection
    // always beats completion (a Non-Propagation plan keeps the drifting
    // job running, never wedged) — sized for a single-core release-mode
    // host, where the supervisor thread only gets a scheduling quantum
    // every few milliseconds while the workers churn.
    let inputs = 300_000;
    let spec = JobSpec::new(g.clone(), FilterSpec::Fork(2), inputs)
        .with_actual_filters(FilterSpec::Fork(4));

    // A bystander tenant shares the pool across the whole swap.
    let bystander =
        JobSpec::new(fig2_triangle(4), FilterSpec::Fork(2), 20_000);
    let bystander_ticket = svc.submit(bystander).unwrap();

    let ticket = svc.submit(spec.clone()).unwrap();
    let outcome = svc.supervise(&spec, ticket, &tight_policy());
    let AdaptiveOutcome::HotSwapped { outcome, swap } = outcome else {
        panic!("expected a hot-swap, got {outcome:?}");
    };
    assert_eq!(outcome.verdict, JobVerdict::Completed, "{outcome:?}");
    assert_eq!(outcome.resumed_from, Some(swap.snapshot_steps));
    assert!(swap.snapshot_steps > 0);
    // The detector convicted the drifted fork, not an innocent node.
    let a = g.node_by_name("A").unwrap();
    assert_eq!(swap.offenders.len(), 1, "{:?}", swap.offenders);
    assert_eq!(swap.offenders[0].node, a.index() as u32);
    assert_eq!(swap.offenders[0].declared_period, 2);
    assert!(swap.offenders[0].observed_period >= 4, "{:?}", swap.offenders);
    assert!(swap.observed_periods[a.index()] >= 4);
    assert_eq!(swap.algorithm, Algorithm::NonPropagation);

    // Equivalence: cumulative counts equal an uninterrupted run of the
    // executed profile (data counts are a property of the Kahn network,
    // not of the protecting plan).
    let executed_topo = spec.topology();
    let plan = Planner::new(&g)
        .algorithm(Algorithm::NonPropagation)
        .certify(&swap.observed_periods)
        .unwrap()
        .plan;
    let reference = Simulator::new(&executed_topo).with_plan(&plan).run(inputs);
    assert!(reference.completed);
    assert_eq!(outcome.report.per_edge_data, reference.per_edge_data);
    assert_eq!(outcome.report.sink_firings, reference.sink_firings);

    // The co-tenant never noticed.
    assert_eq!(bystander_ticket.wait().verdict, JobVerdict::Completed);

    let stats = svc.stats();
    assert_eq!(stats.drift_detected, 1);
    assert_eq!(stats.hot_swapped, 1);
    assert_eq!(stats.quarantined, 0);
    assert_eq!(stats.drift_cancelled, 0);
    assert_eq!(stats.snapshots, 1);
    assert_eq!(stats.restores, 1);
    assert_eq!(stats.cancelled, 1); // the retired first incarnation
    assert_eq!(stats.in_flight, 0);
}

#[test]
fn unrescuable_drifter_lands_in_drift_cancelled() {
    // A small cycle budget keeps both certification rejections (standard
    // and escalated) far quicker than the job's runtime, so the cancel
    // rung deterministically lands while the drifter is still mid-flight.
    let svc = JobService::new(ServiceConfig {
        workers: 2,
        cycle_bound: 64,
        ..ServiceConfig::default()
    });
    // Bare dense drifter: buffers ≥ inputs so the bare filtered run never
    // wedges, a graph no cycle budget can plan, and an executed profile
    // (fork period 2) drifting below the declared broadcast.  Sized, like
    // the live hot-swap test, for a single-core release host where the
    // supervisor only polls every few milliseconds under contention.
    let g = dense_drifter(16, 16_384);
    let spec = JobSpec::new(g.clone(), FilterSpec::Broadcast, 16_384)
        .unplanned()
        .with_actual_filters(FilterSpec::Fork(2));
    let ticket = svc.submit(spec.clone()).unwrap();
    let outcome = svc.supervise(&spec, ticket, &tight_policy());
    let AdaptiveOutcome::DriftCancelled { offenders, observed_periods, reason, outcome } =
        outcome
    else {
        panic!("expected DriftCancelled, got {outcome:?}");
    };
    assert_eq!(outcome.verdict, JobVerdict::Cancelled, "{outcome:?}");
    // The offender is the drifted source, with its halved rate observed.
    let x = g.node_by_name("x").unwrap();
    assert!(
        offenders.contains(&DriftOffender {
            node: x.index() as u32,
            declared_period: 1,
            observed_period: 2,
        }),
        "{offenders:?}"
    );
    assert_eq!(observed_periods[x.index()], 2);
    assert!(reason.contains("cycle"), "{reason}");

    let stats = svc.stats();
    assert_eq!(stats.drift_detected, 1);
    assert_eq!(stats.hot_swapped, 0);
    assert_eq!(stats.quarantined, 1); // rung 2 was attempted
    assert_eq!(stats.drift_cancelled, 1);
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.in_flight, 0);
}

#[test]
fn honest_supervised_jobs_settle_untouched() {
    // Supervision of a job that does *not* drift is free of side effects:
    // the job settles normally and no ladder counter moves.
    let svc = JobService::new(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    let spec = JobSpec::new(fig2_triangle(4), FilterSpec::Fork(2), 2_000);
    let ticket = svc.submit(spec.clone()).unwrap();
    let outcome = svc.supervise(&spec, ticket, &tight_policy());
    let AdaptiveOutcome::Settled(outcome) = outcome else {
        panic!("expected Settled, got {outcome:?}");
    };
    assert_eq!(outcome.verdict, JobVerdict::Completed);
    let stats = svc.stats();
    assert_eq!(stats.drift_detected, 0);
    assert_eq!(stats.hot_swapped, 0);
    assert_eq!(stats.quarantined, 0);
    assert_eq!(stats.drift_cancelled, 0);
    assert_eq!(stats.snapshots, 0);
}
