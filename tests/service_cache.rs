//! Plan-cache correctness: a cache-hit plan must be byte-identical — and
//! identical *in effect* (verdicts + per-edge data/dummy counts) — to a
//! freshly computed plan, over random SP DAGs and CS4 ladders.

use fila::prelude::*;
use fila::workloads::generators::{
    periodic_filtered_topology, random_ladder, random_sp_dag, GeneratorConfig, LadderConfig,
};
use proptest::prelude::*;

/// Plans `g` three ways — directly via [`Planner`], as a cache miss, and as
/// a cache hit — and asserts all three are the same plan with the same
/// observable execution (completion/deadlock verdict and per-edge counts)
/// under the given per-node filter periods.
fn assert_cache_equivalence(
    g: &fila::graph::Graph,
    period_of: impl Fn(NodeId) -> u64,
    inputs: u64,
) -> Result<(), TestCaseError> {
    let topo = periodic_filtered_topology(g, period_of);
    for algorithm in [Algorithm::Propagation, Algorithm::NonPropagation] {
        let fresh = Planner::new(g).algorithm(algorithm).plan().unwrap();
        let cache = PlanCache::new(8);
        let miss = cache.plan(g, algorithm, Rounding::Ceil, 4096).unwrap();
        prop_assert!(!miss.hit, "{algorithm}: first lookup must miss");
        let hit = cache.plan(g, algorithm, Rounding::Ceil, 4096).unwrap();
        prop_assert!(hit.hit, "{algorithm}: second lookup must hit");

        // Byte-identical: the cached plan IS the fresh plan.
        prop_assert_eq!(&*hit.plan, &fresh);

        // Identical in effect: same verdict, same per-edge traffic.
        let with_fresh = Simulator::new(&topo).with_plan(&fresh).run(inputs);
        let with_hit = Simulator::new(&topo)
            .with_shared_plan(std::sync::Arc::clone(&hit.plan))
            .run(inputs);
        prop_assert_eq!(with_fresh.completed, with_hit.completed);
        prop_assert_eq!(with_fresh.deadlocked, with_hit.deadlocked);
        prop_assert_eq!(with_fresh.per_edge_data, with_hit.per_edge_data);
        prop_assert_eq!(with_fresh.per_edge_dummies, with_hit.per_edge_dummies);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cache_hits_are_identical_in_effect_on_sp_dags(seed in 0u64..4294967296u64) {
        // Derive the filter period from the seed (the vendored proptest
        // shim supports one strategy parameter per test).
        let period = 1 + seed % 5;
        let (g, _) = random_sp_dag(&GeneratorConfig {
            target_edges: 16,
            max_fanout: 3,
            capacity_range: (1, 6),
            seed,
        });
        // Interior filtering everywhere: the harshest workload (some runs
        // deadlock — the two plans must then agree on *that* too).
        assert_cache_equivalence(&g, |_| period, 96)?;
    }

    #[test]
    fn cache_hits_are_identical_in_effect_on_cs4_ladders(seed in 0u64..4294967296u64) {
        let rungs = 2 + (seed % 6) as usize;
        let period = 2 + (seed / 7) % 4;
        let g = random_ladder(&LadderConfig {
            rungs,
            capacity_range: (2, 6),
            reverse_probability: 0.3,
            seed,
        });
        // Fork-only filtering, the protected scenario on every class.
        let source = g.single_source().unwrap();
        assert_cache_equivalence(&g, |n| if n == source { period } else { 1 }, 96)?;
    }
}

/// End-to-end through the service: resubmitting the same spec must be a
/// cache hit whose outcome (verdict + per-edge counts) equals the cold
/// submission's.
#[test]
fn service_resubmission_hits_and_matches() {
    for seed in [1u64, 7, 42] {
        let g = random_ladder(&LadderConfig {
            rungs: 4,
            capacity_range: (2, 5),
            reverse_probability: 0.3,
            seed,
        });
        let source = g.single_source().unwrap();
        let periods: Vec<u64> = g
            .node_ids()
            .map(|n| if n == source { 3 } else { 1 })
            .collect();
        let service = JobService::new(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        let spec = JobSpec::new(g, FilterSpec::PerNode(periods), 128);
        let cold = service.submit(spec.clone()).unwrap();
        let cold_outcome = cold.wait();
        let warm = service.submit(spec).unwrap();
        let warm_outcome = warm.wait();
        assert_eq!(cold.cache_hit, Some(false), "seed {seed}");
        assert_eq!(warm.cache_hit, Some(true), "seed {seed}");
        assert_eq!(cold_outcome.verdict, warm_outcome.verdict, "seed {seed}");
        assert_eq!(
            cold_outcome.report.per_edge_data, warm_outcome.report.per_edge_data,
            "seed {seed}"
        );
        assert_eq!(
            cold_outcome.report.per_edge_dummies, warm_outcome.report.per_edge_dummies,
            "seed {seed}"
        );
    }
}
