//! Regression harness for a **known planner limitation** (first observed in
//! the worklist-scheduler PR, E14): the CS4 ladder Non-Propagation intervals
//! do *not* prevent deadlock under aggressive per-node interior filtering on
//! larger random ladders, while fork-only filtering (the paper's Figs. 1–3
//! scenario) is protected at every size, and the Propagation protocol
//! handles the same interior-filtering workloads fine.  Both conclusions are
//! engine-independent (the exact-verdict Simulator and PooledExecutor
//! agree), so this is a property of the computed intervals, not of any
//! runtime.
//!
//! These tests **pin the current (deficient) behaviour**: whoever fixes the
//! ladder Non-Propagation recurrences gets a ready-made failing-case
//! harness — flip the `deadlocked` assertions in
//! `nonprop_interior_filtering_deadlocks_on_large_ladders` to `completed`
//! and the fix is demonstrated.  See DESIGN.md ("Known planner limitation").

use fila::prelude::*;
use fila::workloads::generators::{periodic_filtered_topology, random_ladder, LadderConfig};

const INTERIOR_RATE: u64 = 16;
const INPUTS: u64 = 500;

fn ladder(rungs: usize, seed: u64) -> Graph {
    random_ladder(&LadderConfig {
        rungs,
        capacity_range: (2, 8),
        reverse_probability: 0.3,
        seed,
    })
}

/// Every node filters 15/16 of its traffic — the aggressive interior
/// filtering that defeats the ladder Non-Propagation intervals.
fn interior_filtered(g: &Graph) -> Topology {
    periodic_filtered_topology(g, |_| INTERIOR_RATE)
}

/// Only the fork (single source) filters; interior nodes broadcast.  This
/// is the scenario of the paper's Figs. 1–3, which every planner algorithm
/// protects on every graph class.
fn fork_filtered(g: &Graph) -> Topology {
    let source = g.single_source().unwrap();
    periodic_filtered_topology(g, |n| if n == source { INTERIOR_RATE } else { 1 })
}

#[test]
fn nonprop_interior_filtering_deadlocks_on_large_ladders() {
    // PINS CURRENT BEHAVIOUR: these cases deadlock today.  A future fix to
    // `fila_avoidance::ladder_nonprop` should make them complete — flip the
    // assertions when that lands.
    for (rungs, seed) in [(16usize, 0u64), (16, 1), (24, 0), (32, 2)] {
        let g = ladder(rungs, seed);
        let plan = Planner::new(&g)
            .algorithm(Algorithm::NonPropagation)
            .plan()
            .unwrap();
        let topo = interior_filtered(&g);
        let report = Simulator::new(&topo).with_plan(&plan).run(INPUTS);
        assert!(
            report.deadlocked,
            "rungs={rungs} seed={seed}: the known ladder Non-Propagation \
             interior-filtering deadlock no longer reproduces — if this is \
             because the planner was fixed, flip these assertions to \
             `completed` and update DESIGN.md: {report:?}"
        );
        assert!(!report.blocked.is_empty(), "deadlock report names blocked nodes");

        // Engine-independence: the pooled engine reaches the same exact
        // verdict, so the deadlock is a plan property, not a scheduling one.
        let pooled = PooledExecutor::new(&topo)
            .with_plan(&plan)
            .workers(2)
            .run(INPUTS);
        assert!(pooled.deadlocked, "rungs={rungs} seed={seed}: {pooled:?}");
    }
}

#[test]
fn nonprop_fork_only_filtering_stays_safe_at_every_size() {
    // The paper's own scenario keeps working at sizes where interior
    // filtering fails: the limitation is specific to interior filters.
    for (rungs, seed) in [(16usize, 0u64), (24, 0), (32, 2)] {
        let g = ladder(rungs, seed);
        let plan = Planner::new(&g)
            .algorithm(Algorithm::NonPropagation)
            .plan()
            .unwrap();
        let topo = fork_filtered(&g);
        let report = Simulator::new(&topo).with_plan(&plan).run(INPUTS);
        assert!(report.completed, "rungs={rungs} seed={seed}: {report:?}");
    }
}

#[test]
fn propagation_handles_the_same_interior_filtering() {
    // The Propagation intervals protect the exact workloads that defeat
    // Non-Propagation, which narrows the future fix to the
    // `ladder_nonprop` recurrences.
    for (rungs, seed) in [(16usize, 0u64), (24, 0), (32, 2)] {
        let g = ladder(rungs, seed);
        let plan = Planner::new(&g)
            .algorithm(Algorithm::Propagation)
            .plan()
            .unwrap();
        let topo = interior_filtered(&g);
        let report = Simulator::new(&topo).with_plan(&plan).run(INPUTS);
        assert!(report.completed, "rungs={rungs} seed={seed}: {report:?}");
    }
}

#[test]
fn small_ladders_are_not_affected() {
    // The deficiency needs scale: 8-rung ladders complete under the same
    // aggressive interior filtering (part of the pinned envelope so a fix
    // can be checked against both sides).
    for seed in [0u64, 1, 2] {
        let g = ladder(8, seed);
        let plan = Planner::new(&g)
            .algorithm(Algorithm::NonPropagation)
            .plan()
            .unwrap();
        let topo = interior_filtered(&g);
        let report = Simulator::new(&topo).with_plan(&plan).run(INPUTS);
        assert!(report.completed, "seed={seed}: {report:?}");
    }
}
