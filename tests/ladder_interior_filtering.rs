//! Regression suite for the **resolved** ladder Non-Propagation
//! interior-filtering unsoundness (E14 observation, fixed in E17; DESIGN.md
//! "Resolved: interior filtering vs Non-Propagation").
//!
//! Until the fix, the CS4 ladder Non-Propagation intervals divided each
//! escape slack by the run's hop count (the paper's `L_o / h` recurrence),
//! which assumes interior nodes re-emit the data they receive.  Under
//! aggressive per-node *interior* filtering a node relays at most one
//! message per `[e]` messages reaching it, the inter-message gap multiplies
//! per hop, and 16+-rung random ladders deadlocked — engine-independently
//! (Simulator and PooledExecutor agreed), so it was a property of the
//! computed intervals, not of any runtime.  This file used to pin the
//! deficient behaviour with `deadlocked` assertions; the filtering-robust
//! integer-root bound (`fila_avoidance::ladder_nonprop`) flipped them to
//! `completed`, and the envelope is widened well past the old failure
//! boundary (48- and 64-rung ladders, more seeds, mixed per-node rates) so
//! both sides of the former cliff stay covered.

use fila::avoidance::verify_plan;
use fila::prelude::*;
use fila::workloads::generators::{periodic_filtered_topology, random_ladder, LadderConfig};

const INTERIOR_RATE: u64 = 16;
const INPUTS: u64 = 500;

fn ladder(rungs: usize, seed: u64) -> Graph {
    random_ladder(&LadderConfig {
        rungs,
        capacity_range: (2, 8),
        reverse_probability: 0.3,
        seed,
    })
}

/// Every node filters 15/16 of its traffic — the aggressive interior
/// filtering that used to defeat the ladder Non-Propagation intervals.
fn interior_filtered(g: &Graph) -> Topology {
    periodic_filtered_topology(g, |_| INTERIOR_RATE)
}

/// Only the fork (single source) filters; interior nodes broadcast.  This
/// is the scenario of the paper's Figs. 1–3, which every planner algorithm
/// protected even before the fix.
fn fork_filtered(g: &Graph) -> Topology {
    let source = g.single_source().unwrap();
    periodic_filtered_topology(g, |n| if n == source { INTERIOR_RATE } else { 1 })
}

#[test]
fn nonprop_interior_filtering_completes_on_large_ladders() {
    // FLIPPED: every one of these (rungs, seed) pairs deadlocked under the
    // paper's division bound — they were the pinned failing-case harness.
    // With the filtering-robust root bound they must complete, on both
    // exact-verdict engines (the deadlock was engine-independent, so the
    // fix must be too).
    for (rungs, seed) in [(16usize, 0u64), (16, 1), (24, 0), (32, 2)] {
        let g = ladder(rungs, seed);
        let plan = Planner::new(&g)
            .algorithm(Algorithm::NonPropagation)
            .plan()
            .unwrap();
        let topo = interior_filtered(&g);
        let report = Simulator::new(&topo).with_plan(&plan).run(INPUTS);
        assert!(
            report.completed,
            "rungs={rungs} seed={seed}: previously-deadlocking case regressed: {report:?}"
        );
        assert!(!report.deadlocked);
        assert!(report.dummy_messages > 0, "the rescue is dummy-driven");

        let pooled = PooledExecutor::new(&topo)
            .with_plan(&plan)
            .workers(2)
            .run(INPUTS);
        assert!(pooled.completed, "rungs={rungs} seed={seed}: {pooled:?}");
    }
}

#[test]
fn nonprop_interior_filtering_completes_beyond_the_old_boundary() {
    // Widened envelope: sizes far past the old 16-rung failure cliff and
    // fresh seeds on both sides of it.
    for (rungs, seed) in [
        (16usize, 2u64),
        (16, 3),
        (24, 1),
        (32, 0),
        (48, 0),
        (48, 1),
        (64, 0),
        (64, 7),
    ] {
        let g = ladder(rungs, seed);
        let plan = Planner::new(&g)
            .algorithm(Algorithm::NonPropagation)
            .plan()
            .unwrap();
        let topo = interior_filtered(&g);
        let report = Simulator::new(&topo).with_plan(&plan).run(INPUTS);
        assert!(report.completed, "rungs={rungs} seed={seed}: {report:?}");
    }
}

#[test]
fn nonprop_survives_mixed_interior_rates() {
    // Heterogeneous per-node filtering (a deterministic mix of broadcast,
    // mild and aggressive periods, including rates coarser than the old
    // failure rate) — the robustness claim is per-plan, not per-rate.
    for (rungs, seed) in [(24usize, 0u64), (48, 2), (64, 1)] {
        let g = ladder(rungs, seed);
        let plan = Planner::new(&g)
            .algorithm(Algorithm::NonPropagation)
            .plan()
            .unwrap();
        let rates = [1u64, 3, 16, 7, 32, 2];
        let topo =
            periodic_filtered_topology(&g, |n| rates[n.index() % rates.len()]);
        let report = Simulator::new(&topo).with_plan(&plan).run(INPUTS);
        assert!(report.completed, "rungs={rungs} seed={seed}: {report:?}");
    }
}

#[test]
fn the_paper_division_bound_still_deadlocks_without_the_fix() {
    // Anti-regression for the regression: reconstruct the *old* plan (the
    // paper's `L/h` division applied to the robust plan's cycle structure
    // cannot be rebuilt exactly from outside the planner, but its defining
    // failure can) by loosening every finite interval of the fixed plan to
    // the paper's ratio-sized value via interval scaling.  Squaring the
    // robust interval reproduces the unsound magnitude on multi-hop runs
    // (root² ≈ ratio for the sizes here); the loosened plan must deadlock
    // on a case the fixed plan completes — demonstrating the deadlock was
    // a property of the loose intervals, and the fix is what removed it.
    use fila::avoidance::interval::IntervalMap;
    use fila::avoidance::{AvoidancePlan, Rounding};
    let (rungs, seed) = (24usize, 0u64);
    let g = ladder(rungs, seed);
    let fixed = Planner::new(&g)
        .algorithm(Algorithm::NonPropagation)
        .plan()
        .unwrap();
    let mut loose = IntervalMap::for_graph(&g);
    for (e, iv) in fixed.intervals().iter() {
        let widened = match iv.finite() {
            Some(v) => DummyInterval::Finite((v * v).max(v + 2)),
            None => DummyInterval::Infinite,
        };
        loose.set(e, widened);
    }
    let loose_plan = AvoidancePlan::new(&g, Algorithm::NonPropagation, Rounding::Ceil, loose);
    let topo = interior_filtered(&g);
    let bad = Simulator::new(&topo).with_plan(&loose_plan).run(INPUTS);
    assert!(bad.deadlocked, "loosened intervals must still wedge: {bad:?}");
    assert!(!bad.blocked.is_empty(), "deadlock report names blocked nodes");
    let good = Simulator::new(&topo).with_plan(&fixed).run(INPUTS);
    assert!(good.completed, "{good:?}");
}

#[test]
fn fixed_plans_still_verify_safe_against_the_cycle_level_definition() {
    // The robust intervals are a *tightening*: `verify_plan` must report
    // them safe w.r.t. the (equally fixed) exhaustive cycle-level bound.
    for (rungs, seed) in [(6usize, 0u64), (6, 1), (8, 2)] {
        let g = ladder(rungs, seed);
        let plan = Planner::new(&g)
            .algorithm(Algorithm::NonPropagation)
            .plan()
            .unwrap();
        let v = verify_plan(&g, &plan).unwrap();
        assert!(v.safe, "rungs={rungs} seed={seed}: {}", v.summary());
    }
}

#[test]
fn nonprop_fork_only_filtering_stays_safe_at_every_size() {
    // The paper's own scenario — protected before the fix — must keep
    // working after it.
    for (rungs, seed) in [(16usize, 0u64), (24, 0), (32, 2), (64, 0)] {
        let g = ladder(rungs, seed);
        let plan = Planner::new(&g)
            .algorithm(Algorithm::NonPropagation)
            .plan()
            .unwrap();
        let topo = fork_filtered(&g);
        let report = Simulator::new(&topo).with_plan(&plan).run(INPUTS);
        assert!(report.completed, "rungs={rungs} seed={seed}: {report:?}");
    }
}

#[test]
fn propagation_handles_the_same_interior_filtering() {
    // The Propagation intervals always protected these workloads (dummies
    // are forwarded at arrival rate, so interior filtering never decimates
    // them); unchanged by the fix.
    for (rungs, seed) in [(16usize, 0u64), (24, 0), (32, 2)] {
        let g = ladder(rungs, seed);
        let plan = Planner::new(&g)
            .algorithm(Algorithm::Propagation)
            .plan()
            .unwrap();
        let topo = interior_filtered(&g);
        let report = Simulator::new(&topo).with_plan(&plan).run(INPUTS);
        assert!(report.completed, "rungs={rungs} seed={seed}: {report:?}");
    }
}

#[test]
fn small_ladders_keep_completing() {
    // The small side of the old envelope (never affected) stays green.
    for seed in [0u64, 1, 2] {
        let g = ladder(8, seed);
        let plan = Planner::new(&g)
            .algorithm(Algorithm::NonPropagation)
            .plan()
            .unwrap();
        let topo = interior_filtered(&g);
        let report = Simulator::new(&topo).with_plan(&plan).run(INPUTS);
        assert!(report.completed, "seed={seed}: {report:?}");
    }
}
