//! Property-based equivalence of the deterministic simulator and the pooled
//! work-stealing engine (the concurrent mirror of
//! `tests/scheduler_equivalence.rs`).
//!
//! Both engines implement the same Kahn-style per-node semantics
//! (acceptance rule, dummy wrappers, per-channel independent delivery) over
//! bounded channels.  Deterministic node behaviours make such a network
//! *confluent*: every fair schedule — including every interleaving of the
//! pool's workers — reaches the same terminal configuration.  So for any
//! topology and any deterministic filtering, the pooled engine must agree
//! with the simulator on completion, the **exact** deadlock verdict (the
//! pool's parked-worker detection has no timeout to hide behind), and the
//! exact per-channel data and dummy message counts, at every worker count.

use fila::prelude::*;
use fila::workloads::generators::{
    layered_dag, periodic_filtered_topology, random_ladder, random_sp_dag, GeneratorConfig,
    LadderConfig,
};
use proptest::prelude::*;

/// One generated equivalence case.
#[derive(Debug, Clone, Copy)]
enum Scenario {
    /// Random series-parallel DAG, protected by a planner-produced plan.
    Sp { seed: u64 },
    /// Random CS4 ladder, protected by a planner-produced plan.
    Ladder { seed: u64 },
    /// Layered random DAG (generally not CS4), run without avoidance so the
    /// exact deadlock path of both engines is exercised too.
    Layered { seed: u64 },
}

fn scenario() -> impl Strategy<Value = Scenario> {
    prop_oneof![
        (0u64..1 << 48).prop_map(|seed| Scenario::Sp { seed }),
        (0u64..1 << 48).prop_map(|seed| Scenario::Ladder { seed }),
        (0u64..1 << 48).prop_map(|seed| Scenario::Layered { seed }),
    ]
}

/// Deterministic per-(seed, node) parameter derivation.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// The canonical periodic filter with a seed-derived period per node
/// (period 1 = broadcast, larger periods filter most of the stream); shared
/// with the scheduler-equivalence test and the `throughput` bench.
fn with_filters(g: &Graph, seed: u64) -> Topology {
    periodic_filtered_topology(g, |n| 1 + mix(seed ^ (0x9e37 + n.index() as u64)) % 5)
}

/// Runs one scenario through the simulator and through the pooled engine at
/// a seed-derived worker count and batch size, asserting the reports match
/// on every schedule-independent field.
fn assert_equivalent(scenario: Scenario) -> Result<(), TestCaseError> {
    let (g, plan, inputs) = match scenario {
        Scenario::Sp { seed } => {
            let (g, _) = random_sp_dag(&GeneratorConfig {
                target_edges: 12 + (mix(seed) % 24) as usize,
                max_fanout: 3,
                capacity_range: (1, 6),
                seed,
            });
            let algorithm = if mix(seed ^ 1) % 2 == 0 {
                Algorithm::Propagation
            } else {
                Algorithm::NonPropagation
            };
            let plan = Planner::new(&g).algorithm(algorithm).plan().unwrap();
            (g, Some(plan), 40 + mix(seed ^ 2) % 60)
        }
        Scenario::Ladder { seed } => {
            let g = random_ladder(&LadderConfig {
                rungs: 1 + (mix(seed) % 6) as usize,
                capacity_range: (1, 6),
                reverse_probability: 0.3,
                seed,
            });
            let algorithm = if mix(seed ^ 1) % 2 == 0 {
                Algorithm::Propagation
            } else {
                Algorithm::NonPropagation
            };
            let plan = Planner::new(&g).algorithm(algorithm).plan().unwrap();
            (g, Some(plan), 40 + mix(seed ^ 2) % 60)
        }
        Scenario::Layered { seed } => {
            let g = layered_dag(
                2 + (mix(seed) % 3) as usize,
                1 + (mix(seed ^ 1) % 3) as usize,
                1 + mix(seed ^ 2) % 3,
                seed,
            );
            (g, None, 40 + mix(seed ^ 3) % 60)
        }
    };
    let (Scenario::Sp { seed } | Scenario::Ladder { seed } | Scenario::Layered { seed }) =
        scenario;
    let topo = with_filters(&g, seed);

    let sim = {
        let s = Simulator::new(&topo);
        let s = match &plan {
            Some(p) => s.with_plan(p),
            None => s,
        };
        s.run(inputs)
    };
    // The batched simulator must agree with its own scalar reference too
    // (same worklist, runs drained in longer slices).
    for batching in [Batching::Messages(4), Batching::Unbounded] {
        let s = Simulator::new(&topo).batching(batching);
        let s = match &plan {
            Some(p) => s.with_plan(p),
            None => s,
        };
        let batched = s.run(inputs);
        prop_assert_eq!(sim.completed, batched.completed);
        prop_assert_eq!(sim.deadlocked, batched.deadlocked);
        prop_assert_eq!(&sim.per_edge_data, &batched.per_edge_data);
        prop_assert_eq!(&sim.per_edge_dummies, &batched.per_edge_dummies);
        prop_assert_eq!(&sim.per_node_firings, &batched.per_node_firings);
    }

    // Exercise single-worker, multi-worker, and a tiny batch (maximal
    // interleaving), swept across every container-batching mode — the
    // verdict and counts must be identical in all.
    let workers = 1 + (mix(seed ^ 4) % 4) as usize;
    let batch = 1 + (mix(seed ^ 5) % 64) as u32;
    let modes = [
        Batching::Scalar,
        Batching::Messages(1),
        Batching::Messages(4),
        Batching::Messages(64),
        Batching::Unbounded,
    ];
    let mut scalar: Option<ExecutionReport> = None;
    for batching in modes {
        let pooled = {
            let p = PooledExecutor::new(&topo)
                .workers(workers)
                .batch(batch)
                .batching(batching);
            let p = match &plan {
                Some(pl) => p.with_plan(pl),
                None => p,
            };
            p.run(inputs)
        };

        prop_assert_eq!(sim.completed, pooled.completed);
        prop_assert_eq!(sim.deadlocked, pooled.deadlocked);
        prop_assert_eq!(sim.data_messages, pooled.data_messages);
        prop_assert_eq!(sim.dummy_messages, pooled.dummy_messages);
        prop_assert_eq!(sim.sink_firings, pooled.sink_firings);
        prop_assert_eq!(&sim.per_edge_data, &pooled.per_edge_data);
        prop_assert_eq!(&sim.per_edge_dummies, &pooled.per_edge_dummies);
        // The pooled verdict is exact: a run either completes or deadlocks,
        // and a deadlock names at least one blocked node.
        prop_assert!(!pooled.inconclusive());
        if pooled.deadlocked {
            prop_assert!(!pooled.blocked.is_empty());
        }
        // One-message containers must reproduce the scalar engine exactly —
        // not just the same verdict, the same state on every
        // schedule-independent channel of the report.
        match batching {
            Batching::Scalar => scalar = Some(pooled),
            Batching::Messages(1) => {
                let scalar = scalar.as_ref().expect("scalar mode ran first");
                prop_assert_eq!(scalar.completed, pooled.completed);
                prop_assert_eq!(scalar.deadlocked, pooled.deadlocked);
                prop_assert_eq!(scalar.steps, pooled.steps);
                prop_assert_eq!(scalar.sink_firings, pooled.sink_firings);
                prop_assert_eq!(&scalar.per_node_firings, &pooled.per_node_firings);
                prop_assert_eq!(&scalar.per_edge_data, &pooled.per_edge_data);
                prop_assert_eq!(&scalar.per_edge_dummies, &pooled.per_edge_dummies);
            }
            _ => {}
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    #[test]
    fn pooled_engine_is_equivalent_to_simulator(s in scenario()) {
        assert_equivalent(s)?;
    }
}
