//! Barrier snapshots on the live multi-tenant pool: checkpoint one job
//! while the pool keeps executing other jobs, restore the snapshot, and
//! cross-check the resumed job's cumulative counts against the
//! deterministic simulator; plus the crash-recovery story — a job whose
//! behaviour panics *after* a checkpoint is recovered from its last
//! snapshot and finishes with the exact uninterrupted counts.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use fila::prelude::*;
use fila::runtime::filters::Predicate;
use fila::runtime::{AvoidanceMode, PropagationTrigger};
use fila::workloads::figures::fig2_triangle;

/// Fig. 2 with a filtering fork at `A` whose firings are slowed down, so a
/// checkpoint issued right after submission reliably lands mid-run.
fn slow_filtered_topology(g: &Graph, pause: Duration) -> Topology {
    let a = g.node_by_name("A").unwrap();
    Topology::from_graph(g).with(a, move || {
        Predicate::new(2, move |seq, out| {
            std::thread::sleep(pause);
            out == 0 || seq % 4 == 0
        })
    })
}

fn pipeline(n: usize) -> Graph {
    let names: Vec<String> = (0..n).map(|i| format!("n{i}")).collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let mut b = GraphBuilder::new().default_capacity(4);
    b.chain(&refs).unwrap();
    b.build().unwrap()
}

#[test]
fn busy_pool_barrier_snapshot_restores_to_simulator_counts() {
    let inputs = 300;
    let g = fig2_triangle(4);
    let plan = Arc::new(
        Planner::new(&g)
            .algorithm(Algorithm::Propagation)
            .plan()
            .unwrap(),
    );
    let topo = slow_filtered_topology(&g, Duration::from_micros(100));
    let reference = Simulator::new(&topo)
        .with_shared_plan(Arc::clone(&plan))
        .run(inputs);
    assert!(reference.completed);

    let pool = SharedPool::new(3);
    // A bystander job keeps the pool busy across the whole snapshot; it
    // must be completely unaffected by the barrier.
    let bystander_topo = Topology::from_graph(&pipeline(12));
    let bystander = pool.submit(&bystander_topo, 5_000);
    let handle = pool.submit_with(&topo, AvoidanceMode::Plan(Arc::clone(&plan)), inputs);

    // Snapshot the target while it runs.  The job is slowed enough that
    // the first checkpoint overwhelmingly lands mid-run; if it still
    // settles first, `Settled` is the documented (and correct) answer.
    let snapshot = handle.checkpoint();
    let original = handle.wait();
    assert!(original.completed, "{original:?}");
    assert_eq!(original.per_edge_data, reference.per_edge_data);
    assert!(bystander.wait().completed);

    match snapshot {
        Ok(snapshot) => {
            let resumed = pool
                .resume_full(
                    &topo,
                    AvoidanceMode::Plan(Arc::clone(&plan)),
                    PropagationTrigger::default(),
                    &snapshot,
                    None,
                )
                .expect("same topology and plan restores")
                .wait();
            // Cumulative counts: resuming from a mid-run cut reproduces
            // the uninterrupted totals exactly.
            assert!(resumed.completed, "{resumed:?}");
            assert_eq!(resumed.resumed_from, Some(snapshot.steps));
            assert_eq!(resumed.per_edge_data, reference.per_edge_data);
            assert_eq!(resumed.per_edge_dummies, reference.per_edge_dummies);
            assert_eq!(resumed.sink_firings, reference.sink_firings);
        }
        Err(err) => assert!(
            matches!(err, fila::runtime::SnapshotError::Settled(JobVerdict::Completed)),
            "{err:?}"
        ),
    }

    // Checkpointing a settled job always reports the verdict.
    assert!(matches!(
        handle.checkpoint(),
        Err(fila::runtime::SnapshotError::Settled(JobVerdict::Completed))
    ));
}

#[test]
fn panic_after_checkpoint_recovers_from_last_snapshot() {
    let inputs = 300;
    let g = fig2_triangle(4);
    let plan = Arc::new(
        Planner::new(&g)
            .algorithm(Algorithm::NonPropagation)
            .plan()
            .unwrap(),
    );
    let a = g.node_by_name("A").unwrap();
    let bomb = Arc::new(AtomicBool::new(false));
    let topo = {
        let bomb = Arc::clone(&bomb);
        Topology::from_graph(&g).with(a, move || {
            let bomb = Arc::clone(&bomb);
            Predicate::new(2, move |seq, out| {
                std::thread::sleep(Duration::from_micros(100));
                assert!(!bomb.load(Ordering::SeqCst), "injected crash at seq {seq}");
                out == 0 || seq % 4 == 0
            })
        })
    };
    let reference = Simulator::new(&topo)
        .with_shared_plan(Arc::clone(&plan))
        .run(inputs);
    assert!(reference.completed);

    let pool = SharedPool::new(2);
    let handle = pool.submit_with(&topo, AvoidanceMode::Plan(Arc::clone(&plan)), inputs);
    let snapshot = handle.checkpoint();
    // Arm the bomb only after the checkpoint: the snapshot predates the
    // crash, which is exactly the recovery contract.
    bomb.store(true, Ordering::SeqCst);
    let crashed = handle.wait();

    let Ok(snapshot) = snapshot else {
        // The job finished before the checkpoint (and before the bomb).
        assert!(crashed.completed);
        return;
    };
    assert_eq!(handle.verdict(), Some(JobVerdict::Failed));
    // Recovery: disarm and restore the last snapshot; the job must finish
    // with the exact uninterrupted counts.
    bomb.store(false, Ordering::SeqCst);
    let recovered = pool
        .resume_full(
            &topo,
            AvoidanceMode::Plan(Arc::clone(&plan)),
            PropagationTrigger::default(),
            &snapshot,
            None,
        )
        .expect("snapshot predates the crash")
        .wait();
    assert!(recovered.completed, "{recovered:?}");
    assert_eq!(recovered.per_edge_data, reference.per_edge_data);
    assert_eq!(recovered.per_edge_dummies, reference.per_edge_dummies);
    assert_eq!(recovered.sink_firings, reference.sink_firings);
}

#[test]
fn snapshots_cross_container_batching_modes() {
    // Container batching is invisible on the snapshot wire: a barrier cut
    // taken on a run-batched pool flattens its containers to the exact
    // `FILASNAP` per-message state, restores into a scalar-container pool,
    // and vice versa — cumulative counts land on the uninterrupted totals
    // either way.
    let inputs = 300;
    let g = fig2_triangle(4);
    let plan = Arc::new(
        Planner::new(&g)
            .algorithm(Algorithm::Propagation)
            .plan()
            .unwrap(),
    );
    let topo = slow_filtered_topology(&g, Duration::from_micros(100));
    let reference = Simulator::new(&topo)
        .with_shared_plan(Arc::clone(&plan))
        .run(inputs);
    assert!(reference.completed);

    for (capture_mode, restore_mode) in [
        (Batching::Unbounded, Batching::Scalar),
        (Batching::Scalar, Batching::Unbounded),
    ] {
        let capture_pool = SharedPool::with_options(2, 64, None, false, capture_mode);
        let handle =
            capture_pool.submit_with(&topo, AvoidanceMode::Plan(Arc::clone(&plan)), inputs);
        let snapshot = handle.checkpoint();
        let original = handle.wait();
        assert!(original.completed, "{original:?}");
        assert_eq!(original.per_edge_data, reference.per_edge_data);
        let Ok(snapshot) = snapshot else {
            // The job outran the checkpoint (vanishingly unlikely with the
            // slowed fork); the uninterrupted counts above still hold.
            continue;
        };
        // Round-trip through the wire format: what the batched capture
        // wrote must be plain per-message `FILASNAP` state.
        let snapshot = JobSnapshot::from_bytes(&snapshot.to_bytes()).expect("wire round-trip");
        let restore_pool = SharedPool::with_options(2, 64, None, false, restore_mode);
        let resumed = restore_pool
            .resume_full(
                &topo,
                AvoidanceMode::Plan(Arc::clone(&plan)),
                PropagationTrigger::default(),
                &snapshot,
                None,
            )
            .expect("cross-mode restore validates")
            .wait();
        assert!(resumed.completed, "{resumed:?}");
        assert_eq!(resumed.resumed_from, Some(snapshot.steps));
        assert_eq!(resumed.per_edge_data, reference.per_edge_data);
        assert_eq!(resumed.per_edge_dummies, reference.per_edge_dummies);
        assert_eq!(resumed.sink_firings, reference.sink_firings);
    }
}

#[test]
fn pool_restore_rejects_drifted_plan_and_foreign_bytes() {
    let inputs = 200;
    let g = fig2_triangle(4);
    let prop = Arc::new(
        Planner::new(&g)
            .algorithm(Algorithm::Propagation)
            .plan()
            .unwrap(),
    );
    let nonprop = Arc::new(
        Planner::new(&g)
            .algorithm(Algorithm::NonPropagation)
            .plan()
            .unwrap(),
    );
    let topo = slow_filtered_topology(&g, Duration::from_micros(100));
    let pool = SharedPool::new(2);
    let handle = pool.submit_with(&topo, AvoidanceMode::Plan(Arc::clone(&prop)), inputs);
    let Ok(snapshot) = handle.checkpoint() else {
        // Vanishingly unlikely with the slowed source; nothing to assert.
        return;
    };
    let _ = handle.wait();

    // Plan drift: same topology, different certified intervals.
    assert!(matches!(
        pool.resume_full(
            &topo,
            AvoidanceMode::Plan(Arc::clone(&nonprop)),
            PropagationTrigger::default(),
            &snapshot,
            None,
        ),
        Err(RestoreError::PlanMismatch(_))
    ));
    // Wire-level: a corrupted version byte is rejected before any
    // validation against the pool.
    let mut bytes = snapshot.to_bytes();
    bytes[8] = 0x63;
    assert!(matches!(
        JobSnapshot::from_bytes(&bytes),
        Err(RestoreError::VersionMismatch { .. })
    ));
    // The unmodified snapshot restores fine.
    let resumed = pool
        .resume_full(
            &topo,
            AvoidanceMode::Plan(prop),
            PropagationTrigger::default(),
            &snapshot,
            None,
        )
        .expect("original plan restores");
    assert!(resumed.wait().completed);
}

#[test]
fn checkpoint_resume_checkpoint_chain_never_double_counts() {
    // Crash-recovery archives are chains, not single hops: a restored job
    // must itself be checkpointable, and a snapshot taken *from the
    // resumed generation* must carry the cumulative counters forward —
    // resuming it reproduces the uninterrupted totals exactly (nothing
    // from the first generation is replayed or counted twice).
    let inputs = 400;
    let g = fig2_triangle(4);
    let plan = Arc::new(
        Planner::new(&g)
            .algorithm(Algorithm::Propagation)
            .plan()
            .unwrap(),
    );
    let topo = slow_filtered_topology(&g, Duration::from_micros(100));
    let reference = Simulator::new(&topo)
        .with_shared_plan(Arc::clone(&plan))
        .run(inputs);
    assert!(reference.completed);

    let pool = SharedPool::new(2);
    let first = pool.submit_with(&topo, AvoidanceMode::Plan(Arc::clone(&plan)), inputs);
    let Ok(snapshot1) = first.checkpoint() else {
        // The job outran its first checkpoint; the chain has nothing to
        // exercise (vanishingly unlikely with the slowed fork).
        assert!(first.wait().completed);
        return;
    };
    assert!(first.wait().completed);

    // Generation 2: resume the cut, then checkpoint the *resumed* run.
    let second = pool
        .resume_full(
            &topo,
            AvoidanceMode::Plan(Arc::clone(&plan)),
            PropagationTrigger::default(),
            &snapshot1,
            None,
        )
        .expect("generation-1 snapshot restores");
    let snapshot2 = second.checkpoint();
    let second_report = second.wait();
    assert!(second_report.completed, "{second_report:?}");
    assert_eq!(second_report.per_edge_data, reference.per_edge_data);
    assert_eq!(second_report.per_edge_dummies, reference.per_edge_dummies);

    let Ok(snapshot2) = snapshot2 else {
        // Generation 2 settled before its checkpoint; the counts above
        // already pin the no-double-counting contract for the first hop.
        return;
    };
    // Counters are cumulative across the chain, never reset per
    // generation and never replayed into the next one.
    assert!(
        snapshot2.steps >= snapshot1.steps,
        "generation-2 cut ({}) precedes generation-1 cut ({})",
        snapshot2.steps,
        snapshot1.steps
    );
    for (e, (d2, d1)) in snapshot2
        .per_edge_data
        .iter()
        .zip(&snapshot1.per_edge_data)
        .enumerate()
    {
        assert!(d2 >= d1, "edge {e}: generation-2 data count {d2} < generation-1 {d1}");
    }

    // Generation 3: resume the second-generation cut; the totals must be
    // the uninterrupted reference, bit-exactly.
    let third = pool
        .resume_full(
            &topo,
            AvoidanceMode::Plan(Arc::clone(&plan)),
            PropagationTrigger::default(),
            &snapshot2,
            None,
        )
        .expect("generation-2 snapshot restores")
        .wait();
    assert!(third.completed, "{third:?}");
    assert_eq!(third.resumed_from, Some(snapshot2.steps));
    assert_eq!(third.per_edge_data, reference.per_edge_data);
    assert_eq!(third.per_edge_dummies, reference.per_edge_dummies);
    assert_eq!(third.sink_firings, reference.sink_firings);
}
