//! Barrier snapshots on the live multi-tenant pool: checkpoint one job
//! while the pool keeps executing other jobs, restore the snapshot, and
//! cross-check the resumed job's cumulative counts against the
//! deterministic simulator; plus the crash-recovery story — a job whose
//! behaviour panics *after* a checkpoint is recovered from its last
//! snapshot and finishes with the exact uninterrupted counts.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use fila::prelude::*;
use fila::runtime::filters::Predicate;
use fila::runtime::{AvoidanceMode, PropagationTrigger};
use fila::workloads::figures::fig2_triangle;

/// Fig. 2 with a filtering fork at `A` whose firings are slowed down, so a
/// checkpoint issued right after submission reliably lands mid-run.
fn slow_filtered_topology(g: &Graph, pause: Duration) -> Topology {
    let a = g.node_by_name("A").unwrap();
    Topology::from_graph(g).with(a, move || {
        Predicate::new(2, move |seq, out| {
            std::thread::sleep(pause);
            out == 0 || seq % 4 == 0
        })
    })
}

fn pipeline(n: usize) -> Graph {
    let names: Vec<String> = (0..n).map(|i| format!("n{i}")).collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let mut b = GraphBuilder::new().default_capacity(4);
    b.chain(&refs).unwrap();
    b.build().unwrap()
}

#[test]
fn busy_pool_barrier_snapshot_restores_to_simulator_counts() {
    let inputs = 300;
    let g = fig2_triangle(4);
    let plan = Arc::new(
        Planner::new(&g)
            .algorithm(Algorithm::Propagation)
            .plan()
            .unwrap(),
    );
    let topo = slow_filtered_topology(&g, Duration::from_micros(100));
    let reference = Simulator::new(&topo)
        .with_shared_plan(Arc::clone(&plan))
        .run(inputs);
    assert!(reference.completed);

    let pool = SharedPool::new(3);
    // A bystander job keeps the pool busy across the whole snapshot; it
    // must be completely unaffected by the barrier.
    let bystander_topo = Topology::from_graph(&pipeline(12));
    let bystander = pool.submit(&bystander_topo, 5_000);
    let handle = pool.submit_with(&topo, AvoidanceMode::Plan(Arc::clone(&plan)), inputs);

    // Snapshot the target while it runs.  The job is slowed enough that
    // the first checkpoint overwhelmingly lands mid-run; if it still
    // settles first, `Settled` is the documented (and correct) answer.
    let snapshot = handle.checkpoint();
    let original = handle.wait();
    assert!(original.completed, "{original:?}");
    assert_eq!(original.per_edge_data, reference.per_edge_data);
    assert!(bystander.wait().completed);

    match snapshot {
        Ok(snapshot) => {
            let resumed = pool
                .resume_full(
                    &topo,
                    AvoidanceMode::Plan(Arc::clone(&plan)),
                    PropagationTrigger::default(),
                    &snapshot,
                    None,
                )
                .expect("same topology and plan restores")
                .wait();
            // Cumulative counts: resuming from a mid-run cut reproduces
            // the uninterrupted totals exactly.
            assert!(resumed.completed, "{resumed:?}");
            assert_eq!(resumed.resumed_from, Some(snapshot.steps));
            assert_eq!(resumed.per_edge_data, reference.per_edge_data);
            assert_eq!(resumed.per_edge_dummies, reference.per_edge_dummies);
            assert_eq!(resumed.sink_firings, reference.sink_firings);
        }
        Err(err) => assert!(
            matches!(err, fila::runtime::SnapshotError::Settled(JobVerdict::Completed)),
            "{err:?}"
        ),
    }

    // Checkpointing a settled job always reports the verdict.
    assert!(matches!(
        handle.checkpoint(),
        Err(fila::runtime::SnapshotError::Settled(JobVerdict::Completed))
    ));
}

#[test]
fn panic_after_checkpoint_recovers_from_last_snapshot() {
    let inputs = 300;
    let g = fig2_triangle(4);
    let plan = Arc::new(
        Planner::new(&g)
            .algorithm(Algorithm::NonPropagation)
            .plan()
            .unwrap(),
    );
    let a = g.node_by_name("A").unwrap();
    let bomb = Arc::new(AtomicBool::new(false));
    let topo = {
        let bomb = Arc::clone(&bomb);
        Topology::from_graph(&g).with(a, move || {
            let bomb = Arc::clone(&bomb);
            Predicate::new(2, move |seq, out| {
                std::thread::sleep(Duration::from_micros(100));
                assert!(!bomb.load(Ordering::SeqCst), "injected crash at seq {seq}");
                out == 0 || seq % 4 == 0
            })
        })
    };
    let reference = Simulator::new(&topo)
        .with_shared_plan(Arc::clone(&plan))
        .run(inputs);
    assert!(reference.completed);

    let pool = SharedPool::new(2);
    let handle = pool.submit_with(&topo, AvoidanceMode::Plan(Arc::clone(&plan)), inputs);
    let snapshot = handle.checkpoint();
    // Arm the bomb only after the checkpoint: the snapshot predates the
    // crash, which is exactly the recovery contract.
    bomb.store(true, Ordering::SeqCst);
    let crashed = handle.wait();

    let Ok(snapshot) = snapshot else {
        // The job finished before the checkpoint (and before the bomb).
        assert!(crashed.completed);
        return;
    };
    assert_eq!(handle.verdict(), Some(JobVerdict::Failed));
    // Recovery: disarm and restore the last snapshot; the job must finish
    // with the exact uninterrupted counts.
    bomb.store(false, Ordering::SeqCst);
    let recovered = pool
        .resume_full(
            &topo,
            AvoidanceMode::Plan(Arc::clone(&plan)),
            PropagationTrigger::default(),
            &snapshot,
            None,
        )
        .expect("snapshot predates the crash")
        .wait();
    assert!(recovered.completed, "{recovered:?}");
    assert_eq!(recovered.per_edge_data, reference.per_edge_data);
    assert_eq!(recovered.per_edge_dummies, reference.per_edge_dummies);
    assert_eq!(recovered.sink_firings, reference.sink_firings);
}

#[test]
fn pool_restore_rejects_drifted_plan_and_foreign_bytes() {
    let inputs = 200;
    let g = fig2_triangle(4);
    let prop = Arc::new(
        Planner::new(&g)
            .algorithm(Algorithm::Propagation)
            .plan()
            .unwrap(),
    );
    let nonprop = Arc::new(
        Planner::new(&g)
            .algorithm(Algorithm::NonPropagation)
            .plan()
            .unwrap(),
    );
    let topo = slow_filtered_topology(&g, Duration::from_micros(100));
    let pool = SharedPool::new(2);
    let handle = pool.submit_with(&topo, AvoidanceMode::Plan(Arc::clone(&prop)), inputs);
    let Ok(snapshot) = handle.checkpoint() else {
        // Vanishingly unlikely with the slowed source; nothing to assert.
        return;
    };
    let _ = handle.wait();

    // Plan drift: same topology, different certified intervals.
    assert!(matches!(
        pool.resume_full(
            &topo,
            AvoidanceMode::Plan(Arc::clone(&nonprop)),
            PropagationTrigger::default(),
            &snapshot,
            None,
        ),
        Err(RestoreError::PlanMismatch(_))
    ));
    // Wire-level: a corrupted version byte is rejected before any
    // validation against the pool.
    let mut bytes = snapshot.to_bytes();
    bytes[8] = 0x63;
    assert!(matches!(
        JobSnapshot::from_bytes(&bytes),
        Err(RestoreError::VersionMismatch { .. })
    ));
    // The unmodified snapshot restores fine.
    let resumed = pool
        .resume_full(
            &topo,
            AvoidanceMode::Plan(prop),
            PropagationTrigger::default(),
            &snapshot,
            None,
        )
        .expect("original plan restores");
    assert!(resumed.wait().completed);
}
