//! Integration coverage for the planner front door: `Planner` must classify
//! each topology family and dispatch it to the matching algorithm variant —
//! SP-DAGs to the linear/quadratic SP algorithms, CS4 SP-ladders to the
//! ladder algorithms, and everything else to the exponential baseline.

use fila::prelude::*;
use fila::workloads::figures::{
    butterfly_rewritten, fig2_triangle, fig3_cycle, fig4_butterfly, fig5_ladder,
};
use fila::workloads::generators::layered_dag;

#[test]
fn sp_dag_dispatches_to_series_parallel_algorithms() {
    for g in [fig2_triangle(2), fig3_cycle()] {
        for algorithm in [Algorithm::Propagation, Algorithm::NonPropagation] {
            let (class, plan) = Planner::new(&g)
                .algorithm(algorithm)
                .plan_with_class()
                .unwrap();
            assert_eq!(class, GraphClass::SeriesParallel);
            assert_eq!(plan.algorithm(), algorithm);
        }
    }
    // The worked example of the paper's Fig. 3 pins the actual numbers: the
    // SP path computed them if the intervals match the published values.
    let g = fig3_cycle();
    let plan = Planner::new(&g)
        .algorithm(Algorithm::Propagation)
        .plan()
        .unwrap();
    let ab = g.edge_by_names("a", "b").unwrap();
    assert_eq!(plan.interval(ab), DummyInterval::Finite(6));
}

#[test]
fn cs4_ladder_dispatches_to_ladder_algorithms() {
    for g in [fig5_ladder(2), butterfly_rewritten(2)] {
        assert_eq!(classify(&g).unwrap(), GraphClass::Cs4);
        for algorithm in [Algorithm::Propagation, Algorithm::NonPropagation] {
            let (class, plan) = Planner::new(&g)
                .algorithm(algorithm)
                .plan_with_class()
                .unwrap();
            assert_eq!(class, GraphClass::Cs4);
            assert_eq!(plan.algorithm(), algorithm);
            // A ladder has undirected cycles through its cross-links, so a
            // correct CS4 plan must assign dummies somewhere.
            assert!(plan.channels_needing_dummies() > 0, "{algorithm}");
        }
    }
}

#[test]
fn general_dag_dispatches_to_the_exhaustive_baseline() {
    // Fig. 4's butterfly contains a K4 subdivision, and a layered random DAG
    // is neither SP nor CS4: both must fall through to the general-DAG path.
    for g in [fig4_butterfly(2), layered_dag(4, 3, 2, 7)] {
        let (class, _plan) = Planner::new(&g).plan_with_class().unwrap();
        assert_eq!(class, GraphClass::General);
    }
}

#[test]
fn forced_exhaustive_dispatch_agrees_with_the_structural_path() {
    // Dispatch is an optimisation, not a semantic choice: forcing the
    // exponential baseline onto an SP-DAG must yield the identical plan.
    let g = fig3_cycle();
    for algorithm in [Algorithm::Propagation, Algorithm::NonPropagation] {
        let fast = Planner::new(&g).algorithm(algorithm).plan().unwrap();
        let (class, slow) = Planner::new(&g)
            .algorithm(algorithm)
            .force_exhaustive(true)
            .plan_with_class()
            .unwrap();
        assert_eq!(class, GraphClass::General);
        assert_eq!(fast.intervals(), slow.intervals());
    }
}
