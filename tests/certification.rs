//! Property-based coverage for the filtering-aware certification subsystem
//! (E17): the certification verdict is trustworthy because (a) its built-in
//! model checker is observationally the reference engine, (b) plans it
//! accepts really survive worst-case interior filtering **in the real
//! Simulator**, and (c) its fallback plans are exactly what fresh planning
//! with the fallback protocol would produce — no private planner behaviour
//! hides behind `certify()`.

use fila::avoidance::{certify_plan_bounded, Algorithm, AvoidancePlan, IntervalMap, Rounding};
use fila::prelude::*;
use fila::runtime::filters::Predicate;
use fila::workloads::generators::{
    periodic_filtered_topology, random_ladder, random_sp_dag, GeneratorConfig, LadderConfig,
};
use proptest::prelude::*;

const INPUTS: u64 = 384;
const STEP_BUDGET: u64 = 50_000_000;

/// The adversarial emission patterns of `fila_avoidance::verify`, expressed
/// as real runtime behaviours: every node the profile lets filter
/// (period > 1) follows the pattern, everything else keeps the declared
/// periodic filter.  Used to re-run certification's claims on the real
/// engine.
fn adversarial_topology(
    g: &Graph,
    periods: &[u64],
    pattern: fila::avoidance::verify::AdversaryPattern,
) -> Topology {
    let mut topo = Topology::from_graph(g);
    for n in g.node_ids() {
        let outs = g.out_degree(n);
        if outs == 0 {
            continue;
        }
        let period = periods[n.index()].max(1);
        let idx = n.index();
        if period > 1 {
            topo = topo.with(n, move || {
                Predicate::new(outs, move |_seq, out| pattern(idx, out, outs))
            });
        } else {
            topo = topo.with(n, move || {
                Predicate::new(outs, move |seq, out| (seq + out as u64) % period == 0)
            });
        }
    }
    topo
}

/// The certifier's own adversary table: iterating the exported constant —
/// not a copy — means a pattern added to `fila_avoidance::verify` is
/// automatically re-run against the real engine here.
use fila::avoidance::verify::ADVERSARIES as PATTERNS;

fn graph_for(case: u8, seed: u64) -> Graph {
    if case % 2 == 0 {
        let (g, _) = random_sp_dag(&GeneratorConfig {
            target_edges: 16 + (seed % 12) as usize,
            max_fanout: 3,
            capacity_range: (1, 6),
            seed,
        });
        g
    } else {
        random_ladder(&LadderConfig {
            rungs: 3 + (seed % 10) as usize,
            capacity_range: (1, 6),
            reverse_probability: 0.3,
            seed,
        })
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// (b) Acceptance is meaningful: a `certify()`-accepted plan completes
    /// in the **real** Simulator under the declared profile and under every
    /// adversarial worst-case pattern the certificate covers.
    ///
    /// (The vendored proptest shim takes a single strategy argument, so
    /// each case draws one seed and derives graph class / shape seed /
    /// filter period from it.)
    #[test]
    fn certified_plans_survive_worst_case_interior_filtering_in_the_simulator(
        draw in 0u64..1_000_000
    ) {
        let case = (draw % 2) as u8;
        let seed = draw / 2 % 1_000;
        let period = 2 + draw / 7 % 22;
        let g = graph_for(case, seed);
        let periods: Vec<u64> = g.node_ids().map(|_| period).collect();
        let certified = Planner::new(&g)
            .algorithm(Algorithm::NonPropagation)
            .certify(&periods)
            .expect("robust Non-Propagation plans certify SP/ladder shapes");
        let declared = Simulator::new(&periodic_filtered_topology(&g, |_| period))
            .with_plan(&certified.plan)
            .run(INPUTS);
        prop_assert!(declared.completed, "declared run: {declared:?}");
        for (name, pattern) in PATTERNS {
            let topo = adversarial_topology(&g, &periods, pattern);
            let report = Simulator::new(&topo).with_plan(&certified.plan).run(INPUTS);
            prop_assert!(
                report.completed,
                "adversary `{name}` defeated a certified plan (case {case} seed {seed} \
                 period {period}): {report:?}"
            );
        }
    }

    /// (a) The certifier's model checker is observationally the reference
    /// engine on declared periodic profiles — on both sides of the verdict.
    /// Protected runs complete in both; unprotected runs reach the same
    /// completion/deadlock verdict in both.
    #[test]
    fn model_checker_agrees_with_the_simulator(draw in 0u64..1_000_000) {
        let case = (draw % 2) as u8;
        let seed = draw / 2 % 1_000;
        let period = 1 + draw / 7 % 23;
        let g = graph_for(case, seed);
        let periods: Vec<u64> = g
            .node_ids()
            .map(|n| 1 + (seed ^ n.index() as u64) % period.max(1))
            .collect();
        let topo = periodic_filtered_topology(&g, |n| periods[n.index()]);
        for plan in [
            Planner::new(&g).algorithm(Algorithm::NonPropagation).plan().unwrap(),
            Planner::new(&g).algorithm(Algorithm::Propagation).plan().unwrap(),
            // All-infinite intervals model "avoidance disabled".
            AvoidancePlan::new(&g, Algorithm::NonPropagation, Rounding::Ceil, IntervalMap::for_graph(&g)),
        ] {
            let cert = certify_plan_bounded(&g, &plan, &periods, INPUTS, STEP_BUDGET).unwrap();
            let report = Simulator::new(&topo).with_plan(&plan).run(INPUTS);
            prop_assert!(
                cert.declared.completed == report.completed
                    && cert.declared.deadlocked == report.deadlocked,
                "model vs engine diverged (case {case} seed {seed} periods {periods:?}): \
                 model {:?} vs {report:?}",
                cert.declared
            );
        }
    }

    /// (c) Fallback plans are ordinary plans: whatever candidate the chain
    /// accepted is byte-identical to freshly planning that candidate's
    /// algorithm (structural or forced-exhaustive) directly.  In
    /// particular, a Propagation-requested job that fell back agrees with a
    /// freshly planned (Non-)Propagation plan — nothing bespoke ships from
    /// the certifier.
    #[test]
    fn fallback_plans_agree_with_fresh_plans(draw in 0u64..1_000_000) {
        let case = (draw % 2) as u8;
        let seed = draw / 2 % 1_000;
        let period = 2 + draw / 7 % 6;
        let g = graph_for(case, seed);
        // Interior filtering with a broadcasting source: the pattern that
        // makes literal-trigger Propagation plans fail certification.
        let source = g.single_source().unwrap();
        let periods: Vec<u64> = g
            .node_ids()
            .map(|n| if n == source { 1 } else { period })
            .collect();
        let certified = Planner::new(&g)
            .algorithm(Algorithm::Propagation)
            .certify(&periods)
            .expect("the chain must certify some candidate for SP/ladder shapes");
        let fresh = Planner::new(&g)
            .algorithm(certified.used)
            .force_exhaustive(certified.exhaustive)
            .plan()
            .unwrap();
        prop_assert_eq!(certified.plan.intervals(), fresh.intervals());
        prop_assert_eq!(certified.plan.algorithm(), fresh.algorithm());
        if certified.fell_back {
            prop_assert!(!certified.attempts[0].certified);
        } else {
            prop_assert_eq!(certified.used, Algorithm::Propagation);
        }
    }
}

/// The certification input budget scales with the deepest buffered path
/// (the fill horizon that governs when a deadlock can manifest) and is
/// what makes the bounded check meaningful on the sizes this suite
/// generates: pin its envelope so a future refactor cannot quietly zero
/// it out, and pin that budgets beyond the ceiling refuse to certify
/// rather than silently under-check.
#[test]
fn certification_budget_envelope() {
    use fila::avoidance::certify_plan;
    use fila::avoidance::verify::{certification_inputs, MAX_CERTIFICATION_INPUTS};
    let small = {
        let mut b = GraphBuilder::new();
        b.chain(&["a", "b", "c"]).unwrap();
        b.build().unwrap()
    };
    assert!(certification_inputs(&small) >= 256);
    let big = random_ladder(&LadderConfig {
        rungs: 64,
        capacity_range: (2, 8),
        reverse_probability: 0.3,
        seed: 0,
    });
    let inputs = certification_inputs(&big);
    assert!(inputs >= 1024, "{inputs}");
    assert!(inputs <= MAX_CERTIFICATION_INPUTS, "{inputs}");
    // Beyond the ceiling: explicit truncation, never a certificate.
    let mut b = GraphBuilder::new().default_capacity(50_000);
    b.edge("s", "a").unwrap();
    b.edge("s", "b").unwrap();
    b.edge("a", "t").unwrap();
    b.edge("b", "t").unwrap();
    let huge = b.build().unwrap();
    assert!(certification_inputs(&huge) > MAX_CERTIFICATION_INPUTS);
    let plan = Planner::new(&huge)
        .algorithm(fila::avoidance::Algorithm::NonPropagation)
        .plan()
        .unwrap();
    let cert = certify_plan(&huge, &plan, &[4, 4, 4, 1]).unwrap();
    assert!(cert.truncated && !cert.certified, "{}", cert.summary());
}
