//! A multi-tenant job storm: hundreds of mixed dataflows on one shared
//! worker pool, every per-job verdict cross-checked against the reference
//! simulator.
//!
//! ```text
//! cargo run --release --example service_storm [jobs] [seed]
//! ```
//!
//! The workload is `fila_workloads::jobs::job_mix`: mostly well-behaved SP
//! pipelines, SP DAGs and CS4 ladders (drawn from a handful of shape
//! templates, so the structural plan cache gets a realistic hit pattern),
//! plus deliberately **unplannable** dense general graphs (the service must
//! reject them with a reason) and deliberately **deadlocking**
//! under-provisioned shapes submitted with avoidance disabled (the shared
//! pool must hand each an exact per-job deadlock verdict while every other
//! job keeps running).
//!
//! For every admitted job the example replays the identical spec on the
//! single-threaded [`Simulator`] and asserts the verdict **and** the
//! per-edge data/dummy message counts agree — the multi-job pool is not
//! just "roughly right", it is observationally the simulator, job by job.

use fila::prelude::*;
use fila::workloads::jobs::{job_mix, JobKind};
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let jobs: usize = args
        .next()
        .map(|a| a.parse().expect("jobs must be a number"))
        .unwrap_or(288);
    let seed: u64 = args
        .next()
        .map(|a| a.parse().expect("seed must be a number"))
        .unwrap_or(0xF11A);
    assert!(jobs >= 256, "the storm is meant to be a storm: ≥ 256 jobs");

    let shapes = job_mix(seed, jobs);
    let service = JobService::new(ServiceConfig {
        max_in_flight: jobs,
        ..ServiceConfig::default()
    });

    println!("submitting {jobs} mixed jobs (seed {seed:#x}) …");
    let started = Instant::now();
    let mut tickets = Vec::new();
    let mut rejected = 0usize;
    for shape in &shapes {
        let spec = JobSpec::from_periods(
            shape.graph.clone(),
            shape.periods.clone(),
            shape.inputs,
            shape.avoidance,
        );
        match service.submit(spec) {
            Ok(ticket) => tickets.push((shape, ticket)),
            Err(RejectReason::Unplannable(why)) => {
                assert_eq!(
                    shape.kind,
                    JobKind::Unplannable,
                    "{} unexpectedly unplannable: {why}",
                    shape.label
                );
                rejected += 1;
            }
            Err(other) => panic!("{} rejected: {other}", shape.label),
        }
    }

    // Drain all in-flight jobs; they executed concurrently on one pool.
    let outcomes: Vec<_> = tickets
        .iter()
        .map(|(shape, ticket)| (*shape, ticket.wait()))
        .collect();
    let storm_wall = started.elapsed();

    // Cross-check every admitted job against the reference simulator.  For
    // planned jobs the reference replays the service's own plan selection:
    // `Planner::certify` walks the identical fallback chain the service's
    // verdict cache walks, so a job the service fell back for must match
    // the fallback plan's run — not the requested protocol's.
    println!("cross-checking {} verdicts against the Simulator …", outcomes.len());
    let mut completed = 0usize;
    let mut deadlocked = 0usize;
    let mut fell_back = 0usize;
    for (shape, outcome) in &outcomes {
        let topo = shape.topology();
        let reference = if let Some(algorithm) = shape.avoidance {
            let certified = Planner::new(&shape.graph)
                .algorithm(algorithm)
                .certify(&shape.periods)
                .expect("admitted jobs are certifiable");
            assert_eq!(
                outcome.algorithm,
                Some(certified.used),
                "{}: the service executed a different protocol than the \
                 certification chain selects",
                shape.label
            );
            assert_eq!(outcome.fell_back, certified.fell_back, "{}", shape.label);
            if outcome.fell_back {
                fell_back += 1;
            }
            Simulator::new(&topo).with_plan(&certified.plan).run(shape.inputs)
        } else {
            Simulator::new(&topo).run(shape.inputs)
        };
        assert_eq!(
            outcome.report.completed, reference.completed,
            "{}: completion disagrees with the simulator",
            shape.label
        );
        assert_eq!(
            outcome.report.deadlocked, reference.deadlocked,
            "{}: deadlock verdict disagrees with the simulator",
            shape.label
        );
        assert_eq!(
            outcome.report.per_edge_data, reference.per_edge_data,
            "{}: per-edge data counts disagree",
            shape.label
        );
        assert_eq!(
            outcome.report.per_edge_dummies, reference.per_edge_dummies,
            "{}: per-edge dummy counts disagree",
            shape.label
        );
        match outcome.verdict {
            JobVerdict::Completed => completed += 1,
            JobVerdict::Deadlocked => {
                assert_eq!(shape.kind, JobKind::Deadlocker, "{} deadlocked", shape.label);
                deadlocked += 1;
            }
            other => panic!("{}: unexpected verdict {other:?}", shape.label),
        }
        if shape.kind == JobKind::InteriorFiltered {
            // The fallback chain is exercised end to end: a Propagation
            // request, certified down to a Non-Propagation execution, with
            // a Completed verdict.
            assert!(outcome.fell_back, "{}: expected a fallback", shape.label);
            assert_eq!(outcome.algorithm, Some(Algorithm::NonPropagation), "{}", shape.label);
            assert_eq!(outcome.verdict, JobVerdict::Completed, "{}", shape.label);
        }
    }
    assert!(deadlocked > 0, "the mix must contain deadlocking jobs");
    assert!(rejected > 0, "the mix must contain unplannable jobs");
    assert!(fell_back > 0, "the mix must exercise the certification fallback");

    let stats = service.stats();
    assert_eq!(
        stats.uncertified_nonprop, 0,
        "every planned admission must be certified"
    );
    assert_eq!(stats.fell_back as usize, fell_back);
    println!(
        "\n{jobs} jobs in {storm_wall:.2?}: {completed} completed, {deadlocked} deadlocked \
         (exact per-job verdicts), {rejected} rejected as unplannable, \
         {fell_back} certified via fallback"
    );
    println!(
        "plan cache: {} plans served {} planned submissions ({:.0}% hits); \
         certification: {} verdicts served {} lookups ({:.0}% hits)",
        stats.plan_cache_misses,
        stats.plan_cache_hits + stats.plan_cache_misses,
        stats.cache_hit_rate() * 100.0,
        stats.cert_cache_misses,
        stats.cert_cache_hits + stats.cert_cache_misses,
        stats.cert_cache_hit_rate() * 100.0
    );
    println!("aggregate: {}", stats.to_json());
    println!(
        "\nevery verdict, per-edge count and fallback decision matched the reference \
         simulator + certification chain ✓"
    );
}
