//! Experiment E3 (Fig. 3): print the dummy-interval tables for the paper's
//! worked example and cross-check them against the exponential baseline.
//!
//! Since the E17 filtering-robustness fix, the Non-Propagation intervals
//! are the integer hop-count root of the opposite slack rather than the
//! paper's rounded ratio — the Ceil and Floor tables below are therefore
//! identical (the rounding ablation is closed; see DESIGN.md), and both
//! are strictly tighter than the figure's printed `⌈8/3⌉ = 3` values.
//!
//! ```sh
//! cargo run --example interval_report
//! ```

use fila::avoidance::{verify_plan, Rounding};
use fila::prelude::*;

fn main() {
    let g = fila::workloads::figures::fig3_cycle();
    for (algorithm, rounding) in [
        (Algorithm::Propagation, Rounding::Ceil),
        (Algorithm::NonPropagation, Rounding::Ceil),
        (Algorithm::NonPropagation, Rounding::Floor),
    ] {
        let plan = Planner::new(&g)
            .algorithm(algorithm)
            .rounding(rounding)
            .plan()
            .unwrap();
        println!("--- {algorithm} ({rounding:?}) ---");
        println!("{}", plan.render(&g));
        let verification = verify_plan(&g, &plan).unwrap();
        println!("verified against exhaustive baseline: {}\n", verification.summary());
    }
}
