//! Experiment E5-flavoured example: a CS4 (non-series-parallel) monitoring
//! topology — the Fig. 4 cross-linked split/join — planned via the ladder
//! algorithms and executed with filtering.
//!
//! ```sh
//! cargo run --example ladder_pipeline
//! ```

use fila::avoidance::GraphClass;
use fila::prelude::*;
use fila::workloads::apps::crosslinked_monitor;

fn main() {
    let (g, topo) = crosslinked_monitor(4, 16);
    let (class, plan) = Planner::new(&g)
        .algorithm(Algorithm::NonPropagation)
        .plan_with_class()
        .unwrap();
    assert_eq!(class, GraphClass::Cs4);
    println!("topology classified as {class:?} (not series-parallel)");
    println!("{}", plan.render(&g));
    let report = Simulator::new(&topo).with_plan(&plan).run(100_000);
    println!(
        "simulated: completed = {}, alarms delivered = {}, dummy overhead = {:.3}%",
        report.completed,
        report.sink_firings,
        100.0 * report.dummy_overhead()
    );

    // The Fig. 5 ladder and the rewritten butterfly also classify as CS4.
    for (name, graph) in [
        ("fig5 ladder", fila::workloads::figures::fig5_ladder(3)),
        ("rewritten butterfly", fila::workloads::figures::butterfly_rewritten(2)),
        ("original butterfly", fila::workloads::figures::fig4_butterfly(2)),
    ] {
        let class = fila::avoidance::classify(&graph).unwrap();
        println!("{name:<22} -> {class:?}");
    }
}
