//! Experiment E1 (Fig. 1): the object-recognition split/join application
//! with data-dependent recognisers, run safely under a Non-Propagation plan
//! on both engines.
//!
//! ```sh
//! cargo run --example object_recognition
//! ```

use fila::prelude::*;
use fila::workloads::apps::object_recognition;

fn main() {
    let frames = 50_000;
    for (keep_left, keep_right) in [(0.5, 0.5), (0.2, 0.05), (0.02, 0.01)] {
        let (g, topo) = object_recognition(8, keep_left, keep_right, 42);
        let plan = Planner::new(&g).algorithm(Algorithm::NonPropagation).plan().unwrap();
        let report = Simulator::new(&topo).with_plan(&plan).run(frames);
        let unprotected = Simulator::new(&topo).run(frames);
        println!(
            "recognition rates ({keep_left:.2}, {keep_right:.2}): protected = {}, \
             joined frames = {}, dummy overhead = {:.2}%, unprotected deadlocks = {}",
            if report.completed { "ok" } else { "DEADLOCK" },
            report.sink_firings,
            100.0 * report.dummy_overhead(),
            unprotected.deadlocked
        );
    }
    // The threaded engine on the most aggressive configuration.
    let (g, topo) = object_recognition(8, 0.02, 0.01, 42);
    let plan = Planner::new(&g).algorithm(Algorithm::NonPropagation).plan().unwrap();
    let threaded = ThreadedExecutor::new(&topo).with_plan(&plan).run(frames);
    println!(
        "threaded run: completed = {}, data messages = {}, dummies = {}",
        threaded.completed, threaded.data_messages, threaded.dummy_messages
    );
}
