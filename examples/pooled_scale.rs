//! Scale demo: a 16 384-node filtered pipeline on the pooled work-stealing
//! engine — a topology size where one-OS-thread-per-node execution stops
//! being practical (16 k threads for a machine with a handful of cores).
//!
//! Run with `cargo run --release --example pooled_scale`.  Environment
//! knobs:
//!
//! * `NODES` (default 16384) — pipeline length,
//! * `INPUTS` (default 64) — sequence numbers offered at the source,
//! * `WORKERS` (default: available parallelism) — pool size,
//! * `THREADED=1` — additionally run the thread-per-node engine on the same
//!   workload for comparison (spawns `NODES` OS threads; expect it to be
//!   painfully slower or to abort if the system cannot host that many).

use std::time::Instant;

use fila::prelude::*;
use fila::workloads::generators::{periodic_filtered_topology, pipeline_graph};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let nodes = env_u64("NODES", 16_384) as usize;
    let inputs = env_u64("INPUTS", 64);
    let workers = env_u64("WORKERS", 0) as usize;

    // Anti-topological declaration order and a 4-deep filter: every node
    // passes only every 4th sequence number, so ~1/4 of the traffic
    // survives past the first hop.
    let g = pipeline_graph(nodes, 4, true);
    let topo = periodic_filtered_topology(&g, |_| 4);

    let mut pooled = PooledExecutor::new(&topo);
    if workers > 0 {
        pooled = pooled.workers(workers);
    }
    let start = Instant::now();
    let report = pooled.run(inputs);
    let elapsed = start.elapsed();
    assert!(report.completed, "{report:?}");
    println!(
        "pooled   : {nodes} nodes, {inputs} inputs -> {} messages in {elapsed:.2?} \
         ({:.2} M msg/s)",
        report.total_messages(),
        report.total_messages() as f64 / elapsed.as_secs_f64() / 1e6,
    );

    if env_u64("THREADED", 0) != 0 {
        let start = Instant::now();
        let report = ThreadedExecutor::new(&topo).run(inputs);
        let elapsed = start.elapsed();
        assert!(report.completed, "{report:?}");
        println!(
            "threaded : {nodes} nodes, {inputs} inputs -> {} messages in {elapsed:.2?} \
             ({:.2} M msg/s)",
            report.total_messages(),
            report.total_messages() as f64 / elapsed.as_secs_f64() / 1e6,
        );
    }
}
