//! Experiment E2 (Fig. 2): demonstrate that filtering plus finite buffers
//! deadlocks, and that both avoidance protocols prevent it, across a sweep
//! of buffer sizes.
//!
//! ```sh
//! cargo run --example deadlock_demo
//! ```

use fila::prelude::*;
use fila::runtime::filters::Predicate;

fn main() {
    println!("buffer  unprotected  propagation  non-propagation  dummy-overhead(np)");
    for buffer in [1u64, 2, 4, 8, 16, 32] {
        let g = fila::workloads::figures::fig2_triangle(buffer);
        let a = g.node_by_name("A").unwrap();
        let topo =
            Topology::from_graph(&g).with(a, || Predicate::new(2, |seq, out| out == 0 || seq % 97 == 0));
        let inputs = 20_000;
        let unprotected = Simulator::new(&topo).run(inputs);
        let prop_plan = Planner::new(&g).algorithm(Algorithm::Propagation).plan().unwrap();
        let prop = Simulator::new(&topo).with_plan(&prop_plan).run(inputs);
        let np_plan = Planner::new(&g).algorithm(Algorithm::NonPropagation).plan().unwrap();
        let np = Simulator::new(&topo).with_plan(&np_plan).run(inputs);
        println!(
            "{:>6}  {:>11}  {:>11}  {:>15}  {:>17.3}%",
            buffer,
            if unprotected.deadlocked { "deadlock" } else { "ok" },
            if prop.completed { "ok" } else { "deadlock" },
            if np.completed { "ok" } else { "deadlock" },
            100.0 * np.dummy_overhead()
        );
    }
}
