//! Quickstart: build a filtering split/join, compute a deadlock-avoidance
//! plan, and run it on both execution engines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use fila::prelude::*;
use fila::runtime::filters::Predicate;

fn main() {
    // Fig. 2 of the paper: A -> B -> C with a bypass channel A -> C, buffers
    // of two messages each.  A filters aggressively towards C.
    let g = fila::workloads::figures::fig2_triangle(2);
    let a = g.node_by_name("A").unwrap();
    let topo = Topology::from_graph(&g).with(a, || Predicate::new(2, |seq, out| out == 0 || seq % 64 == 0));

    // Without avoidance the application deadlocks.
    let unprotected = Simulator::new(&topo).run(10_000);
    println!("without avoidance: deadlocked = {}", unprotected.deadlocked);

    // Compute the dummy intervals (Propagation protocol) and run again.
    let plan = Planner::new(&g).algorithm(Algorithm::Propagation).plan().unwrap();
    println!("{}", plan.render(&g));
    let safe = Simulator::new(&topo).with_plan(&plan).run(10_000);
    println!(
        "with avoidance: completed = {}, data = {}, dummies = {} ({:.2}% overhead)",
        safe.completed,
        safe.data_messages,
        safe.dummy_messages,
        100.0 * safe.dummy_overhead()
    );

    // The multi-threaded engine exercises the same plan under real
    // concurrency.
    let threaded = ThreadedExecutor::new(&topo).with_plan(&plan).run(10_000);
    println!(
        "threaded engine: completed = {}, sink consumed {} flagged reads",
        threaded.completed, threaded.sink_firings
    );
}
