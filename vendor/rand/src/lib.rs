//! Vendored, dependency-free stand-in for the parts of `rand` used by the
//! `fila` workspace: a seedable deterministic generator ([`rngs::StdRng`])
//! plus the [`Rng`] / [`SeedableRng`] traits with `gen_range` over integer
//! ranges and `gen_bool`.
//!
//! The build environment has no access to a crates.io registry.  All `fila`
//! uses of randomness are seeded and only need reproducibility — not
//! cryptographic quality — so the core generator is SplitMix64 (Steele,
//! Lea & Flood, OOPSLA 2014), which passes BigCrush at the sizes the
//! workload generators draw.  Replacing this shim with the real `rand` is a
//! one-line `Cargo.toml` change; note the streams differ, so seeded
//! topologies would change shape (not validity) under the real crate.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::ops::{Range, RangeInclusive};

/// A source of pseudo-random 64-bit values.
pub trait RngCore {
    /// Returns the next value in the stream.
    fn next_u64(&mut self) -> u64;
}

/// A generator constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.  Panics if the range is
    /// empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `0.0..=1.0`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 uniform mantissa bits, the standard float-in-[0,1) recipe.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range from which a uniform sample can be drawn.
pub trait SampleRange<T> {
    /// Draws one uniform sample.  Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a uniform value in `[0, span)` by widening multiplication, which
/// avoids the modulo bias of `next_u64() % span` without a rejection loop.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u64, usize, u32, u16, u8);

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    ///
    /// Unlike `rand`'s ChaCha-based `StdRng` this is not cryptographically
    /// secure; `fila` only uses it for reproducible workload generation.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..=9);
            assert!((3..=9).contains(&v));
            let w = rng.gen_range(0usize..5);
            assert!(w < 5);
            let x = rng.gen_range(1usize..=1);
            assert_eq!(x, 1);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits = {hits}");
        let mut rng = StdRng::seed_from_u64(12);
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        let mut rng = StdRng::seed_from_u64(13);
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }
}
