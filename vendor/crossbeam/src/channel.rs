//! Bounded channels with timeout-aware operations.
//!
//! Bounded channels with the blocking, timeout and non-blocking operations
//! a drop-in consumer expects: [`bounded`], [`Sender::try_send`],
//! [`Sender::send_timeout`], [`Sender::send`], and [`Receiver::try_recv`] /
//! [`Receiver::recv_timeout`] / [`Receiver::recv`].  (`try_recv` completes
//! the receiver surface for API parity with the registry crate — the
//! execution engines themselves now run over `fila-runtime`'s SPSC rings,
//! so nothing in the workspace calls these channels on a hot path.)

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::try_send`].
#[derive(PartialEq, Eq, Clone, Copy)]
pub enum TrySendError<T> {
    /// The channel is full (or, for a rendezvous channel, no receiver is
    /// currently waiting).  The message is handed back.
    Full(T),
    /// The receiver was dropped; the message is handed back.
    Disconnected(T),
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

/// Error returned by [`Sender::send_timeout`].
#[derive(PartialEq, Eq, Clone, Copy)]
pub enum SendTimeoutError<T> {
    /// The timeout elapsed before space became available; the message is
    /// handed back so the caller can retry.
    Timeout(T),
    /// The receiver was dropped; the message is handed back.
    Disconnected(T),
}

impl<T> fmt::Debug for SendTimeoutError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendTimeoutError::Timeout(_) => f.write_str("Timeout(..)"),
            SendTimeoutError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

/// Error returned by [`Sender::send`].
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(
    /// The message that could not be delivered.
    pub T,
);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no message available.
    Timeout,
    /// All senders were dropped and the queue is empty.
    Disconnected,
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    /// No message is currently available.
    Empty,
    /// All senders were dropped and the queue is empty.
    Disconnected,
}

/// Error returned by [`Receiver::recv`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

struct Inner<T> {
    queue: VecDeque<T>,
    cap: usize,
    senders: usize,
    receiver_alive: bool,
    /// Number of receivers currently blocked in a receive operation.  A
    /// rendezvous (`cap == 0`) send may only complete while this exceeds the
    /// number of undelivered messages, so the channel never buffers.
    waiting_recv: usize,
}

impl<T> Inner<T> {
    fn has_space(&self) -> bool {
        if self.cap == 0 {
            self.queue.len() < self.waiting_recv
        } else {
            self.queue.len() < self.cap
        }
    }
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// The sending half of a bounded channel.  Cloneable (multi-producer).
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a bounded channel (single consumer).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Creates a bounded channel of capacity `cap`.  `bounded(0)` creates a
/// rendezvous channel: every send must pair with a concurrently blocked
/// receive.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            cap,
            senders: 1,
            receiver_alive: true,
            waiting_recv: 0,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Attempts to send without blocking.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        if !inner.receiver_alive {
            return Err(TrySendError::Disconnected(msg));
        }
        if inner.has_space() {
            inner.queue.push_back(msg);
            self.shared.not_empty.notify_one();
            Ok(())
        } else {
            Err(TrySendError::Full(msg))
        }
    }

    /// Sends, blocking at most `timeout`.
    pub fn send_timeout(&self, msg: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        loop {
            if !inner.receiver_alive {
                return Err(SendTimeoutError::Disconnected(msg));
            }
            if inner.has_space() {
                inner.queue.push_back(msg);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(SendTimeoutError::Timeout(msg));
            }
            let (guard, _) = self
                .shared
                .not_full
                .wait_timeout(inner, deadline - now)
                .expect("channel poisoned");
            inner = guard;
        }
    }

    /// Sends, blocking indefinitely until space is available or the receiver
    /// disconnects.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        match self.send_timeout(msg, Duration::from_secs(u64::MAX / 4)) {
            Ok(()) => Ok(()),
            Err(SendTimeoutError::Timeout(m)) | Err(SendTimeoutError::Disconnected(m)) => {
                Err(SendError(m))
            }
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            inner.senders += 1;
        }
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        inner.senders -= 1;
        if inner.senders == 0 {
            // Wake a receiver blocked waiting for data so it can observe
            // the disconnection.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Attempts to receive without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        if let Some(msg) = inner.queue.pop_front() {
            self.shared.not_full.notify_all();
            return Ok(msg);
        }
        if inner.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Receives, blocking at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                self.shared.not_full.notify_all();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            inner.waiting_recv += 1;
            // A rendezvous sender may be parked in `send_timeout`; now that a
            // receiver is committed, give it a chance to complete the pairing.
            self.shared.not_full.notify_all();
            let (guard, _) = self
                .shared
                .not_empty
                .wait_timeout(inner, deadline - now)
                .expect("channel poisoned");
            inner = guard;
            inner.waiting_recv -= 1;
        }
    }

    /// Receives, blocking indefinitely until a message arrives or every
    /// sender disconnects.
    pub fn recv(&self) -> Result<T, RecvError> {
        match self.recv_timeout(Duration::from_secs(u64::MAX / 4)) {
            Ok(msg) => Ok(msg),
            Err(_) => Err(RecvError),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        inner.receiver_alive = false;
        // Wake senders blocked waiting for space so they observe the
        // disconnection instead of sleeping out their timeout.
        self.shared.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn bounded_respects_capacity() {
        let (tx, rx) = bounded::<u32>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(2));
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(3));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn try_recv_reports_empty_then_disconnected() {
        let (tx, rx) = bounded::<u32>(1);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.try_send(9).unwrap();
        assert_eq!(rx.try_recv(), Ok(9));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn drop_of_all_senders_disconnects() {
        let (tx, rx) = bounded::<u32>(1);
        let tx2 = tx.clone();
        tx.try_send(7).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn drop_of_receiver_disconnects_sender() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert!(matches!(tx.try_send(1), Err(TrySendError::Disconnected(1))));
        assert!(matches!(
            tx.send_timeout(2, Duration::from_millis(5)),
            Err(SendTimeoutError::Disconnected(2))
        ));
    }

    #[test]
    fn rendezvous_pairs_send_with_waiting_receiver() {
        let (tx, rx) = bounded::<u32>(0);
        // No receiver waiting: a rendezvous try_send must refuse to buffer.
        assert!(matches!(tx.try_send(1), Err(TrySendError::Full(1))));
        let handle = thread::spawn(move || rx.recv_timeout(Duration::from_secs(5)));
        // The blocked receiver lets a timed send complete.
        let mut msg = 42;
        loop {
            match tx.send_timeout(msg, Duration::from_millis(50)) {
                Ok(()) => break,
                Err(SendTimeoutError::Timeout(m)) => msg = m,
                Err(SendTimeoutError::Disconnected(_)) => panic!("receiver vanished"),
            }
        }
        assert_eq!(handle.join().unwrap(), Ok(42));
    }

    #[test]
    fn many_producers_one_consumer() {
        let (tx, rx) = bounded::<u64>(4);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let tx = tx.clone();
            handles.push(thread::spawn(move || {
                for i in 0..100u64 {
                    let mut msg = t * 1000 + i;
                    loop {
                        match tx.send_timeout(msg, Duration::from_millis(50)) {
                            Ok(()) => break,
                            Err(SendTimeoutError::Timeout(m)) => msg = m,
                            Err(SendTimeoutError::Disconnected(_)) => return,
                        }
                    }
                }
            }));
        }
        drop(tx);
        let mut seen = 0;
        while rx.recv_timeout(Duration::from_secs(5)).is_ok() {
            seen += 1;
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(seen, 400);
    }
}
