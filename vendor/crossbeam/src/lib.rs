//! Vendored, dependency-free stand-in for the parts of `crossbeam` used by
//! the `fila` workspace: bounded multi-producer single-consumer channels with
//! timeout-aware send/receive.
//!
//! The build environment has no access to a crates.io registry, so this crate
//! provides the exact API surface that `fila-runtime` relies on, implemented
//! on `std::sync` primitives.  Semantics follow crossbeam where it matters for
//! the deadlock-avoidance experiments:
//!
//! * `bounded(0)` is a **rendezvous** channel — a send can only succeed while
//!   a receiver is blocked waiting, so the channel adds no buffering,
//! * a send on a channel whose receiver was dropped reports
//!   "disconnected", and a receive observes "disconnected" only once all
//!   senders are gone **and** the queue has been drained.
//!
//! Performance characteristics differ from the real crossbeam (this is a
//! mutex + condvar queue, not a lock-free ring); replacing this shim with the
//! real crate is a one-line `Cargo.toml` change once a registry is available.
//!
//! As of the pooled-executor PR both execution engines run over the
//! dedicated SPSC rings in `fila-runtime::spsc` (which carry the
//! blocked-peer notification flags the engines' wakeup protocol needs), so
//! this shim is no longer on the message path; it remains in the workspace
//! as the documented drop-in for code that wants real multi-producer
//! channels once a registry is reachable.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod channel;
