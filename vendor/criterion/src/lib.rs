//! Vendored, dependency-free stand-in for the parts of `criterion` used by
//! the `fila-bench` targets: [`Criterion`], [`BenchmarkId`], benchmark
//! groups with [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! The build environment has no access to a crates.io registry, so this shim
//! keeps the bench targets compiling and producing useful numbers: each
//! benchmark is warmed up, then timed over `sample_size` samples whose
//! iteration counts are auto-tuned so a sample lasts at least ~1 ms, and the
//! minimum / median / maximum per-iteration times are printed.  There is no
//! statistical regression testing, HTML report, or plotting — swap in the
//! real `criterion` (the API is call-compatible) once a registry is
//! available.
//!
//! ### Machine-readable output
//!
//! When the environment variable `FILA_BENCH_JSON` names a file, the runner
//! emitted by [`criterion_main!`] additionally writes every benchmark's
//! timings there as a JSON array (one object per benchmark with the label
//! and min / median / max nanoseconds per iteration).  CI uses this to smoke
//! the bench targets and tooling consumes it for before/after comparisons.
//! Two caveats: pass an **absolute** path (cargo runs bench binaries with
//! the *package* root as cwd, not the workspace root), and run a **single**
//! bench target per file — every bench executable rewrites the file at
//! exit, so a multi-target `cargo bench` keeps only the last target's
//! records.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, one per bench target.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), self.default_sample_size, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group.  (The real criterion emits summary statistics here.)
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id such as `setivals/1024` from a name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion of the two accepted id forms (`&str` / [`BenchmarkId`]) into a
/// printable label.
pub trait IntoBenchmarkId {
    /// Returns the label under which the benchmark is reported.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing context handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_target: usize,
}

impl Bencher {
    /// Times `routine`, collecting the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        while self.samples.len() < self.sample_target {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

/// Picks an iteration count so one sample lasts at least ~1 ms (capped so a
/// whole benchmark stays under roughly a second for fast routines).
fn calibrate<F: FnMut(&mut Bencher)>(f: &mut F) -> u64 {
    let mut iters = 1u64;
    loop {
        let mut probe = Bencher {
            iters_per_sample: iters,
            samples: Vec::new(),
            sample_target: 1,
        };
        let start = Instant::now();
        f(&mut probe);
        let elapsed = start.elapsed();
        if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
            return iters;
        }
        iters *= 8;
    }
}

/// One benchmark's collected timings, kept for the optional JSON report.
#[derive(Debug, Clone)]
struct BenchRecord {
    label: String,
    min_ns: f64,
    median_ns: f64,
    max_ns: f64,
    samples: usize,
    iters_per_sample: u64,
}

/// Results of every benchmark run so far in this process.
static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    // Warm-up / calibration pass.
    let iters_per_sample = calibrate(f);
    let mut bencher = Bencher {
        iters_per_sample,
        samples: Vec::new(),
        sample_target: sample_size,
    };
    f(&mut bencher);
    let mut per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / iters_per_sample as f64)
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    if per_iter.is_empty() {
        println!("{label:<44} (no samples)");
        return;
    }
    let median = per_iter[per_iter.len() / 2];
    println!(
        "{label:<44} min {:>10}  med {:>10}  max {:>10}  ({} samples x {} iters)",
        fmt_time(per_iter[0]),
        fmt_time(median),
        fmt_time(per_iter[per_iter.len() - 1]),
        per_iter.len(),
        iters_per_sample,
    );
    RESULTS
        .lock()
        .expect("bench results lock")
        .push(BenchRecord {
            label: label.to_owned(),
            min_ns: per_iter[0] * 1e9,
            median_ns: median * 1e9,
            max_ns: per_iter[per_iter.len() - 1] * 1e9,
            samples: per_iter.len(),
            iters_per_sample,
        });
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Schema version of the `FILA_BENCH_JSON` report format.  Version 2
/// wraps the former bare record array in an object
/// (`{"schema_version": 2, "records": [...]}`) so consumers can detect
/// format drift; CI validates the stamp.
pub const BENCH_JSON_SCHEMA_VERSION: u32 = 2;

/// Writes every benchmark result collected so far to the file named by the
/// `FILA_BENCH_JSON` environment variable, if set.  Called automatically at
/// the end of the `main` emitted by [`criterion_main!`]; a no-op otherwise.
pub fn write_json_report() {
    let Ok(path) = std::env::var("FILA_BENCH_JSON") else {
        return;
    };
    let results = RESULTS.lock().expect("bench results lock");
    let mut out = format!(
        "{{\"schema_version\": {BENCH_JSON_SCHEMA_VERSION}, \"records\": [\n"
    );
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        out.push_str(&format!(
            "  {{\"label\": \"{}\", \"min_ns\": {:.1}, \"median_ns\": {:.1}, \"max_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}{}\n",
            json_escape(&r.label),
            r.min_ns,
            r.median_ns,
            r.max_ns,
            r.samples,
            r.iters_per_sample,
            sep,
        ));
    }
    out.push_str("]}\n");
    match std::fs::write(&path, out) {
        Ok(()) => println!("\nwrote {} benchmark records to {path}", results.len()),
        Err(err) => eprintln!("FILA_BENCH_JSON: could not write {path}: {err}"),
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Bundles benchmark functions into a runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main`, running every group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags such as `--bench`; a real
            // argument parser is not needed for this shim.
            $( $group(); )+
            $crate::write_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_selftest");
        group.sample_size(5);
        let mut ran = 0u64;
        group.bench_function("spin", |b| b.iter(|| ran = ran.wrapping_add(1)));
        group.bench_with_input(BenchmarkId::new("param", 3), &3u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(ran > 0);
    }
}
