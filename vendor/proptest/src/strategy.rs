//! The [`Strategy`] trait and the combinators the workspace uses.
//!
//! A strategy is a composable generator of random values.  Unlike the real
//! proptest there is no shrinking tree: `generate` produces a value
//! directly from the test RNG.

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use crate::test_runner::TestRng;

/// A composable generator of random test inputs.
pub trait Strategy: 'static {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Returns a strategy producing `f(value)` for each generated `value`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O + 'static,
    {
        Map { inner: self, f }
    }

    /// Returns a strategy that recursively composes `self` (the leaf case)
    /// through `recurse` up to `depth` levels deep.
    ///
    /// `_desired_size` and `_expected_branch_size` are accepted for
    /// API-compatibility with the real proptest but unused: depth alone
    /// bounds the shim's generated values.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized,
        R: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        Recursive {
            base: self.boxed(),
            depth,
            recurse: Arc::new(move |inner| recurse(inner).boxed()),
        }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Arc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<V> fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy(..)")
    }
}

impl<V: 'static> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Strategy that always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<V>(
    /// The value to yield.
    pub V,
);

impl<V: Clone + 'static> Strategy for Just<V> {
    type Value = V;

    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O + 'static,
    O: 'static,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<V> {
    base: BoxedStrategy<V>,
    depth: u32,
    recurse: Arc<dyn Fn(BoxedStrategy<V>) -> BoxedStrategy<V>>,
}

impl<V> Clone for Recursive<V> {
    fn clone(&self) -> Self {
        Recursive {
            base: self.base.clone(),
            depth: self.depth,
            recurse: Arc::clone(&self.recurse),
        }
    }
}

impl<V> fmt::Debug for Recursive<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recursive").field("depth", &self.depth).finish()
    }
}

impl<V: 'static> Strategy for Recursive<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        // Draw a recursion level uniformly so small and deep values both
        // appear, then build the strategy tower for that level.  The
        // recursive strategy still embeds `inner` (and typically leaves) at
        // every level, so depth is an upper bound, not an exact size.
        let levels = rng.below(u64::from(self.depth) + 1) as u32;
        let mut strategy = self.base.clone();
        for _ in 0..levels {
            strategy = (self.recurse)(strategy);
        }
        strategy.generate(rng)
    }
}

/// Uniform choice between strategies of a common value type.  Built by
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Union").field("options", &self.options.len()).finish()
    }
}

impl<V> Union<V> {
    /// Creates a union over `options`; panics if empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<V: 'static> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].generate(rng)
    }
}

// Spans are computed in the type's unsigned counterpart so that wide signed
// ranges (e.g. `i64::MIN..=i64::MAX`) cannot overflow: in two's complement,
// `(hi as $u).wrapping_sub(lo as $u)` is the true span for any `lo <= hi`,
// and adding the sample back with `wrapping_add` lands in range.
macro_rules! impl_strategy_for_int_ranges {
    ($(($t:ty, $u:ty)),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                (self.start as $u).wrapping_add(rng.below(span) as $u) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $u).wrapping_add(rng.below(span + 1) as $u) as $t
            }
        }
    )*};
}

impl_strategy_for_int_ranges!(
    (u64, u64),
    (usize, usize),
    (u32, u32),
    (u16, u16),
    (u8, u8),
    (i64, u64),
    (i32, u32)
);
