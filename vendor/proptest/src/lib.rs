//! Vendored, dependency-free stand-in for the parts of `proptest` used by
//! the `fila` workspace's property-based tests: the [`strategy::Strategy`]
//! trait with `prop_map` / `prop_recursive` / `boxed`, [`collection::vec`],
//! the [`prop_oneof!`] combinator, and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`] macros.
//!
//! The build environment has no access to a crates.io registry.  This shim
//! keeps the generation model (strategies are composable random-value
//! generators, tests run a configurable number of seeded cases, `prop_assume`
//! rejects cases) but **does not shrink** failing inputs — a failure reports
//! the seed and case number instead, which is reproducible because every
//! test's RNG stream is derived deterministically from its name.  The API is
//! call-compatible with the real `proptest` for everything `fila` uses, so a
//! registry-backed build can swap the real crate in without source changes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod strategy;
pub mod test_runner;

/// Strategies for generating collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Bounds on the length of a generated collection.
    ///
    /// Implemented for `usize` (exact), `Range<usize>` (half-open) and
    /// `RangeInclusive<usize>`, mirroring proptest's `SizeRange`
    /// conversions.
    pub trait SizeBounds {
        /// Returns the inclusive `(min, max)` length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeBounds for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl SizeBounds for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeBounds for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start() <= self.end(), "empty size range");
            (*self.start(), *self.end())
        }
    }

    /// Strategy generating a `Vec` whose elements come from `element` and
    /// whose length is drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeBounds) -> VecStrategy<S> {
        let (min_len, max_len) = size.bounds();
        VecStrategy {
            element,
            min_len,
            max_len,
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min_len: usize,
        max_len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.max_len - self.min_len + 1) as u64;
            let len = self.min_len + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-based test usually imports.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    /// Namespace mirror of the crate root, so `prop::collection::vec`
    /// works as it does with the real proptest prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Picks uniformly between several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $( $crate::strategy::Strategy::boxed($strategy) ),+
        ])
    };
}

/// Fails the current test case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current test case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Fails the current test case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Rejects (skips) the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Declares property-based tests.
///
/// Supports the same surface the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///
///     #[test]
///     fn my_property(x in 0u64..100) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($arg:pat in $strategy:expr) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_proptest(
                    $config,
                    stringify!($name),
                    &$crate::strategy::Strategy::boxed($strategy),
                    |__proptest_value| {
                        let $arg = __proptest_value;
                        { $body }
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(u64),
        Node(Vec<Tree>),
    }

    impl Tree {
        fn depth(&self) -> usize {
            match self {
                Tree::Leaf(_) => 1,
                Tree::Node(children) => {
                    1 + children.iter().map(Tree::depth).max().unwrap_or(0)
                }
            }
        }
    }

    fn tree(depth: u32) -> impl Strategy<Value = Tree> {
        let leaf = (1u64..6).prop_map(Tree::Leaf);
        leaf.prop_recursive(depth, 16, 3, |inner| {
            prop_oneof![
                prop::collection::vec(inner, 2..4).prop_map(Tree::Node),
                (10u64..20).prop_map(Tree::Leaf),
            ]
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 5u64..10) {
            prop_assert!((5..10).contains(&x));
        }

        #[test]
        fn recursive_strategies_bound_depth(t in tree(3)) {
            // depth levels of recursion atop the leaf level.
            prop_assert!(t.depth() <= 4, "depth {} for {:?}", t.depth(), t);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn vectors_hit_requested_lengths(v in prop::collection::vec(0u64..5, 2..4)) {
            prop_assert!(v.len() == 2 || v.len() == 3);
            prop_assert_ne!(v.len(), 4);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_case_context() {
        crate::test_runner::run_proptest(
            ProptestConfig::with_cases(8),
            "always_fails",
            &crate::strategy::Strategy::boxed(0u64..10),
            |x| {
                prop_assert!(x > 100, "x was {}", x);
                Ok(())
            },
        );
    }

    #[test]
    fn just_yields_the_value() {
        crate::test_runner::run_proptest(
            ProptestConfig::with_cases(4),
            "just",
            &crate::strategy::Strategy::boxed(Just(9u64)),
            |x| {
                prop_assert_eq!(x, 9);
                Ok(())
            },
        );
    }
}
