//! Test-case execution: configuration, the deterministic RNG, and the
//! runner invoked by the [`proptest!`](crate::proptest) macro.

use crate::strategy::{BoxedStrategy, Strategy};

/// Runner configuration.  Exposed as `ProptestConfig` from the prelude.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
    /// Maximum number of rejected (`prop_assume!`) cases tolerated before
    /// the run aborts.
    pub max_global_rejects: u32,
}

impl Config {
    /// Configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Outcome of a single test case, produced by the assertion macros.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property failed; the test panics with this message.
    Fail(String),
    /// The case was rejected by `prop_assume!` and is not counted.
    Reject(String),
}

impl TestCaseError {
    /// Creates a failure outcome.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Creates a rejection outcome.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

/// Deterministic RNG driving generation; a thin wrapper over the vendored
/// `rand` shim's [`StdRng`](rand::rngs::StdRng) so both shims share one
/// generator implementation.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: rand::rngs::StdRng,
}

impl TestRng {
    /// Creates an RNG with the given seed.
    pub fn new(seed: u64) -> Self {
        use rand::SeedableRng;
        TestRng {
            inner: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }

    /// Returns the next 64-bit value in the stream.
    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.inner.next_u64()
    }

    /// Returns a uniform value in `[0, bound)`; panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling bound");
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }
}

/// Derives a per-test seed from the test's name, so each property has a
/// stable, independent stream (FNV-1a).
fn seed_from_name(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Runs `test` against `config.cases` generated inputs.  Called by the
/// [`proptest!`](crate::proptest) macro; public so generated code can reach
/// it.
pub fn run_proptest<V: 'static>(
    config: Config,
    name: &str,
    strategy: &BoxedStrategy<V>,
    test: impl Fn(V) -> Result<(), TestCaseError>,
) {
    let seed = seed_from_name(name);
    let mut rng = TestRng::new(seed);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut case = 0u64;
    while passed < config.cases {
        case += 1;
        let value = strategy.generate(&mut rng);
        match test(value) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "proptest '{name}': too many rejected cases \
                         ({rejected} rejects for {passed} passes; seed {seed:#018x})"
                    );
                }
            }
            Err(TestCaseError::Fail(message)) => {
                panic!(
                    "proptest case #{case} of '{name}' failed (seed {seed:#018x}): {message}"
                );
            }
        }
    }
}
