//! `fila` — drive the multi-tenant job service from the command line.
//!
//! ```text
//! fila run <jobfile> [--workers N]      execute the jobs in a textual job file
//! fila storm [--jobs N] [--seed S] [--workers N] [--kill-rate F]
//!            [--drift-rate F] [--chaos SEED] [--json PATH]
//!            [--trace PATH] [--metrics]
//!                                       submit a generated mixed workload,
//!                                       optionally checkpoint/kill/restore
//!                                       a fraction of it and/or inject
//!                                       filter-drifting tenants that the
//!                                       adaptive supervisor must catch;
//!                                       with --chaos, arm a seeded fault
//!                                       plan inside the pool itself and
//!                                       run every job under the
//!                                       self-healing recovery ladder;
//!                                       with --trace/--metrics, run the
//!                                       flight recorder and export a
//!                                       Chrome trace / Prometheus text
//! fila trace <file>                     summarize an exported Chrome trace
//! fila help                             this text + the job-file grammar
//! ```
//!
//! Storm's human-readable progress goes to **stderr**; stdout carries only
//! the stats JSON, so `fila storm --json - | jq` style piping stays clean.
//!
//! ## Job-file grammar (line-oriented, `#` comments)
//!
//! ```text
//! job <name>
//!   inputs <count>               # sequence numbers offered at every source
//!   algorithm <propagation|nonpropagation|none>
//!   capacity <default>           # default buffer capacity (optional, 4)
//!   edge <src> <dst> [capacity]  # nodes are created on first mention
//!   filter <node> <period>       # periodic filter (1 = broadcast)
//! end
//! ```

use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use fila::prelude::*;
use fila::runtime::FaultPlan;
use fila::workloads::jobs::{job_mix_with_drift, JobKind, JobShape};
use fila_service::{CheckpointPolicy, JobTicket, RecoveryMode, RecoveryOutcome, RecoveryPolicy};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("run") => cmd_run(&args[1..]),
        Some("storm") => cmd_storm(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{}", HELP);
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("fila: unknown command `{other}` (try `fila help`)");
            ExitCode::FAILURE
        }
    }
}

const HELP: &str = "\
fila — filtering-aware deadlock avoidance as a multi-tenant job service

USAGE:
  fila run <jobfile> [--workers N]
  fila storm [--jobs N] [--seed S] [--workers N] [--kill-rate F]
             [--drift-rate F] [--chaos SEED] [--json PATH]
             [--trace PATH] [--metrics]
  fila trace <file>
  fila help

`run` executes every job of a textual job file on one shared worker pool,
prints a per-job verdict table and the aggregate service stats as JSON.

`storm` generates a mixed workload (pipelines, SP DAGs, CS4 ladders, plus
deliberately unplannable and deadlocking shapes), submits all of it
concurrently, and reports the same stats; `--json PATH` also writes them to
a file (used by CI as a service smoke test).  `--kill-rate F` (0.0..=1.0)
additionally takes a live barrier snapshot of a deterministic fraction F of
the admitted jobs, lets the originals run to their verdicts as references,
then resumes every snapshot and checks the resumed runs settle with the
exact same verdicts and per-edge message counts — a crash-recovery
fault-injection smoke on the real service.  `--drift-rate F` (0.0..=1.0)
converts a deterministic fraction F of the workload into filter-drifting
tenants: jobs that declare (and get certified for) one filter profile but
execute a strictly heavier one.  Each drifting job runs under the adaptive
supervisor, which detects the drift and walks the response ladder —
certified plan hot-swap, quarantine + escalated replan, or cancellation
with the offending nodes — while every hot-swapped job's final counts are
checked against an uninterrupted reference run of its observed profile.
`--chaos SEED` turns the storm into a self-healing smoke: the pool itself
is armed with a deterministic seeded fault plan (worker panics mid-firing
and mid-barrier, delayed wakeups, snapshot corruption on encode and on
restore; `--kill-rate F` is reused as the per-job arming probability,
default 0.25), every job runs under the supervised auto-checkpoint +
recovery ladder (full restore -> partial subgraph restart -> genesis,
alternating exact and approximate recovery modes per job), and every
outcome — recovered or not — is cross-checked against an uninterrupted
Simulator reference run.  Exact-mode recoveries must reproduce the
reference verdict, per-edge data counts, and sink firings bit-exactly;
approximate recoveries may trail by at most the reported divergence.

`--trace PATH` and/or `--metrics` switch on the pool's flight recorder:
per-worker lock-free event rings capture firing spans, steals,
park/unpark, blocked stalls, barrier alignments, fault injections,
recovery-ladder rungs and drift-swap decisions with zero cost when off
(the recorder simply does not exist).  `--trace PATH` exports everything
as Chrome `trace_event` JSON for chrome://tracing / Perfetto (and the
`fila trace` summarizer); `--metrics` prints Prometheus text-format
metrics — per-tenant settle-latency percentiles, firing/blocked-time
histograms, and per-interval dummy-vs-data traffic — to stderr.  Storm's
human-readable summary always goes to stderr; stdout carries only the
stats JSON (schema v6, with the nested latency/tenant summaries).

`fila trace <file>` summarizes an exported trace: event counts per kind,
total firing time, steal/stall counts, and per-job span statistics.

JOB FILE GRAMMAR (line oriented, `#` starts a comment):
  job <name>
    inputs <count>
    algorithm <propagation|nonpropagation|none>
    capacity <default buffer capacity>
    edge <src> <dst> [capacity]
    filter <node> <period>
  end
";

fn parse_flag(args: &[String], flag: &str) -> Result<Option<String>, String> {
    let mut i = 0;
    while i < args.len() {
        if args[i] == flag {
            return match args.get(i + 1) {
                Some(v) => Ok(Some(v.clone())),
                None => Err(format!("{flag} needs a value")),
            };
        }
        i += 1;
    }
    Ok(None)
}

fn parse_num<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, String> {
    match parse_flag(args, flag)? {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("{flag}: invalid number `{v}`")),
    }
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn service(workers: usize, max_in_flight: usize, telemetry: bool) -> JobService {
    JobService::new(ServiceConfig {
        workers,
        max_in_flight,
        telemetry,
        ..ServiceConfig::default()
    })
}

/// Storm worker-count resolution: an explicit `--workers N` is used as
/// given; the `0` default floors the pool at two workers even on a
/// single-core host, so cross-worker behaviour (work stealing, and its
/// flight-recorder spans) is exercised everywhere CI runs.
fn storm_workers(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get).max(2)
    }
}

// ---------------------------------------------------------------- run ----

/// One parsed job of a job file.
struct FileJob {
    name: String,
    spec: JobSpec,
}

fn cmd_run(args: &[String]) -> ExitCode {
    let file = match args.first() {
        Some(f) if !f.starts_with("--") => f.clone(),
        _ => {
            eprintln!("fila run: missing <jobfile> (try `fila help`)");
            return ExitCode::FAILURE;
        }
    };
    let workers = match parse_num(args, "--workers", 0usize) {
        Ok(w) => w,
        Err(e) => return fail(&e),
    };
    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read {file}: {e}")),
    };
    let jobs = match parse_job_file(&text) {
        Ok(jobs) => jobs,
        Err(e) => return fail(&format!("{file}: {e}")),
    };
    if jobs.is_empty() {
        return fail(&format!("{file}: no jobs defined"));
    }

    let svc = service(workers, jobs.len().max(16), false);
    let mut tickets: Vec<(String, Result<JobTicket, RejectReason>)> = Vec::new();
    for job in jobs {
        let ticket = svc.submit(job.spec);
        tickets.push((job.name, ticket));
    }
    let mut failures = 0;
    println!("{:<20} {:<12} {:>10} {:>12} {:>10}  plan", "job", "verdict", "msgs", "msgs/sec", "wall");
    for (name, ticket) in tickets {
        match ticket {
            Err(reason) => {
                failures += 1;
                println!("{name:<20} {:<12} {:>10} {:>12} {:>10}  {reason}", "rejected", "-", "-", "-");
            }
            Ok(ticket) => {
                let outcome = ticket.wait();
                let verdict = format!("{:?}", outcome.verdict).to_lowercase();
                if outcome.verdict != JobVerdict::Completed {
                    failures += 1;
                }
                let plan = match ticket.cache_hit {
                    None => "none".to_string(),
                    Some(hit) => {
                        let src = if hit {
                            "cache-hit".to_string()
                        } else {
                            format!("fresh ({:.1?})", ticket.plan_time)
                        };
                        match (ticket.fell_back, ticket.algorithm) {
                            (true, Some(algorithm)) => format!("{src}, fell back to {algorithm}"),
                            _ => src,
                        }
                    }
                };
                let rate = outcome
                    .report
                    .messages_per_sec()
                    .map_or_else(|| "-".to_string(), |r| format!("{r:.0}"));
                println!(
                    "{name:<20} {verdict:<12} {:>10} {rate:>12} {:>10.1?}  {plan}",
                    outcome.report.total_messages(),
                    outcome.report.wall_time(),
                );
            }
        }
    }
    println!("\n{}", svc.stats().to_json());
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn parse_job_file(text: &str) -> Result<Vec<FileJob>, String> {
    let mut jobs = Vec::new();
    let mut current: Option<JobDraft> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        let keyword = words.next().unwrap();
        let rest: Vec<&str> = words.collect();
        let at = |msg: &str| format!("line {}: {msg}", lineno + 1);
        match (keyword, current.as_mut()) {
            ("job", None) => {
                let name = rest.first().ok_or_else(|| at("job needs a name"))?;
                current = Some(JobDraft::new(name));
            }
            ("job", Some(_)) => return Err(at("nested `job` (missing `end`?)")),
            (_, None) => return Err(at("directive outside a job block")),
            ("end", Some(_)) => {
                let draft = current.take().expect("matched Some");
                jobs.push(draft.finish().map_err(|e| at(&e))?);
            }
            (kw, Some(draft)) => draft.directive(kw, &rest).map_err(|e| at(&e))?,
        }
    }
    if current.is_some() {
        return Err("unterminated job block (missing `end`)".into());
    }
    Ok(jobs)
}

struct JobDraft {
    name: String,
    inputs: u64,
    avoidance: AvoidanceChoice,
    default_capacity: u64,
    edges: Vec<(String, String, Option<u64>)>,
    filters: HashMap<String, u64>,
}

impl JobDraft {
    fn new(name: &str) -> Self {
        JobDraft {
            name: name.to_string(),
            inputs: 128,
            avoidance: AvoidanceChoice::Planned(Algorithm::NonPropagation),
            default_capacity: 4,
            edges: Vec::new(),
            filters: HashMap::new(),
        }
    }

    fn directive(&mut self, keyword: &str, rest: &[&str]) -> Result<(), String> {
        let num = |s: &&str| -> Result<u64, String> {
            s.parse().map_err(|_| format!("invalid number `{s}`"))
        };
        match keyword {
            "inputs" => {
                self.inputs = num(rest.first().ok_or("inputs needs a count")?)?;
            }
            "algorithm" => {
                self.avoidance = match *rest.first().ok_or("algorithm needs a value")? {
                    "propagation" => AvoidanceChoice::Planned(Algorithm::Propagation),
                    "nonpropagation" => AvoidanceChoice::Planned(Algorithm::NonPropagation),
                    "none" => AvoidanceChoice::Disabled,
                    other => return Err(format!("unknown algorithm `{other}`")),
                };
            }
            "capacity" => {
                self.default_capacity = num(rest.first().ok_or("capacity needs a value")?)?;
            }
            "edge" => {
                let [src, dst, cap @ ..] = rest else {
                    return Err("edge needs <src> <dst> [capacity]".into());
                };
                let cap = cap.first().map(num).transpose()?;
                self.edges.push((src.to_string(), dst.to_string(), cap));
            }
            "filter" => {
                let [node, period] = rest else {
                    return Err("filter needs <node> <period>".into());
                };
                self.filters.insert(node.to_string(), num(period)?);
            }
            other => return Err(format!("unknown directive `{other}`")),
        }
        Ok(())
    }

    fn finish(self) -> Result<FileJob, String> {
        if self.edges.is_empty() {
            return Err(format!("job {}: no edges", self.name));
        }
        let mut b = GraphBuilder::new().default_capacity(self.default_capacity);
        for (src, dst, cap) in &self.edges {
            match cap {
                Some(c) => b.edge_with_capacity(src, dst, *c),
                None => b.edge(src, dst),
            }
            .map_err(|e| format!("job {}: {e}", self.name))?;
        }
        let graph = b
            .build()
            .map_err(|e| format!("job {}: {e}", self.name))?;
        let mut periods = vec![1u64; graph.node_count()];
        for (name, period) in &self.filters {
            let node = graph
                .node_by_name(name)
                .ok_or_else(|| format!("job {}: filter on unknown node `{name}`", self.name))?;
            periods[node.index()] = (*period).max(1);
        }
        let spec = JobSpec::new(graph, FilterSpec::PerNode(periods), self.inputs)
            .avoidance(self.avoidance);
        Ok(FileJob {
            name: self.name,
            spec,
        })
    }
}

// -------------------------------------------------------------- trace ----

/// `fila trace <file>`: summarize a Chrome trace exported by
/// `fila storm --trace`.  The exporter writes exactly one event per line,
/// so this stays a line scanner — no JSON parser needed (or available:
/// this workspace is serde-free by design).
fn cmd_trace(args: &[String]) -> ExitCode {
    let file = match args.first() {
        Some(f) if !f.starts_with("--") => f.clone(),
        _ => {
            eprintln!("fila trace: missing <file> (try `fila help`)");
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read {file}: {e}")),
    };
    // One (count, total span µs) accumulator per event name.
    let mut kinds: Vec<(String, u64, f64)> = Vec::new();
    let mut jobs = std::collections::BTreeSet::new();
    let mut workers = std::collections::BTreeSet::new();
    let mut first_ts = f64::MAX;
    let mut last_ts = f64::MIN;
    let mut events = 0u64;
    let field = |line: &str, key: &str| -> Option<String> {
        let at = line.find(key)? + key.len();
        let rest = &line[at..];
        let end = rest.find([',', '}', '"']).unwrap_or(rest.len());
        Some(rest[..end].to_string())
    };
    for line in text.lines() {
        let Some(name) = field(line, "\"name\":\"") else {
            continue; // array brackets / blank lines
        };
        events += 1;
        let ts: f64 = field(line, "\"ts\":").and_then(|v| v.parse().ok()).unwrap_or(0.0);
        let dur: f64 = field(line, "\"dur\":").and_then(|v| v.parse().ok()).unwrap_or(0.0);
        first_ts = first_ts.min(ts);
        last_ts = last_ts.max(ts + dur);
        if let Some(pid) = field(line, "\"pid\":") {
            jobs.insert(pid);
        }
        if let Some(tid) = field(line, "\"tid\":") {
            workers.insert(tid);
        }
        match kinds.iter_mut().find(|(n, _, _)| *n == name) {
            Some((_, count, total)) => {
                *count += 1;
                *total += dur;
            }
            None => kinds.push((name, 1, dur)),
        }
    }
    if events == 0 {
        return fail(&format!("{file}: no trace events found"));
    }
    kinds.sort_by_key(|k| std::cmp::Reverse(k.1));
    println!(
        "{file}: {events} events, {} jobs, {} worker lanes, {:.1} ms recorded",
        jobs.len(),
        workers.len(),
        (last_ts - first_ts) / 1_000.0
    );
    println!("{:<16} {:>10} {:>14}", "event", "count", "total ms");
    for (name, count, total_us) in &kinds {
        println!("{name:<16} {count:>10} {:>14.3}", total_us / 1_000.0);
    }
    ExitCode::SUCCESS
}

// -------------------------------------------------------------- storm ----

fn cmd_storm(args: &[String]) -> ExitCode {
    let jobs = match parse_num(args, "--jobs", 256usize) {
        Ok(j) => j.max(1),
        Err(e) => return fail(&e),
    };
    let seed = match parse_num(args, "--seed", 0xF11A_u64) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    let workers = match parse_num(args, "--workers", 0usize) {
        Ok(w) => w,
        Err(e) => return fail(&e),
    };
    let json_path = match parse_flag(args, "--json") {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    let kill_rate = match parse_num(args, "--kill-rate", 0.0f64) {
        Ok(k) if (0.0..=1.0).contains(&k) => k,
        Ok(k) => return fail(&format!("--kill-rate: {k} is not within 0.0..=1.0")),
        Err(e) => return fail(&e),
    };
    let drift_rate = match parse_num(args, "--drift-rate", 0.0f64) {
        Ok(d) if (0.0..=1.0).contains(&d) => d,
        Ok(d) => return fail(&format!("--drift-rate: {d} is not within 0.0..=1.0")),
        Err(e) => return fail(&e),
    };
    let chaos = match parse_flag(args, "--chaos") {
        Ok(None) => None,
        Ok(Some(v)) => match v.parse::<u64>() {
            Ok(s) => Some(s),
            Err(_) => return fail(&format!("--chaos: invalid seed `{v}`")),
        },
        Err(e) => return fail(&e),
    };
    let trace_path = match parse_flag(args, "--trace") {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    let metrics = has_flag(args, "--metrics");
    let telemetry = trace_path.is_some() || metrics;
    let workers = storm_workers(workers);
    if let Some(chaos_seed) = chaos {
        if drift_rate > 0.0 {
            return fail("--chaos and --drift-rate are separate smokes; pick one");
        }
        // In chaos mode --kill-rate is the fault-plan arming probability.
        let arm_rate = if kill_rate > 0.0 { kill_rate } else { 0.25 };
        return cmd_storm_chaos(
            jobs, seed, chaos_seed, arm_rate, workers, json_path, trace_path, metrics,
        );
    }

    let shapes = job_mix_with_drift(seed, jobs, drift_rate);
    let svc = service(workers, jobs, telemetry);
    let policy = DriftPolicy::default();
    let started = Instant::now();
    // Drifting tenants block their supervisor until they settle, so each
    // one runs under a scoped supervision thread while the main thread
    // drives the rest of the storm.
    std::thread::scope(|scope| {
    let svc = &svc;
    let policy = &policy;
    let mut tickets = Vec::new();
    let mut supervisions = Vec::new();
    let mut rejected_unplannable = 0u64;
    let mut rejected_other = 0u64;
    // Fault injection: a deterministic fraction of the admitted jobs gets
    // a live barrier snapshot taken right after admission, *while the pool
    // churns through the rest of the storm*.  The originals are not
    // actually torn down — they run to their verdicts and serve as the
    // uninterrupted references the resumed runs are checked against.
    let mut snapshots = Vec::new();
    let mut killed = 0u64;
    let mut outran = 0u64;
    let mut mismatched = 0u64;
    for shape in &shapes {
        if shape.kind == JobKind::Drifting {
            let actual = shape
                .actual_periods
                .clone()
                .expect("drifting shapes carry an executed profile");
            let spec = JobSpec::from_periods(
                shape.graph.clone(),
                shape.periods.clone(),
                shape.inputs,
                shape.avoidance,
            )
            .with_tenant(shape.tenant)
            .with_actual_filters(FilterSpec::PerNode(actual));
            match svc.submit(spec.clone()) {
                Ok(ticket) => {
                    let handle = scope.spawn(move || svc.supervise(&spec, ticket, policy));
                    supervisions.push((shape, handle));
                }
                Err(reason) => {
                    rejected_other += 1;
                    eprintln!("storm: {} rejected: {reason}", shape.label);
                }
            }
            continue;
        }
        let spec = JobSpec::from_periods(
            shape.graph.clone(),
            shape.periods.clone(),
            shape.inputs,
            shape.avoidance,
        )
        .with_tenant(shape.tenant);
        match svc.submit(spec) {
            Ok(t) => {
                let i = tickets.len();
                if kill_rate > 0.0
                    && (mix(seed ^ 0xD1E ^ i as u64) as f64) < kill_rate * u64::MAX as f64
                {
                    match svc.checkpoint_job(&t) {
                        Ok(snapshot) => {
                            killed += 1;
                            snapshots.push((i, snapshot));
                        }
                        Err(fila::runtime::SnapshotError::Settled(_)) => outran += 1,
                        Err(e) => {
                            mismatched += 1;
                            eprintln!("storm: {} checkpoint failed: {e}", shape.label);
                        }
                    }
                }
                tickets.push((shape, t));
            }
            Err(RejectReason::Unplannable(_)) => {
                rejected_unplannable += 1;
                assert!(
                    shape.kind == JobKind::Unplannable,
                    "only Unplannable shapes may be rejected as unplannable, got {}",
                    shape.label
                );
            }
            Err(other) => {
                rejected_other += 1;
                eprintln!("storm: {} rejected: {other}", shape.label);
            }
        }
    }
    let mut completed = 0u64;
    let mut deadlocked = 0u64;
    let mut fell_back = 0u64;
    let mut other = 0u64;
    let mut outcomes = Vec::with_capacity(tickets.len());
    for (shape, ticket) in &tickets {
        let outcome = ticket.wait();
        if outcome.fell_back {
            fell_back += 1;
        }
        match outcome.verdict {
            JobVerdict::Completed => completed += 1,
            JobVerdict::Deadlocked => {
                deadlocked += 1;
                assert!(
                    shape.kind == JobKind::Deadlocker,
                    "only Deadlocker shapes may deadlock, got {}",
                    shape.label
                );
            }
            _ => other += 1,
        }
        outcomes.push(outcome);
    }
    // Restore every snapshot and pin the resumed run to its reference:
    // same verdict, same cumulative per-edge counts, same sink firings.
    let mut restored = 0u64;
    for (i, snapshot) in &snapshots {
        let (shape, _) = &tickets[*i];
        let original = &outcomes[*i];
        let spec = JobSpec::from_periods(
            shape.graph.clone(),
            shape.periods.clone(),
            shape.inputs,
            shape.avoidance,
        )
        .with_tenant(shape.tenant);
        match svc.resume_job(spec, snapshot) {
            Ok(ticket) => {
                let resumed = ticket.wait();
                if resumed.verdict == original.verdict
                    && resumed.report.per_edge_data == original.report.per_edge_data
                    && resumed.report.per_edge_dummies == original.report.per_edge_dummies
                    && resumed.report.sink_firings == original.report.sink_firings
                {
                    restored += 1;
                } else {
                    mismatched += 1;
                    eprintln!(
                        "storm: {} resumed run diverged from its reference \
                         ({:?} vs {:?})",
                        shape.label, resumed.verdict, original.verdict
                    );
                }
            }
            Err(e) => {
                mismatched += 1;
                eprintln!("storm: {} resume rejected: {e}", shape.label);
            }
        }
    }
    // Join the supervisors and pin every swapped job to its reference: a
    // hot-swapped (or replanned) run must complete with exactly the
    // per-edge data counts and sink firings of an uninterrupted run of
    // its *observed* profile under the swapped-in plan — data counts are
    // a property of the Kahn network, not of the protecting plan or of
    // where the migration cut fell.
    let mut drifting = 0u64;
    let mut hot_swapped = 0u64;
    let mut replanned = 0u64;
    let mut drift_cancelled = 0u64;
    let mut drift_settled = 0u64;
    let swap_matches_reference =
        |shape: &JobShape, outcome: &fila_service::JobOutcome, swap: &SwapReport| -> bool {
            let reference = Planner::new(&shape.graph)
                .algorithm(swap.algorithm)
                .certify(&swap.observed_periods)
                .ok()
                .map(|c| {
                    Simulator::new(&shape.executed_topology())
                        .with_plan(&c.plan)
                        .run(shape.inputs)
                });
            outcome.verdict == JobVerdict::Completed
                && reference.as_ref().is_some_and(|r| {
                    r.completed
                        && r.per_edge_data == outcome.report.per_edge_data
                        && r.sink_firings == outcome.report.sink_firings
                })
        };
    for (shape, handle) in supervisions {
        drifting += 1;
        match handle.join().expect("supervisor threads do not panic") {
            AdaptiveOutcome::Settled(outcome) => {
                drift_settled += 1;
                if outcome.verdict != JobVerdict::Completed {
                    other += 1;
                    eprintln!(
                        "storm: {} settled {:?} before the ladder could act",
                        shape.label, outcome.verdict
                    );
                }
            }
            AdaptiveOutcome::HotSwapped { outcome, swap } => {
                hot_swapped += 1;
                if !swap_matches_reference(shape, &outcome, &swap) {
                    mismatched += 1;
                    eprintln!(
                        "storm: {} hot-swapped run diverged from its \
                         observed-profile reference ({:?})",
                        shape.label, outcome.verdict
                    );
                }
            }
            AdaptiveOutcome::Replanned { outcome, swap } => {
                replanned += 1;
                if !swap_matches_reference(shape, &outcome, &swap) {
                    mismatched += 1;
                    eprintln!(
                        "storm: {} replanned run diverged from its \
                         observed-profile reference ({:?})",
                        shape.label, outcome.verdict
                    );
                }
            }
            AdaptiveOutcome::DriftCancelled { offenders, .. } => {
                drift_cancelled += 1;
                if offenders.is_empty() {
                    mismatched += 1;
                    eprintln!("storm: {} drift-cancelled without offenders", shape.label);
                }
            }
        }
    }
    let wall = started.elapsed();
    let stats = svc.stats();
    eprintln!(
        "storm: {jobs} jobs in {wall:.2?} — {completed} completed, {deadlocked} deadlocked, \
         {rejected_unplannable} rejected unplannable, {rejected_other} rejected other, {other} other; \
         {} certified ({fell_back} via fallback, {} uncertified Non-Prop); \
         cache {:.0}% hits ({} plans for {} planned jobs), cert cache {:.0}% hits",
        stats.certified,
        stats.uncertified_nonprop,
        stats.cache_hit_rate() * 100.0,
        stats.plan_cache_misses,
        stats.plan_cache_hits + stats.plan_cache_misses,
        stats.cert_cache_hit_rate() * 100.0,
    );
    if kill_rate > 0.0 {
        eprintln!(
            "storm kill/restore: {killed} snapshots captured, {outran} settled before \
             their checkpoint, {restored} restored with identical outcomes, \
             {mismatched} mismatched"
        );
    }
    if drift_rate > 0.0 {
        eprintln!(
            "storm drift: {drifting} drifting tenants — {hot_swapped} hot-swapped, \
             {replanned} replanned, {drift_cancelled} drift-cancelled, \
             {drift_settled} settled untouched"
        );
    }
    let json = stats.to_json();
    println!("{json}");
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, format!("{json}\n")) {
            return fail(&format!("cannot write {path}: {e}"));
        }
    }
    if let Some(code) = export_telemetry(svc, trace_path.as_deref(), metrics) {
        return code;
    }
    if rejected_other == 0 && other == 0 && mismatched == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
    })
}

/// Flight-recorder export shared by the storm modes: write the Chrome
/// trace to `trace_path` and/or print the Prometheus text metrics to
/// stderr (stdout stays reserved for the stats JSON).  Returns an exit
/// code only on I/O failure.
fn export_telemetry(svc: &JobService, trace_path: Option<&str>, metrics: bool) -> Option<ExitCode> {
    if let Some(path) = trace_path {
        let telemetry = svc.telemetry().expect("--trace switches the recorder on");
        let trace = fila::runtime::telemetry::chrome_trace(&telemetry.all_events());
        if let Err(e) = std::fs::write(path, trace) {
            return Some(fail(&format!("cannot write {path}: {e}")));
        }
        let dropped = telemetry.dropped();
        if dropped > 0 {
            eprintln!("storm: flight recorder dropped {dropped} events (full rings)");
        }
    }
    if metrics {
        let m = svc.metrics().expect("--metrics switches the recorder on");
        if let Some(telemetry) = svc.telemetry() {
            m.ingest(&telemetry.drain_new());
        }
        eprint!("{}", m.prometheus());
    }
    None
}

// -------------------------------------------------------- chaos storm ----

/// `fila storm --chaos SEED`: the same mixed workload, but the pool itself
/// is armed with a deterministic seeded [`FaultPlan`] and every job runs
/// under the supervised recovery ladder of
/// [`JobService::run_recoverable`].  Every outcome — uninterrupted or
/// recovered — is cross-checked against an uninterrupted [`Simulator`]
/// reference run of the same shape: exact-mode recoveries must reproduce
/// the reference verdict, per-edge data counts, and sink firings
/// bit-exactly; approximate recoveries may trail each count by at most
/// the divergence the splice accepted.
#[allow(clippy::too_many_arguments)]
fn cmd_storm_chaos(
    jobs: usize,
    seed: u64,
    chaos_seed: u64,
    arm_rate: f64,
    workers: usize,
    json_path: Option<String>,
    trace_path: Option<String>,
    metrics: bool,
) -> ExitCode {
    // Injected fault panics are part of the experiment: silence their
    // default-hook stack traces so the storm output stays readable, but
    // keep the hook for any *real* panic.
    let previous_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .map(|s| s.starts_with("injected:"))
            .unwrap_or(false);
        if !injected {
            previous_hook(info);
        }
    }));

    let shapes = job_mix_with_drift(seed, jobs, 0.0);
    let faults = Arc::new(FaultPlan::seeded(chaos_seed).kill_rate(arm_rate));
    let svc = JobService::new(ServiceConfig {
        workers,
        max_in_flight: jobs,
        faults: Some(faults),
        telemetry: trace_path.is_some() || metrics,
        ..ServiceConfig::default()
    });
    let started = Instant::now();

    let mut uninterrupted = 0u64;
    let mut recovered_jobs = 0u64;
    let mut crashes = 0u64;
    let mut partial_restarts = 0u64;
    let mut midbarrier_partial_restarts = 0u64;
    let mut genesis_restarts = 0u64;
    let mut approx_divergent = 0u64;
    let mut exhausted = 0u64;
    let mut rejected_unplannable = 0u64;
    let mut rejected_other = 0u64;
    let mut mismatched = 0u64;

    std::thread::scope(|scope| {
        let svc = &svc;
        let mut handles = Vec::new();
        for (i, shape) in shapes.iter().enumerate() {
            let spec = JobSpec::from_periods(
                shape.graph.clone(),
                shape.periods.clone(),
                shape.inputs,
                shape.avoidance,
            )
            .with_tenant(shape.tenant);
            // Alternate what recovery is allowed to give up, so one storm
            // exercises both ladder orders: exact (full restore first,
            // partial only at zero divergence) and approximate (partial
            // subgraph restart first, bounded divergence accepted).
            let mode = if i % 2 == 0 {
                RecoveryMode::Exact
            } else {
                RecoveryMode::Approximate { max_divergence: 256 }
            };
            let checkpoints = CheckpointPolicy {
                every_n_inputs: (shape.inputs / 6).max(16),
                max_snapshots: 4,
            };
            let policy = RecoveryPolicy {
                max_attempts: 12,
                initial_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(20),
                mode,
                ..RecoveryPolicy::default()
            };
            handles.push((
                shape,
                mode,
                scope.spawn(move || svc.run_recoverable(&spec, &checkpoints, &policy)),
            ));
        }
        for (shape, mode, handle) in handles {
            match handle.join().expect("recovery supervisors do not panic") {
                Err(RejectReason::Unplannable(_)) => {
                    rejected_unplannable += 1;
                    assert!(
                        shape.kind == JobKind::Unplannable,
                        "only Unplannable shapes may be rejected as unplannable, got {}",
                        shape.label
                    );
                }
                Err(other) => {
                    rejected_other += 1;
                    eprintln!("storm: {} rejected: {other}", shape.label);
                }
                Ok(RecoveryOutcome::Uninterrupted(outcome)) => {
                    uninterrupted += 1;
                    if let Err(why) = chaos_matches_reference(shape, &outcome, 0) {
                        mismatched += 1;
                        eprintln!(
                            "storm: {} uninterrupted run diverged from its reference: {why}",
                            shape.label
                        );
                    }
                }
                Ok(RecoveryOutcome::Recovered { outcome, report }) => {
                    recovered_jobs += 1;
                    crashes += u64::from(report.crashes);
                    if report.partial_restart {
                        partial_restarts += 1;
                        if report.midbarrier_crash {
                            midbarrier_partial_restarts += 1;
                        }
                    }
                    if report.genesis_restart {
                        genesis_restarts += 1;
                    }
                    // An exact-mode ladder (and any zero-divergence
                    // recovery) must be bit-exact; an approximate splice
                    // may trail the reference by what it reported losing.
                    let bound = match mode {
                        RecoveryMode::Exact => 0,
                        RecoveryMode::Approximate { .. } => report.divergence,
                    };
                    if bound > 0 {
                        approx_divergent += 1;
                    }
                    if let Err(why) = chaos_matches_reference(shape, &outcome, bound) {
                        mismatched += 1;
                        eprintln!(
                            "storm: {} recovered run ({} crashes, divergence {}) \
                             diverged from its reference: {why}",
                            shape.label, report.crashes, report.divergence
                        );
                    }
                }
                Ok(RecoveryOutcome::Exhausted { report, last_error }) => {
                    exhausted += 1;
                    eprintln!(
                        "storm: {} recovery exhausted after {} attempts: {last_error}",
                        shape.label, report.attempts
                    );
                }
            }
        }
    });

    let wall = started.elapsed();
    let stats = svc.stats();
    eprintln!(
        "storm chaos: seed={chaos_seed} arm-rate={arm_rate} — {jobs} jobs in {wall:.2?}: \
         uninterrupted={uninterrupted} recovered={recovered_jobs} crashes={crashes} \
         partial_restarts={partial_restarts} \
         midbarrier_partial_restarts={midbarrier_partial_restarts} \
         genesis_restarts={genesis_restarts} approx_divergent={approx_divergent} \
         exhausted={exhausted} rejected_unplannable={rejected_unplannable} \
         rejected_other={rejected_other} mismatched={mismatched}"
    );
    let json = stats.to_json();
    println!("{json}");
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, format!("{json}\n")) {
            return fail(&format!("cannot write {path}: {e}"));
        }
    }
    if let Some(code) = export_telemetry(&svc, trace_path.as_deref(), metrics) {
        return code;
    }
    if rejected_other == 0 && exhausted == 0 && mismatched == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Pins a chaos-storm outcome to an uninterrupted [`Simulator`] reference
/// run of the same shape.  `bound` is the tolerated per-edge data deficit
/// (0 for exact-mode and uninterrupted runs); the sink-firing deficit is
/// allowed `bound` per sink, since one lost frontier message suppresses at
/// most one firing at each downstream sink.  Dummy counts are *not*
/// compared: they are a property of the protecting plan, and the service
/// may certify a different fallback plan than the reference planner.
fn chaos_matches_reference(
    shape: &JobShape,
    outcome: &fila_service::JobOutcome,
    bound: u64,
) -> Result<(), String> {
    let Some(reference) = chaos_reference(shape) else {
        // No certifiable reference plan (the service admitted via a path
        // the bare planner cannot reproduce): pin the verdict only.
        return if outcome.verdict == JobVerdict::Completed {
            Ok(())
        } else {
            Err(format!("no reference plan and verdict {:?}", outcome.verdict))
        };
    };
    let expected = if reference.completed {
        JobVerdict::Completed
    } else {
        JobVerdict::Deadlocked
    };
    if outcome.verdict != expected {
        return Err(format!("verdict {:?}, reference {expected:?}", outcome.verdict));
    }
    let got = &outcome.report.per_edge_data;
    if got.len() != reference.per_edge_data.len() {
        return Err("per-edge count shapes disagree".into());
    }
    for (e, (g, r)) in got.iter().zip(&reference.per_edge_data).enumerate() {
        if g > r || r - g > bound {
            return Err(format!("edge {e}: data {g} vs reference {r} (bound {bound})"));
        }
    }
    let sink_bound = bound.saturating_mul(shape.graph.sinks().len() as u64);
    let (s, r) = (outcome.report.sink_firings, reference.sink_firings);
    if s > r || r - s > sink_bound {
        return Err(format!("sink firings {s} vs reference {r} (bound {sink_bound})"));
    }
    Ok(())
}

/// An uninterrupted reference run for a chaos-storm shape: planned shapes
/// simulate under the requested protocol's certified plan (falling back to
/// the other protocol exactly like admission does), bare shapes simulate
/// unprotected — deadlockers deterministically reach their unique blocked
/// quiescent state, so even their counts are pinnable.
fn chaos_reference(shape: &JobShape) -> Option<ExecutionReport> {
    let topology = shape.executed_topology();
    match shape.avoidance {
        None => Some(Simulator::new(&topology).run(shape.inputs)),
        Some(requested) => {
            let fallback = match requested {
                Algorithm::Propagation => Algorithm::NonPropagation,
                Algorithm::NonPropagation => Algorithm::Propagation,
            };
            [requested, fallback].into_iter().find_map(|alg| {
                Planner::new(&shape.graph)
                    .algorithm(alg)
                    .certify(&shape.periods)
                    .ok()
                    .map(|c| {
                        Simulator::new(&topology)
                            .with_plan(&c.plan)
                            .run(shape.inputs)
                    })
            })
        }
    }
}

/// splitmix64 finaliser — deterministic per-job kill selection.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("fila: {msg}");
    ExitCode::FAILURE
}
