//! # fila — filtering-aware deadlock avoidance for streaming computation
//!
//! `fila` is a reproduction of *"Efficient Deadlock Avoidance for Streaming
//! Computation with Filtering"* (Buhler, Agrawal, Li, Chamberlain; PPoPP
//! 2012).  It provides:
//!
//! * a directed acyclic multigraph model of streaming applications with
//!   finite channel buffers ([`graph`]),
//! * series-parallel decomposition ([`spdag`]),
//! * the paper's compile-time **dummy-interval** algorithms for the
//!   Propagation and Non-Propagation deadlock-avoidance protocols on
//!   SP-DAGs, CS4 DAGs (SP-ladders) and, via an exponential baseline,
//!   general DAGs ([`avoidance`]),
//! * a streaming runtime with data-dependent filtering, bounded channels,
//!   dummy-message wrappers and deadlock detection ([`runtime`]),
//! * a multi-tenant job service — plan cache, admission control and
//!   shared-pool execution of many concurrent dataflows ([`service`]), and
//! * workload generators and the exact graphs of the paper's figures
//!   ([`workloads`]).
//!
//! ## Quickstart
//!
//! ```
//! use fila::prelude::*;
//!
//! // Fig. 3 of the paper: a two-branch cycle with known dummy intervals.
//! let g = fila::workloads::figures::fig3_cycle();
//! let plan = Planner::new(&g)
//!     .algorithm(Algorithm::Propagation)
//!     .plan()
//!     .expect("fig3 is series-parallel");
//! let ab = g.edge_by_names("a", "b").unwrap();
//! assert_eq!(plan.interval(ab), DummyInterval::Finite(6));
//! ```

pub use fila_avoidance as avoidance;
pub use fila_graph as graph;
pub use fila_runtime as runtime;
pub use fila_service as service;
pub use fila_spdag as spdag;
pub use fila_workloads as workloads;

/// The most commonly used types across the workspace.
pub mod prelude {
    pub use fila_avoidance::{
        classify, Algorithm, DummyInterval, GraphClass, PlanCache, Planner, Rounding,
    };
    pub use fila_graph::{EdgeId, Fingerprint, Graph, GraphBuilder, NodeId};
    pub use fila_runtime::{
        Batching, CheckpointOutcome, ExecutionReport, JobSnapshot, JobVerdict, PooledExecutor,
        RestoreError, Scheduler, SharedPool, Simulator, SnapshotError, SwapToken,
        ThreadedExecutor, Topology,
    };
    pub use fila_service::{
        AdaptiveOutcome, AvoidanceChoice, DriftPolicy, FilterSpec, JobService, JobSpec,
        RejectReason, ServiceConfig, ServiceStats, SwapReport,
    };
    pub use fila_spdag::{recognize, SpDecomposition, SpSpec};
}
