//! Consistency checks on SP decompositions and the structural lemmas of §III.
//!
//! These checks are used by tests (including property tests in
//! `fila-avoidance` and the integration suite) to make sure that any
//! decomposition handed to the interval algorithms — whether produced by the
//! recogniser or by the composer — actually describes the graph it claims
//! to describe, and that the cycle-structure lemmas the algorithms rely on
//! hold for it.

use fila_graph::{cycles, GraphError, Graph, Result};

use crate::forest::{SpDecomposition, SpKind};

/// Validates that `d` is a structurally consistent decomposition of `g`:
///
/// * every graph edge appears as exactly one leaf;
/// * every leaf's terminals match the edge's endpoints;
/// * series children chain sink-to-source, parallel children share
///   terminals (also enforced by debug assertions at construction time);
/// * the root's terminals are the graph's unique source and sink.
pub fn validate_decomposition(g: &Graph, d: &SpDecomposition) -> Result<()> {
    let (source, sink) = g.validate_two_terminal()?;
    if d.source() != source || d.sink() != sink {
        return Err(GraphError::Structure(format!(
            "decomposition terminals ({}, {}) do not match graph terminals ({source}, {sink})",
            d.source(),
            d.sink()
        )));
    }
    let mut seen = vec![false; g.edge_count()];
    for comp in d.forest.post_order(d.root) {
        let c = d.forest.component(comp);
        match &c.kind {
            SpKind::Leaf(e) => {
                let (s, t) = g.endpoints(*e);
                if s != c.source || t != c.sink {
                    return Err(GraphError::Structure(format!(
                        "leaf component for edge {e} has wrong terminals"
                    )));
                }
                if seen[e.index()] {
                    return Err(GraphError::Structure(format!(
                        "edge {e} appears in more than one leaf"
                    )));
                }
                seen[e.index()] = true;
            }
            SpKind::Series(children) => {
                if children.len() < 2 {
                    return Err(GraphError::Structure("series node with < 2 children".into()));
                }
                for pair in children.windows(2) {
                    if d.forest.sink(pair[0]) != d.forest.source(pair[1]) {
                        return Err(GraphError::Structure(
                            "series children do not chain sink-to-source".into(),
                        ));
                    }
                }
                if d.forest.source(children[0]) != c.source
                    || d.forest.sink(*children.last().expect("non-empty")) != c.sink
                {
                    return Err(GraphError::Structure(
                        "series terminals do not match outer children".into(),
                    ));
                }
            }
            SpKind::Parallel(children) => {
                if children.len() < 2 {
                    return Err(GraphError::Structure("parallel node with < 2 children".into()));
                }
                for &child in children {
                    if d.forest.source(child) != c.source || d.forest.sink(child) != c.sink {
                        return Err(GraphError::Structure(
                            "parallel child terminals do not match parent".into(),
                        ));
                    }
                }
            }
        }
    }
    if let Some(missing) = seen.iter().position(|&s| !s) {
        return Err(GraphError::Structure(format!(
            "edge index {missing} is not covered by any leaf"
        )));
    }
    Ok(())
}

/// Checks Lemma III.4 by brute force: every undirected simple cycle of an
/// SP-DAG has exactly one source and one sink.  Exponential in the worst
/// case — intended for test-sized graphs only.
pub fn check_cycles_single_source_sink(g: &Graph) -> bool {
    cycles::all_cycles_single_source_sink(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::{build_sp, SpSpec};
    use crate::forest::SpForest;
    use crate::reduce::reduce;
    use fila_graph::GraphBuilder;

    #[test]
    fn recognised_decompositions_validate() {
        let mut b = GraphBuilder::new();
        b.chain(&["a", "b", "e", "f"]).unwrap();
        b.chain(&["a", "c", "d", "f"]).unwrap();
        b.edge("a", "f").unwrap();
        let g = b.build().unwrap();
        let d = reduce(&g).unwrap().into_decomposition().unwrap();
        validate_decomposition(&g, &d).unwrap();
    }

    #[test]
    fn composed_decompositions_validate() {
        let spec = SpSpec::Series(vec![
            SpSpec::MultiEdge(vec![1, 2]),
            SpSpec::Parallel(vec![SpSpec::Edge(3), SpSpec::pipeline(&[4, 5])]),
        ]);
        let (g, d) = build_sp(&spec);
        validate_decomposition(&g, &d).unwrap();
    }

    #[test]
    fn missing_edge_is_rejected() {
        let mut b = GraphBuilder::new();
        let e1 = b.edge("a", "b").unwrap();
        b.edge("a", "b").unwrap();
        let g = b.build().unwrap();
        // Decomposition that pretends the graph has only one edge.
        let mut forest = SpForest::new();
        let root = forest.add_leaf(&g, e1);
        let d = SpDecomposition { forest, root };
        assert!(validate_decomposition(&g, &d).is_err());
    }

    #[test]
    fn lemma_iii4_holds_for_generated_sp_dags() {
        let spec = SpSpec::Series(vec![
            SpSpec::Parallel(vec![
                SpSpec::pipeline(&[1, 1, 1]),
                SpSpec::Edge(2),
                SpSpec::Series(vec![SpSpec::MultiEdge(vec![1, 1]), SpSpec::Edge(1)]),
            ]),
            SpSpec::Parallel(vec![SpSpec::Edge(1), SpSpec::Edge(2)]),
        ]);
        let (g, _) = build_sp(&spec);
        assert!(check_cycles_single_source_sink(&g));
    }

    #[test]
    fn butterfly_fails_cycle_check() {
        let mut b = GraphBuilder::new();
        for (s, t) in [
            ("x", "a"), ("x", "b"),
            ("a", "c"), ("a", "d"), ("b", "c"), ("b", "d"),
            ("c", "y"), ("d", "y"),
        ] {
            b.edge(s, t).unwrap();
        }
        let g = b.build().unwrap();
        assert!(!check_cycles_single_source_sink(&g));
    }
}
