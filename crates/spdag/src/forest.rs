//! Arena-based series-parallel component trees.
//!
//! The paper's algorithms are stated as traversals of the tree `T` produced
//! by decomposing an SP-DAG according to its recursive construction: leaves
//! are single edges, internal nodes are labelled `Sc` (series) or `Pc`
//! (parallel).  We store such trees in an arena ([`SpForest`]) so that a
//! single reduction pass over a non-SP graph can produce many independent
//! trees (one per surviving skeleton edge) without allocation churn, and so
//! that components can be addressed by small copyable ids ([`CompId`]).
//!
//! Compositions are **n-ary**: `Series([a, b, c])` means `Sc(Sc(a, b), c)`
//! and `Parallel([a, b, c])` means `Pc(Pc(a, b), c)`.  The interval
//! algorithms only ever need "this child" versus "the other children
//! combined", so n-ary nodes lose no information while keeping trees
//! shallow.

use fila_graph::{EdgeId, Graph, NodeId};

/// Identifier of a component inside an [`SpForest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CompId(pub(crate) u32);

impl CompId {
    /// The dense index of this component.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The kind of a component: a single graph edge, or a series / parallel
/// composition of child components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpKind {
    /// A single original graph edge.
    Leaf(EdgeId),
    /// Serial composition of the children, in pipeline order: the sink of
    /// `children[i]` is the source of `children[i + 1]`.
    Series(Vec<CompId>),
    /// Parallel composition of the children: all children share this
    /// component's source and sink.
    Parallel(Vec<CompId>),
}

/// A component of an SP decomposition: its kind plus its two terminals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpComponent {
    /// What the component is made of.
    pub kind: SpKind,
    /// The component's source terminal in the original graph.
    pub source: NodeId,
    /// The component's sink terminal in the original graph.
    pub sink: NodeId,
}

/// An arena of SP components; may hold several disjoint trees.
#[derive(Debug, Clone, Default)]
pub struct SpForest {
    comps: Vec<SpComponent>,
}

impl SpForest {
    /// Creates an empty forest.
    pub fn new() -> Self {
        SpForest::default()
    }

    /// Number of components in the arena.
    pub fn len(&self) -> usize {
        self.comps.len()
    }

    /// True if the arena holds no components.
    pub fn is_empty(&self) -> bool {
        self.comps.is_empty()
    }

    /// Adds a leaf component for a single graph edge.
    pub fn add_leaf(&mut self, g: &Graph, edge: EdgeId) -> CompId {
        let (src, sink) = g.endpoints(edge);
        self.push(SpComponent {
            kind: SpKind::Leaf(edge),
            source: src,
            sink,
        })
    }

    /// Adds a series composition of `children` (already in pipeline order).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if consecutive children do not share a
    /// terminal, since that indicates a broken construction.
    pub fn add_series(&mut self, children: Vec<CompId>) -> CompId {
        debug_assert!(children.len() >= 2, "series composition needs >= 2 children");
        for pair in children.windows(2) {
            debug_assert_eq!(
                self.sink(pair[0]),
                self.source(pair[1]),
                "series children must chain sink-to-source"
            );
        }
        let source = self.source(children[0]);
        let sink = self.sink(*children.last().expect("non-empty"));
        self.push(SpComponent {
            kind: SpKind::Series(children),
            source,
            sink,
        })
    }

    /// Adds a parallel composition of `children` (all sharing terminals).
    pub fn add_parallel(&mut self, children: Vec<CompId>) -> CompId {
        debug_assert!(children.len() >= 2, "parallel composition needs >= 2 children");
        let source = self.source(children[0]);
        let sink = self.sink(children[0]);
        for &c in &children {
            debug_assert_eq!(self.source(c), source, "parallel children share a source");
            debug_assert_eq!(self.sink(c), sink, "parallel children share a sink");
        }
        self.push(SpComponent {
            kind: SpKind::Parallel(children),
            source,
            sink,
        })
    }

    fn push(&mut self, c: SpComponent) -> CompId {
        let id = CompId(self.comps.len() as u32);
        self.comps.push(c);
        id
    }

    /// Returns the component for `id`.
    #[inline]
    pub fn component(&self, id: CompId) -> &SpComponent {
        &self.comps[id.index()]
    }

    /// Source terminal of a component.
    #[inline]
    pub fn source(&self, id: CompId) -> NodeId {
        self.comps[id.index()].source
    }

    /// Sink terminal of a component.
    #[inline]
    pub fn sink(&self, id: CompId) -> NodeId {
        self.comps[id.index()].sink
    }

    /// The children of a component (empty for leaves).
    pub fn children(&self, id: CompId) -> &[CompId] {
        match &self.comps[id.index()].kind {
            SpKind::Leaf(_) => &[],
            SpKind::Series(c) | SpKind::Parallel(c) => c,
        }
    }

    /// Iterates the component ids of the subtree rooted at `root` in
    /// post-order (children before parents).
    pub fn post_order(&self, root: CompId) -> Vec<CompId> {
        let mut out = Vec::new();
        // Explicit stack with a visited marker to avoid recursion depth
        // limits on deep pipelines.
        let mut stack = vec![(root, false)];
        while let Some((id, expanded)) = stack.pop() {
            if expanded {
                out.push(id);
            } else {
                stack.push((id, true));
                for &c in self.children(id).iter().rev() {
                    stack.push((c, false));
                }
            }
        }
        out
    }

    /// All original graph edges contained in the subtree rooted at `root`.
    pub fn edges_in(&self, root: CompId) -> Vec<EdgeId> {
        let mut out = Vec::new();
        for id in self.post_order(root) {
            if let SpKind::Leaf(e) = self.comps[id.index()].kind {
                out.push(e);
            }
        }
        out
    }

    /// Number of original graph edges in the subtree rooted at `root`.
    pub fn edge_count_in(&self, root: CompId) -> usize {
        self.post_order(root)
            .into_iter()
            .filter(|id| matches!(self.comps[id.index()].kind, SpKind::Leaf(_)))
            .count()
    }

    /// Depth of the subtree rooted at `root` (a leaf has depth 1).
    pub fn depth(&self, root: CompId) -> usize {
        // Post-order guarantees children are computed before parents.
        let order = self.post_order(root);
        let max_id = order.iter().map(|c| c.index()).max().unwrap_or(0);
        let mut depth = vec![0usize; max_id + 1];
        for id in order {
            let d = self
                .children(id)
                .iter()
                .map(|c| depth[c.index()])
                .max()
                .unwrap_or(0)
                + 1;
            depth[id.index()] = d;
        }
        depth[root.index()]
    }
}

/// A complete SP decomposition of a two-terminal graph: the forest arena and
/// the root component covering the whole graph.
#[derive(Debug, Clone)]
pub struct SpDecomposition {
    /// The arena holding every component of the tree.
    pub forest: SpForest,
    /// The root component: its source/sink are the graph's terminals and its
    /// leaves are exactly the graph's edges.
    pub root: CompId,
}

impl SpDecomposition {
    /// Source terminal of the decomposed graph.
    pub fn source(&self) -> NodeId {
        self.forest.source(self.root)
    }

    /// Sink terminal of the decomposed graph.
    pub fn sink(&self) -> NodeId {
        self.forest.sink(self.root)
    }

    /// All graph edges covered by the decomposition.
    pub fn edges(&self) -> Vec<EdgeId> {
        self.forest.edges_in(self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fila_graph::GraphBuilder;

    /// Builds the Fig. 3 cycle and a hand-made decomposition for it:
    /// Parallel( Series(ab, be, ef), Series(ac, cd, df) ).
    fn fig3_decomposition() -> (Graph, SpDecomposition) {
        let mut b = GraphBuilder::new();
        let ab = b.edge_with_capacity("a", "b", 2).unwrap();
        let be = b.edge_with_capacity("b", "e", 5).unwrap();
        let ef = b.edge_with_capacity("e", "f", 1).unwrap();
        let ac = b.edge_with_capacity("a", "c", 3).unwrap();
        let cd = b.edge_with_capacity("c", "d", 1).unwrap();
        let df = b.edge_with_capacity("d", "f", 2).unwrap();
        let g = b.build().unwrap();
        let mut f = SpForest::new();
        let l_ab = f.add_leaf(&g, ab);
        let l_be = f.add_leaf(&g, be);
        let l_ef = f.add_leaf(&g, ef);
        let l_ac = f.add_leaf(&g, ac);
        let l_cd = f.add_leaf(&g, cd);
        let l_df = f.add_leaf(&g, df);
        let top = f.add_series(vec![l_ab, l_be, l_ef]);
        let bottom = f.add_series(vec![l_ac, l_cd, l_df]);
        let root = f.add_parallel(vec![top, bottom]);
        (g, SpDecomposition { forest: f, root })
    }

    #[test]
    fn terminals_propagate_through_compositions() {
        let (g, d) = fig3_decomposition();
        assert_eq!(d.source(), g.node_by_name("a").unwrap());
        assert_eq!(d.sink(), g.node_by_name("f").unwrap());
    }

    #[test]
    fn post_order_visits_children_first() {
        let (_, d) = fig3_decomposition();
        let order = d.forest.post_order(d.root);
        assert_eq!(order.len(), d.forest.len());
        assert_eq!(*order.last().unwrap(), d.root);
        let pos = |c: CompId| order.iter().position(|&x| x == c).unwrap();
        for id in &order {
            for &child in d.forest.children(*id) {
                assert!(pos(child) < pos(*id));
            }
        }
    }

    #[test]
    fn edges_in_covers_all_edges_once() {
        let (g, d) = fig3_decomposition();
        let mut edges = d.edges();
        edges.sort();
        let mut all: Vec<_> = g.edge_ids().collect();
        all.sort();
        assert_eq!(edges, all);
        assert_eq!(d.forest.edge_count_in(d.root), 6);
    }

    #[test]
    fn depth_of_fig3_tree() {
        let (_, d) = fig3_decomposition();
        // parallel -> series -> leaf
        assert_eq!(d.forest.depth(d.root), 3);
    }

    #[test]
    fn children_of_leaf_is_empty() {
        let (g, _) = fig3_decomposition();
        let mut f = SpForest::new();
        let leaf = f.add_leaf(&g, g.edge_ids().next().unwrap());
        assert!(f.children(leaf).is_empty());
        assert_eq!(f.edges_in(leaf).len(), 1);
        assert_eq!(f.depth(leaf), 1);
    }
}
