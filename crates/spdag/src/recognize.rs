//! User-facing SP-DAG recognition.

use fila_graph::{Graph, Result};

use crate::forest::SpDecomposition;
use crate::reduce::{reduce, Reduction};

/// Outcome of SP recognition on a two-terminal DAG.
#[derive(Debug, Clone)]
pub enum Recognition {
    /// The graph is series-parallel; here is its decomposition tree.
    SeriesParallel(SpDecomposition),
    /// The graph is not series-parallel; the tracked reduction that proves
    /// it (including the irreducible skeleton) is returned for further
    /// analysis (for example SP-ladder decomposition).
    NotSeriesParallel(Reduction),
}

impl Recognition {
    /// True if the graph was recognised as series-parallel.
    pub fn is_sp(&self) -> bool {
        matches!(self, Recognition::SeriesParallel(_))
    }

    /// The decomposition, if the graph was series-parallel.
    pub fn decomposition(self) -> Option<SpDecomposition> {
        match self {
            Recognition::SeriesParallel(d) => Some(d),
            Recognition::NotSeriesParallel(_) => None,
        }
    }
}

/// Recognises whether a two-terminal DAG is series-parallel and returns its
/// decomposition tree if so.
///
/// # Errors
///
/// Fails with the underlying graph error if the input is not a valid
/// two-terminal DAG (see [`Graph::validate_two_terminal`]).
pub fn recognize(g: &Graph) -> Result<Recognition> {
    let reduction = reduce(g)?;
    if reduction.is_sp() {
        Ok(Recognition::SeriesParallel(
            reduction
                .into_decomposition()
                .expect("is_sp implies decomposition"),
        ))
    } else {
        Ok(Recognition::NotSeriesParallel(reduction))
    }
}

/// Convenience predicate: is this two-terminal DAG series-parallel?
pub fn is_sp_dag(g: &Graph) -> bool {
    matches!(recognize(g), Ok(Recognition::SeriesParallel(_)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::{build_sp, SpSpec};
    use fila_graph::GraphBuilder;

    #[test]
    fn recognises_generated_sp_dags() {
        let spec = SpSpec::Series(vec![
            SpSpec::Parallel(vec![SpSpec::Edge(1), SpSpec::pipeline(&[2, 2])]),
            SpSpec::MultiEdge(vec![1, 1, 1]),
        ]);
        let (g, _) = build_sp(&spec);
        assert!(is_sp_dag(&g));
        let rec = recognize(&g).unwrap();
        let d = rec.decomposition().unwrap();
        assert_eq!(d.edges().len(), g.edge_count());
    }

    #[test]
    fn rejects_crosslinked_split_join() {
        let mut b = GraphBuilder::new();
        for (s, t) in [("x", "a"), ("x", "b"), ("a", "y"), ("b", "y"), ("a", "b")] {
            b.edge(s, t).unwrap();
        }
        let g = b.build().unwrap();
        assert!(!is_sp_dag(&g));
        match recognize(&g).unwrap() {
            Recognition::NotSeriesParallel(r) => assert_eq!(r.skeleton.len(), 5),
            Recognition::SeriesParallel(_) => panic!("must not be SP"),
        }
    }

    #[test]
    fn invalid_graphs_propagate_errors() {
        let mut b = GraphBuilder::new();
        b.edge("a", "c").unwrap();
        b.edge("b", "c").unwrap();
        let g = b.build().unwrap();
        assert!(recognize(&g).is_err());
        assert!(!is_sp_dag(&g));
    }
}
