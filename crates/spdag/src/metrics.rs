//! Per-component metrics `L(H)`, `h(H)` and `h(H, e)`.
//!
//! §IV of the paper parameterises its interval computations with three
//! quantities per component `H` of the SP decomposition tree:
//!
//! * `L(H)` — the length (total buffer capacity) of a *shortest* directed
//!   path from `H`'s source to its sink;
//! * `h(H)` — the number of edges on a *longest* directed path from `H`'s
//!   source to its sink;
//! * `h(H, e)` — the number of edges on a longest source-to-sink path of `H`
//!   that passes through edge `e`.
//!
//! All three follow the simple recurrences of the paper over the component
//! tree (leaf / series / parallel) and are computed here in one bottom-up
//! pass (for `L` and `h`) plus one top-down pass per queried component (for
//! `h(H, e)`).

use fila_graph::{EdgeId, Graph};

use crate::forest::{CompId, SpForest, SpKind};

/// Bottom-up metrics for every component of a forest.
#[derive(Debug, Clone)]
pub struct SpMetrics {
    /// `L(H)` per component id: shortest source→sink buffer length.
    pub shortest_buffer: Vec<u64>,
    /// `h(H)` per component id: longest source→sink hop count.
    pub longest_hops: Vec<u64>,
}

impl SpMetrics {
    /// Computes `L(H)` and `h(H)` for every component in the arena.
    ///
    /// Components are created children-first by both the reduction and the
    /// composer, so a single pass in id order suffices.
    pub fn compute(g: &Graph, forest: &SpForest) -> Self {
        let n = forest.len();
        let mut shortest = vec![0u64; n];
        let mut hops = vec![0u64; n];
        for idx in 0..n {
            let id = CompId(idx as u32);
            match &forest.component(id).kind {
                SpKind::Leaf(e) => {
                    shortest[idx] = g.capacity(*e);
                    hops[idx] = 1;
                }
                SpKind::Series(children) => {
                    shortest[idx] = children.iter().map(|c| shortest[c.index()]).sum();
                    hops[idx] = children.iter().map(|c| hops[c.index()]).sum();
                }
                SpKind::Parallel(children) => {
                    shortest[idx] = children
                        .iter()
                        .map(|c| shortest[c.index()])
                        .min()
                        .expect("parallel has children");
                    hops[idx] = children
                        .iter()
                        .map(|c| hops[c.index()])
                        .max()
                        .expect("parallel has children");
                }
            }
        }
        SpMetrics {
            shortest_buffer: shortest,
            longest_hops: hops,
        }
    }

    /// `L(H)` for a component.
    #[inline]
    pub fn l(&self, id: CompId) -> u64 {
        self.shortest_buffer[id.index()]
    }

    /// `h(H)` for a component.
    #[inline]
    pub fn h(&self, id: CompId) -> u64 {
        self.longest_hops[id.index()]
    }

    /// Computes `h(H, e)` for every original edge `e` in the subtree rooted
    /// at `comp`, following the paper's recurrence:
    ///
    /// * leaf: `h(H, e) = 1`;
    /// * series: `h(H, e) = h(H_i, e) + Σ_{j≠i} h(H_j)` for `e ∈ H_i`;
    /// * parallel: `h(H, e) = h(H_i, e)` for `e ∈ H_i`.
    ///
    /// Runs in time linear in the size of the subtree.
    pub fn h_per_edge(&self, forest: &SpForest, comp: CompId) -> Vec<(EdgeId, u64)> {
        let mut out = Vec::new();
        // Each stack entry carries the hop-count contribution of everything
        // outside the current component but inside `comp`.
        let mut stack = vec![(comp, 0u64)];
        while let Some((id, context)) = stack.pop() {
            match &forest.component(id).kind {
                SpKind::Leaf(e) => out.push((*e, context + 1)),
                SpKind::Parallel(children) => {
                    for &c in children {
                        stack.push((c, context));
                    }
                }
                SpKind::Series(children) => {
                    let total: u64 = children.iter().map(|c| self.h(*c)).sum();
                    for &c in children {
                        stack.push((c, context + total - self.h(c)));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::reduce;
    use fila_graph::GraphBuilder;

    /// Fig. 3: parallel of series(2,5,1) and series(3,1,2).
    fn fig3() -> (Graph, crate::forest::SpDecomposition) {
        let mut b = GraphBuilder::new();
        b.edge_with_capacity("a", "b", 2).unwrap();
        b.edge_with_capacity("b", "e", 5).unwrap();
        b.edge_with_capacity("e", "f", 1).unwrap();
        b.edge_with_capacity("a", "c", 3).unwrap();
        b.edge_with_capacity("c", "d", 1).unwrap();
        b.edge_with_capacity("d", "f", 2).unwrap();
        let g = b.build().unwrap();
        let d = reduce(&g).unwrap().into_decomposition().unwrap();
        (g, d)
    }

    #[test]
    fn fig3_l_and_h() {
        let (g, d) = fig3();
        let m = SpMetrics::compute(&g, &d.forest);
        // Whole graph: shortest branch is a->c->d->f with 3+1+2 = 6;
        // longest hop path has 3 edges.
        assert_eq!(m.l(d.root), 6);
        assert_eq!(m.h(d.root), 3);
    }

    #[test]
    fn fig3_h_per_edge_is_three_for_all_edges() {
        let (g, d) = fig3();
        let m = SpMetrics::compute(&g, &d.forest);
        let per_edge = m.h_per_edge(&d.forest, d.root);
        assert_eq!(per_edge.len(), g.edge_count());
        for (_, h) in per_edge {
            assert_eq!(h, 3);
        }
    }

    #[test]
    fn series_metrics_add_up() {
        let mut b = GraphBuilder::new();
        b.edge_with_capacity("a", "b", 4).unwrap();
        b.edge_with_capacity("b", "c", 6).unwrap();
        let g = b.build().unwrap();
        let d = reduce(&g).unwrap().into_decomposition().unwrap();
        let m = SpMetrics::compute(&g, &d.forest);
        assert_eq!(m.l(d.root), 10);
        assert_eq!(m.h(d.root), 2);
    }

    #[test]
    fn parallel_metrics_take_min_and_max() {
        // Two branches of different length between the same terminals.
        let mut b = GraphBuilder::new();
        b.edge_with_capacity("s", "t", 9).unwrap();
        b.edge_with_capacity("s", "m", 1).unwrap();
        b.edge_with_capacity("m", "n", 1).unwrap();
        b.edge_with_capacity("n", "t", 1).unwrap();
        let g = b.build().unwrap();
        let d = reduce(&g).unwrap().into_decomposition().unwrap();
        let m = SpMetrics::compute(&g, &d.forest);
        assert_eq!(m.l(d.root), 3, "shortest branch by buffer length");
        assert_eq!(m.h(d.root), 3, "longest branch by hops");
    }

    #[test]
    fn h_per_edge_distinguishes_branches() {
        // Branch A: one hop; branch B: three hops.  Edges on branch A have
        // h(G, e) = 1, edges on branch B have h(G, e) = 3.
        let mut b = GraphBuilder::new();
        let direct = b.edge_with_capacity("s", "t", 9).unwrap();
        b.edge_with_capacity("s", "m", 1).unwrap();
        b.edge_with_capacity("m", "n", 1).unwrap();
        b.edge_with_capacity("n", "t", 1).unwrap();
        let g = b.build().unwrap();
        let d = reduce(&g).unwrap().into_decomposition().unwrap();
        let m = SpMetrics::compute(&g, &d.forest);
        for (e, h) in m.h_per_edge(&d.forest, d.root) {
            if e == direct {
                assert_eq!(h, 1);
            } else {
                assert_eq!(h, 3);
            }
        }
    }

    #[test]
    fn metrics_match_graph_level_path_computations() {
        // Cross-check component metrics at the root against the generic DAG
        // path sweeps from fila-graph on a nested SP topology.
        let mut b = GraphBuilder::new();
        b.edge_with_capacity("s", "a", 2).unwrap();
        b.edge_with_capacity("a", "b", 3).unwrap();
        b.edge_with_capacity("a", "c", 1).unwrap();
        b.edge_with_capacity("c", "b", 1).unwrap();
        b.edge_with_capacity("b", "t", 5).unwrap();
        b.edge_with_capacity("s", "t", 20).unwrap();
        let g = b.build().unwrap();
        let d = reduce(&g).unwrap().into_decomposition().unwrap();
        let m = SpMetrics::compute(&g, &d.forest);
        let s = g.node_by_name("s").unwrap();
        let t = g.node_by_name("t").unwrap();
        assert_eq!(
            Some(m.l(d.root)),
            fila_graph::paths::shortest_buffer_path(&g, s, t).unwrap()
        );
        assert_eq!(
            Some(m.h(d.root)),
            fila_graph::paths::longest_hop_path(&g, s, t).unwrap()
        );
    }
}
