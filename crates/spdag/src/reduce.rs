//! Tracked series/parallel reduction of two-terminal DAGs.
//!
//! The classical recognition algorithm for two-terminal series-parallel
//! multigraphs (Valdes, Tarjan and Lawler, cited as \[16\] by the paper)
//! repeatedly applies two local rewrites:
//!
//! * **parallel reduction** — two edges with the same tail and head are
//!   replaced by one;
//! * **series reduction** — an internal vertex with exactly one incoming and
//!   one outgoing edge is suppressed, its two edges merged into one.
//!
//! The graph is SP iff the rewrites reduce it to a single edge between its
//! two terminals.  We *track* the rewrites: every surviving "virtual edge"
//! carries the [`CompId`] of the SP component tree built from the original
//! edges it absorbed, so a successful reduction directly yields the
//! decomposition tree `T` that the paper's interval algorithms traverse, and
//! an unsuccessful one yields the reduced **skeleton** (virtual edges plus
//! their component trees) that the SP-ladder analysis of §VI starts from.

use fila_graph::{Graph, GraphError, NodeId, Result};

use crate::forest::{CompId, SpDecomposition, SpForest, SpKind};

/// An edge of the reduced graph: a contracted SP subgraph of the original.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtualEdge {
    /// Source terminal of the contracted subgraph.
    pub src: NodeId,
    /// Sink terminal of the contracted subgraph.
    pub dst: NodeId,
    /// The component tree describing the contracted subgraph.
    pub comp: CompId,
}

/// Result of running the tracked reduction to a fixed point.
#[derive(Debug, Clone)]
pub struct Reduction {
    /// Arena holding every component tree built during the reduction.
    pub forest: SpForest,
    /// The virtual edges that survived (the *skeleton*).  For an SP-DAG this
    /// is a single edge from `source` to `sink`.
    pub skeleton: Vec<VirtualEdge>,
    /// The unique source of the input graph.
    pub source: NodeId,
    /// The unique sink of the input graph.
    pub sink: NodeId,
}

impl Reduction {
    /// True if the input graph was series-parallel.
    pub fn is_sp(&self) -> bool {
        matches!(self.skeleton.as_slice(),
            [only] if only.src == self.source && only.dst == self.sink)
    }

    /// Converts a successful reduction into an [`SpDecomposition`]; returns
    /// `None` if the graph was not SP.
    pub fn into_decomposition(self) -> Option<SpDecomposition> {
        if !self.is_sp() {
            return None;
        }
        let root = self.skeleton[0].comp;
        Some(SpDecomposition {
            forest: self.forest,
            root,
        })
    }
}

struct Work {
    forest: SpForest,
    /// `edges[i]` is `None` once the virtual edge has been merged away.
    edges: Vec<Option<VirtualEdge>>,
    /// Per node, indices into `edges` (may contain dead entries).
    out: Vec<Vec<usize>>,
    inn: Vec<Vec<usize>>,
}

impl Work {
    fn live_out(&self, v: NodeId) -> Vec<usize> {
        self.out[v.index()]
            .iter()
            .copied()
            .filter(|&i| self.edges[i].is_some())
            .collect()
    }

    fn live_in(&self, v: NodeId) -> Vec<usize> {
        self.inn[v.index()]
            .iter()
            .copied()
            .filter(|&i| self.edges[i].is_some())
            .collect()
    }

    fn add_virtual(&mut self, ve: VirtualEdge) -> usize {
        let idx = self.edges.len();
        self.out[ve.src.index()].push(idx);
        self.inn[ve.dst.index()].push(idx);
        self.edges.push(Some(ve));
        idx
    }

    /// Creates a parallel composition, flattening nested parallel children.
    fn make_parallel(&mut self, children: Vec<CompId>) -> CompId {
        let mut flat = Vec::with_capacity(children.len());
        for c in children {
            match &self.forest.component(c).kind {
                SpKind::Parallel(grand) => flat.extend(grand.iter().copied()),
                _ => flat.push(c),
            }
        }
        self.forest.add_parallel(flat)
    }

    /// Creates a series composition, flattening nested series children.
    fn make_series(&mut self, first: CompId, second: CompId) -> CompId {
        let mut flat = Vec::new();
        for c in [first, second] {
            match &self.forest.component(c).kind {
                SpKind::Series(grand) => flat.extend(grand.iter().copied()),
                _ => flat.push(c),
            }
        }
        self.forest.add_series(flat)
    }
}

/// Runs the tracked reduction on a two-terminal DAG.
///
/// # Errors
///
/// Fails if the graph is not a valid two-terminal DAG (empty, cyclic,
/// disconnected, or without unique source/sink), or if it has no edges.
pub fn reduce(g: &Graph) -> Result<Reduction> {
    let (source, sink) = g.validate_two_terminal()?;
    if g.edge_count() == 0 {
        return Err(GraphError::Structure(
            "series-parallel analysis requires at least one edge".into(),
        ));
    }

    let n = g.node_count();
    let mut work = Work {
        forest: SpForest::new(),
        edges: Vec::with_capacity(g.edge_count()),
        out: vec![Vec::new(); n],
        inn: vec![Vec::new(); n],
    };
    for e in g.edge_ids() {
        let (src, dst) = g.endpoints(e);
        let comp = work.forest.add_leaf(g, e);
        work.add_virtual(VirtualEdge { src, dst, comp });
    }

    let mut queue: Vec<NodeId> = g.node_ids().collect();
    let mut queued = vec![true; n];
    while let Some(v) = queue.pop() {
        queued[v.index()] = false;

        // Parallel reductions at v: merge bundles of live out-edges of v
        // that share a head.
        let mut changed = true;
        while changed {
            changed = false;
            let live = work.live_out(v);
            'outer: for (i, &a) in live.iter().enumerate() {
                let dst = work.edges[a].expect("live").dst;
                let mut bundle = vec![a];
                for &b in live.iter().skip(i + 1) {
                    if work.edges[b].expect("live").dst == dst {
                        bundle.push(b);
                    }
                }
                if bundle.len() >= 2 {
                    let comps: Vec<CompId> = bundle
                        .iter()
                        .map(|&idx| work.edges[idx].expect("live").comp)
                        .collect();
                    for &idx in &bundle {
                        work.edges[idx] = None;
                    }
                    let comp = work.make_parallel(comps);
                    work.add_virtual(VirtualEdge { src: v, dst, comp });
                    if !queued[dst.index()] {
                        queued[dst.index()] = true;
                        queue.push(dst);
                    }
                    changed = true;
                    break 'outer;
                }
            }
        }

        // Series reduction at v (only for internal vertices).
        if v != source && v != sink {
            let live_in = work.live_in(v);
            let live_out = work.live_out(v);
            if live_in.len() == 1 && live_out.len() == 1 {
                let a = live_in[0];
                let b = live_out[0];
                let ea = work.edges[a].expect("live");
                let eb = work.edges[b].expect("live");
                debug_assert_eq!(ea.dst, v);
                debug_assert_eq!(eb.src, v);
                work.edges[a] = None;
                work.edges[b] = None;
                let comp = work.make_series(ea.comp, eb.comp);
                work.add_virtual(VirtualEdge {
                    src: ea.src,
                    dst: eb.dst,
                    comp,
                });
                for w in [ea.src, eb.dst] {
                    if !queued[w.index()] {
                        queued[w.index()] = true;
                        queue.push(w);
                    }
                }
            }
        }
    }

    let skeleton: Vec<VirtualEdge> = work.edges.iter().flatten().copied().collect();
    Ok(Reduction {
        forest: work.forest,
        skeleton,
        source,
        sink,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fila_graph::GraphBuilder;

    fn names(g: &Graph, v: NodeId) -> String {
        g.node(v).name.clone()
    }

    #[test]
    fn pipeline_reduces_to_single_edge() {
        let mut b = GraphBuilder::new();
        b.chain(&["a", "b", "c", "d", "e"]).unwrap();
        let g = b.build().unwrap();
        let r = reduce(&g).unwrap();
        assert!(r.is_sp());
        let d = r.into_decomposition().unwrap();
        assert_eq!(d.edges().len(), 4);
        assert!(matches!(
            d.forest.component(d.root).kind,
            SpKind::Series(ref c) if c.len() == 4
        ));
    }

    #[test]
    fn multi_edge_is_sp() {
        let mut b = GraphBuilder::new();
        b.edge("a", "b").unwrap();
        b.edge("a", "b").unwrap();
        b.edge("a", "b").unwrap();
        let g = b.build().unwrap();
        let d = reduce(&g).unwrap().into_decomposition().unwrap();
        assert!(matches!(
            d.forest.component(d.root).kind,
            SpKind::Parallel(ref c) if c.len() == 3
        ));
    }

    #[test]
    fn fig3_cycle_is_sp_with_two_branches() {
        let mut b = GraphBuilder::new();
        b.chain(&["a", "b", "e", "f"]).unwrap();
        b.chain(&["a", "c", "d", "f"]).unwrap();
        let g = b.build().unwrap();
        let r = reduce(&g).unwrap();
        assert!(r.is_sp());
        let d = r.into_decomposition().unwrap();
        assert_eq!(names(&g, d.source()), "a");
        assert_eq!(names(&g, d.sink()), "f");
        // Root is a parallel of two 3-edge series chains.
        match &d.forest.component(d.root).kind {
            SpKind::Parallel(children) => {
                assert_eq!(children.len(), 2);
                for &c in children {
                    assert!(matches!(
                        d.forest.component(c).kind,
                        SpKind::Series(ref s) if s.len() == 3
                    ));
                }
            }
            other => panic!("expected parallel root, got {other:?}"),
        }
    }

    #[test]
    fn nested_split_join_is_sp() {
        // a -> {b -> {c,d} -> e, f} -> g : a diamond nested inside a split.
        let mut b = GraphBuilder::new();
        b.chain(&["a", "b", "c", "e", "g"]).unwrap();
        b.edge("b", "d").unwrap();
        b.edge("d", "e").unwrap();
        b.edge("a", "f").unwrap();
        b.edge("f", "g").unwrap();
        let g = b.build().unwrap();
        let r = reduce(&g).unwrap();
        assert!(r.is_sp());
        assert_eq!(r.into_decomposition().unwrap().edges().len(), 8);
    }

    #[test]
    fn crosslinked_split_join_is_not_sp() {
        // Fig. 4 left: the simplest non-SP two-terminal DAG.
        let mut b = GraphBuilder::new();
        for (s, t) in [("x", "a"), ("x", "b"), ("a", "y"), ("b", "y"), ("a", "b")] {
            b.edge(s, t).unwrap();
        }
        let g = b.build().unwrap();
        let r = reduce(&g).unwrap();
        assert!(!r.is_sp());
        // The irreducible skeleton keeps all five edges (nothing can merge).
        assert_eq!(r.skeleton.len(), 5);
        assert!(r.clone().into_decomposition().is_none());
    }

    #[test]
    fn ladder_skeleton_contracts_sp_limbs() {
        // A ladder whose side rails are two-hop chains: the reduction must
        // contract each rail segment into one virtual edge but cannot finish.
        let mut b = GraphBuilder::new();
        // left rail with intermediate nodes, right rail direct.
        b.chain(&["x", "l1", "u", "l2", "y"]).unwrap();
        b.chain(&["x", "v", "y"]).unwrap();
        b.edge("u", "v").unwrap();
        let g = b.build().unwrap();
        let r = reduce(&g).unwrap();
        assert!(!r.is_sp());
        // Skeleton: x->u, u->y, x->v, v->y, u->v  (five virtual edges).
        assert_eq!(r.skeleton.len(), 5);
        let u = g.node_by_name("u").unwrap();
        let x = g.node_by_name("x").unwrap();
        let xu = r
            .skeleton
            .iter()
            .find(|ve| ve.src == x && ve.dst == u)
            .expect("contracted rail x->u exists");
        // That virtual edge absorbed the two original edges x->l1->u.
        assert_eq!(r.forest.edges_in(xu.comp).len(), 2);
    }

    #[test]
    fn butterfly_is_not_sp() {
        let mut b = GraphBuilder::new();
        for (s, t) in [
            ("x", "a"), ("x", "b"),
            ("a", "c"), ("a", "d"), ("b", "c"), ("b", "d"),
            ("c", "y"), ("d", "y"),
        ] {
            b.edge(s, t).unwrap();
        }
        let g = b.build().unwrap();
        assert!(!reduce(&g).unwrap().is_sp());
    }

    #[test]
    fn rejects_graphs_without_two_terminals() {
        let mut b = GraphBuilder::new();
        b.edge("a", "c").unwrap();
        b.edge("b", "c").unwrap();
        let g = b.build().unwrap();
        assert!(reduce(&g).is_err());
    }

    #[test]
    fn rejects_single_node_graph() {
        let mut g = Graph::new();
        g.add_node("only");
        assert!(reduce(&g).is_err());
    }

    #[test]
    fn decomposition_covers_each_edge_exactly_once() {
        let mut b = GraphBuilder::new();
        b.chain(&["s", "p", "t"]).unwrap();
        b.edge("s", "t").unwrap();
        b.edge("s", "q").unwrap();
        b.edge("q", "t").unwrap();
        let g = b.build().unwrap();
        let d = reduce(&g).unwrap().into_decomposition().unwrap();
        let mut edges = d.edges();
        edges.sort();
        edges.dedup();
        assert_eq!(edges.len(), g.edge_count());
    }
}
