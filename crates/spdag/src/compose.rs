//! Programmatic construction of SP-DAGs from specifications.
//!
//! Generators and property tests need to produce SP-DAGs *with a known
//! ground-truth decomposition*.  [`SpSpec`] mirrors the recursive definition
//! of §III — a base multi-edge, serial composition, and parallel
//! composition — and [`build_sp`] realises a specification as a concrete
//! [`Graph`] together with its [`SpDecomposition`].

use fila_graph::{Graph, NodeId};

use crate::forest::{CompId, SpDecomposition, SpForest};

/// A recursive description of an SP-DAG, mirroring the paper's definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpSpec {
    /// A single edge with the given buffer capacity.
    Edge(u64),
    /// A bundle of parallel edges with the given buffer capacities
    /// (the paper's base case; must be non-empty).
    MultiEdge(Vec<u64>),
    /// Serial composition of the children in pipeline order (≥ 1 child;
    /// a single child is passed through unchanged).
    Series(Vec<SpSpec>),
    /// Parallel composition of the children (≥ 1 child; a single child is
    /// passed through unchanged).
    Parallel(Vec<SpSpec>),
}

impl SpSpec {
    /// Convenience constructor for a pipeline of single edges.
    pub fn pipeline(capacities: &[u64]) -> SpSpec {
        SpSpec::Series(capacities.iter().map(|&c| SpSpec::Edge(c)).collect())
    }

    /// Convenience constructor for a split/join over single-edge branches.
    pub fn split_join(branch_capacities: &[u64]) -> SpSpec {
        SpSpec::Parallel(branch_capacities.iter().map(|&c| SpSpec::Edge(c)).collect())
    }

    /// Number of edges the realised graph will have.
    pub fn edge_count(&self) -> usize {
        match self {
            SpSpec::Edge(_) => 1,
            SpSpec::MultiEdge(caps) => caps.len(),
            SpSpec::Series(children) | SpSpec::Parallel(children) => {
                children.iter().map(SpSpec::edge_count).sum()
            }
        }
    }

    /// Maximum nesting depth of the specification.
    pub fn depth(&self) -> usize {
        match self {
            SpSpec::Edge(_) | SpSpec::MultiEdge(_) => 1,
            SpSpec::Series(children) | SpSpec::Parallel(children) => {
                1 + children.iter().map(SpSpec::depth).max().unwrap_or(0)
            }
        }
    }
}

/// Realises an [`SpSpec`] as a graph plus its ground-truth decomposition.
///
/// Node names are generated as `n0`, `n1`, ... with the global source named
/// `src` and the global sink named `snk`.
///
/// # Panics
///
/// Panics if the specification contains an empty `MultiEdge`, `Series` or
/// `Parallel` — those do not describe a graph.
pub fn build_sp(spec: &SpSpec) -> (Graph, SpDecomposition) {
    let mut g = Graph::with_capacity(16, spec.edge_count());
    let mut forest = SpForest::new();
    let source = g.add_node("src");
    let sink = g.add_node("snk");
    let mut counter = 0usize;
    let root = realise(spec, &mut g, &mut forest, source, sink, &mut counter);
    (g, SpDecomposition { forest, root })
}

fn realise(
    spec: &SpSpec,
    g: &mut Graph,
    forest: &mut SpForest,
    source: NodeId,
    sink: NodeId,
    counter: &mut usize,
) -> CompId {
    match spec {
        SpSpec::Edge(cap) => {
            let e = g.add_edge(source, sink, *cap).expect("valid endpoints");
            forest.add_leaf(g, e)
        }
        SpSpec::MultiEdge(caps) => {
            assert!(!caps.is_empty(), "MultiEdge needs at least one capacity");
            let leaves: Vec<CompId> = caps
                .iter()
                .map(|&cap| {
                    let e = g.add_edge(source, sink, cap).expect("valid endpoints");
                    forest.add_leaf(g, e)
                })
                .collect();
            if leaves.len() == 1 {
                leaves[0]
            } else {
                forest.add_parallel(leaves)
            }
        }
        SpSpec::Series(children) => {
            assert!(!children.is_empty(), "Series needs at least one child");
            if children.len() == 1 {
                return realise(&children[0], g, forest, source, sink, counter);
            }
            let mut comp_ids = Vec::with_capacity(children.len());
            let mut cur_source = source;
            for (i, child) in children.iter().enumerate() {
                let cur_sink = if i + 1 == children.len() {
                    sink
                } else {
                    let name = format!("n{}", *counter);
                    *counter += 1;
                    g.add_node(name)
                };
                comp_ids.push(realise(child, g, forest, cur_source, cur_sink, counter));
                cur_source = cur_sink;
            }
            forest.add_series(comp_ids)
        }
        SpSpec::Parallel(children) => {
            assert!(!children.is_empty(), "Parallel needs at least one child");
            if children.len() == 1 {
                return realise(&children[0], g, forest, source, sink, counter);
            }
            let comp_ids: Vec<CompId> = children
                .iter()
                .map(|child| realise(child, g, forest, source, sink, counter))
                .collect();
            forest.add_parallel(comp_ids)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::SpMetrics;
    use crate::reduce::reduce;

    #[test]
    fn single_edge_spec() {
        let (g, d) = build_sp(&SpSpec::Edge(7));
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(d.edges().len(), 1);
        assert_eq!(g.capacity(g.edge_ids().next().unwrap()), 7);
    }

    #[test]
    fn pipeline_spec_builds_chain() {
        let (g, d) = build_sp(&SpSpec::pipeline(&[1, 2, 3, 4]));
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.node_count(), 5);
        g.validate_two_terminal().unwrap();
        let m = SpMetrics::compute(&g, &d.forest);
        assert_eq!(m.l(d.root), 10);
        assert_eq!(m.h(d.root), 4);
    }

    #[test]
    fn split_join_spec_builds_parallel_edges() {
        let (g, d) = build_sp(&SpSpec::split_join(&[5, 6, 7]));
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.node_count(), 2);
        let m = SpMetrics::compute(&g, &d.forest);
        assert_eq!(m.l(d.root), 5);
        assert_eq!(m.h(d.root), 1);
    }

    #[test]
    fn nested_spec_round_trips_through_recognition() {
        let spec = SpSpec::Series(vec![
            SpSpec::Edge(2),
            SpSpec::Parallel(vec![
                SpSpec::pipeline(&[1, 1]),
                SpSpec::Edge(4),
                SpSpec::Series(vec![
                    SpSpec::MultiEdge(vec![3, 5]),
                    SpSpec::Edge(1),
                ]),
            ]),
            SpSpec::Edge(6),
        ]);
        let (g, d) = build_sp(&spec);
        assert_eq!(g.edge_count(), spec.edge_count());
        // The generated graph must be recognised as SP.
        let r = reduce(&g).unwrap();
        assert!(r.is_sp());
        // And its metrics from the ground-truth tree agree with the
        // recognised tree.
        let recognised = r.into_decomposition().unwrap();
        let m1 = SpMetrics::compute(&g, &d.forest);
        let m2 = SpMetrics::compute(&g, &recognised.forest);
        assert_eq!(m1.l(d.root), m2.l(recognised.root));
        assert_eq!(m1.h(d.root), m2.h(recognised.root));
    }

    #[test]
    fn spec_edge_count_and_depth() {
        let spec = SpSpec::Series(vec![
            SpSpec::Edge(1),
            SpSpec::Parallel(vec![SpSpec::Edge(1), SpSpec::pipeline(&[1, 1, 1])]),
        ]);
        assert_eq!(spec.edge_count(), 5);
        assert_eq!(spec.depth(), 4);
    }

    #[test]
    fn singleton_series_and_parallel_pass_through() {
        let (g1, _) = build_sp(&SpSpec::Series(vec![SpSpec::Edge(3)]));
        let (g2, _) = build_sp(&SpSpec::Parallel(vec![SpSpec::Edge(3)]));
        assert_eq!(g1.edge_count(), 1);
        assert_eq!(g2.edge_count(), 1);
    }
}
