//! # fila-spdag
//!
//! Series-parallel DAG machinery for the deadlock-avoidance analysis of
//! Buhler et al. (PPoPP 2012).
//!
//! A **series-parallel DAG** (SP-DAG, §III of the paper) is a two-terminal
//! directed acyclic multigraph built recursively from single multi-edges by
//! *serial composition* `Sc(H1, H2)` (merge the sink of `H1` with the source
//! of `H2`) and *parallel composition* `Pc(H1, H2)` (merge the sources and
//! the sinks).  The efficient dummy-interval algorithms of §IV operate on
//! the *component tree* of this recursive structure.
//!
//! This crate provides:
//!
//! * [`forest::SpForest`] / [`forest::SpDecomposition`] — the component
//!   tree (arena-based, n-ary, with per-component source and sink);
//! * [`reduce()`] — a tracked series/parallel **reduction** that recognises
//!   SP-DAGs in near-linear time (Valdes–Tarjan–Lawler style) and, for
//!   non-SP inputs, returns the reduced *skeleton* with one fully built
//!   component tree per surviving virtual edge (this skeleton is what the
//!   CS4 / SP-ladder analysis of `fila-avoidance` consumes);
//! * [`recognize()`] — the user-facing recognition API;
//! * [`metrics`] — the per-component quantities `L(H)` (shortest
//!   source-to-sink buffer length), `h(H)` (longest source-to-sink hop
//!   count) and `h(H, e)` (longest hop count through a given edge) used by
//!   the interval algorithms;
//! * [`compose`] — programmatic construction of SP-DAGs from a
//!   specification, returning both the graph and its ground-truth
//!   decomposition (used heavily by generators and property tests);
//! * [`validate`] — structural consistency checks for decompositions.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod compose;
pub mod forest;
pub mod metrics;
pub mod recognize;
pub mod reduce;
pub mod validate;

pub use compose::{build_sp, SpSpec};
pub use forest::{CompId, SpComponent, SpDecomposition, SpForest, SpKind};
pub use metrics::SpMetrics;
pub use recognize::{recognize, Recognition};
pub use reduce::{reduce, Reduction, VirtualEdge};
