//! Dominator and post-dominator trees for single-source / single-sink DAGs.
//!
//! The structural lemmas of §III of the paper are phrased in terms of
//! domination ("Z dominates all nodes of P other than W") and immediate
//! post-domination ("every node in an SP-DAG has an immediate
//! postdominator").  These trees are exposed so that property tests can
//! check those lemmas directly on generated SP-DAGs, and so that the ladder
//! recogniser can sanity-check candidate decompositions.
//!
//! The implementation is the classic Cooper–Harvey–Kennedy iterative
//! algorithm over a reverse-postorder numbering.  On DAGs a single pass
//! converges, so the cost is effectively `O(|E| · α)` and in practice linear.

use crate::error::{GraphError, Result};
use crate::ids::NodeId;
use crate::multigraph::Graph;
use crate::topo::{topo_positions, topological_order};

/// The immediate-dominator (or immediate-post-dominator) relation of a graph.
#[derive(Debug, Clone)]
pub struct DominatorTree {
    root: NodeId,
    /// `idom[v]` is the immediate dominator of `v`; `None` for the root and
    /// for nodes unreachable from it.
    idom: Vec<Option<NodeId>>,
}

impl DominatorTree {
    /// The root of the tree (the graph source for dominators, the sink for
    /// post-dominators).
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Immediate dominator of `v` (`None` for the root or unreachable nodes).
    pub fn idom(&self, v: NodeId) -> Option<NodeId> {
        self.idom[v.index()]
    }

    /// Returns `true` if `a` dominates `b` (every path from the root to `b`
    /// passes through `a`).  Every node dominates itself.
    pub fn dominates(&self, a: NodeId, b: NodeId) -> bool {
        let mut cur = Some(b);
        while let Some(v) = cur {
            if v == a {
                return true;
            }
            if v == self.root {
                return false;
            }
            cur = self.idom[v.index()];
        }
        false
    }

    /// Depth of `v` below the root, or `None` if unreachable.
    pub fn depth(&self, v: NodeId) -> Option<usize> {
        let mut d = 0;
        let mut cur = v;
        loop {
            if cur == self.root {
                return Some(d);
            }
            match self.idom[cur.index()] {
                Some(p) => {
                    cur = p;
                    d += 1;
                }
                None => return None,
            }
        }
    }
}

/// Computes the dominator tree rooted at the graph's unique source.
pub fn dominator_tree(g: &Graph) -> Result<DominatorTree> {
    let root = g.single_source()?;
    compute(g, root, Direction::Forward)
}

/// Computes the post-dominator tree rooted at the graph's unique sink.
pub fn postdominator_tree(g: &Graph) -> Result<DominatorTree> {
    let root = g.single_sink()?;
    compute(g, root, Direction::Backward)
}

#[derive(Clone, Copy)]
enum Direction {
    Forward,
    Backward,
}

fn preds<'a>(g: &'a Graph, v: NodeId, dir: Direction) -> Box<dyn Iterator<Item = NodeId> + 'a> {
    match dir {
        Direction::Forward => Box::new(g.in_edges(v).iter().map(move |&e| g.tail(e))),
        Direction::Backward => Box::new(g.out_edges(v).iter().map(move |&e| g.head(e))),
    }
}

fn compute(g: &Graph, root: NodeId, dir: Direction) -> Result<DominatorTree> {
    if g.node_count() == 0 {
        return Err(GraphError::Empty);
    }
    // A topological order of the DAG is a valid reverse-postorder for the
    // forward direction; its reverse works for the backward direction.
    let mut order = topological_order(g)?;
    if matches!(dir, Direction::Backward) {
        order.reverse();
    }
    debug_assert_eq!(order.first().copied(), Some(root), "root must be first");
    // In the chosen order the root comes first only if it is the unique
    // source (resp. sink); `single_source`/`single_sink` guarantee that, but
    // Kahn's algorithm may emit several zero-degree nodes in any order when
    // the graph is disconnected, so enforce it explicitly.
    let order: Vec<NodeId> = std::iter::once(root)
        .chain(order.into_iter().filter(|&v| v != root))
        .collect();
    let pos = topo_positions(g, &order);

    let mut idom: Vec<Option<NodeId>> = vec![None; g.node_count()];
    idom[root.index()] = Some(root);

    let intersect = |idom: &[Option<NodeId>], mut a: NodeId, mut b: NodeId| -> NodeId {
        while a != b {
            while pos[a.index()] > pos[b.index()] {
                a = idom[a.index()].expect("processed node has idom");
            }
            while pos[b.index()] > pos[a.index()] {
                b = idom[b.index()].expect("processed node has idom");
            }
        }
        a
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &v in order.iter().skip(1) {
            let mut new_idom: Option<NodeId> = None;
            for p in preds(g, v, dir) {
                if idom[p.index()].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, cur, p),
                });
            }
            if let Some(ni) = new_idom {
                if idom[v.index()] != Some(ni) {
                    idom[v.index()] = Some(ni);
                    changed = true;
                }
            }
        }
    }

    // Normalise: the root has no immediate dominator.
    idom[root.index()] = None;
    Ok(DominatorTree { root, idom })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn diamond() -> Graph {
        let mut b = GraphBuilder::new();
        b.edge("a", "b").unwrap();
        b.edge("a", "c").unwrap();
        b.edge("b", "d").unwrap();
        b.edge("c", "d").unwrap();
        b.edge("d", "e").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn diamond_dominators() {
        let g = diamond();
        let t = dominator_tree(&g).unwrap();
        let n = |s: &str| g.node_by_name(s).unwrap();
        assert_eq!(t.root(), n("a"));
        assert_eq!(t.idom(n("a")), None);
        assert_eq!(t.idom(n("b")), Some(n("a")));
        assert_eq!(t.idom(n("c")), Some(n("a")));
        // d's paths go through either b or c, so its idom is a.
        assert_eq!(t.idom(n("d")), Some(n("a")));
        assert_eq!(t.idom(n("e")), Some(n("d")));
        assert!(t.dominates(n("a"), n("e")));
        assert!(t.dominates(n("d"), n("e")));
        assert!(!t.dominates(n("b"), n("d")));
        assert!(t.dominates(n("b"), n("b")));
    }

    #[test]
    fn diamond_postdominators() {
        let g = diamond();
        let t = postdominator_tree(&g).unwrap();
        let n = |s: &str| g.node_by_name(s).unwrap();
        assert_eq!(t.root(), n("e"));
        assert_eq!(t.idom(n("e")), None);
        assert_eq!(t.idom(n("d")), Some(n("e")));
        assert_eq!(t.idom(n("b")), Some(n("d")));
        assert_eq!(t.idom(n("c")), Some(n("d")));
        // a is immediately postdominated by d (its split rejoins at d).
        assert_eq!(t.idom(n("a")), Some(n("d")));
        assert!(t.dominates(n("d"), n("a")), "d postdominates a");
    }

    #[test]
    fn chain_dominators_are_predecessors() {
        let mut b = GraphBuilder::new();
        b.chain(&["a", "b", "c", "d"]).unwrap();
        let g = b.build().unwrap();
        let t = dominator_tree(&g).unwrap();
        let n = |s: &str| g.node_by_name(s).unwrap();
        assert_eq!(t.idom(n("d")), Some(n("c")));
        assert_eq!(t.depth(n("d")), Some(3));
        assert_eq!(t.depth(n("a")), Some(0));
    }

    #[test]
    fn sp_dag_every_node_has_immediate_postdominator() {
        // Observation in §III: in an SP-DAG every node has an immediate
        // postdominator.
        let mut b = GraphBuilder::new();
        b.edge("x", "p").unwrap();
        b.edge("x", "q").unwrap();
        b.edge("p", "y").unwrap();
        b.edge("q", "y").unwrap();
        b.edge("y", "z").unwrap();
        b.edge("y", "w").unwrap();
        b.edge("z", "t").unwrap();
        b.edge("w", "t").unwrap();
        let g = b.build().unwrap();
        let t = postdominator_tree(&g).unwrap();
        for v in g.node_ids() {
            if v == t.root() {
                continue;
            }
            assert!(t.idom(v).is_some(), "{v} lacks an immediate postdominator");
        }
    }

    #[test]
    fn requires_single_source() {
        let mut b = GraphBuilder::new();
        b.edge("a", "c").unwrap();
        b.edge("b", "c").unwrap();
        let g = b.build().unwrap();
        assert!(dominator_tree(&g).is_err());
        assert!(postdominator_tree(&g).is_ok());
    }
}
