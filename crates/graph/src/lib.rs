//! # fila-graph
//!
//! Directed acyclic **multigraph** substrate used throughout the `fila`
//! workspace.  A streaming application in the model of Buhler, Agrawal, Li
//! and Chamberlain (PPoPP 2012) is a DAG of compute nodes connected by
//! unidirectional FIFO channels, each with a finite buffer capacity.  This
//! crate provides that representation plus the graph algorithms the
//! deadlock-avoidance analysis is built on:
//!
//! * node / edge arenas with stable integer ids ([`NodeId`], [`EdgeId`]),
//! * per-edge buffer capacities (the edge "length" used by the paper),
//! * topological ordering, reachability, and transitive predecessor /
//!   successor queries ([`topo`]),
//! * dominator and post-dominator trees ([`dominators`]) — used by the
//!   structural lemmas of §III,
//! * DAG shortest paths by buffer weight and longest paths by hop count
//!   ([`paths`]),
//! * an undirected view with articulation points and biconnected
//!   components ([`undirected`]) — used by the CS4 decomposition of §V,
//! * undirected simple-cycle enumeration with source/sink classification
//!   ([`cycles`]) — the exponential baseline of §II.B,
//! * K4-subdivision detection ([`k4`]) — Lemma V.1,
//! * canonical structural fingerprints for shape-level caching
//!   ([`fingerprint`]) — the key of the service layer's plan cache,
//! * Graphviz DOT export ([`dot`]).
//!
//! The crate is deliberately free of any deadlock-avoidance logic; it is the
//! substrate that `fila-spdag`, `fila-avoidance` and `fila-runtime` share.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builder;
pub mod cycles;
pub mod dominators;
pub mod dot;
pub mod error;
pub mod fingerprint;
pub mod ids;
pub mod k4;
pub mod multigraph;
pub mod paths;
pub mod topo;
pub mod undirected;

pub use builder::GraphBuilder;
pub use error::{GraphError, Result};
pub use fingerprint::Fingerprint;
pub use ids::{EdgeId, NodeId};
pub use multigraph::{Edge, Graph, Node};

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::builder::GraphBuilder;
    pub use crate::error::{GraphError, Result};
    pub use crate::ids::{EdgeId, NodeId};
    pub use crate::multigraph::{Edge, Graph, Node};
}
