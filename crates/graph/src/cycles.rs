//! Enumeration and classification of **undirected simple cycles**.
//!
//! Deadlocks in the filtering streaming model correspond to undirected
//! simple cycles of the application DAG (§II.B of the paper), and the
//! general-DAG dummy-interval definitions minimise over all such cycles.
//! A DAG can have exponentially many undirected simple cycles, which is
//! exactly why the paper's polynomial algorithms for SP / CS4 topologies
//! matter; this module provides the exponential baseline they are compared
//! against, plus the per-cycle source/sink classification used by the CS4
//! definition.

use crate::error::{GraphError, Result};
use crate::ids::{EdgeId, NodeId};
use crate::multigraph::Graph;

/// An undirected simple cycle, stored as an alternating node/edge walk.
///
/// `nodes[i]` and `nodes[(i + 1) % len]` are the endpoints of `edges[i]`.
/// Every node appears at most once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UndirectedCycle {
    /// The nodes of the cycle in traversal order.
    pub nodes: Vec<NodeId>,
    /// The edges of the cycle in traversal order; `edges[i]` joins
    /// `nodes[i]` to `nodes[(i + 1) % nodes.len()]`.
    pub edges: Vec<EdgeId>,
}

/// A maximal directed run inside an undirected cycle: a sequence of
/// consecutive cycle edges that all point "forward" along the traversal (or
/// all point "backward"), from one cycle source to one cycle sink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectedRun {
    /// The node the run starts at (a source of the cycle).
    pub start: NodeId,
    /// The node the run ends at (a sink of the cycle).
    pub end: NodeId,
    /// The edges of the run in path order (each directed `start -> ... -> end`).
    pub edges: Vec<EdgeId>,
}

impl UndirectedCycle {
    /// Number of edges (= number of nodes) on the cycle.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if the cycle is empty (never produced by the enumerator).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Whether the given edge participates in this cycle.
    pub fn contains_edge(&self, e: EdgeId) -> bool {
        self.edges.contains(&e)
    }

    /// Whether the given node participates in this cycle.
    pub fn contains_node(&self, n: NodeId) -> bool {
        self.nodes.contains(&n)
    }

    /// The cycle's **sources**: nodes whose two incident cycle edges are both
    /// directed out of the node.
    pub fn sources(&self, g: &Graph) -> Vec<NodeId> {
        self.classify(g, true)
    }

    /// The cycle's **sinks**: nodes whose two incident cycle edges are both
    /// directed into the node.
    pub fn sinks(&self, g: &Graph) -> Vec<NodeId> {
        self.classify(g, false)
    }

    fn classify(&self, g: &Graph, want_sources: bool) -> Vec<NodeId> {
        let k = self.len();
        let mut out = Vec::new();
        for i in 0..k {
            let v = self.nodes[i];
            let prev_edge = self.edges[(i + k - 1) % k];
            let next_edge = self.edges[i];
            let prev_out = g.tail(prev_edge) == v;
            let next_out = g.tail(next_edge) == v;
            let is_source = prev_out && next_out;
            let is_sink = !prev_out && !next_out;
            if (want_sources && is_source) || (!want_sources && is_sink) {
                out.push(v);
            }
        }
        out
    }

    /// True if the cycle has exactly one source and one sink — the defining
    /// property of cycles in CS4 graphs (§V).
    pub fn has_single_source_and_sink(&self, g: &Graph) -> bool {
        self.sources(g).len() == 1 && self.sinks(g).len() == 1
    }

    /// Decomposes the cycle into its maximal directed runs.  A cycle with
    /// `s` sources and `s` sinks decomposes into exactly `2 s` runs.
    pub fn directed_runs(&self, g: &Graph) -> Vec<DirectedRun> {
        let k = self.len();
        let sources = self.sources(g);
        let mut runs = Vec::new();
        for &src in &sources {
            let i = self
                .nodes
                .iter()
                .position(|&n| n == src)
                .expect("source is on the cycle");
            // Forward run: follow edges[i], edges[i+1], ... while they point
            // forward along the traversal.
            let mut edges = Vec::new();
            let mut pos = i;
            loop {
                let e = self.edges[pos];
                if g.tail(e) != self.nodes[pos] {
                    break;
                }
                edges.push(e);
                pos = (pos + 1) % k;
                if pos == i {
                    break;
                }
            }
            if !edges.is_empty() {
                runs.push(DirectedRun {
                    start: src,
                    end: self.nodes[pos],
                    edges,
                });
            }
            // Backward run: follow edges[i-1], edges[i-2], ... while they
            // point backward along the traversal (i.e. out of the source).
            let mut edges = Vec::new();
            let mut pos = i;
            loop {
                let prev = (pos + k - 1) % k;
                let e = self.edges[prev];
                if g.tail(e) != self.nodes[pos] {
                    break;
                }
                edges.push(e);
                pos = prev;
                if pos == i {
                    break;
                }
            }
            if !edges.is_empty() {
                runs.push(DirectedRun {
                    start: src,
                    end: self.nodes[pos],
                    edges,
                });
            }
        }
        runs
    }

    /// Total buffer capacity of the given run of edges.
    pub fn run_buffer_length(g: &Graph, run: &DirectedRun) -> u64 {
        run.edges.iter().map(|&e| g.capacity(e)).sum()
    }
}

/// Enumerates every undirected simple cycle of the graph.
///
/// Worst-case exponential in the size of the graph; prefer
/// [`enumerate_cycles_bounded`] when the input is not known to be small.
pub fn enumerate_cycles(g: &Graph) -> Vec<UndirectedCycle> {
    enumerate_cycles_bounded(g, usize::MAX).expect("unbounded enumeration cannot overflow")
}

/// Enumerates undirected simple cycles, aborting once more than `max_cycles`
/// have been produced.
///
/// # Errors
///
/// Returns [`GraphError::Structure`] if the bound is exceeded.
pub fn enumerate_cycles_bounded(g: &Graph, max_cycles: usize) -> Result<Vec<UndirectedCycle>> {
    let mut cycles = Vec::new();
    let n = g.node_count();
    // Canonical representation: every cycle is reported exactly once,
    // anchored at its minimum edge id, traversed starting from that edge's
    // source node (tail).  Only edges with a larger id may complete the
    // cycle, and no node repeats.
    let mut on_path = vec![false; n];
    for (anchor, edge) in g.edges() {
        let start = edge.src;
        let first = edge.dst;
        let mut path_nodes = vec![start, first];
        let mut path_edges = vec![anchor];
        on_path[start.index()] = true;
        on_path[first.index()] = true;
        dfs_cycles(
            g,
            anchor,
            start,
            first,
            &mut path_nodes,
            &mut path_edges,
            &mut on_path,
            &mut cycles,
            max_cycles,
        )?;
        on_path[start.index()] = false;
        on_path[first.index()] = false;
        debug_assert_eq!(path_edges.len(), 1);
    }
    Ok(cycles)
}

#[allow(clippy::too_many_arguments)]
fn dfs_cycles(
    g: &Graph,
    anchor: EdgeId,
    start: NodeId,
    current: NodeId,
    path_nodes: &mut Vec<NodeId>,
    path_edges: &mut Vec<EdgeId>,
    on_path: &mut [bool],
    cycles: &mut Vec<UndirectedCycle>,
    max_cycles: usize,
) -> Result<()> {
    // Consider every incident edge of `current` with id greater than the
    // anchor (canonicalisation) that we have not already used.
    let candidates: Vec<EdgeId> = g
        .out_edges(current)
        .iter()
        .chain(g.in_edges(current).iter())
        .copied()
        .filter(|&e| e > anchor && Some(&e) != path_edges.last())
        .collect();
    for e in candidates {
        if path_edges.contains(&e) {
            continue;
        }
        let (s, d) = g.endpoints(e);
        let next = if s == current { d } else { s };
        if next == start {
            if !path_edges.is_empty() {
                // Completed a cycle: nodes = path_nodes (start .. current),
                // edges = path_edges + e.
                let mut edges = path_edges.clone();
                edges.push(e);
                if cycles.len() >= max_cycles {
                    return Err(GraphError::Structure(format!(
                        "cycle enumeration exceeded the bound of {max_cycles}"
                    )));
                }
                cycles.push(UndirectedCycle {
                    nodes: path_nodes.clone(),
                    edges,
                });
            }
            continue;
        }
        if on_path[next.index()] {
            continue;
        }
        on_path[next.index()] = true;
        path_nodes.push(next);
        path_edges.push(e);
        dfs_cycles(
            g, anchor, start, next, path_nodes, path_edges, on_path, cycles, max_cycles,
        )?;
        path_edges.pop();
        path_nodes.pop();
        on_path[next.index()] = false;
    }
    Ok(())
}

/// Counts the undirected simple cycles without materialising them (still
/// exponential time, but constant memory beyond the DFS stack).
pub fn count_cycles(g: &Graph) -> usize {
    enumerate_cycles(g).len()
}

/// Returns `true` if every undirected simple cycle of `g` has exactly one
/// source and one sink — the brute-force CS4 check used to validate the
/// structural recogniser in `fila-avoidance`.
pub fn all_cycles_single_source_sink(g: &Graph) -> bool {
    enumerate_cycles(g)
        .iter()
        .all(|c| c.has_single_source_and_sink(g))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn diamond() -> Graph {
        let mut b = GraphBuilder::new();
        b.edge("a", "b").unwrap();
        b.edge("a", "c").unwrap();
        b.edge("b", "d").unwrap();
        b.edge("c", "d").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn diamond_has_one_cycle() {
        let g = diamond();
        let cycles = enumerate_cycles(&g);
        assert_eq!(cycles.len(), 1);
        let c = &cycles[0];
        assert_eq!(c.len(), 4);
        assert_eq!(c.sources(&g), vec![g.node_by_name("a").unwrap()]);
        assert_eq!(c.sinks(&g), vec![g.node_by_name("d").unwrap()]);
        assert!(c.has_single_source_and_sink(&g));
    }

    #[test]
    fn parallel_edges_make_two_cycles_pairwise() {
        let mut b = GraphBuilder::new();
        b.edge("a", "b").unwrap();
        b.edge("a", "b").unwrap();
        b.edge("a", "b").unwrap();
        let g = b.build().unwrap();
        // Three parallel edges: C(3,2) = 3 two-edge cycles.
        assert_eq!(count_cycles(&g), 3);
    }

    #[test]
    fn triangle_dag_cycle_runs() {
        // Fig. 2 of the paper: A->B, B->C, A->C.
        let mut b = GraphBuilder::new();
        b.edge_with_capacity("A", "B", 4).unwrap();
        b.edge_with_capacity("B", "C", 5).unwrap();
        b.edge_with_capacity("A", "C", 6).unwrap();
        let g = b.build().unwrap();
        let cycles = enumerate_cycles(&g);
        assert_eq!(cycles.len(), 1);
        let c = &cycles[0];
        assert!(c.has_single_source_and_sink(&g));
        let runs = c.directed_runs(&g);
        assert_eq!(runs.len(), 2);
        let mut lens: Vec<u64> = runs
            .iter()
            .map(|r| UndirectedCycle::run_buffer_length(&g, r))
            .collect();
        lens.sort();
        assert_eq!(lens, vec![6, 9]);
        for r in &runs {
            assert_eq!(r.start, g.node_by_name("A").unwrap());
            assert_eq!(r.end, g.node_by_name("C").unwrap());
        }
    }

    #[test]
    fn butterfly_cycle_with_two_sources_is_detected() {
        // Fig. 4 right: the butterfly contains cycle a-c-b-d with two
        // sources and two sinks.
        let mut b = GraphBuilder::new();
        for (s, t) in [
            ("x", "a"), ("x", "b"),
            ("a", "c"), ("a", "d"), ("b", "c"), ("b", "d"),
            ("c", "y"), ("d", "y"),
        ] {
            b.edge(s, t).unwrap();
        }
        let g = b.build().unwrap();
        assert!(!all_cycles_single_source_sink(&g));
        let bad: Vec<_> = enumerate_cycles(&g)
            .into_iter()
            .filter(|c| !c.has_single_source_and_sink(&g))
            .collect();
        assert!(!bad.is_empty());
        // The specific 4-node cycle a-c-b-d must be among them.
        let a = g.node_by_name("a").unwrap();
        let bb = g.node_by_name("b").unwrap();
        let c = g.node_by_name("c").unwrap();
        let d = g.node_by_name("d").unwrap();
        assert!(bad.iter().any(|cy| {
            cy.len() == 4
                && cy.contains_node(a)
                && cy.contains_node(bb)
                && cy.contains_node(c)
                && cy.contains_node(d)
        }));
    }

    #[test]
    fn cycle_count_grows_exponentially_with_parallel_chains() {
        // k parallel two-hop chains from s to t: every pair of chains forms a
        // cycle, so the number of simple cycles is C(k, 2).
        for k in 2..6usize {
            let mut b = GraphBuilder::new();
            for i in 0..k {
                let mid = format!("m{i}");
                b.edge("s", &mid).unwrap();
                b.edge(&mid, "t").unwrap();
            }
            let g = b.build().unwrap();
            assert_eq!(count_cycles(&g), k * (k - 1) / 2);
        }
    }

    #[test]
    fn bounded_enumeration_aborts() {
        let mut b = GraphBuilder::new();
        for i in 0..6 {
            let mid = format!("m{i}");
            b.edge("s", &mid).unwrap();
            b.edge(&mid, "t").unwrap();
        }
        let g = b.build().unwrap();
        assert!(enumerate_cycles_bounded(&g, 3).is_err());
        assert!(enumerate_cycles_bounded(&g, 100).is_ok());
    }

    #[test]
    fn acyclic_tree_has_no_cycles() {
        let mut b = GraphBuilder::new();
        b.edge("a", "b").unwrap();
        b.edge("a", "c").unwrap();
        b.edge("b", "d").unwrap();
        b.edge("b", "e").unwrap();
        let g = b.build().unwrap();
        assert_eq!(count_cycles(&g), 0);
    }

    #[test]
    fn every_cycle_is_simple() {
        let mut b = GraphBuilder::new();
        for (s, t) in [
            ("s", "a"), ("s", "b"), ("a", "m"), ("b", "m"),
            ("m", "c"), ("m", "d"), ("c", "t"), ("d", "t"),
        ] {
            b.edge(s, t).unwrap();
        }
        let g = b.build().unwrap();
        for c in enumerate_cycles(&g) {
            let mut nodes = c.nodes.clone();
            nodes.sort();
            nodes.dedup();
            assert_eq!(nodes.len(), c.nodes.len(), "cycle revisits a node");
            let mut edges = c.edges.clone();
            edges.sort();
            edges.dedup();
            assert_eq!(edges.len(), c.edges.len(), "cycle revisits an edge");
        }
        assert_eq!(count_cycles(&g), 2);
    }
}
