//! Single-source DAG path computations.
//!
//! The dummy-interval algorithms need two flavours of path length:
//!
//! * **buffer length** — the sum of channel buffer capacities along a path
//!   (the paper's `L(...)` quantities), minimised;
//! * **hop count** — the number of edges along a path (the paper's `h(...)`
//!   quantities), maximised.
//!
//! Both are computed by a single dynamic-programming sweep over a
//! topological order, optionally restricted to a caller-supplied set of
//! admissible edges (used by the SP-ladder algorithms of §VI to force paths
//! to start "through `S_i`" or "through `K_i`").

use crate::error::Result;
use crate::ids::{EdgeId, NodeId};
use crate::multigraph::Graph;
use crate::topo::topological_order;

/// Per-node result of a DAG path sweep; `None` means unreachable.
pub type PathTable = Vec<Option<u64>>;

/// Shortest *buffer-length* distance from `src` to every node, following
/// only edges for which `admit` returns true.
///
/// Edge weights are the channel capacities.  `table[v] == None` means `v`
/// is unreachable from `src` under the restriction.
pub fn shortest_buffer_dists<F>(g: &Graph, src: NodeId, mut admit: F) -> Result<PathTable>
where
    F: FnMut(EdgeId) -> bool,
{
    let order = topological_order(g)?;
    let mut dist: PathTable = vec![None; g.node_count()];
    dist[src.index()] = Some(0);
    for &u in &order {
        let Some(du) = dist[u.index()] else { continue };
        for &e in g.out_edges(u) {
            if !admit(e) {
                continue;
            }
            let v = g.head(e);
            let cand = du.saturating_add(g.capacity(e));
            let slot = &mut dist[v.index()];
            match slot {
                Some(best) if *best <= cand => {}
                _ => *slot = Some(cand),
            }
        }
    }
    Ok(dist)
}

/// Longest *hop-count* distance from `src` to every node, following only
/// edges for which `admit` returns true.
pub fn longest_hop_dists<F>(g: &Graph, src: NodeId, mut admit: F) -> Result<PathTable>
where
    F: FnMut(EdgeId) -> bool,
{
    let order = topological_order(g)?;
    let mut dist: PathTable = vec![None; g.node_count()];
    dist[src.index()] = Some(0);
    for &u in &order {
        let Some(du) = dist[u.index()] else { continue };
        for &e in g.out_edges(u) {
            if !admit(e) {
                continue;
            }
            let v = g.head(e);
            let cand = du + 1;
            let slot = &mut dist[v.index()];
            match slot {
                Some(best) if *best >= cand => {}
                _ => *slot = Some(cand),
            }
        }
    }
    Ok(dist)
}

/// Shortest buffer-length of a directed path from `from` to `to`
/// (`Some(0)` if they are equal, `None` if unreachable).
pub fn shortest_buffer_path(g: &Graph, from: NodeId, to: NodeId) -> Result<Option<u64>> {
    Ok(shortest_buffer_dists(g, from, |_| true)?[to.index()])
}

/// Longest hop count of a directed path from `from` to `to`.
pub fn longest_hop_path(g: &Graph, from: NodeId, to: NodeId) -> Result<Option<u64>> {
    Ok(longest_hop_dists(g, from, |_| true)?[to.index()])
}

/// Shortest buffer-length from `from` to `to` where the first edge of the
/// path must be `first_edge` (the path `from -> ... -> to` is forced to
/// start through that specific channel).  Returns `None` if no such path
/// exists.
pub fn shortest_buffer_path_via_first_edge(
    g: &Graph,
    first_edge: EdgeId,
    to: NodeId,
) -> Result<Option<u64>> {
    let (u, v) = g.endpoints(first_edge);
    debug_assert!(u != to || v == to, "degenerate query");
    let rest = shortest_buffer_dists(g, v, |_| true)?[to.index()];
    Ok(rest.map(|r| r.saturating_add(g.capacity(first_edge))))
}

/// Longest hop count from `from` to `to` where the first edge of the path
/// must be `first_edge`.
pub fn longest_hop_path_via_first_edge(
    g: &Graph,
    first_edge: EdgeId,
    to: NodeId,
) -> Result<Option<u64>> {
    let (_, v) = g.endpoints(first_edge);
    let rest = longest_hop_dists(g, v, |_| true)?[to.index()];
    Ok(rest.map(|r| r + 1))
}

/// Longest hop count of a path from `from` to `to` that passes through edge
/// `via` (i.e. `from -> ... -> via.src -> via.dst -> ... -> to`), or `None`
/// if no such path exists.
pub fn longest_hop_path_through_edge(
    g: &Graph,
    from: NodeId,
    via: EdgeId,
    to: NodeId,
) -> Result<Option<u64>> {
    let (u, v) = g.endpoints(via);
    let front = longest_hop_dists(g, from, |_| true)?[u.index()];
    let back = longest_hop_dists(g, v, |_| true)?[to.index()];
    Ok(match (front, back) {
        (Some(a), Some(b)) => Some(a + 1 + b),
        _ => None,
    })
}

/// Shortest buffer length of a path from `from` to `to` that passes through
/// edge `via`, or `None` if no such path exists.
pub fn shortest_buffer_path_through_edge(
    g: &Graph,
    from: NodeId,
    via: EdgeId,
    to: NodeId,
) -> Result<Option<u64>> {
    let (u, v) = g.endpoints(via);
    let front = shortest_buffer_dists(g, from, |_| true)?[u.index()];
    let back = shortest_buffer_dists(g, v, |_| true)?[to.index()];
    Ok(match (front, back) {
        (Some(a), Some(b)) => Some(a + g.capacity(via) + b),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// The Fig. 3 graph of the paper: two directed branches a->b->e->f
    /// (buffers 2,5,1) and a->c->d->f (buffers 3,1,2).
    fn fig3() -> Graph {
        let mut b = GraphBuilder::new();
        b.edge_with_capacity("a", "b", 2).unwrap();
        b.edge_with_capacity("b", "e", 5).unwrap();
        b.edge_with_capacity("e", "f", 1).unwrap();
        b.edge_with_capacity("a", "c", 3).unwrap();
        b.edge_with_capacity("c", "d", 1).unwrap();
        b.edge_with_capacity("d", "f", 2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn shortest_buffer_distances_match_fig3() {
        let g = fig3();
        let a = g.node_by_name("a").unwrap();
        let f = g.node_by_name("f").unwrap();
        // a->c->d->f = 3+1+2 = 6; a->b->e->f = 2+5+1 = 8.
        assert_eq!(shortest_buffer_path(&g, a, f).unwrap(), Some(6));
    }

    #[test]
    fn longest_hops_match_fig3() {
        let g = fig3();
        let a = g.node_by_name("a").unwrap();
        let f = g.node_by_name("f").unwrap();
        assert_eq!(longest_hop_path(&g, a, f).unwrap(), Some(3));
        assert_eq!(longest_hop_path(&g, f, a).unwrap(), None);
        assert_eq!(longest_hop_path(&g, a, a).unwrap(), Some(0));
    }

    #[test]
    fn restricted_sweep_excludes_edges() {
        let g = fig3();
        let a = g.node_by_name("a").unwrap();
        let f = g.node_by_name("f").unwrap();
        let ac = g.edge_by_names("a", "c").unwrap();
        // Forbid a->c: only the a->b->e->f branch remains, cost 8.
        let dist = shortest_buffer_dists(&g, a, |e| e != ac).unwrap();
        assert_eq!(dist[f.index()], Some(8));
        let c = g.node_by_name("c").unwrap();
        assert_eq!(dist[c.index()], None);
    }

    #[test]
    fn via_first_edge_paths() {
        let g = fig3();
        let f = g.node_by_name("f").unwrap();
        let ab = g.edge_by_names("a", "b").unwrap();
        let ac = g.edge_by_names("a", "c").unwrap();
        assert_eq!(
            shortest_buffer_path_via_first_edge(&g, ab, f).unwrap(),
            Some(8)
        );
        assert_eq!(
            shortest_buffer_path_via_first_edge(&g, ac, f).unwrap(),
            Some(6)
        );
        assert_eq!(longest_hop_path_via_first_edge(&g, ab, f).unwrap(), Some(3));
    }

    #[test]
    fn through_edge_paths() {
        let g = fig3();
        let a = g.node_by_name("a").unwrap();
        let f = g.node_by_name("f").unwrap();
        let be = g.edge_by_names("b", "e").unwrap();
        assert_eq!(
            longest_hop_path_through_edge(&g, a, be, f).unwrap(),
            Some(3)
        );
        assert_eq!(
            shortest_buffer_path_through_edge(&g, a, be, f).unwrap(),
            Some(8)
        );
        // No path from c through b->e.
        let c = g.node_by_name("c").unwrap();
        assert_eq!(longest_hop_path_through_edge(&g, c, be, f).unwrap(), None);
    }

    #[test]
    fn diamond_longest_vs_shortest_diverge() {
        let mut b = GraphBuilder::new();
        b.edge_with_capacity("s", "m1", 1).unwrap();
        b.edge_with_capacity("m1", "t", 1).unwrap();
        b.edge_with_capacity("s", "m2", 10).unwrap();
        b.edge_with_capacity("m2", "m3", 10).unwrap();
        b.edge_with_capacity("m3", "t", 10).unwrap();
        let g = b.build().unwrap();
        let s = g.node_by_name("s").unwrap();
        let t = g.node_by_name("t").unwrap();
        assert_eq!(shortest_buffer_path(&g, s, t).unwrap(), Some(2));
        assert_eq!(longest_hop_path(&g, s, t).unwrap(), Some(3));
    }

    #[test]
    fn unreachable_pairs_are_none() {
        let mut b = GraphBuilder::new();
        b.edge("a", "b").unwrap();
        b.edge("a", "c").unwrap();
        let g = b.build().unwrap();
        let bnode = g.node_by_name("b").unwrap();
        let cnode = g.node_by_name("c").unwrap();
        assert_eq!(shortest_buffer_path(&g, bnode, cnode).unwrap(), None);
    }
}
