//! Detection of subgraphs homeomorphic to `K4`.
//!
//! Lemma V.1 of the paper shows that a CS4 DAG contains no subgraph
//! homeomorphic to `K4` (the complete graph on four vertices), which is the
//! classical characterisation of *undirected* series-parallel graphs
//! (Duffin 1965).  We use the equally classical reduction characterisation:
//! an undirected multigraph is `K4`-subdivision-free iff it can be reduced
//! to the empty graph by exhaustively
//!
//! * deleting isolated vertices,
//! * deleting degree-1 vertices together with their edge,
//! * suppressing degree-2 vertices (merging their two incident edges), and
//! * merging parallel edges / deleting self-loops.
//!
//! The four branch vertices of a `K4` subdivision all have degree ≥ 3 and
//! survive every reduction, so the reduction empties the graph iff no such
//! subdivision exists.

use crate::multigraph::Graph;

/// A small mutable undirected multigraph used only for the reduction.
struct Scratch {
    /// adjacency: for each vertex, list of (edge index) into `ends`.
    adj: Vec<Vec<usize>>,
    /// endpoints of each edge; `None` once deleted.
    ends: Vec<Option<(usize, usize)>>,
    alive_vertices: usize,
}

impl Scratch {
    fn from_graph(g: &Graph) -> Self {
        let n = g.node_count();
        let mut adj = vec![Vec::new(); n];
        let mut ends = Vec::with_capacity(g.edge_count());
        for (_, e) in g.edges() {
            let idx = ends.len();
            ends.push(Some((e.src.index(), e.dst.index())));
            adj[e.src.index()].push(idx);
            adj[e.dst.index()].push(idx);
        }
        Scratch {
            adj,
            ends,
            alive_vertices: n,
        }
    }

    fn degree(&self, v: usize) -> usize {
        self.adj[v]
            .iter()
            .filter(|&&e| self.ends[e].is_some())
            .count()
    }

    fn live_incident(&self, v: usize) -> Vec<usize> {
        self.adj[v]
            .iter()
            .copied()
            .filter(|&e| self.ends[e].is_some())
            .collect()
    }

    fn other(&self, e: usize, v: usize) -> usize {
        let (a, b) = self.ends[e].expect("live edge");
        if a == v {
            b
        } else {
            a
        }
    }

    fn delete_edge(&mut self, e: usize) {
        self.ends[e] = None;
    }

    /// Runs the reduction to a fixed point and reports whether the graph
    /// became empty (no live edges and every vertex isolated).
    fn reduces_to_empty(&mut self) -> bool {
        let n = self.adj.len();
        let mut removed = vec![false; n];
        let mut queue: Vec<usize> = (0..n).collect();
        while let Some(v) = queue.pop() {
            if removed[v] {
                continue;
            }
            // Drop self-loops and merge parallel edges incident to v first.
            let incident = self.live_incident(v);
            // Self-loops.
            for &e in &incident {
                let (a, b) = self.ends[e].expect("live");
                if a == b {
                    self.delete_edge(e);
                }
            }
            // Parallel edges: keep one per neighbour.
            let incident = self.live_incident(v);
            let mut seen_neighbour: Vec<(usize, usize)> = Vec::new();
            for &e in &incident {
                let w = self.other(e, v);
                if let Some(&(_, _keep)) = seen_neighbour.iter().find(|&&(nb, _)| nb == w) {
                    self.delete_edge(e);
                    // The neighbour's degree changed; revisit it.
                    queue.push(w);
                } else {
                    seen_neighbour.push((w, e));
                }
            }
            match self.degree(v) {
                0 => {
                    removed[v] = true;
                    self.alive_vertices -= 1;
                }
                1 => {
                    let e = self.live_incident(v)[0];
                    let w = self.other(e, v);
                    self.delete_edge(e);
                    removed[v] = true;
                    self.alive_vertices -= 1;
                    queue.push(w);
                }
                2 => {
                    let inc = self.live_incident(v);
                    let (e1, e2) = (inc[0], inc[1]);
                    let w1 = self.other(e1, v);
                    let w2 = self.other(e2, v);
                    // Suppress v: replace e1, e2 by a single edge w1 - w2.
                    self.delete_edge(e1);
                    self.delete_edge(e2);
                    removed[v] = true;
                    self.alive_vertices -= 1;
                    if w1 == w2 {
                        // The merged edge would be a self-loop; drop it.
                        queue.push(w1);
                    } else {
                        let idx = self.ends.len();
                        self.ends.push(Some((w1, w2)));
                        self.adj[w1].push(idx);
                        self.adj[w2].push(idx);
                        queue.push(w1);
                        queue.push(w2);
                    }
                }
                _ => {
                    // Degree >= 3 after local cleanup: leave for now; it may
                    // become reducible when a neighbour is processed, in
                    // which case it is re-queued above.
                }
            }
        }
        // The graph is K4-free iff no vertex of degree >= 3 survived.  After
        // the fixed point, surviving vertices all have degree >= 3 (any
        // lower-degree vertex would have been re-queued and removed), so it
        // suffices to check that everything was removed.
        (0..n).all(|v| removed[v] || self.degree(v) == 0)
    }
}

/// Returns `true` if the underlying undirected multigraph of `g` contains a
/// subgraph homeomorphic to `K4`.
pub fn has_k4_subdivision(g: &Graph) -> bool {
    !is_k4_free(g)
}

/// Returns `true` if the underlying undirected multigraph of `g` contains
/// **no** subgraph homeomorphic to `K4` (i.e. it is undirected
/// series-parallel in the generalised sense).
pub fn is_k4_free(g: &Graph) -> bool {
    if g.edge_count() == 0 {
        return true;
    }
    Scratch::from_graph(g).reduces_to_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn trees_and_chains_are_k4_free() {
        let mut b = GraphBuilder::new();
        b.chain(&["a", "b", "c", "d", "e"]).unwrap();
        b.edge("b", "x").unwrap();
        b.edge("c", "y").unwrap();
        let g = b.build().unwrap();
        assert!(is_k4_free(&g));
    }

    #[test]
    fn diamond_and_parallel_edges_are_k4_free() {
        let mut b = GraphBuilder::new();
        b.edge("a", "b").unwrap();
        b.edge("a", "b").unwrap();
        b.edge("b", "c").unwrap();
        b.edge("b", "c").unwrap();
        b.edge("a", "c").unwrap();
        let g = b.build().unwrap();
        assert!(is_k4_free(&g));
    }

    #[test]
    fn crosslinked_split_join_is_k4_free() {
        // Fig. 4 left: split/join with a cross edge a -> b; not an SP-DAG
        // but still K4-free (and CS4).
        let mut b = GraphBuilder::new();
        for (s, t) in [("x", "a"), ("x", "b"), ("a", "y"), ("b", "y"), ("a", "b")] {
            b.edge(s, t).unwrap();
        }
        let g = b.build().unwrap();
        assert!(is_k4_free(&g));
    }

    #[test]
    fn butterfly_contains_k4_subdivision() {
        // Fig. 4 right: the butterfly has the cycle a-c-b-d plus paths
        // through X and Y, giving a K4 subdivision on {a, b, c/X, d/Y}.
        let mut b = GraphBuilder::new();
        for (s, t) in [
            ("x", "a"), ("x", "b"),
            ("a", "c"), ("a", "d"), ("b", "c"), ("b", "d"),
            ("c", "y"), ("d", "y"),
        ] {
            b.edge(s, t).unwrap();
        }
        let g = b.build().unwrap();
        assert!(has_k4_subdivision(&g));
    }

    #[test]
    fn explicit_k4_is_detected() {
        let mut b = GraphBuilder::new();
        // Orient K4 acyclically: 1->2,1->3,1->4,2->3,2->4,3->4.
        for (s, t) in [("1", "2"), ("1", "3"), ("1", "4"), ("2", "3"), ("2", "4"), ("3", "4")] {
            b.edge(s, t).unwrap();
        }
        let g = b.build().unwrap();
        assert!(has_k4_subdivision(&g));
    }

    #[test]
    fn k4_subdivision_with_long_paths_is_detected() {
        let mut b = GraphBuilder::new();
        // Same as explicit K4 but every connection is a 2-hop path.
        let pairs = [("1", "2"), ("1", "3"), ("1", "4"), ("2", "3"), ("2", "4"), ("3", "4")];
        for (i, (s, t)) in pairs.into_iter().enumerate() {
            let mid = format!("m{i}");
            b.edge(s, &mid).unwrap();
            b.edge(&mid, t).unwrap();
        }
        let g = b.build().unwrap();
        assert!(has_k4_subdivision(&g));
    }

    #[test]
    fn ladder_with_many_rungs_is_k4_free() {
        // A long ladder: left path u0..u5, right path v0..v5, rungs ui->vi.
        let mut b = GraphBuilder::new();
        for i in 0..5 {
            b.edge(&format!("u{i}"), &format!("u{}", i + 1)).unwrap();
            b.edge(&format!("v{i}"), &format!("v{}", i + 1)).unwrap();
        }
        for i in 1..5 {
            b.edge(&format!("u{i}"), &format!("v{i}")).unwrap();
        }
        b.edge("s", "u0").unwrap();
        b.edge("s", "v0").unwrap();
        b.edge("u5", "t").unwrap();
        b.edge("v5", "t").unwrap();
        let g = b.build().unwrap();
        // Non-crossing rungs keep the graph an SP-ladder, which is CS4 and
        // therefore K4-free (Lemma V.1 / Corollary V.5).
        assert!(is_k4_free(&g));
    }

    #[test]
    fn crossing_rungs_create_a_k4_subdivision() {
        // Same ladder but with two *crossing* rungs u1->v3 and u3->v1 (the
        // proof of Lemma V.6 shows crossing chord graphs yield K4).
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.edge(&format!("u{i}"), &format!("u{}", i + 1)).unwrap();
            b.edge(&format!("v{i}"), &format!("v{}", i + 1)).unwrap();
        }
        b.edge("s", "u0").unwrap();
        b.edge("s", "v0").unwrap();
        b.edge("u4", "t").unwrap();
        b.edge("v4", "t").unwrap();
        b.edge("u1", "v3").unwrap();
        b.edge("u3", "v1").unwrap();
        let g = b.build().unwrap();
        assert!(has_k4_subdivision(&g));
    }

    #[test]
    fn empty_and_single_edge_graphs() {
        let g = Graph::new();
        assert!(is_k4_free(&g));
        let mut b = GraphBuilder::new();
        b.edge("a", "b").unwrap();
        let g = b.build().unwrap();
        assert!(is_k4_free(&g));
    }
}
