//! Error type shared by the graph construction and analysis routines.

use std::fmt;

use crate::ids::{EdgeId, NodeId};

/// Result alias used across `fila-graph`.
pub type Result<T, E = GraphError> = std::result::Result<T, E>;

/// Errors produced while building or analysing a streaming-application graph.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A node id referenced a node that does not exist in this graph.
    UnknownNode(NodeId),
    /// An edge id referenced an edge that does not exist in this graph.
    UnknownEdge(EdgeId),
    /// An edge would create a self-loop, which the streaming model forbids.
    SelfLoop(NodeId),
    /// The graph contains a directed cycle; the model only admits DAGs.
    NotAcyclic {
        /// A node known to participate in the directed cycle.
        witness: NodeId,
    },
    /// The graph has no nodes, which several analyses cannot handle.
    Empty,
    /// The graph is not connected (as an undirected graph).
    Disconnected {
        /// A node unreachable from the first node in the undirected sense.
        witness: NodeId,
    },
    /// The analysis requires a unique source node but found zero or several.
    NotSingleSource {
        /// All source nodes found (nodes with no incoming edges).
        sources: Vec<NodeId>,
    },
    /// The analysis requires a unique sink node but found zero or several.
    NotSingleSink {
        /// All sink nodes found (nodes with no outgoing edges).
        sinks: Vec<NodeId>,
    },
    /// A buffer capacity of zero was supplied; the model requires every
    /// channel to hold at least one message.
    ZeroCapacity {
        /// The offending edge.
        edge: EdgeId,
    },
    /// A structural requirement of a specific analysis was violated.
    Structure(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(n) => write!(f, "unknown node {n}"),
            GraphError::UnknownEdge(e) => write!(f, "unknown edge {e}"),
            GraphError::SelfLoop(n) => write!(f, "self-loop on node {n} is not allowed"),
            GraphError::NotAcyclic { witness } => {
                write!(f, "graph contains a directed cycle through {witness}")
            }
            GraphError::Empty => write!(f, "graph has no nodes"),
            GraphError::Disconnected { witness } => {
                write!(f, "graph is not (undirected-)connected; {witness} is unreachable")
            }
            GraphError::NotSingleSource { sources } => {
                write!(f, "expected exactly one source node, found {}", sources.len())
            }
            GraphError::NotSingleSink { sinks } => {
                write!(f, "expected exactly one sink node, found {}", sinks.len())
            }
            GraphError::ZeroCapacity { edge } => {
                write!(f, "edge {edge} has zero buffer capacity")
            }
            GraphError::Structure(msg) => write!(f, "structural requirement violated: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::UnknownNode(NodeId::from_raw(3));
        assert!(e.to_string().contains("n3"));
        let e = GraphError::NotSingleSource {
            sources: vec![NodeId::from_raw(0), NodeId::from_raw(1)],
        };
        assert!(e.to_string().contains("found 2"));
        let e = GraphError::Structure("no outer cycle".into());
        assert!(e.to_string().contains("no outer cycle"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&GraphError::Empty);
    }
}
