//! A fluent builder for constructing streaming-application graphs by name.
//!
//! [`GraphBuilder`] lets examples, tests and workload generators write
//! topologies the way the paper draws them — "edge from `a` to `b` with
//! buffer 3" — without juggling ids.  Nodes are created on first mention.

use std::collections::HashMap;

use crate::error::Result;
use crate::ids::{EdgeId, NodeId};
use crate::multigraph::Graph;

/// Incrementally builds a [`Graph`], addressing nodes by name.
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    graph: Graph,
    by_name: HashMap<String, NodeId>,
    default_capacity: u64,
}

impl GraphBuilder {
    /// Creates a builder whose [`GraphBuilder::edge`] calls use a default
    /// buffer capacity of 1.
    pub fn new() -> Self {
        GraphBuilder {
            graph: Graph::new(),
            by_name: HashMap::new(),
            default_capacity: 1,
        }
    }

    /// Sets the buffer capacity used by [`GraphBuilder::edge`].
    pub fn default_capacity(mut self, capacity: u64) -> Self {
        self.default_capacity = capacity;
        self
    }

    /// Returns the id for `name`, creating the node if needed.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.graph.add_node(name);
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Adds an edge with the builder's default capacity.
    pub fn edge(&mut self, src: &str, dst: &str) -> Result<EdgeId> {
        self.edge_with_capacity(src, dst, self.default_capacity)
    }

    /// Adds an edge with an explicit buffer capacity.
    pub fn edge_with_capacity(&mut self, src: &str, dst: &str, capacity: u64) -> Result<EdgeId> {
        let s = self.node(src);
        let d = self.node(dst);
        self.graph.add_edge(s, d, capacity)
    }

    /// Adds a directed chain `names[0] -> names[1] -> ...` with the default
    /// capacity on every hop, returning the created edge ids.
    pub fn chain(&mut self, names: &[&str]) -> Result<Vec<EdgeId>> {
        let mut edges = Vec::with_capacity(names.len().saturating_sub(1));
        for pair in names.windows(2) {
            edges.push(self.edge(pair[0], pair[1])?);
        }
        Ok(edges)
    }

    /// Number of nodes created so far.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Read-only view of the graph built so far.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Finishes building without validation.  Useful when intentionally
    /// constructing malformed graphs in tests.
    pub fn build_unchecked(self) -> Graph {
        self.graph
    }

    /// Finishes building, checking the global model invariants
    /// (non-empty, acyclic, connected).
    pub fn build(self) -> Result<Graph> {
        self.graph.validate()?;
        Ok(self.graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::GraphError;

    #[test]
    fn builds_named_nodes_once() {
        let mut b = GraphBuilder::new();
        let a1 = b.node("a");
        let a2 = b.node("a");
        assert_eq!(a1, a2);
        assert_eq!(b.node_count(), 1);
    }

    #[test]
    fn edge_uses_default_capacity() {
        let mut b = GraphBuilder::new().default_capacity(5);
        let e = b.edge("x", "y").unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.capacity(e), 5);
    }

    #[test]
    fn explicit_capacity_overrides_default() {
        let mut b = GraphBuilder::new().default_capacity(5);
        let e = b.edge_with_capacity("x", "y", 2).unwrap();
        assert_eq!(b.graph().capacity(e), 2);
    }

    #[test]
    fn chain_builds_a_pipeline() {
        let mut b = GraphBuilder::new();
        let edges = b.chain(&["a", "b", "c", "d"]).unwrap();
        assert_eq!(edges.len(), 3);
        let g = b.build().unwrap();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.single_source().unwrap(), g.node_by_name("a").unwrap());
        assert_eq!(g.single_sink().unwrap(), g.node_by_name("d").unwrap());
    }

    #[test]
    fn build_validates_connectivity() {
        let mut b = GraphBuilder::new();
        b.edge("a", "b").unwrap();
        b.node("stranded");
        assert!(matches!(b.build(), Err(GraphError::Disconnected { .. })));
    }

    #[test]
    fn build_detects_directed_cycles() {
        let mut b = GraphBuilder::new();
        b.edge("a", "b").unwrap();
        b.edge("b", "c").unwrap();
        b.edge("c", "a").unwrap();
        assert!(matches!(b.build(), Err(GraphError::NotAcyclic { .. })));
    }

    #[test]
    fn build_unchecked_skips_validation() {
        let mut b = GraphBuilder::new();
        b.edge("a", "b").unwrap();
        b.node("stranded");
        let g = b.build_unchecked();
        assert_eq!(g.node_count(), 3);
    }
}
