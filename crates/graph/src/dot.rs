//! Graphviz DOT export for debugging and documentation.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::ids::EdgeId;
use crate::multigraph::Graph;

/// Options controlling DOT rendering.
#[derive(Debug, Clone, Default)]
pub struct DotOptions {
    /// Optional per-edge annotations appended to the capacity label (for
    /// example the computed dummy interval).
    pub edge_annotations: HashMap<EdgeId, String>,
    /// Graph title rendered as a label.
    pub title: Option<String>,
}

/// Renders the graph in Graphviz DOT syntax.  Edge labels show the buffer
/// capacity and any caller-provided annotation.
pub fn to_dot(g: &Graph, options: &DotOptions) -> String {
    let mut out = String::new();
    out.push_str("digraph fila {\n");
    out.push_str("  rankdir=TB;\n  node [shape=circle, fontsize=11];\n");
    if let Some(title) = &options.title {
        let _ = writeln!(out, "  label=\"{}\";", escape(title));
    }
    for (id, node) in g.nodes() {
        let _ = writeln!(out, "  {} [label=\"{}\"];", id.index(), escape(&node.name));
    }
    for (id, edge) in g.edges() {
        let mut label = format!("cap={}", edge.capacity);
        if let Some(extra) = options.edge_annotations.get(&id) {
            label.push_str("\\n");
            label.push_str(extra);
        }
        let _ = writeln!(
            out,
            "  {} -> {} [label=\"{}\"];",
            edge.src.index(),
            edge.dst.index(),
            label
        );
    }
    out.push_str("}\n");
    out
}

/// Renders the graph with default options.
pub fn to_dot_simple(g: &Graph) -> String {
    to_dot(g, &DotOptions::default())
}

fn escape(s: &str) -> String {
    s.replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn renders_nodes_edges_and_labels() {
        let mut b = GraphBuilder::new();
        let e = b.edge_with_capacity("split", "join", 4).unwrap();
        let g = b.build().unwrap();
        let mut opts = DotOptions {
            title: Some("demo".into()),
            ..DotOptions::default()
        };
        opts.edge_annotations.insert(e, "[e]=3".into());
        let dot = to_dot(&g, &opts);
        assert!(dot.contains("digraph fila"));
        assert!(dot.contains("label=\"split\""));
        assert!(dot.contains("cap=4"));
        assert!(dot.contains("[e]=3"));
        assert!(dot.contains("label=\"demo\""));
    }

    #[test]
    fn simple_rendering_has_one_line_per_element() {
        let mut b = GraphBuilder::new();
        b.edge("a", "b").unwrap();
        b.edge("b", "c").unwrap();
        let g = b.build().unwrap();
        let dot = to_dot_simple(&g);
        assert_eq!(dot.matches(" -> ").count(), 2);
    }

    #[test]
    fn escapes_quotes_in_names() {
        let mut b = GraphBuilder::new();
        b.edge("say \"hi\"", "b").unwrap();
        let g = b.build().unwrap();
        let dot = to_dot_simple(&g);
        assert!(dot.contains("say \\\"hi\\\""));
    }
}
