//! Undirected view of the multigraph: connectivity, articulation points and
//! biconnected components.
//!
//! Undirected structure drives the CS4 decomposition of §V: a CS4 graph is a
//! *serial composition* of SP-DAGs and SP-ladders, and the serial cut points
//! are exactly the articulation points of the underlying undirected graph.
//! Biconnected components give the constituent pieces between those cut
//! points.

use crate::ids::{EdgeId, NodeId};
use crate::multigraph::Graph;

/// An undirected adjacency overlay over a [`Graph`].
#[derive(Debug, Clone)]
pub struct UndirectedView<'g> {
    graph: &'g Graph,
    /// For every node, the incident edges regardless of direction.
    adj: Vec<Vec<EdgeId>>,
}

/// One biconnected component: a maximal set of edges such that any two lie
/// on a common undirected simple cycle (bridges form singleton components).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BiconnectedComponent {
    /// The edges of the component.
    pub edges: Vec<EdgeId>,
    /// The nodes touched by those edges (no duplicates, unsorted).
    pub nodes: Vec<NodeId>,
}

impl<'g> UndirectedView<'g> {
    /// Builds the undirected adjacency overlay.
    pub fn new(graph: &'g Graph) -> Self {
        let mut adj = vec![Vec::new(); graph.node_count()];
        for (id, e) in graph.edges() {
            adj[e.src.index()].push(id);
            adj[e.dst.index()].push(id);
        }
        UndirectedView { graph, adj }
    }

    /// The underlying directed graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Edges incident to `v` (in either direction).
    pub fn incident(&self, v: NodeId) -> &[EdgeId] {
        &self.adj[v.index()]
    }

    /// The endpoint of `e` that is not `v`.
    pub fn other_endpoint(&self, e: EdgeId, v: NodeId) -> NodeId {
        let (s, d) = self.graph.endpoints(e);
        if s == v {
            d
        } else {
            s
        }
    }

    /// Undirected degree of `v` (parallel edges counted separately).
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v.index()].len()
    }

    /// Returns whether the undirected graph is connected.  The empty graph
    /// is considered connected.
    pub fn is_connected(&self) -> bool {
        first_unreachable(self.graph).is_none()
    }

    /// Articulation points (cut vertices) of the undirected graph.
    pub fn articulation_points(&self) -> Vec<NodeId> {
        let (aps, _) = self.articulation_and_components();
        aps
    }

    /// Biconnected components of the undirected graph.
    pub fn biconnected_components(&self) -> Vec<BiconnectedComponent> {
        let (_, comps) = self.articulation_and_components();
        comps
    }

    /// Hopcroft–Tarjan articulation point / biconnected component algorithm
    /// (iterative, multigraph-aware: only the tree edge used to reach a node
    /// is skipped, so parallel edges correctly form cycles).
    pub fn articulation_and_components(&self) -> (Vec<NodeId>, Vec<BiconnectedComponent>) {
        let n = self.graph.node_count();
        let mut disc = vec![usize::MAX; n];
        let mut low = vec![usize::MAX; n];
        let mut is_ap = vec![false; n];
        let mut timer = 0usize;
        let mut edge_stack: Vec<EdgeId> = Vec::new();
        let mut components: Vec<BiconnectedComponent> = Vec::new();

        // Iterative DFS frame: (node, incoming edge, next incident index,
        // number of DFS children so far).
        struct Frame {
            v: NodeId,
            via: Option<EdgeId>,
            next: usize,
            children: usize,
        }

        for start in self.graph.node_ids() {
            if disc[start.index()] != usize::MAX {
                continue;
            }
            disc[start.index()] = timer;
            low[start.index()] = timer;
            timer += 1;
            let mut stack = vec![Frame { v: start, via: None, next: 0, children: 0 }];
            while let Some(frame) = stack.last_mut() {
                let v = frame.v;
                if frame.next < self.adj[v.index()].len() {
                    let e = self.adj[v.index()][frame.next];
                    frame.next += 1;
                    if Some(e) == frame.via {
                        continue;
                    }
                    let w = self.other_endpoint(e, v);
                    if disc[w.index()] == usize::MAX {
                        // Tree edge.
                        edge_stack.push(e);
                        frame.children += 1;
                        disc[w.index()] = timer;
                        low[w.index()] = timer;
                        timer += 1;
                        stack.push(Frame { v: w, via: Some(e), next: 0, children: 0 });
                    } else if disc[w.index()] < disc[v.index()] {
                        // Back edge to an ancestor (or a parallel edge).
                        edge_stack.push(e);
                        low[v.index()] = low[v.index()].min(disc[w.index()]);
                    }
                } else {
                    // All incident edges of v explored; pop and propagate low.
                    let finished = stack.pop().expect("frame exists");
                    if let Some(parent_frame) = stack.last() {
                        let p = parent_frame.v;
                        low[p.index()] = low[p.index()].min(low[finished.v.index()]);
                        if low[finished.v.index()] >= disc[p.index()] {
                            // p separates the subtree rooted at v: emit one
                            // biconnected component.
                            if parent_frame.via.is_some() || parent_frame.children > 1
                                || parent_frame.next < self.adj[p.index()].len()
                            {
                                // articulation decision handled below via
                                // the standard root / non-root rule.
                            }
                            let via = finished.via.expect("non-root has entry edge");
                            let mut comp_edges = Vec::new();
                            while let Some(&top) = edge_stack.last() {
                                edge_stack.pop();
                                comp_edges.push(top);
                                if top == via {
                                    break;
                                }
                            }
                            components.push(make_component(self.graph, comp_edges));
                            // Non-root articulation rule.
                            let p_is_root = parent_frame.via.is_none();
                            if !p_is_root {
                                is_ap[p.index()] = true;
                            }
                        }
                    }
                }
            }
            // Root articulation rule: the DFS root is an articulation point
            // iff it has more than one DFS child, which equals the number of
            // components that contain it... we recover it by counting the
            // components that include `start`.
            let root_children = components
                .iter()
                .filter(|c| c.nodes.contains(&start))
                .count();
            if root_children > 1 {
                is_ap[start.index()] = true;
            }
            debug_assert!(edge_stack.is_empty(), "edge stack fully drained per root");
        }

        let aps = self
            .graph
            .node_ids()
            .filter(|v| is_ap[v.index()])
            .collect();
        (aps, components)
    }
}

fn make_component(g: &Graph, edges: Vec<EdgeId>) -> BiconnectedComponent {
    let mut nodes = Vec::new();
    for &e in &edges {
        let (s, d) = g.endpoints(e);
        if !nodes.contains(&s) {
            nodes.push(s);
        }
        if !nodes.contains(&d) {
            nodes.push(d);
        }
    }
    BiconnectedComponent { edges, nodes }
}

/// Returns the first node (in id order) that is not reachable from node 0 in
/// the undirected sense, or `None` if the graph is connected or empty.
pub fn first_unreachable(g: &Graph) -> Option<NodeId> {
    if g.node_count() == 0 {
        return None;
    }
    let view = UndirectedView::new(g);
    let start = NodeId::from_raw(0);
    let mut seen = vec![false; g.node_count()];
    seen[0] = true;
    let mut stack = vec![start];
    while let Some(v) = stack.pop() {
        for &e in view.incident(v) {
            let w = view.other_endpoint(e, v);
            if !seen[w.index()] {
                seen[w.index()] = true;
                stack.push(w);
            }
        }
    }
    g.node_ids().find(|v| !seen[v.index()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn connectivity() {
        let mut b = GraphBuilder::new();
        b.edge("a", "b").unwrap();
        b.edge("b", "c").unwrap();
        let g = b.build().unwrap();
        assert!(UndirectedView::new(&g).is_connected());
        assert_eq!(first_unreachable(&g), None);

        let mut b = GraphBuilder::new();
        b.edge("a", "b").unwrap();
        let stranded = b.node("x");
        let g = b.build_unchecked();
        assert!(!UndirectedView::new(&g).is_connected());
        assert_eq!(first_unreachable(&g), Some(stranded));
    }

    #[test]
    fn chain_articulation_points_are_interior_nodes() {
        let mut b = GraphBuilder::new();
        b.chain(&["a", "b", "c", "d"]).unwrap();
        let g = b.build().unwrap();
        let view = UndirectedView::new(&g);
        let mut aps = view.articulation_points();
        aps.sort();
        let mut expect = vec![g.node_by_name("b").unwrap(), g.node_by_name("c").unwrap()];
        expect.sort();
        assert_eq!(aps, expect);
        // Each chain edge is its own (bridge) biconnected component.
        assert_eq!(view.biconnected_components().len(), 3);
    }

    #[test]
    fn diamond_is_biconnected() {
        let mut b = GraphBuilder::new();
        b.edge("a", "b").unwrap();
        b.edge("a", "c").unwrap();
        b.edge("b", "d").unwrap();
        b.edge("c", "d").unwrap();
        let g = b.build().unwrap();
        let view = UndirectedView::new(&g);
        assert!(view.articulation_points().is_empty());
        let comps = view.biconnected_components();
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].edges.len(), 4);
        assert_eq!(comps[0].nodes.len(), 4);
    }

    #[test]
    fn two_diamonds_in_series_split_at_the_join() {
        let mut b = GraphBuilder::new();
        // diamond 1: a -> {b,c} -> d, diamond 2: d -> {e,f} -> g
        for (s, t) in [
            ("a", "b"), ("a", "c"), ("b", "d"), ("c", "d"),
            ("d", "e"), ("d", "f"), ("e", "g"), ("f", "g"),
        ] {
            b.edge(s, t).unwrap();
        }
        let g = b.build().unwrap();
        let view = UndirectedView::new(&g);
        let aps = view.articulation_points();
        assert_eq!(aps, vec![g.node_by_name("d").unwrap()]);
        let comps = view.biconnected_components();
        assert_eq!(comps.len(), 2);
        assert!(comps.iter().all(|c| c.edges.len() == 4));
    }

    #[test]
    fn parallel_edges_form_a_biconnected_component() {
        let mut b = GraphBuilder::new();
        b.edge("a", "b").unwrap();
        b.edge("a", "b").unwrap();
        b.edge("b", "c").unwrap();
        let g = b.build().unwrap();
        let view = UndirectedView::new(&g);
        let comps = view.biconnected_components();
        assert_eq!(comps.len(), 2);
        let sizes: Vec<usize> = {
            let mut s: Vec<usize> = comps.iter().map(|c| c.edges.len()).collect();
            s.sort();
            s
        };
        assert_eq!(sizes, vec![1, 2]);
        assert_eq!(
            view.articulation_points(),
            vec![g.node_by_name("b").unwrap()]
        );
    }

    #[test]
    fn single_edge_graph() {
        let mut b = GraphBuilder::new();
        b.edge("a", "b").unwrap();
        let g = b.build().unwrap();
        let view = UndirectedView::new(&g);
        assert!(view.articulation_points().is_empty());
        assert_eq!(view.biconnected_components().len(), 1);
        assert_eq!(view.degree(g.node_by_name("a").unwrap()), 1);
    }

    #[test]
    fn incident_and_other_endpoint() {
        let mut b = GraphBuilder::new();
        let e = b.edge("a", "b").unwrap();
        let g = b.build().unwrap();
        let view = UndirectedView::new(&g);
        let a = g.node_by_name("a").unwrap();
        let bb = g.node_by_name("b").unwrap();
        assert_eq!(view.incident(a), &[e]);
        assert_eq!(view.incident(bb), &[e]);
        assert_eq!(view.other_endpoint(e, a), bb);
        assert_eq!(view.other_endpoint(e, bb), a);
    }
}
