//! Stable, copyable identifiers for nodes and edges.
//!
//! Both identifiers are thin newtypes over `u32`; graphs in this workspace
//! are laptop-scale (at most a few hundred thousand edges in the benchmark
//! sweeps), so 32-bit indices keep hot structures compact (see the type-size
//! guidance of the Rust performance book).

use std::fmt;

/// Identifier of a compute node in a [`Graph`](crate::Graph).
///
/// Node ids are dense indices assigned in insertion order; they are valid
/// only for the graph that created them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(pub(crate) u32);

/// Identifier of a directed channel (edge) in a [`Graph`](crate::Graph).
///
/// Because the graph is a *multigraph*, several edges may connect the same
/// ordered pair of nodes; each has its own id and its own buffer capacity.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EdgeId(pub(crate) u32);

impl NodeId {
    /// Creates a node id from a raw index.
    ///
    /// Intended for tests and for deserialisation of externally produced
    /// plans; normal construction goes through [`GraphBuilder`](crate::GraphBuilder).
    #[inline]
    pub fn from_raw(raw: u32) -> Self {
        NodeId(raw)
    }

    /// Returns the raw dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// Creates an edge id from a raw index.
    #[inline]
    pub fn from_raw(raw: u32) -> Self {
        EdgeId(raw)
    }

    /// Returns the raw dense index of this edge.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId::from_raw(7);
        assert_eq!(n.index(), 7);
        assert_eq!(format!("{n}"), "n7");
        assert_eq!(format!("{n:?}"), "n7");
    }

    #[test]
    fn edge_id_roundtrip() {
        let e = EdgeId::from_raw(42);
        assert_eq!(e.index(), 42);
        assert_eq!(format!("{e}"), "e42");
        assert_eq!(format!("{e:?}"), "e42");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(NodeId::from_raw(1) < NodeId::from_raw(2));
        assert!(EdgeId::from_raw(0) < EdgeId::from_raw(10));
    }

    #[test]
    fn ids_are_small() {
        assert_eq!(std::mem::size_of::<NodeId>(), 4);
        assert_eq!(std::mem::size_of::<EdgeId>(), 4);
        assert_eq!(std::mem::size_of::<Option<NodeId>>(), 8);
    }
}
