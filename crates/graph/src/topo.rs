//! Topological ordering, acyclicity checking, and reachability queries.

use crate::error::{GraphError, Result};
use crate::ids::{EdgeId, NodeId};
use crate::multigraph::Graph;

/// Computes a topological order of all nodes using Kahn's algorithm.
///
/// # Errors
///
/// Returns [`GraphError::NotAcyclic`] if the graph has a directed cycle; the
/// witness is a node that participates in one.
pub fn topological_order(g: &Graph) -> Result<Vec<NodeId>> {
    let n = g.node_count();
    let mut indegree: Vec<usize> = (0..n)
        .map(|i| g.in_degree(NodeId::from_raw(i as u32)))
        .collect();
    let mut queue: Vec<NodeId> = g
        .node_ids()
        .filter(|&v| indegree[v.index()] == 0)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop() {
        order.push(v);
        for &e in g.out_edges(v) {
            let w = g.head(e);
            indegree[w.index()] -= 1;
            if indegree[w.index()] == 0 {
                queue.push(w);
            }
        }
    }
    if order.len() != n {
        let witness = g
            .node_ids()
            .find(|&v| indegree[v.index()] > 0)
            .expect("a node with nonzero residual in-degree must exist");
        return Err(GraphError::NotAcyclic { witness });
    }
    Ok(order)
}

/// Returns `true` if the graph has no directed cycle.
pub fn is_acyclic(g: &Graph) -> bool {
    topological_order(g).is_ok()
}

/// Position of each node in a given topological order (inverse permutation).
pub fn topo_positions(g: &Graph, order: &[NodeId]) -> Vec<usize> {
    let mut pos = vec![usize::MAX; g.node_count()];
    for (i, &v) in order.iter().enumerate() {
        pos[v.index()] = i;
    }
    pos
}

/// Set of nodes reachable from `start` by directed paths (including `start`).
pub fn reachable_from(g: &Graph, start: NodeId) -> Vec<bool> {
    let mut seen = vec![false; g.node_count()];
    let mut stack = vec![start];
    seen[start.index()] = true;
    while let Some(v) = stack.pop() {
        for &e in g.out_edges(v) {
            let w = g.head(e);
            if !seen[w.index()] {
                seen[w.index()] = true;
                stack.push(w);
            }
        }
    }
    seen
}

/// Set of nodes that can reach `target` by directed paths (including it).
pub fn reaching(g: &Graph, target: NodeId) -> Vec<bool> {
    let mut seen = vec![false; g.node_count()];
    let mut stack = vec![target];
    seen[target.index()] = true;
    while let Some(v) = stack.pop() {
        for &e in g.in_edges(v) {
            let w = g.tail(e);
            if !seen[w.index()] {
                seen[w.index()] = true;
                stack.push(w);
            }
        }
    }
    seen
}

/// `true` if there is a directed path from `from` to `to` (or they are equal).
pub fn has_path(g: &Graph, from: NodeId, to: NodeId) -> bool {
    reachable_from(g, from)[to.index()]
}

/// The edges that lie on at least one directed path from `from` to `to`.
///
/// An edge `(u, v)` qualifies iff `u` is reachable from `from` and `to` is
/// reachable from `v`.
pub fn edges_on_paths(g: &Graph, from: NodeId, to: NodeId) -> Vec<EdgeId> {
    let fwd = reachable_from(g, from);
    let bwd = reaching(g, to);
    g.edge_ids()
        .filter(|&e| {
            let (u, v) = g.endpoints(e);
            fwd[u.index()] && bwd[v.index()]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn diamond() -> Graph {
        let mut b = GraphBuilder::new();
        b.edge("a", "b").unwrap();
        b.edge("a", "c").unwrap();
        b.edge("b", "d").unwrap();
        b.edge("c", "d").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = diamond();
        let order = topological_order(&g).unwrap();
        let pos = topo_positions(&g, &order);
        for (_, e) in g.edges() {
            assert!(pos[e.src.index()] < pos[e.dst.index()]);
        }
        assert_eq!(order.len(), g.node_count());
    }

    #[test]
    fn topo_positions_inverse() {
        let g = diamond();
        let order = topological_order(&g).unwrap();
        let pos = topo_positions(&g, &order);
        for (i, &v) in order.iter().enumerate() {
            assert_eq!(pos[v.index()], i);
        }
    }

    #[test]
    fn cycle_is_detected() {
        let mut b = GraphBuilder::new();
        b.edge("a", "b").unwrap();
        b.edge("b", "c").unwrap();
        b.edge("c", "a").unwrap();
        let g = b.build_unchecked();
        assert!(!is_acyclic(&g));
        assert!(matches!(
            topological_order(&g),
            Err(GraphError::NotAcyclic { .. })
        ));
    }

    #[test]
    fn reachability_forward_and_backward() {
        let g = diamond();
        let a = g.node_by_name("a").unwrap();
        let b = g.node_by_name("b").unwrap();
        let c = g.node_by_name("c").unwrap();
        let d = g.node_by_name("d").unwrap();
        assert!(has_path(&g, a, d));
        assert!(has_path(&g, a, a));
        assert!(!has_path(&g, b, c));
        assert!(!has_path(&g, d, a));
        let r = reaching(&g, d);
        assert!(g.node_ids().all(|v| r[v.index()]));
        let r = reaching(&g, b);
        assert!(r[a.index()] && r[b.index()] && !r[c.index()] && !r[d.index()]);
    }

    #[test]
    fn edges_on_paths_excludes_side_branches() {
        let mut b = GraphBuilder::new();
        b.edge("a", "b").unwrap();
        b.edge("b", "c").unwrap();
        let side = b.edge("b", "x").unwrap();
        b.edge("x", "c").unwrap();
        b.edge("c", "d").unwrap();
        let g = b.build().unwrap();
        let a = g.node_by_name("a").unwrap();
        let c = g.node_by_name("c").unwrap();
        let on = edges_on_paths(&g, a, c);
        // a->b, b->c, b->x, x->c all lie on some a..c path.
        assert_eq!(on.len(), 4);
        assert!(on.contains(&side));
        // but c->d does not.
        let cd = g.edge_by_names("c", "d").unwrap();
        assert!(!on.contains(&cd));
    }

    #[test]
    fn empty_graph_topo_is_empty() {
        let g = Graph::new();
        assert!(topological_order(&g).unwrap().is_empty());
    }
}
