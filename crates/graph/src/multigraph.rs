//! The directed acyclic multigraph at the heart of the streaming model.
//!
//! A [`Graph`] stores nodes and edges in dense arenas addressed by
//! [`NodeId`] / [`EdgeId`].  Edges carry the finite buffer capacity of the
//! channel they model (the "edge length" used by the dummy-interval
//! calculations in the paper).  Parallel edges between the same pair of
//! nodes are allowed — the paper's base-case SP-DAG is exactly a
//! multi-edge — but self-loops and directed cycles are not.

use crate::error::{GraphError, Result};
use crate::ids::{EdgeId, NodeId};

/// A compute node of the streaming application.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Node {
    /// Human-readable name used in reports and DOT output.
    pub name: String,
}

/// A directed FIFO channel with a finite buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Edge {
    /// The producing node (tail of the edge).
    pub src: NodeId,
    /// The consuming node (head of the edge).
    pub dst: NodeId,
    /// Buffer capacity in messages; must be at least one.
    pub capacity: u64,
}

/// A directed acyclic multigraph of compute nodes and finite-buffer channels.
///
/// The structure is append-only: nodes and edges can be added but not
/// removed, which keeps every previously handed-out id valid.  Analyses that
/// need to "remove" parts of a graph (series/parallel reduction, ladder
/// decomposition, ...) work on their own overlay structures instead.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Graph {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    out_edges: Vec<Vec<EdgeId>>,
    in_edges: Vec<Vec<EdgeId>>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Creates an empty graph with room for `nodes` nodes and `edges` edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Graph {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            out_edges: Vec::with_capacity(nodes),
            in_edges: Vec::with_capacity(nodes),
        }
    }

    /// Adds a node with the given name and returns its id.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { name: name.into() });
        self.out_edges.push(Vec::new());
        self.in_edges.push(Vec::new());
        id
    }

    /// Adds a directed edge `src -> dst` with the given buffer capacity.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] if either endpoint does not exist,
    /// [`GraphError::SelfLoop`] if `src == dst`, and
    /// [`GraphError::ZeroCapacity`] if `capacity == 0`.  Cycle freedom is not
    /// checked here (it would make construction quadratic); call
    /// [`Graph::validate`] once the graph is complete.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, capacity: u64) -> Result<EdgeId> {
        if src.index() >= self.nodes.len() {
            return Err(GraphError::UnknownNode(src));
        }
        if dst.index() >= self.nodes.len() {
            return Err(GraphError::UnknownNode(dst));
        }
        if src == dst {
            return Err(GraphError::SelfLoop(src));
        }
        let id = EdgeId(self.edges.len() as u32);
        if capacity == 0 {
            return Err(GraphError::ZeroCapacity { edge: id });
        }
        self.edges.push(Edge { src, dst, capacity });
        self.out_edges[src.index()].push(id);
        self.in_edges[dst.index()].push(id);
        Ok(id)
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// `|G|` as used in the paper's complexity statements: nodes + edges.
    #[inline]
    pub fn size(&self) -> usize {
        self.nodes.len() + self.edges.len()
    }

    /// Returns the node data for `id`, panicking if it is out of range.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Returns the edge data for `id`, panicking if it is out of range.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Checked lookup of a node.
    pub fn try_node(&self, id: NodeId) -> Result<&Node> {
        self.nodes.get(id.index()).ok_or(GraphError::UnknownNode(id))
    }

    /// Checked lookup of an edge.
    pub fn try_edge(&self, id: EdgeId) -> Result<&Edge> {
        self.edges.get(id.index()).ok_or(GraphError::UnknownEdge(id))
    }

    /// The `(src, dst)` endpoints of an edge.
    #[inline]
    pub fn endpoints(&self, id: EdgeId) -> (NodeId, NodeId) {
        let e = self.edge(id);
        (e.src, e.dst)
    }

    /// Buffer capacity (in messages) of an edge.
    #[inline]
    pub fn capacity(&self, id: EdgeId) -> u64 {
        self.edge(id).capacity
    }

    /// Overrides the buffer capacity of an edge.
    pub fn set_capacity(&mut self, id: EdgeId, capacity: u64) -> Result<()> {
        if capacity == 0 {
            return Err(GraphError::ZeroCapacity { edge: id });
        }
        let e = self
            .edges
            .get_mut(id.index())
            .ok_or(GraphError::UnknownEdge(id))?;
        e.capacity = capacity;
        Ok(())
    }

    /// Iterator over all node ids in insertion order.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterator over all edge ids in insertion order.
    pub fn edge_ids(&self) -> impl ExactSizeIterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Iterator over `(EdgeId, &Edge)` pairs.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = (EdgeId, &Edge)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId(i as u32), e))
    }

    /// Iterator over `(NodeId, &Node)` pairs.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = (NodeId, &Node)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Edges leaving `node`, in insertion order.
    #[inline]
    pub fn out_edges(&self, node: NodeId) -> &[EdgeId] {
        &self.out_edges[node.index()]
    }

    /// Edges entering `node`, in insertion order.
    #[inline]
    pub fn in_edges(&self, node: NodeId) -> &[EdgeId] {
        &self.in_edges[node.index()]
    }

    /// Out-degree of `node` (counting parallel edges separately).
    #[inline]
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out_edges[node.index()].len()
    }

    /// In-degree of `node` (counting parallel edges separately).
    #[inline]
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.in_edges[node.index()].len()
    }

    /// Total degree of `node` in the undirected sense.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.in_degree(node) + self.out_degree(node)
    }

    /// Successor node of an edge's source, i.e. `edge.dst`.
    #[inline]
    pub fn head(&self, id: EdgeId) -> NodeId {
        self.edge(id).dst
    }

    /// Source node of an edge, i.e. `edge.src`.
    #[inline]
    pub fn tail(&self, id: EdgeId) -> NodeId {
        self.edge(id).src
    }

    /// All nodes with no incoming edges (stream sources).
    pub fn sources(&self) -> Vec<NodeId> {
        self.node_ids().filter(|&n| self.in_degree(n) == 0).collect()
    }

    /// All nodes with no outgoing edges (stream sinks).
    pub fn sinks(&self) -> Vec<NodeId> {
        self.node_ids().filter(|&n| self.out_degree(n) == 0).collect()
    }

    /// The unique source node, if the graph has exactly one.
    pub fn single_source(&self) -> Result<NodeId> {
        let sources = self.sources();
        match sources.as_slice() {
            [s] => Ok(*s),
            _ => Err(GraphError::NotSingleSource { sources }),
        }
    }

    /// The unique sink node, if the graph has exactly one.
    pub fn single_sink(&self) -> Result<NodeId> {
        let sinks = self.sinks();
        match sinks.as_slice() {
            [s] => Ok(*s),
            _ => Err(GraphError::NotSingleSink { sinks }),
        }
    }

    /// All edges from `src` to `dst` (the multi-edge bundle between them).
    pub fn parallel_edges(&self, src: NodeId, dst: NodeId) -> Vec<EdgeId> {
        self.out_edges(src)
            .iter()
            .copied()
            .filter(|&e| self.head(e) == dst)
            .collect()
    }

    /// Looks up a node id by its name.  `O(|V|)`; intended for tests and
    /// examples, not hot paths.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes()
            .find(|(_, n)| n.name == name)
            .map(|(id, _)| id)
    }

    /// Finds the first edge from the node named `src` to the node named
    /// `dst`.  Intended for tests and examples.
    pub fn edge_by_names(&self, src: &str, dst: &str) -> Option<EdgeId> {
        let s = self.node_by_name(src)?;
        let d = self.node_by_name(dst)?;
        self.parallel_edges(s, d).first().copied()
    }

    /// Returns true if `node` belongs to an undirected simple cycle, i.e. it
    /// lies in some biconnected component with at least two edges.
    pub fn on_some_cycle(&self, node: NodeId) -> bool {
        crate::undirected::UndirectedView::new(self)
            .biconnected_components()
            .iter()
            .any(|c| c.edges.len() >= 2 && c.edges.iter().any(|&e| {
                let (s, d) = self.endpoints(e);
                s == node || d == node
            }))
    }

    /// Validates the global structural invariants of the streaming model:
    /// non-empty, acyclic and (undirected-)connected.
    pub fn validate(&self) -> Result<()> {
        if self.nodes.is_empty() {
            return Err(GraphError::Empty);
        }
        crate::topo::topological_order(self)?;
        if let Some(witness) = crate::undirected::first_unreachable(self) {
            return Err(GraphError::Disconnected { witness });
        }
        Ok(())
    }

    /// Validates the two-terminal requirements of the SP / CS4 analyses on
    /// top of [`Graph::validate`]: a unique source and a unique sink.
    pub fn validate_two_terminal(&self) -> Result<(NodeId, NodeId)> {
        self.validate()?;
        let src = self.single_source()?;
        let sink = self.single_sink()?;
        Ok((src, sink))
    }

    /// Sum of all buffer capacities; useful as a quick fingerprint in tests.
    pub fn total_capacity(&self) -> u64 {
        self.edges.iter().map(|e| e.capacity).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Graph, [NodeId; 4]) {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b, 2).unwrap();
        g.add_edge(a, c, 3).unwrap();
        g.add_edge(b, d, 4).unwrap();
        g.add_edge(c, d, 5).unwrap();
        (g, [a, b, c, d])
    }

    #[test]
    fn construction_and_counts() {
        let (g, [a, b, _c, d]) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.size(), 8);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(d), 2);
        assert_eq!(g.degree(b), 2);
        assert_eq!(g.total_capacity(), 14);
    }

    #[test]
    fn endpoints_and_capacity() {
        let (g, [a, b, ..]) = diamond();
        let e = g.parallel_edges(a, b)[0];
        assert_eq!(g.endpoints(e), (a, b));
        assert_eq!(g.capacity(e), 2);
        assert_eq!(g.tail(e), a);
        assert_eq!(g.head(e), b);
    }

    #[test]
    fn set_capacity_updates_and_rejects_zero() {
        let (mut g, [a, b, ..]) = diamond();
        let e = g.parallel_edges(a, b)[0];
        g.set_capacity(e, 9).unwrap();
        assert_eq!(g.capacity(e), 9);
        assert!(matches!(
            g.set_capacity(e, 0),
            Err(GraphError::ZeroCapacity { .. })
        ));
    }

    #[test]
    fn rejects_self_loop_and_unknown_nodes() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        assert!(matches!(g.add_edge(a, a, 1), Err(GraphError::SelfLoop(_))));
        let ghost = NodeId::from_raw(99);
        assert!(matches!(
            g.add_edge(a, ghost, 1),
            Err(GraphError::UnknownNode(_))
        ));
        assert!(matches!(
            g.add_edge(ghost, a, 1),
            Err(GraphError::UnknownNode(_))
        ));
    }

    #[test]
    fn rejects_zero_capacity() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        assert!(matches!(
            g.add_edge(a, b, 0),
            Err(GraphError::ZeroCapacity { .. })
        ));
    }

    #[test]
    fn sources_sinks_and_two_terminal() {
        let (g, [a, _, _, d]) = diamond();
        assert_eq!(g.sources(), vec![a]);
        assert_eq!(g.sinks(), vec![d]);
        assert_eq!(g.single_source().unwrap(), a);
        assert_eq!(g.single_sink().unwrap(), d);
        assert_eq!(g.validate_two_terminal().unwrap(), (a, d));
    }

    #[test]
    fn multiple_sources_detected() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, c, 1).unwrap();
        g.add_edge(b, c, 1).unwrap();
        assert!(matches!(
            g.single_source(),
            Err(GraphError::NotSingleSource { .. })
        ));
        assert_eq!(g.single_sink().unwrap(), c);
    }

    #[test]
    fn parallel_edges_are_tracked() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let e1 = g.add_edge(a, b, 1).unwrap();
        let e2 = g.add_edge(a, b, 7).unwrap();
        assert_eq!(g.parallel_edges(a, b), vec![e1, e2]);
        assert_eq!(g.parallel_edges(b, a), vec![]);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn lookup_by_name() {
        let (g, [a, _, c, d]) = diamond();
        assert_eq!(g.node_by_name("a"), Some(a));
        assert_eq!(g.node_by_name("zzz"), None);
        let e = g.edge_by_names("c", "d").unwrap();
        assert_eq!(g.endpoints(e), (c, d));
        assert_eq!(g.edge_by_names("d", "c"), None);
    }

    #[test]
    fn validate_empty_graph_fails() {
        let g = Graph::new();
        assert!(matches!(g.validate(), Err(GraphError::Empty)));
    }

    #[test]
    fn validate_disconnected_graph_fails() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge(a, b, 1).unwrap();
        let _lonely = g.add_node("lonely");
        assert!(matches!(
            g.validate(),
            Err(GraphError::Disconnected { .. })
        ));
    }

    #[test]
    fn checked_lookups() {
        let (g, [a, ..]) = diamond();
        assert!(g.try_node(a).is_ok());
        assert!(g.try_node(NodeId::from_raw(100)).is_err());
        assert!(g.try_edge(EdgeId::from_raw(0)).is_ok());
        assert!(g.try_edge(EdgeId::from_raw(100)).is_err());
    }

    #[test]
    fn on_some_cycle_distinguishes_tree_edges() {
        let (mut g, [_, _, _, d]) = diamond();
        let tail = g.add_node("tail");
        g.add_edge(d, tail, 1).unwrap();
        // Diamond nodes lie on the undirected cycle a-b-d-c-a.
        assert!(g.on_some_cycle(g.node_by_name("a").unwrap()));
        assert!(g.on_some_cycle(d));
        // The appended tail node does not.
        assert!(!g.on_some_cycle(tail));
    }
}
