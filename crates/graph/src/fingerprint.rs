//! Canonical structural fingerprints of streaming topologies.
//!
//! A multi-tenant job service amortises compile-time planning by recognising
//! that two submitted graphs have the *same shape*: the same nodes, channels
//! and buffer capacities, regardless of what the client named the nodes or
//! in which order it happened to declare them.  This module provides that
//! notion as a 64-bit [`Fingerprint`], computed by Weisfeiler–Lehman colour
//! refinement over the directed multigraph:
//!
//! 1. every node starts from a colour derived from its in-degree, out-degree
//!    and an optional caller-supplied attribute (e.g. a filter-spec
//!    signature);
//! 2. each round re-colours a node by hashing its current colour together
//!    with the sorted multisets of `(capacity, neighbour colour)` pairs over
//!    its incoming and outgoing channels;
//! 3. refinement stops when the colour partition stops growing (or after
//!    [`MAX_ROUNDS`] rounds, a bound that matters only for graphs whose
//!    diameter exceeds it);
//! 4. the fingerprint hashes the node/edge counts, the sorted final node
//!    colours and the sorted edge signatures `(capacity, colour(src),
//!    colour(dst))`.
//!
//! The result is **invariant under renaming and re-ordering**: any two
//! graphs related by an isomorphism (including capacities and attributes)
//! produce the same fingerprint.  The converse does not hold in general —
//! like every polynomial-time graph hash, WL refinement can assign the same
//! value to non-isomorphic graphs — so consumers that key *semantic*
//! decisions on a fingerprint (such as a plan cache whose entries are
//! indexed by [`EdgeId`](crate::EdgeId)) must pair it with the
//! order-**sensitive**
//! [`labeled_fingerprint`], which two graphs share only if they were built
//! with the identical node/edge insertion sequence and capacities, making a
//! cached per-edge table directly applicable.
//!
//! All hashing is done with a fixed splitmix64-based mixer, so fingerprints
//! are stable across processes, platforms and Rust releases (unlike
//! [`std::collections::hash_map::DefaultHasher`], which is only documented
//! to be stable within one process).

use std::fmt;

use crate::ids::NodeId;
use crate::multigraph::Graph;

/// Colour refinement stops after this many rounds even if the partition is
/// still growing; only graphs of diameter beyond this see any effect (their
/// fingerprints remain isomorphism-invariant, merely less discriminating).
pub const MAX_ROUNDS: usize = 256;

/// A 64-bit canonical structural hash of a graph (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// splitmix64: the finalising permutation used as the base mixer.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Order-dependent combination of an accumulator with one value.
#[inline]
fn fold(acc: u64, value: u64) -> u64 {
    mix64(acc ^ mix64(value))
}

/// Canonical structural fingerprint of `g`: shape + capacities, insensitive
/// to node names and to the order nodes and edges were inserted in.
pub fn fingerprint(g: &Graph) -> Fingerprint {
    fingerprint_with(g, |_| 0)
}

/// Like [`fingerprint`], additionally folding a caller-supplied attribute
/// into every node's initial colour.  Callers use this to make semantically
/// different per-node configurations — for example different filter specs
/// attached to the same graph shape — produce different fingerprints.  The
/// attribute must itself be assigned isomorphism-invariantly (a property of
/// the node, not of its id) for the invariance guarantee to carry over.
pub fn fingerprint_with(g: &Graph, node_attr: impl Fn(NodeId) -> u64) -> Fingerprint {
    let n = g.node_count();
    if n == 0 {
        return Fingerprint(mix64(0));
    }

    // Initial colours: degrees + caller attribute.
    let mut color: Vec<u64> = g
        .node_ids()
        .map(|v| {
            let mut h = fold(0x0F11_A000, g.in_degree(v) as u64);
            h = fold(h, g.out_degree(v) as u64);
            fold(h, node_attr(v))
        })
        .collect();

    let mut next: Vec<u64> = vec![0; n];
    let mut scratch: Vec<u64> = Vec::new();
    let mut distinct = count_distinct(&color);
    for _ in 0..MAX_ROUNDS.min(n) {
        for v in g.node_ids() {
            let mut h = fold(0x5EED, color[v.index()]);
            // Incoming multiset: sorted so insertion order is irrelevant.
            scratch.clear();
            for &e in g.in_edges(v) {
                scratch.push(fold(g.capacity(e), color[g.tail(e).index()]));
            }
            scratch.sort_unstable();
            for &s in &scratch {
                h = fold(h, s);
            }
            h = fold(h, 0xD1F0); // separator between the two multisets
            scratch.clear();
            for &e in g.out_edges(v) {
                scratch.push(fold(g.capacity(e), color[g.head(e).index()]));
            }
            scratch.sort_unstable();
            for &s in &scratch {
                h = fold(h, s);
            }
            next[v.index()] = h;
        }
        std::mem::swap(&mut color, &mut next);
        let refined = count_distinct(&color);
        if refined == distinct {
            break;
        }
        distinct = refined;
    }

    // Final combination: counts, sorted node colours, sorted edge signatures.
    let mut h = fold(0xF1FA, n as u64);
    h = fold(h, g.edge_count() as u64);
    let mut final_colors = color.clone();
    final_colors.sort_unstable();
    for c in final_colors {
        h = fold(h, c);
    }
    let mut edge_sigs: Vec<u64> = g
        .edges()
        .map(|(_, e)| {
            fold(
                fold(e.capacity, color[e.src.index()]),
                color[e.dst.index()],
            )
        })
        .collect();
    edge_sigs.sort_unstable();
    for s in edge_sigs {
        h = fold(h, s);
    }
    Fingerprint(h)
}

/// Order-**sensitive** exact hash of `g` as labelled by its ids: nodes in id
/// order (degrees only, names are still ignored) and edges in id order as
/// `(src, dst, capacity)` triples.  Two graphs share this value exactly when
/// they have identical node/edge arenas up to names — the precondition for
/// transplanting any per-[`EdgeId`](crate::EdgeId)-indexed table (such as a
/// deadlock-avoidance plan) from one to the other.
pub fn labeled_fingerprint(g: &Graph) -> u64 {
    let mut h = fold(0x1ABE1, g.node_count() as u64);
    for (_, e) in g.edges() {
        h = fold(h, e.src.index() as u64);
        h = fold(h, e.dst.index() as u64);
        h = fold(h, e.capacity);
    }
    h
}

fn count_distinct(colors: &[u64]) -> usize {
    let mut sorted = colors.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn fig3_named(names: [&str; 6], order: &[usize]) -> Graph {
        // Fig. 3 shape: a -> b -> e -> f and a -> c -> d -> f, declared in
        // the node order given by `order` and with arbitrary names.
        let [a, b, c, d, e, f] = names;
        let caps = [
            (a, b, 2u64),
            (b, e, 5),
            (e, f, 1),
            (a, c, 3),
            (c, d, 1),
            (d, f, 2),
        ];
        let mut builder = GraphBuilder::new();
        for &i in order {
            builder.node(names[i]);
        }
        for (s, t, cap) in caps {
            builder.edge_with_capacity(s, t, cap).unwrap();
        }
        builder.build().unwrap()
    }

    #[test]
    fn isomorphic_rebuilds_collide() {
        let g1 = fig3_named(["a", "b", "c", "d", "e", "f"], &[0, 1, 2, 3, 4, 5]);
        // Different names, different node declaration order, same shape.
        let g2 = fig3_named(["n0", "n1", "n2", "n3", "n4", "n5"], &[5, 3, 1, 0, 2, 4]);
        assert_eq!(fingerprint(&g1), fingerprint(&g2));
        // Edge insertion order must not matter either.
        let mut b = GraphBuilder::new();
        for (s, t, cap) in [
            ("d", "f", 2u64),
            ("a", "c", 3),
            ("c", "d", 1),
            ("a", "b", 2),
            ("b", "e", 5),
            ("e", "f", 1),
        ] {
            b.edge_with_capacity(s, t, cap).unwrap();
        }
        let g3 = b.build().unwrap();
        assert_eq!(fingerprint(&g1), fingerprint(&g3));
    }

    #[test]
    fn perturbed_capacity_changes_the_fingerprint() {
        let g1 = fig3_named(["a", "b", "c", "d", "e", "f"], &[0, 1, 2, 3, 4, 5]);
        let mut g2 = g1.clone();
        let e = g2.edge_by_names("b", "e").unwrap();
        g2.set_capacity(e, 6).unwrap();
        assert_ne!(fingerprint(&g1), fingerprint(&g2));
    }

    #[test]
    fn different_shapes_differ() {
        let mut b = GraphBuilder::new().default_capacity(2);
        b.chain(&["a", "b", "c", "d"]).unwrap();
        let pipeline = b.build().unwrap();
        let mut b = GraphBuilder::new().default_capacity(2);
        b.edge("a", "b").unwrap();
        b.edge("a", "c").unwrap();
        b.edge("b", "d").unwrap();
        b.edge("c", "d").unwrap();
        let diamond = b.build().unwrap();
        assert_ne!(fingerprint(&pipeline), fingerprint(&diamond));
    }

    #[test]
    fn parallel_edge_capacities_are_distinguished() {
        let mut b = GraphBuilder::new();
        b.edge_with_capacity("a", "b", 2).unwrap();
        b.edge_with_capacity("a", "b", 5).unwrap();
        let g1 = b.build().unwrap();
        let mut b = GraphBuilder::new();
        b.edge_with_capacity("a", "b", 5).unwrap();
        b.edge_with_capacity("a", "b", 2).unwrap();
        let g2 = b.build().unwrap();
        // Same multiset of parallel capacities, different order: isomorphic.
        assert_eq!(fingerprint(&g1), fingerprint(&g2));
        let mut b = GraphBuilder::new();
        b.edge_with_capacity("a", "b", 2).unwrap();
        b.edge_with_capacity("a", "b", 4).unwrap();
        let g3 = b.build().unwrap();
        assert_ne!(fingerprint(&g1), fingerprint(&g3));
    }

    #[test]
    fn node_attributes_salt_the_fingerprint() {
        let g = fig3_named(["a", "b", "c", "d", "e", "f"], &[0, 1, 2, 3, 4, 5]);
        let plain = fingerprint(&g);
        let a = g.node_by_name("a").unwrap();
        let salted = fingerprint_with(&g, |n| if n == a { 7 } else { 0 });
        assert_ne!(plain, salted);
        // The same attribute assignment reproduces the same value.
        let again = fingerprint_with(&g, |n| if n == a { 7 } else { 0 });
        assert_eq!(salted, again);
    }

    #[test]
    fn labeled_fingerprint_is_order_sensitive() {
        let mut b = GraphBuilder::new();
        b.edge_with_capacity("a", "b", 2).unwrap();
        b.edge_with_capacity("b", "c", 3).unwrap();
        let g1 = b.build().unwrap();
        // Same shape, but nodes declared in reverse: ids differ.
        let mut b = GraphBuilder::new();
        b.node("c");
        b.node("b");
        b.node("a");
        b.edge_with_capacity("a", "b", 2).unwrap();
        b.edge_with_capacity("b", "c", 3).unwrap();
        let g2 = b.build().unwrap();
        assert_eq!(fingerprint(&g1), fingerprint(&g2));
        assert_ne!(labeled_fingerprint(&g1), labeled_fingerprint(&g2));
        // Identically built graphs agree (names are irrelevant).
        let mut b = GraphBuilder::new();
        b.edge_with_capacity("x", "y", 2).unwrap();
        b.edge_with_capacity("y", "z", 3).unwrap();
        let g3 = b.build().unwrap();
        assert_eq!(labeled_fingerprint(&g1), labeled_fingerprint(&g3));
    }

    #[test]
    fn empty_graph_has_a_stable_fingerprint() {
        let g = Graph::new();
        assert_eq!(fingerprint(&g), fingerprint(&Graph::new()));
    }

    #[test]
    fn long_pipelines_of_different_capacity_layouts_differ() {
        // Positions are distinguished by distance from the terminals, so a
        // capacity bump in the middle must be visible.
        let build = |bump_at: usize| {
            let mut b = GraphBuilder::new();
            let names: Vec<String> = (0..64).map(|i| format!("n{i}")).collect();
            for w in names.windows(2) {
                let cap = if names.iter().position(|x| x == &w[0]) == Some(bump_at) {
                    9
                } else {
                    2
                };
                b.edge_with_capacity(&w[0], &w[1], cap).unwrap();
            }
            b.build().unwrap()
        };
        assert_ne!(fingerprint(&build(10)), fingerprint(&build(40)));
        assert_eq!(fingerprint(&build(10)), fingerprint(&build(10)));
    }
}
