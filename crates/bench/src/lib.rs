//! Shared helpers for the Criterion benchmark harness.
//!
//! Each bench target regenerates one figure or asymptotic claim of the
//! paper; the mapping is documented in `DESIGN.md` (per-experiment index)
//! and the measured outcomes are recorded in `EXPERIMENTS.md`.

#![warn(missing_docs)]

use fila_graph::Graph;
use fila_workloads::generators::{random_ladder, random_sp_dag, GeneratorConfig, LadderConfig};

/// Edge-count sweep used by the scaling benchmarks (E6/E7/E9/E10).
pub const SP_SIZES: &[usize] = &[64, 256, 1024, 4096];

/// Rung-count sweep used by the ladder scaling benchmarks.
pub const LADDER_RUNGS: &[usize] = &[8, 32, 128, 512];

/// Branch counts for the exponential-baseline sweep (E8).
pub const CHAIN_COUNTS: &[usize] = &[4, 8, 12, 16];

/// Builds a random SP-DAG of roughly `edges` edges (deterministic seed).
pub fn sp_dag_of_size(edges: usize) -> (Graph, fila_spdag::SpDecomposition) {
    random_sp_dag(&GeneratorConfig {
        target_edges: edges,
        seed: edges as u64,
        ..Default::default()
    })
}

/// Builds a random SP-ladder with `rungs` cross-links (deterministic seed).
pub fn ladder_of_size(rungs: usize) -> Graph {
    random_ladder(&LadderConfig {
        rungs,
        seed: rungs as u64,
        ..Default::default()
    })
}
