//! E2/E12: end-to-end runtime behaviour on the Fig. 2 deadlock example — the
//! protected runs complete, and their cost is measured across buffer sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fila_avoidance::{Algorithm, Planner};
use fila_runtime::filters::Predicate;
use fila_runtime::{Simulator, Topology};
use fila_workloads::figures::fig2_triangle;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_runtime");
    group.sample_size(10);
    for &buffer in &[2u64, 8, 32] {
        let g = fig2_triangle(buffer);
        let a = g.node_by_name("A").unwrap();
        let topo = Topology::from_graph(&g)
            .with(a, || Predicate::new(2, |seq, out| out == 0 || seq % 97 == 0));
        for algorithm in [Algorithm::Propagation, Algorithm::NonPropagation] {
            let plan = Planner::new(&g).algorithm(algorithm).plan().unwrap();
            let name = format!("{algorithm}/buffer{buffer}");
            group.bench_with_input(BenchmarkId::new("simulate_10k", name), &buffer, |b, _| {
                b.iter(|| {
                    let report = Simulator::new(&topo).with_plan(&plan).run(10_000);
                    assert!(report.completed);
                    black_box(report)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
