//! E6/E7: compile-time scaling of the SP-DAG interval algorithms —
//! SETIVALS (linear), the naive post-order Propagation variant (quadratic)
//! and the Non-Propagation algorithm (quadratic) over a sweep of graph
//! sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fila_avoidance::{nonprop_sp, prop_sp, Rounding};
use fila_bench::{sp_dag_of_size, SP_SIZES};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_sp");
    group.sample_size(10);
    for &size in SP_SIZES {
        let (g, d) = sp_dag_of_size(size);
        group.bench_with_input(BenchmarkId::new("setivals", size), &size, |b, _| {
            b.iter(|| black_box(prop_sp::setivals(&g, &d)))
        });
        group.bench_with_input(BenchmarkId::new("prop_naive", size), &size, |b, _| {
            b.iter(|| black_box(prop_sp::propagation_intervals_naive(&g, &d)))
        });
        group.bench_with_input(BenchmarkId::new("nonprop", size), &size, |b, _| {
            b.iter(|| black_box(nonprop_sp::nonprop_intervals(&g, &d, Rounding::Ceil)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
