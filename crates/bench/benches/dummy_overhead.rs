//! E13: dummy-message overhead of the two protocols as a function of buffer
//! size and filtering rate (the bench reports runtime; the overhead ratios
//! are printed once at start-up and recorded in EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fila_avoidance::{Algorithm, Planner};
use fila_runtime::filters::Predicate;
use fila_runtime::{Simulator, Topology};
use fila_workloads::figures::fig2_triangle;
use std::hint::black_box;

fn print_overhead_table() {
    println!("# dummy overhead (dummy / total messages), Fig. 2 workload, 20k inputs");
    println!("buffer  filter-period  propagation  non-propagation");
    for &buffer in &[2u64, 8, 32] {
        for &period in &[4u64, 64, 1024] {
            let g = fig2_triangle(buffer);
            let a = g.node_by_name("A").unwrap();
            let topo = Topology::from_graph(&g)
                .with(a, move || Predicate::new(2, move |seq, out| out == 0 || seq % period == 0));
            let mut cells = Vec::new();
            for algorithm in [Algorithm::Propagation, Algorithm::NonPropagation] {
                let plan = Planner::new(&g).algorithm(algorithm).plan().unwrap();
                let report = Simulator::new(&topo).with_plan(&plan).run(20_000);
                assert!(report.completed);
                cells.push(format!("{:.4}", report.dummy_overhead()));
            }
            println!("{buffer:>6}  {period:>13}  {:>11}  {:>15}", cells[0], cells[1]);
        }
    }
}

fn bench(c: &mut Criterion) {
    print_overhead_table();
    let mut group = c.benchmark_group("dummy_overhead");
    group.sample_size(10);
    for &period in &[4u64, 256] {
        let g = fig2_triangle(8);
        let a = g.node_by_name("A").unwrap();
        let topo = Topology::from_graph(&g)
            .with(a, move || Predicate::new(2, move |seq, out| out == 0 || seq % period == 0));
        let plan = Planner::new(&g).algorithm(Algorithm::NonPropagation).plan().unwrap();
        group.bench_with_input(BenchmarkId::new("nonprop_20k", period), &period, |b, _| {
            b.iter(|| black_box(Simulator::new(&topo).with_plan(&plan).run(20_000)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
