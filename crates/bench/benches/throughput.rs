//! Runtime-engine throughput on wide and deep generated DAGs across filter
//! rates — the scaling benchmark behind the worklist-scheduler and
//! pooled-engine optimisations.
//!
//! Every simulator workload is measured under both schedulers so the
//! speedup of the event-driven worklist over the `O(V)`-per-step reference
//! scan is read directly off one run.  The pooled work-stealing engine is
//! swept over worker counts × node counts × filter rates (E15), with the
//! thread-per-node engine measured on the same workload where it can still
//! run at all (one OS thread per node bounds how far it scales).
//!
//! Set `FILA_BENCH_FAST=1` to run a tiny smoke configuration (used by CI to
//! catch bench rot), and `FILA_BENCH_JSON=<path>` to emit the
//! machine-readable record file (see the vendored criterion shim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fila_avoidance::{Algorithm, Planner};
use fila_graph::Graph;
use fila_runtime::{
    Batching, JobVerdict, PooledExecutor, Scheduler, SharedPool, Simulator, ThreadedExecutor,
    Topology,
};
use fila_service::{JobService, JobSpec, ServiceConfig};
use fila_workloads::generators::{
    periodic_filtered_topology, pipeline_graph, random_ladder, random_sp_dag, GeneratorConfig,
    LadderConfig,
};
use fila_workloads::jobs::{job_mix, JobKind, JobShape};
use std::cell::Cell;
use std::hint::black_box;
use std::sync::Arc;

fn fast() -> bool {
    std::env::var_os("FILA_BENCH_FAST").is_some()
}

const SCHEDULERS: [(Scheduler, &str); 2] = [
    (Scheduler::Worklist, "worklist"),
    (Scheduler::Scan, "scan"),
];

/// A linear pipeline of `n` nodes (capacity 4).  `reversed` declares the
/// nodes against the flow direction, so node ids are anti-topological: the
/// scan scheduler then advances each message only one hop per full `O(n)`
/// sweep (its generic behaviour on graphs whose declaration order does not
/// happen to match the dataflow), while with forward ids a single sweep
/// luckily rides a message all the way down.  The worklist scheduler and
/// the concurrent engines are insensitive to declaration order.
fn pipeline(n: usize, reversed: bool) -> Graph {
    pipeline_graph(n, 4, reversed)
}

/// The canonical period filter on every node (see
/// [`fila_workloads::generators::periodic_filtered_topology`]; period 1 =
/// broadcast, no filtering).
fn filtered_topology(g: &Graph, period: u64) -> Topology {
    periodic_filtered_topology(g, |_| period)
}

/// Filters only at the single source (the fork-filtering scenario of the
/// paper's Figs. 1–3, which every planner algorithm protects on every graph
/// class); interior nodes broadcast (period 1).
fn fork_filtered_topology(g: &Graph, period: u64) -> Topology {
    let source = g.single_source().unwrap();
    periodic_filtered_topology(g, |n| if n == source { period } else { 1 })
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput_pipeline");
    group.sample_size(if fast() { 3 } else { 10 });
    let sizes: &[usize] = if fast() { &[32] } else { &[64, 256, 1024, 4096] };
    let inputs = 32;
    for &n in sizes {
        for (reversed, order) in [(false, "fwd"), (true, "rev")] {
            let g = pipeline(n, reversed);
            let topo = Topology::from_graph(&g);
            for (scheduler, name) in SCHEDULERS {
                group.bench_with_input(
                    BenchmarkId::new(format!("{name}/{order}/nodes"), n),
                    &n,
                    |b, _| {
                        b.iter(|| {
                            let report = Simulator::new(&topo).scheduler(scheduler).run(inputs);
                            assert!(report.completed);
                            black_box(report.data_messages)
                        })
                    },
                );
            }
        }
    }
    group.finish();
}

fn bench_wide_sp(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput_sp");
    group.sample_size(if fast() { 3 } else { 10 });
    let sizes: &[usize] = if fast() { &[48] } else { &[256, 1024] };
    let rates: &[u64] = if fast() { &[4] } else { &[1, 4, 16] };
    let inputs = if fast() { 32 } else { 128 };
    for &edges in sizes {
        let (g, _) = random_sp_dag(&GeneratorConfig {
            target_edges: edges,
            max_fanout: 4,
            capacity_range: (2, 8),
            seed: 0xF11A + edges as u64,
        });
        // Non-Propagation handles filtering at interior nodes, which the
        // random per-node filters below produce.  The plan is shared via
        // Arc so the timed region never copies the interval table.
        let plan = Arc::new(
            Planner::new(&g)
                .algorithm(Algorithm::NonPropagation)
                .plan()
                .unwrap(),
        );
        for &rate in rates {
            let topo = filtered_topology(&g, rate);
            for (scheduler, name) in SCHEDULERS {
                group.bench_with_input(
                    BenchmarkId::new(
                        format!("{name}/edges{edges}"),
                        format!("rate{rate}"),
                    ),
                    &rate,
                    |b, _| {
                        b.iter(|| {
                            let report = Simulator::new(&topo)
                                .with_shared_plan(Arc::clone(&plan))
                                .scheduler(scheduler)
                                .run(inputs);
                            assert!(report.completed, "{report:?}");
                            black_box(report.data_messages + report.dummy_messages)
                        })
                    },
                );
            }
        }
    }
    group.finish();
}

fn bench_ladder(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput_ladder");
    group.sample_size(if fast() { 3 } else { 10 });
    let sizes: &[usize] = if fast() { &[8] } else { &[85, 341] };
    let rates: &[u64] = if fast() { &[16] } else { &[1, 16] };
    let inputs = if fast() { 32 } else { 128 };
    for &rungs in sizes {
        let g = random_ladder(&LadderConfig {
            rungs,
            capacity_range: (2, 8),
            reverse_probability: 0.3,
            seed: 0x1ADD + rungs as u64,
        });
        let plan = Arc::new(
            Planner::new(&g)
                .algorithm(Algorithm::NonPropagation)
                .plan()
                .unwrap(),
        );
        for &rate in rates {
            let topo = fork_filtered_topology(&g, rate);
            for (scheduler, name) in SCHEDULERS {
                group.bench_with_input(
                    BenchmarkId::new(
                        format!("{name}/rungs{rungs}"),
                        format!("rate{rate}"),
                    ),
                    &rate,
                    |b, _| {
                        b.iter(|| {
                            let report = Simulator::new(&topo)
                                .with_shared_plan(Arc::clone(&plan))
                                .scheduler(scheduler)
                                .run(inputs);
                            assert!(report.completed, "{report:?}");
                            black_box(report.data_messages + report.dummy_messages)
                        })
                    },
                );
            }
        }
    }
    group.finish();
}

fn bench_threaded(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput_threaded");
    group.sample_size(if fast() { 2 } else { 10 });
    let rungs = 16;
    let inputs = if fast() { 200 } else { 2000 };
    let g = random_ladder(&LadderConfig {
        rungs,
        capacity_range: (2, 8),
        reverse_probability: 0.3,
        seed: 0x1ADD,
    });
    let plan = Arc::new(
        Planner::new(&g)
            .algorithm(Algorithm::NonPropagation)
            .plan()
            .unwrap(),
    );
    for &rate in &[1u64, 16] {
        let topo = fork_filtered_topology(&g, rate);
        group.bench_with_input(
            BenchmarkId::new(format!("rungs{rungs}"), format!("rate{rate}")),
            &rate,
            |b, _| {
                b.iter(|| {
                    let report = ThreadedExecutor::new(&topo)
                        .with_shared_plan(Arc::clone(&plan))
                        .run(inputs);
                    assert!(report.completed, "{report:?}");
                    black_box(report.data_messages + report.dummy_messages)
                })
            },
        );
    }
    group.finish();
}

/// The E15 scaling sweep: the pooled work-stealing engine over worker
/// counts × pipeline sizes × filter rates, with the exact-verdict simulator
/// as the single-threaded baseline and the thread-per-node engine measured
/// on the sizes it can still reach (spawning thousands of OS threads per
/// run stops being meaningful long before 16 k nodes).
///
/// The pipeline is declared anti-topologically (ids against the flow), the
/// adversarial order for id-driven scheduling; the concurrent engines are
/// insensitive to it.
fn bench_pooled_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput_pooled");
    group.sample_size(if fast() { 2 } else { 10 });
    let sizes: &[usize] = if fast() { &[64] } else { &[1024, 4096, 16384] };
    let worker_counts: &[usize] = if fast() { &[2] } else { &[1, 2, 4, 8] };
    let rates: &[u64] = if fast() { &[4] } else { &[1, 4] };
    // Node counts where the thread-per-node engine is still worth spawning.
    let threaded_sizes: &[usize] = if fast() { &[64] } else { &[1024] };
    let inputs = 32;
    for &n in sizes {
        let g = pipeline(n, true);
        for &rate in rates {
            let topo = filtered_topology(&g, rate);
            group.bench_with_input(
                BenchmarkId::new(format!("sim/rate{rate}/nodes"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let report = Simulator::new(&topo).run(inputs);
                        assert!(report.completed, "{report:?}");
                        black_box(report.total_messages())
                    })
                },
            );
            for &workers in worker_counts {
                group.bench_with_input(
                    BenchmarkId::new(format!("pooled/w{workers}/rate{rate}/nodes"), n),
                    &n,
                    |b, _| {
                        b.iter(|| {
                            let report =
                                PooledExecutor::new(&topo).workers(workers).run(inputs);
                            assert!(report.completed, "{report:?}");
                            black_box(report.total_messages())
                        })
                    },
                );
            }
            if threaded_sizes.contains(&n) {
                group.bench_with_input(
                    BenchmarkId::new(format!("threaded/rate{rate}/nodes"), n),
                    &n,
                    |b, _| {
                        b.iter(|| {
                            let report = ThreadedExecutor::new(&topo).run(inputs);
                            assert!(report.completed, "{report:?}");
                            black_box(report.total_messages())
                        })
                    },
                );
            }
        }
    }

    // E22: the container-batching sweep — the largest pipeline of the run,
    // swept over per-container message limits.  `batch/1` carries one
    // message per container (the scalar engine's exact channel traffic,
    // plus the container bookkeeping); larger limits amortise ring
    // crossings, wake checks and threshold lookups over whole runs.
    // Unlike the capacity-4 scaling sweep above, this workload gives
    // batching room to form runs: capacity-256 channels and a long input
    // stream, so container fills are capacity-bound (tens of messages)
    // rather than ring-bound, and the fixed ring/topology setup — the
    // dominant per-iteration constant at 16 k edges — is amortised away.
    // One worker reads the per-core per-message cost directly.
    {
        let n = *sizes.last().expect("sweep has sizes");
        let g = pipeline_graph(n, 256, true);
        let topo = filtered_topology(&g, 1);
        let workers = if fast() { 2 } else { 1 };
        let batch_inputs = if fast() { 64 } else { 4096 };
        for &limit in &[1u32, 16, 256] {
            group.bench_with_input(
                BenchmarkId::new(format!("batch/{limit}/nodes"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let report = PooledExecutor::new(&topo)
                            .workers(workers)
                            .batching(Batching::Messages(limit))
                            .run(batch_inputs);
                        assert!(report.completed, "{report:?}");
                        black_box(report.total_messages())
                    })
                },
            );
        }
    }
    group.finish();
}

/// The E21 flight-recorder overhead pair: the identical pooled pipeline
/// workload on a [`SharedPool`] with the recorder off vs on.
///
/// * `off` — the production configuration; no recorder exists and every
///   telemetry hook is a never-taken `None` branch, so the disabled cost
///   is zero by construction (asserted structurally below: the pool hands
///   out no handle at all, i.e. it runs the same code path PR 8 shipped);
/// * `on` — per-worker rings record firing / steal / park / blocked-stall
///   spans and the settle path drains them, exactly what
///   `fila storm --trace` pays.
///
/// The full (non-fast) run additionally guards the headline claim quoted
/// in EXPERIMENTS.md E21: enabled CPU cost within 5 % of disabled, over
/// 30 interleaved pairs (see the comment at the guard for why CPU time,
/// not wall clock).
fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput_pooled");
    group.sample_size(if fast() { 2 } else { 10 });
    let n = if fast() { 64 } else { 16384 };
    let inputs = 32;
    let g = pipeline(n, true);
    let topo = filtered_topology(&g, 4);
    let run = |pool: &SharedPool| {
        let report = pool.submit(&topo, inputs).wait();
        assert!(report.completed, "{report:?}");
        report.total_messages()
    };
    let off = SharedPool::with_telemetry(2, 64, None, false);
    assert!(
        off.telemetry_handle().is_none(),
        "disabled pool must carry no recorder (zero cost by construction)"
    );
    let on = SharedPool::with_telemetry(2, 64, None, true);
    let recorder = on.telemetry_handle().expect("enabled pool records");
    group.bench_with_input(BenchmarkId::new("telemetry/off/nodes", n), &n, |b, _| {
        b.iter(|| black_box(run(&off)))
    });
    group.bench_with_input(BenchmarkId::new("telemetry/on/nodes", n), &n, |b, _| {
        b.iter(|| {
            let messages = run(&on);
            black_box(recorder.drain_new().len());
            black_box(messages)
        })
    });
    if !fast() {
        // CPU time, not wall clock: two worker threads multiplexed onto a
        // busy shared core make wall-clock minima drift by ±30 % between
        // rounds, which can never resolve a 5 % bound.  The total CPU the
        // process consumes (per-thread schedstat, nanosecond resolution)
        // is schedule-noise-resistant, and interleaving the pairs lets
        // slow drift (thermal, co-tenants) hit both sides equally; 30
        // pairs bring the aggregate ratio's run-to-run scatter to ~±1.5 %
        // on a loaded single-core worker, against a measured ~1–2 % true
        // overhead.
        'guard: {
            let Some(mut prev) = process_cpu_ns() else {
                eprintln!("telemetry overhead guard skipped: no readable schedstat");
                break 'guard;
            };
            black_box(run(&off));
            black_box(run(&on));
            black_box(recorder.drain_new().len());
            let (mut cpu_off, mut cpu_on) = (0u64, 0u64);
            for _ in 0..30 {
                black_box(run(&off));
                let Some(mid) = process_cpu_ns() else { break 'guard };
                black_box(run(&on));
                black_box(recorder.drain_new().len());
                let Some(end) = process_cpu_ns() else { break 'guard };
                cpu_off += mid.saturating_sub(prev);
                cpu_on += end.saturating_sub(mid);
                prev = end;
            }
            let ratio = cpu_on as f64 / cpu_off as f64;
            eprintln!(
                "telemetry overhead: cpu off {:.1}ms on {:.1}ms ratio {ratio:.4}",
                cpu_off as f64 / 1e6,
                cpu_on as f64 / 1e6
            );
            assert!(
                ratio < 1.05,
                "enabled telemetry overhead must stay under 5% (cpu ratio {ratio:.4})"
            );
        }
    }
    group.finish();
}

/// Total CPU nanoseconds consumed so far by every live thread of this
/// process (`/proc/self/task/*/schedstat`, first field).  `None` where
/// per-thread schedstat is unavailable — the telemetry-overhead guard then
/// reports instead of asserting, because wall clock on a shared worker
/// cannot bound a 5 % effect.
fn process_cpu_ns() -> Option<u64> {
    let mut total = 0u64;
    let mut seen = false;
    for entry in std::fs::read_dir("/proc/self/task").ok()? {
        let path = entry.ok()?.path().join("schedstat");
        if let Some(first) = std::fs::read_to_string(path)
            .ok()
            .as_deref()
            .and_then(|s| s.split_whitespace().next())
        {
            total += first.parse::<u64>().ok()?;
            seen = true;
        }
    }
    seen.then_some(total)
}

/// Time to *detect* a deadlock on an unprotected, heavily filtering ladder:
/// the scan scheduler needs a full unproductive sweep over all nodes, the
/// worklist simply runs its ready queue dry, and the pooled engine parks
/// its pool — all three verdicts are exact (no quiet-period timeout is
/// involved, in contrast to the threaded engine's watchdog).
fn bench_deadlock_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput_deadlock");
    group.sample_size(if fast() { 3 } else { 10 });
    let sizes: &[usize] = if fast() { &[8] } else { &[85, 341] };
    let inputs = if fast() { 32 } else { 128 };
    for &rungs in sizes {
        let g = random_ladder(&LadderConfig {
            rungs,
            capacity_range: (2, 8),
            reverse_probability: 0.3,
            seed: 0x1ADD + rungs as u64,
        });
        let topo = filtered_topology(&g, 4);
        for (scheduler, name) in SCHEDULERS {
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/rungs"), rungs),
                &rungs,
                |b, _| {
                    b.iter(|| {
                        let report = Simulator::new(&topo).scheduler(scheduler).run(inputs);
                        assert!(report.deadlocked, "{report:?}");
                        black_box(report.blocked.len())
                    })
                },
            );
        }
        group.bench_with_input(
            BenchmarkId::new("pooled/rungs", rungs),
            &rungs,
            |b, _| {
                b.iter(|| {
                    let report = PooledExecutor::new(&topo).workers(2).run(inputs);
                    assert!(report.deadlocked, "{report:?}");
                    black_box(report.blocked.len())
                })
            },
        );
    }
    group.finish();
}

/// The E16 service sweep: one `JobService` executing batches of planned
/// jobs (SP DAGs + CS4 ladders from the template mix) concurrently on its
/// shared pool, **cold** vs **warm** plan cache.
///
/// Both variants submit the identical shape stream through the identical
/// steady-state service; the only difference is fingerprint novelty:
///
/// * `warm` — the template shapes as generated; after a pre-warming pass
///   every submission's plan is a cache hit;
/// * `cold` — each submission perturbs one buffer capacity with a
///   globally unique value, so every job carries a never-seen structural
///   fingerprint and must be planned from scratch.
///
/// The gap between the two is exactly the planning work the structural
/// plan cache amortises for repeat-template traffic.
fn bench_service_jobs(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_jobs");
    group.sample_size(if fast() { 2 } else { 10 });
    let job_counts: &[usize] = if fast() { &[8] } else { &[64, 256, 1024] };
    for &jobs in job_counts {
        // Planned kinds only (SP DAGs + ladders): the cold/warm delta is
        // about planning, so unplanned pipelines would only dilute it.
        let shapes: Vec<JobShape> = job_mix(0xF11A ^ jobs as u64, jobs * 3)
            .into_iter()
            .filter(|s| matches!(s.kind, JobKind::SpDag | JobKind::Ladder))
            .take(jobs)
            .collect();
        assert_eq!(shapes.len(), jobs, "mix must yield enough planned shapes");
        let spec_of = |shape: &JobShape| {
            JobSpec::from_periods(
                shape.graph.clone(),
                shape.periods.clone(),
                shape.inputs,
                shape.avoidance,
            )
        };
        let service = JobService::new(ServiceConfig {
            max_in_flight: jobs,
            plan_cache_capacity: 8 * jobs,
            ..ServiceConfig::default()
        });
        let run_batch = |make_spec: &dyn Fn(&JobShape) -> JobSpec| {
            let tickets: Vec<_> = shapes
                .iter()
                .map(|s| service.submit(make_spec(s)).expect("admitted"))
                .collect();
            let mut messages = 0u64;
            for t in &tickets {
                let outcome = t.wait();
                assert_eq!(outcome.verdict, JobVerdict::Completed, "{outcome:?}");
                messages += outcome.report.total_messages();
            }
            messages
        };
        // Pre-warm: one pass caches every template's plan.
        run_batch(&spec_of);
        group.bench_with_input(BenchmarkId::new("warm/jobs", jobs), &jobs, |b, _| {
            b.iter(|| black_box(run_batch(&spec_of)))
        });
        let unique = Cell::new(0u64);
        let perturbed = |shape: &JobShape| {
            let mut spec = spec_of(shape);
            // Encode counter+1 so even the first cold submission differs
            // from the (pre-warmed) unperturbed template.
            let mut bump = unique.get() + 1;
            unique.set(bump);
            // A globally unique capacity *combination* ⇒ a never-seen
            // fingerprint ⇒ a fresh plan, in every sample of every
            // iteration — encoded base-8 across the edges so each
            // capacity moves by at most +7 (runtime behaviour stays
            // comparable to the warm variant instead of drifting as the
            // counter grows).  Growing a buffer never introduces a
            // deadlock, so completion verdicts are preserved.
            for e in spec.graph.edge_ids().collect::<Vec<_>>() {
                let digit = bump % 8;
                bump /= 8;
                if digit > 0 {
                    let cap = spec.graph.capacity(e);
                    spec.graph
                        .set_capacity(e, cap + digit)
                        .expect("non-zero capacity");
                }
                if bump == 0 {
                    break;
                }
            }
            spec
        };
        group.bench_with_input(BenchmarkId::new("cold/jobs", jobs), &jobs, |b, _| {
            b.iter(|| black_box(run_batch(&perturbed)))
        });
    }
    group.finish();
}

/// The E17 certification-overhead sweep: what does the filtering-aware
/// certification gate cost **relative to planning** the same shape?  Three
/// labels per shape:
///
/// * `plan` — structural planning alone (the pre-certification admission
///   cost);
/// * `certify` — `Planner::certify` end to end (plan + bounded model check
///   of the declared profile and the adversarial family, including any
///   fallback);
/// * `cached_verdict` — a warm `PlanCache::certify` lookup, the steady-state
///   per-submission cost the service actually pays for repeat shapes.
fn bench_certification(c: &mut Criterion) {
    use fila_avoidance::{PlanCache, Rounding};
    let mut group = c.benchmark_group("certification");
    group.sample_size(if fast() { 2 } else { 10 });
    let ladder_rungs: &[usize] = if fast() { &[8] } else { &[8, 16, 32] };
    for &rungs in ladder_rungs {
        let g = random_ladder(&LadderConfig {
            rungs,
            capacity_range: (2, 8),
            reverse_probability: 0.3,
            seed: 0x1ADD + rungs as u64,
        });
        let periods: Vec<u64> = g.node_ids().map(|_| 16).collect();
        group.bench_with_input(
            BenchmarkId::new("plan/ladder/rungs", rungs),
            &rungs,
            |b, _| {
                b.iter(|| {
                    black_box(
                        Planner::new(&g)
                            .algorithm(Algorithm::NonPropagation)
                            .plan()
                            .unwrap(),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("certify/ladder/rungs", rungs),
            &rungs,
            |b, _| {
                b.iter(|| {
                    let certified = Planner::new(&g)
                        .algorithm(Algorithm::NonPropagation)
                        .certify(&periods)
                        .unwrap();
                    assert!(!certified.fell_back);
                    black_box(certified.certification.inputs)
                })
            },
        );
        let cache = PlanCache::new(64);
        // Warm the verdict once; the timed loop is the steady-state hit.
        cache
            .certify(&g, Algorithm::NonPropagation, Rounding::Ceil, 512, &periods)
            .unwrap();
        group.bench_with_input(
            BenchmarkId::new("cached_verdict/ladder/rungs", rungs),
            &rungs,
            |b, _| {
                b.iter(|| {
                    let hit = cache
                        .certify(&g, Algorithm::NonPropagation, Rounding::Ceil, 512, &periods)
                        .unwrap();
                    assert!(hit.hit);
                    black_box(hit.fell_back)
                })
            },
        );
    }
    // One SP shape for the quadratic-planner comparison point.
    let edges = if fast() { 24 } else { 128 };
    let (g, _) = random_sp_dag(&GeneratorConfig {
        target_edges: edges,
        max_fanout: 3,
        capacity_range: (2, 8),
        seed: 0xF11A,
    });
    let periods: Vec<u64> = g.node_ids().map(|_| 8).collect();
    group.bench_with_input(BenchmarkId::new("plan/sp/edges", edges), &edges, |b, _| {
        b.iter(|| {
            black_box(
                Planner::new(&g)
                    .algorithm(Algorithm::NonPropagation)
                    .plan()
                    .unwrap(),
            )
        })
    });
    group.bench_with_input(
        BenchmarkId::new("certify/sp/edges", edges),
        &edges,
        |b, _| {
            b.iter(|| {
                black_box(
                    Planner::new(&g)
                        .algorithm(Algorithm::NonPropagation)
                        .certify(&periods)
                        .unwrap()
                        .certification
                        .inputs,
                )
            })
        },
    );
    group.finish();
}

/// The E18 checkpoint/restore overhead sweep on a planned, filtering SP
/// DAG.  Four labels:
///
/// * `uninterrupted` — the plain run, the baseline every other label is
///   read against;
/// * `kill_restore` — the same workload killed halfway (barrier snapshot
///   taken) and restored into a fresh engine that runs it to completion:
///   the end-to-end price of one crash/recovery cycle;
/// * `encode` / `decode` — the versioned wire codec on the captured
///   mid-run snapshot (what a durable checkpoint would pay per write/read).
fn bench_snapshot(c: &mut Criterion) {
    use fila_runtime::{CheckpointOutcome, JobSnapshot};
    let mut group = c.benchmark_group("snapshot");
    group.sample_size(if fast() { 2 } else { 10 });
    let edges = if fast() { 24 } else { 128 };
    let inputs = if fast() { 32 } else { 128 };
    let (g, _) = random_sp_dag(&GeneratorConfig {
        target_edges: edges,
        max_fanout: 3,
        capacity_range: (2, 8),
        seed: 0x5A4B,
    });
    let plan = Arc::new(
        Planner::new(&g)
            .algorithm(Algorithm::NonPropagation)
            .plan()
            .unwrap(),
    );
    let topo = filtered_topology(&g, 4);
    let sim = || Simulator::new(&topo).with_shared_plan(Arc::clone(&plan));
    let reference = sim().run(inputs);
    assert!(reference.completed, "{reference:?}");
    // Kill halfway through the reference run's step count, so the snapshot
    // carries a representative mix of in-flight channel state.
    let kill_at = (reference.steps / 2).max(1);
    group.bench_with_input(
        BenchmarkId::new("uninterrupted/edges", edges),
        &edges,
        |b, _| {
            b.iter(|| {
                let report = sim().run(inputs);
                assert!(report.completed);
                black_box(report.total_messages())
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("kill_restore/edges", edges),
        &edges,
        |b, _| {
            b.iter(|| {
                let s = sim();
                let CheckpointOutcome::Killed(snapshot) =
                    s.run_with_checkpoint(inputs, kill_at)
                else {
                    panic!("halfway kill point must interrupt");
                };
                let resumed = s.resume(&snapshot).expect("same plan restores");
                assert_eq!(resumed.per_edge_data, reference.per_edge_data);
                black_box(resumed.total_messages())
            })
        },
    );
    let snapshot = match sim().run_with_checkpoint(inputs, kill_at) {
        CheckpointOutcome::Killed(s) => s,
        CheckpointOutcome::Finished(_) => panic!("halfway kill point must interrupt"),
    };
    group.bench_with_input(BenchmarkId::new("encode/edges", edges), &edges, |b, _| {
        b.iter(|| black_box(snapshot.to_bytes()))
    });
    let bytes = snapshot.to_bytes();
    group.bench_with_input(BenchmarkId::new("decode/edges", edges), &edges, |b, _| {
        b.iter(|| black_box(JobSnapshot::from_bytes(&bytes).expect("own bytes decode")))
    });
    group.finish();
}

/// The E19 adaptive-runtime sweep: what does drift supervision cost when
/// nothing drifts, and what does a certified plan hot-swap cost when
/// something does?  Labels:
///
/// * `unsupervised` / `supervised` — the identical honest job executed
///   bare vs under the polling supervisor.  The firing hot path is
///   untouched by supervision (the counters it reads exist regardless),
///   so the delta is the cost of the poll loop's periodic one-lock-per-
///   node counter observations;
/// * `hot_swap/warm` — a drifting job detected mid-flight, barrier-
///   snapshotted and resumed under a plan whose certification verdict for
///   the observed profile is already cached (the service's steady-state
///   fast path);
/// * `hot_swap/cold` — the same migration where every iteration carries a
///   never-seen structural fingerprint, so the full re-certification runs
///   inside the swap window.
fn bench_adaptive(c: &mut Criterion) {
    use fila_service::{AdaptiveOutcome, DriftPolicy, FilterSpec};
    use fila_workloads::figures::fig2_triangle;
    use std::time::Duration;

    let mut group = c.benchmark_group("adaptive");
    group.sample_size(if fast() { 2 } else { 10 });

    // --- Detector overhead on an honest job -----------------------------
    // Long enough that the supervisor's settle-detection tail (at most one
    // poll period) is small against the job's wall time, so the label pair
    // reads as the real per-poll observation cost.
    let inputs = if fast() { 20_000 } else { 100_000 };
    let svc = JobService::new(ServiceConfig::default());
    let policy = DriftPolicy::default();
    let honest = JobSpec::new(fig2_triangle(4), FilterSpec::Fork(2), inputs);
    group.bench_with_input(
        BenchmarkId::new("unsupervised/fig2/inputs", inputs),
        &inputs,
        |b, _| {
            b.iter(|| {
                let ticket = svc.submit(honest.clone()).expect("admitted");
                let outcome = ticket.wait();
                assert_eq!(outcome.verdict, JobVerdict::Completed, "{outcome:?}");
                black_box(outcome.report.total_messages())
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("supervised/fig2/inputs", inputs),
        &inputs,
        |b, _| {
            b.iter(|| {
                let ticket = svc.submit(honest.clone()).expect("admitted");
                let AdaptiveOutcome::Settled(outcome) = svc.supervise(&honest, ticket, &policy)
                else {
                    panic!("an honest job must settle untouched");
                };
                assert_eq!(outcome.verdict, JobVerdict::Completed, "{outcome:?}");
                black_box(outcome.report.total_messages())
            })
        },
    );

    // --- Hot-swap latency, warm vs cold certification -------------------
    // Inputs sized so the drifting job's wall time (linear in inputs, a
    // couple of ms per 10k in release) dwarfs the detect → certify →
    // snapshot pipeline even on a busy CI worker: the swap must land
    // mid-flight every iteration or the benchmark panics.
    let swap_inputs = if fast() { 100_000 } else { 200_000 };
    let tight = DriftPolicy {
        window: 16,
        breaches: 2,
        poll: Duration::from_micros(50),
        ..DriftPolicy::default()
    };
    let drifting = |buffer: u64| {
        JobSpec::new(fig2_triangle(buffer), FilterSpec::Fork(2), swap_inputs)
            .with_actual_filters(FilterSpec::Fork(4))
    };
    let run_swap = |spec: &JobSpec| -> u64 {
        let ticket = svc.submit(spec.clone()).expect("admitted");
        match svc.supervise(spec, ticket, &tight) {
            AdaptiveOutcome::HotSwapped { outcome, swap }
            | AdaptiveOutcome::Replanned { outcome, swap } => {
                assert_eq!(outcome.verdict, JobVerdict::Completed, "{outcome:?}");
                black_box(swap.latency);
                outcome.report.total_messages()
            }
            other => panic!("a drifting fig2 job must be swapped, got {other:?}"),
        }
    };
    // Pre-warm: one swap caches the observed profile's certification
    // verdict, so every timed warm iteration takes the fast path.
    run_swap(&drifting(4));
    group.bench_with_input(
        BenchmarkId::new("hot_swap/warm/inputs", swap_inputs),
        &swap_inputs,
        |b, _| b.iter(|| black_box(run_swap(&drifting(4)))),
    );
    // Cold: a never-seen buffer capacity per iteration gives each job a
    // fresh structural fingerprint, so certification runs from scratch
    // inside every swap window.  Growing a buffer never introduces a
    // deadlock; capacities stay far below the input count, so the job
    // remains back-pressured and the dynamics comparable to `warm`.
    let unique = Cell::new(4u64);
    group.bench_with_input(
        BenchmarkId::new("hot_swap/cold/inputs", swap_inputs),
        &swap_inputs,
        |b, _| {
            b.iter(|| {
                let buffer = unique.get() + 1;
                unique.set(buffer);
                black_box(run_swap(&drifting(buffer)))
            })
        },
    );
    group.finish();
}

/// The E20 self-healing sweep: end-to-end crash→recovered latency of
/// [`JobService::run_recoverable`] as a function of the auto-checkpoint
/// interval.
///
/// Every iteration builds a fresh service whose pool is armed with the
/// chaos fault plan at a seed for which the *first* job serial
/// deterministically draws a mid-firing worker panic and the recovery
/// incarnations stay unarmed — so each timed run is exactly one injected
/// crash plus one trip down the recovery ladder.  The interval sweep reads
/// the checkpoint-cadence trade directly: a fine cadence recovers from a
/// fresh snapshot (short replay), a coarse cadence replays more, and an
/// interval longer than the job's progress at the crash leaves no snapshot
/// at all, forcing the genesis rung (full re-run) — the priced-in worst
/// case.
fn bench_recovery(c: &mut Criterion) {
    use fila_runtime::FaultPlan;
    use fila_service::{
        CheckpointPolicy, FilterSpec, RecoveryMode, RecoveryOutcome, RecoveryPolicy,
    };
    use fila_workloads::figures::fig2_triangle;

    let mut group = c.benchmark_group("recovery");
    group.sample_size(if fast() { 2 } else { 10 });

    // The injected panics are the workload here — keep their default-hook
    // stack traces out of the bench output, but let real panics through.
    let previous_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .map(|s| s.starts_with("injected:"))
            .unwrap_or(false);
        if !injected {
            previous_hook(info);
        }
    }));

    // Seed 66 at rate 0.3: serial 0 is armed with a Firing(47) crash and
    // the following serials are unarmed (the same deterministic pair the
    // service's recovery tests pin), so the crash always lands and the
    // recovery incarnation always survives.
    let inputs = if fast() { 2_048 } else { 4_096 };
    let spec = JobSpec::new(fig2_triangle(4), FilterSpec::Fork(2), inputs);
    let policy = RecoveryPolicy {
        mode: RecoveryMode::Exact,
        ..RecoveryPolicy::default()
    };
    for interval in [256u64, 1_024, 4_096] {
        let checkpoints = CheckpointPolicy {
            every_n_inputs: interval,
            max_snapshots: 4,
        };
        group.bench_with_input(
            BenchmarkId::new("crash_recover/interval", interval),
            &interval,
            |b, _| {
                b.iter(|| {
                    let svc = JobService::new(ServiceConfig {
                        faults: Some(Arc::new(FaultPlan::seeded(66).kill_rate(0.3))),
                        ..ServiceConfig::default()
                    });
                    let outcome = svc
                        .run_recoverable(&spec, &checkpoints, &policy)
                        .expect("admitted");
                    let RecoveryOutcome::Recovered { outcome, report } = outcome else {
                        panic!("serial 0 must crash and recover, got {outcome:?}");
                    };
                    assert_eq!(outcome.verdict, JobVerdict::Completed, "{outcome:?}");
                    black_box((report.crashes, outcome.report.total_messages()))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pipeline,
    bench_wide_sp,
    bench_ladder,
    bench_threaded,
    bench_pooled_scaling,
    bench_telemetry_overhead,
    bench_deadlock_detection,
    bench_service_jobs,
    bench_certification,
    bench_snapshot,
    bench_adaptive,
    bench_recovery
);
criterion_main!(benches);
