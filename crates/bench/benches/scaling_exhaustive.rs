//! E8: the exponential cycle-enumeration baseline on general DAGs — the
//! number of undirected simple cycles (and hence the running time) grows
//! combinatorially with the number of parallel branches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fila_avoidance::exhaustive::exhaustive_intervals;
use fila_avoidance::{Algorithm, Rounding};
use fila_bench::CHAIN_COUNTS;
use fila_workloads::generators::{layered_dag, parallel_chains};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_exhaustive");
    group.sample_size(10);
    for &k in CHAIN_COUNTS {
        let g = parallel_chains(k, 2);
        group.bench_with_input(BenchmarkId::new("parallel_chains", k), &k, |b, _| {
            b.iter(|| {
                black_box(exhaustive_intervals(&g, Algorithm::Propagation, Rounding::Ceil).unwrap())
            })
        });
    }
    for &width in &[2usize, 3, 4] {
        let g = layered_dag(4, width, 2, 7);
        group.bench_with_input(BenchmarkId::new("layered_dag", width), &width, |b, _| {
            b.iter(|| {
                black_box(exhaustive_intervals(&g, Algorithm::Propagation, Rounding::Ceil).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
