//! E9/E10: compile-time scaling of the CS4 / SP-ladder interval algorithms
//! (Propagation linear, Non-Propagation cubic in the rung count).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fila_avoidance::{Algorithm, Planner};
use fila_bench::{ladder_of_size, LADDER_RUNGS};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_ladder");
    group.sample_size(10);
    for &rungs in LADDER_RUNGS {
        let g = ladder_of_size(rungs);
        group.bench_with_input(BenchmarkId::new("ladder_prop", rungs), &rungs, |b, _| {
            b.iter(|| {
                black_box(
                    Planner::new(&g)
                        .algorithm(Algorithm::Propagation)
                        .plan()
                        .unwrap(),
                )
            })
        });
        // The cubic Non-Propagation computation is only run on the smaller
        // sweep points to keep bench times reasonable.
        if rungs <= 128 {
            group.bench_with_input(BenchmarkId::new("ladder_nonprop", rungs), &rungs, |b, _| {
                b.iter(|| {
                    black_box(
                        Planner::new(&g)
                            .algorithm(Algorithm::NonPropagation)
                            .plan()
                            .unwrap(),
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
