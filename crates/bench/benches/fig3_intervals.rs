//! E3: interval computation on the Fig. 3 worked example — the efficient SP
//! algorithms against the exhaustive baseline on the same graph.

use criterion::{criterion_group, criterion_main, Criterion};
use fila_avoidance::exhaustive::exhaustive_intervals;
use fila_avoidance::{nonprop_sp, prop_sp, Algorithm, Rounding};
use fila_spdag::recognize;
use fila_workloads::figures::fig3_cycle;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let g = fig3_cycle();
    let d = recognize(&g).unwrap().decomposition().unwrap();
    let mut group = c.benchmark_group("fig3_intervals");
    group.bench_function("setivals_propagation", |b| {
        b.iter(|| black_box(prop_sp::setivals(&g, &d)))
    });
    group.bench_function("nonprop_quadratic", |b| {
        b.iter(|| black_box(nonprop_sp::nonprop_intervals(&g, &d, Rounding::Ceil)))
    });
    group.bench_function("exhaustive_propagation", |b| {
        b.iter(|| black_box(exhaustive_intervals(&g, Algorithm::Propagation, Rounding::Ceil)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
