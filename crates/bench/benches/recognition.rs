//! E4/E5: topology classification and decomposition cost — SP recognition,
//! CS4/ladder decomposition, and the brute-force cycle-level CS4 check on
//! the paper's figures and generated graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fila_avoidance::cs4::{decompose_cs4, is_cs4_by_cycle_enumeration};
use fila_avoidance::classify;
use fila_bench::{ladder_of_size, sp_dag_of_size, LADDER_RUNGS, SP_SIZES};
use fila_spdag::recognize;
use fila_workloads::figures;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("recognition");
    group.sample_size(10);
    for &size in SP_SIZES {
        let (g, _) = sp_dag_of_size(size);
        group.bench_with_input(BenchmarkId::new("sp_recognition", size), &size, |b, _| {
            b.iter(|| black_box(recognize(&g).unwrap().is_sp()))
        });
    }
    for &rungs in LADDER_RUNGS {
        let g = ladder_of_size(rungs);
        group.bench_with_input(BenchmarkId::new("cs4_decomposition", rungs), &rungs, |b, _| {
            b.iter(|| black_box(decompose_cs4(&g).unwrap()))
        });
    }
    group.bench_function("classify_fig4_crosslink", |b| {
        let g = figures::fig4_crosslink(2);
        b.iter(|| black_box(classify(&g).unwrap()))
    });
    group.bench_function("classify_fig4_butterfly", |b| {
        let g = figures::fig4_butterfly(2);
        b.iter(|| black_box(classify(&g).unwrap()))
    });
    group.bench_function("bruteforce_cs4_check_fig5", |b| {
        let g = figures::fig5_ladder(3);
        b.iter(|| black_box(is_cs4_by_cycle_enumeration(&g)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
