//! A long-lived, multi-tenant work-stealing pool: many independent
//! dataflow jobs execute concurrently on one fixed set of workers.
//!
//! [`crate::PooledExecutor`] spins up a scoped pool, runs **one** topology
//! to its verdict and tears the pool down.  A service multiplexing
//! thousands of small dataflows cannot afford that: `SharedPool` keeps the
//! workers alive across jobs and lets the node-tasks of any number of
//! *independent* topologies coexist in the same per-worker run queues.
//! Each queue entry carries its job, so a worker interleaves firings of
//! different jobs at task granularity — exactly the shared-memory
//! multicore streaming model, scaled from "operators share workers" to
//! "jobs share workers".
//!
//! ## Per-job verdicts without global quiescence
//!
//! The single-run pool declares deadlock when the whole pool parks with
//! unfinished nodes.  That test is useless here: one healthy job can keep
//! the pool busy forever while another is wedged.  `SharedPool` instead
//! tracks, per job, the number of **active** tasks — tasks that are
//! queued, running, or flagged for re-run.  Jobs are independent (no
//! channel crosses a job boundary), so every wakeup a task of job `J` can
//! ever receive is issued by a running task of `J` *before* that task
//! deactivates.  Hence when `J`'s active count drops to zero the job is
//! quiescent forever, and the verdict is exact and immediate:
//!
//! * unfinished nodes remain → **deadlocked** (with blocked-node report),
//! * otherwise → **completed** —
//!
//! regardless of what every other job on the pool is doing.  This is the
//! same "ready set empty" argument as the simulator's worklist scheduler,
//! applied per job.
//!
//! ## Isolation
//!
//! A panicking node behaviour fails only its own job (verdict
//! [`JobVerdict::Failed`]); the workers and every other job keep running.
//! Dropping the pool stops the workers and settles still-undelivered jobs
//! with [`JobVerdict::Cancelled`] so no waiter hangs.
//!
//! ## Barrier snapshots without stopping the pool
//!
//! [`JobHandle::checkpoint`] captures a consistent
//! [`JobSnapshot`] of one running job while
//! every other job (and the job itself) keeps executing — an asynchronous
//! barrier snapshot in the spirit of Carbone et al.'s ABS, with sequence
//! numbers playing the role of barrier markers (see the
//! [`crate::checkpoint`] module docs for the full consistency argument).
//! The checkpointer freezes the job's sources just long enough to read a
//! barrier sequence number `k` (the maximum source cursor), publishes it,
//! and every task contributes its state exactly once at its own
//! *alignment* — the point where it would next consume or produce a
//! sequence number `≥ k` — either from inside the task-stepping loop (one
//! atomic load per firing when no snapshot is pending) or from the
//! checkpointer's sweep for tasks that are already done.  If the job
//! settles before the barrier completes, the checkpoint returns the
//! verdict instead ([`crate::checkpoint::SnapshotError::Settled`]); it
//! never hangs and never produces a torn snapshot.
//! [`SharedPool::resume_full`] restores a snapshot as a new job that
//! reports **cumulative** counts, after re-validating the exact topology,
//! plan and trigger it was captured under.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::Instant;

use fila_graph::fingerprint::labeled_fingerprint;
use fila_graph::Graph;

use crate::checkpoint::{
    self, JobSnapshot, NodeSnapshot, RestoreError, SnapshotError, SwapToken, SNAPSHOT_VERSION,
};
use crate::container::{Batch, Batching, Container};
use crate::faults::{FaultArm, FaultPlan};
use crate::message::Message;
use crate::report::{BlockedReason, ExecutionReport};
use crate::task::{self, Outcome};
use crate::telemetry::{EventKind, TelemetryHandle, CONTROL_LANE};
use crate::topology::Topology;
use crate::wrapper::{AvoidanceMode, PropagationTrigger};

/// The pool always drives container-typed tasks; `Batching::Scalar` maps to
/// a per-container limit of one message, which the equivalence property
/// tests pin to the scalar engines' behaviour.
type Task = task::Task<Batch>;

/// Task scheduling states (one `AtomicU8` per node per job); identical
/// protocol to [`crate::PooledExecutor`]'s.
const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const NOTIFIED: u8 = 3;

/// Job verdict encoding (`JobState::verdict`).
const JOB_RUNNING: u8 = 0;
const JOB_COMPLETED: u8 = 1;
const JOB_DEADLOCKED: u8 = 2;
const JOB_FAILED: u8 = 3;
const JOB_CANCELLED: u8 = 4;

/// How a job on a [`SharedPool`] ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobVerdict {
    /// Every node of the job reached end-of-stream.
    Completed,
    /// The job's tasks went quiescent with unfinished nodes: a true
    /// deadlock of that job (exact, not timeout-inferred).
    Deadlocked,
    /// A node behaviour panicked; the job was abandoned.
    Failed,
    /// The pool was shut down before the job settled.
    Cancelled,
}

/// A callback invoked exactly once when a job settles (reaches its verdict
/// and its report is assembled), before waiters are released — so a
/// returning [`JobHandle::wait`] implies the hook's effects are visible.
/// Runs on a worker thread: it must not block; panics are caught and
/// discarded.
pub type SettleHook = Box<dyn FnOnce(&ExecutionReport, JobVerdict) + Send>;

/// One entry of a worker run queue: a node-task of some job.
struct TaskRef {
    job: Arc<JobState>,
    node: u32,
}

/// Everything the pool tracks for one submitted job.
struct JobState {
    tasks: Vec<Mutex<Task>>,
    states: Vec<AtomicU8>,
    /// Tasks currently queued, running or flagged (see the module docs);
    /// reaching zero decides the verdict.
    active: AtomicUsize,
    unfinished: AtomicUsize,
    verdict: AtomicU8,
    /// Guards one-shot report assembly.
    delivered: AtomicBool,
    inputs: u64,
    edge_count: usize,
    started: Instant,
    slot: Mutex<DoneSlot>,
    done_cv: Condvar,
    /// Node indices of the job's sources (in-degree 0), frozen briefly by
    /// [`JobHandle::checkpoint`] to pick a barrier sequence number.
    sources: Vec<usize>,
    /// Snapshot identity, computed once at submission.
    meta: SnapMeta,
    /// Progress marker of the snapshot this job resumed from, if any.
    resumed_from: Option<u64>,
    /// Epoch of the snapshot currently being collected (0 = none).  This is
    /// the one-atomic-load fast path `run_task` checks per firing; the
    /// barrier below is published *before* it with release ordering.
    snap_pending: AtomicU64,
    /// Barrier sequence number of the pending snapshot epoch.
    snap_barrier: AtomicU64,
    /// Snapshot collection buffers and the finished result.  Lock order:
    /// a task mutex is always taken *before* this mutex, never after.
    snap: Mutex<SnapState>,
    snap_cv: Condvar,
    /// The job's injected-fault schedule (`None` on pools without a
    /// [`FaultPlan`] — the zero-cost-when-disabled common case).
    fault: Option<Arc<FaultArm>>,
    /// The pool job serial stamped on this job's trace events
    /// (`u64::MAX` for degenerate jobs that settle synchronously and
    /// never draw a serial).
    serial: u64,
    /// Submission timestamp on the telemetry clock (0 when telemetry is
    /// off); start of the job's `EventKind::Job` span.
    t_submit_ns: u64,
    /// Node index of the task whose execution panicked (`u32::MAX` =
    /// none): the provenance a partial restart restarts downstream of.
    failed_node: AtomicU32,
}

/// The identity stamped into every snapshot of a job, so restores can
/// verify they resume under the exact certified plan.
struct SnapMeta {
    labeled_topology: u64,
    plan_digest: Option<u64>,
    trigger: u8,
}

impl SnapMeta {
    fn new(g: &Graph, mode: &AvoidanceMode, trigger: PropagationTrigger) -> Self {
        SnapMeta {
            labeled_topology: labeled_fingerprint(g),
            plan_digest: checkpoint::plan_digest(mode),
            trigger: checkpoint::trigger_code(trigger),
        }
    }
}

/// In-flight snapshot collection state (guarded by `JobState::snap`).
#[derive(Default)]
struct SnapState {
    /// Monotonic checkpoint epoch for this job; task-side `snap_epoch`
    /// markers dedup contributions against it.
    epoch: u64,
    /// Tasks that have not yet contributed to the pending epoch.
    remaining: usize,
    nodes: Vec<Option<NodeSnapshot>>,
    per_edge_data: Vec<u64>,
    per_edge_dummies: Vec<u64>,
    /// Delivered-EOS markers inferred at contribution time (a pool
    /// barrier's channels are otherwise empty at the cut — see the
    /// `checkpoint` module docs).
    channels: Vec<Vec<Message>>,
    /// The finished snapshot, or the verdict that pre-empted it.
    result: Option<Result<Box<JobSnapshot>, SnapshotError>>,
}

impl JobState {
    /// Records one task's aligned state into the pending snapshot.  The
    /// caller holds the task mutex (lock order: task before snap); the
    /// final contribution assembles the [`JobSnapshot`] and wakes the
    /// checkpointer.
    fn contribute(&self, node: usize, task: &mut Task) {
        let mut snap = lock(&self.snap);
        // A settle (or a stale wakeup from a finished epoch) may have
        // fulfilled the result already; the buffers are gone then.
        if snap.result.is_some() || snap.nodes[node].is_some() {
            return;
        }
        for port in &task.outs {
            snap.per_edge_data[port.edge as usize] = port.data;
            snap.per_edge_dummies[port.edge as usize] = port.dummies;
            // An EOS-queued producer with an empty staging queue has
            // delivered its EOS marker; consumers never pop EOS, so it is
            // part of the channel state and must survive the restore.
            if task.eos_queued && port.queue.is_empty() {
                snap.channels[port.edge as usize].push(Message::Eos);
            }
        }
        snap.nodes[node] = Some(NodeSnapshot {
            gaps: task.wrapper.gaps().to_vec(),
            next_source_seq: task.next_source_seq,
            eos_queued: task.eos_queued,
            done: task.done,
            firings: task.firings,
            sink_firings: task.sink_firings,
            staged: {
                // Flatten staged containers to the per-message `FILASNAP`
                // wire form so batched snapshots restore anywhere.
                let mut staged = Vec::new();
                for port in &task.outs {
                    port.queue.for_each(&mut |m| staged.push((port.edge, m)));
                }
                staged
            },
        });
        snap.remaining -= 1;
        if snap.remaining == 0 {
            let nodes: Vec<NodeSnapshot> = snap
                .nodes
                .iter_mut()
                .map(|n| n.take().expect("every task contributed"))
                .collect();
            let steps = nodes.iter().map(|n| n.firings).sum();
            let sink_firings = nodes.iter().map(|n| n.sink_firings).sum();
            snap.result = Some(Ok(Box::new(JobSnapshot {
                version: SNAPSHOT_VERSION,
                labeled_topology: self.meta.labeled_topology,
                fingerprint: None,
                filter_signature: None,
                plan_digest: self.meta.plan_digest,
                trigger: self.meta.trigger,
                inputs: self.inputs,
                steps,
                sink_firings,
                per_edge_data: std::mem::take(&mut snap.per_edge_data),
                per_edge_dummies: std::mem::take(&mut snap.per_edge_dummies),
                channels: std::mem::take(&mut snap.channels),
                nodes,
            })));
            self.snap_pending.store(0, Ordering::Release);
            self.snap_cv.notify_all();
        }
    }
}

/// The [`task::SnapSink`] view of one job, handed to [`task::run_task`] so
/// tasks contribute at their alignment point.
struct JobSnapSink<'a> {
    job: &'a JobState,
    node: usize,
    /// Flight recorder + recording worker lane, for barrier-alignment
    /// instants (`None` on untraced pools).
    telemetry: Option<&'a TelemetryHandle>,
    worker: usize,
}

impl task::SnapSink<Batch> for JobSnapSink<'_> {
    fn pending(&self) -> u64 {
        self.job.snap_pending.load(Ordering::Acquire)
    }

    fn barrier(&self) -> u64 {
        self.job.snap_barrier.load(Ordering::Acquire)
    }

    fn contribute(&self, task: &mut Task) {
        if let Some(tele) = self.telemetry {
            tele.instant(
                self.worker,
                EventKind::BarrierAlign,
                self.job.serial,
                self.node as u32,
                self.job.snap_pending.load(Ordering::Acquire),
            );
        }
        if let Some(arm) = &self.job.fault {
            // Chaos: an armed alignment crash panics here, mid-barrier, on
            // the worker thread — inside `execute`'s catch_unwind region.
            arm.trip_alignment(self.job.snap_pending.load(Ordering::Acquire));
        }
        self.job.contribute(self.node, task);
    }
}

fn source_indices(g: &Graph) -> Vec<usize> {
    g.node_ids()
        .filter(|&n| g.in_degree(n) == 0)
        .map(|n| n.index())
        .collect()
}

struct DoneSlot {
    report: Option<ExecutionReport>,
    on_settle: Option<SettleHook>,
}

/// A cheap point-in-time read of one running job's cumulative traffic
/// counters, taken by [`JobHandle::observe`] without stopping the job.
///
/// `per_node_firings[n] / inputs` and `per_edge_data[e] /
/// per_node_firings[producer(e)]` together give the *observed* filter
/// profile — what a drift detector compares against the declared
/// `FilterSpec` the job was certified under.  The read is **not** a
/// consistent cut (each task is sampled independently), which is fine for
/// rate estimation: every counter is monotonic, so successive observations
/// bound the true trajectory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FilterObservation {
    /// Accepted sequence numbers per node, indexed by node id.
    pub per_node_firings: Vec<u64>,
    /// Data messages delivered per channel, indexed by edge id.
    pub per_edge_data: Vec<u64>,
    /// Dummy messages delivered per channel, indexed by edge id.
    pub per_edge_dummies: Vec<u64>,
}

/// A handle to one submitted job; all accessors are callable any number of
/// times and from any thread.
pub struct JobHandle {
    job: Arc<JobState>,
    /// Back-reference for [`JobHandle::cancel`]; weak so an orphaned handle
    /// never keeps a dropped pool's queues alive.
    core: Weak<PoolCore>,
}

impl JobHandle {
    /// Blocks until the job settles and returns its execution report.
    pub fn wait(&self) -> ExecutionReport {
        let mut slot = lock(&self.job.slot);
        loop {
            if let Some(report) = &slot.report {
                return report.clone();
            }
            slot = self
                .job
                .done_cv
                .wait(slot)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// The job's verdict, or `None` while it is still in flight.
    pub fn verdict(&self) -> Option<JobVerdict> {
        match self.job.verdict.load(Ordering::SeqCst) {
            JOB_COMPLETED => Some(JobVerdict::Completed),
            JOB_DEADLOCKED => Some(JobVerdict::Deadlocked),
            JOB_FAILED => Some(JobVerdict::Failed),
            JOB_CANCELLED => Some(JobVerdict::Cancelled),
            _ => None,
        }
    }

    /// True once the report is available ([`JobHandle::wait`] won't block).
    pub fn is_settled(&self) -> bool {
        lock(&self.job.slot).report.is_some()
    }

    /// Captures a consistent barrier snapshot of this job while it — and
    /// every other job on the pool — keeps executing (see the module docs).
    ///
    /// Blocks until every task has contributed its aligned state, then
    /// returns the assembled [`JobSnapshot`].  Returns
    /// [`SnapshotError::Settled`] if the job reaches its verdict before the
    /// barrier completes (the checkpoint never hangs on a finished job) and
    /// [`SnapshotError::InProgress`] if another checkpoint of this job is
    /// still collecting.  Concurrent checkpoints of the *same* job may
    /// observe each other's snapshots; checkpoints of different jobs are
    /// fully independent.
    pub fn checkpoint(&self) -> Result<JobSnapshot, SnapshotError> {
        let job = &self.job;
        let node_count = job.tasks.len();
        let epoch;
        {
            let mut snap = lock(&job.snap);
            if let Some(verdict) = self.verdict() {
                return Err(SnapshotError::Settled(verdict));
            }
            if job.snap_pending.load(Ordering::SeqCst) != 0 {
                return Err(SnapshotError::InProgress);
            }
            snap.epoch += 1;
            epoch = snap.epoch;
            snap.remaining = node_count;
            snap.nodes = vec![None; node_count];
            snap.per_edge_data = vec![0; job.edge_count];
            snap.per_edge_dummies = vec![0; job.edge_count];
            snap.channels = vec![Vec::new(); job.edge_count];
            snap.result = None;
        }
        // Freeze every source just long enough to read the barrier: the
        // maximum source cursor, i.e. the first sequence number no source
        // has produced yet.  Runners hold the task mutex for their whole
        // batch, so holding all source locks pins every cursor at once.
        // The barrier is published before the epoch (release ordering via
        // SeqCst) so any task that sees the epoch sees the barrier too.
        {
            let guards: Vec<_> = job
                .sources
                .iter()
                .map(|&s| lock(&job.tasks[s]))
                .collect();
            let barrier = guards
                .iter()
                .map(|task| task.next_source_seq)
                .max()
                .unwrap_or(0);
            job.snap_barrier.store(barrier, Ordering::SeqCst);
            job.snap_pending.store(epoch, Ordering::SeqCst);
        }
        // The job may have settled between the verdict check above and the
        // publish; `deliver` has already run then and nobody else will
        // fulfil the pending snapshot — do it here.
        if self.verdict().is_some() && job.snap_pending.swap(0, Ordering::SeqCst) != 0 {
            let mut snap = lock(&job.snap);
            if snap.result.is_none() {
                let verdict = self.verdict().expect("verdict checked above");
                snap.result = Some(Err(SnapshotError::Settled(verdict)));
            }
        }
        // Sweep: contribute every task that is already aligned.  Done tasks
        // never run again, so `run_task` cannot catch them; blocked tasks
        // that are already past the barrier would otherwise contribute only
        // on their next wake, which may never come for a deadlocked branch.
        for node in 0..node_count {
            if job.snap_pending.load(Ordering::SeqCst) != epoch {
                break; // collection finished (or pre-empted by a settle)
            }
            let mut task = lock(&job.tasks[node]);
            let task = &mut *task;
            if task.snap_epoch != epoch
                && (task.done
                    || task.eos_queued
                    || (task.is_source
                        && task.staged == 0
                        && task.next_source_seq >= job.snap_barrier.load(Ordering::SeqCst)))
            {
                task.snap_epoch = epoch;
                job.contribute(node, task);
            }
        }
        let mut snap = lock(&job.snap);
        loop {
            if let Some(result) = snap.result.clone() {
                return result.map(|snapshot| *snapshot);
            }
            snap = job
                .snap_cv
                .wait(snap)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Node index of the task whose execution panicked, if the job failed
    /// (`None` while running or for non-panic verdicts).  This is the
    /// provenance a partial restart re-runs the downstream cone of.
    pub fn failed_node(&self) -> Option<u32> {
        match self.job.failed_node.load(Ordering::SeqCst) {
            u32::MAX => None,
            node => Some(node),
        }
    }

    /// The job's injected-fault schedule, if the pool armed one (chaos
    /// harness plumbing; always `None` on pools without a
    /// [`FaultPlan`]).
    pub fn fault_arm(&self) -> Option<Arc<FaultArm>> {
        self.job.fault.clone()
    }

    /// Destructively captures the **wreck** of a settled job: every task's
    /// verbatim final state, with each channel's in-flight contents drained
    /// out of its ring.  Unlike [`JobHandle::checkpoint`] this is *not* a
    /// consistent barrier cut — it is the literal state the job died in,
    /// which is exactly what a partial restart needs for the subgraph that
    /// is **not** being re-run (see
    /// [`JobSnapshot::splice_downstream`]).
    ///
    /// Returns [`SnapshotError::InProgress`] while the job is still in
    /// flight.  Meaningful for jobs that settled on their own (completed /
    /// deadlocked / failed — their task set is quiescent by the time the
    /// report is delivered); a *cancelled* job's wreck may interleave with
    /// tasks still finishing their last batch and should not be trusted.
    /// Draining the rings makes the wreck unrepeatable: salvage once.
    pub fn salvage(&self) -> Result<JobSnapshot, SnapshotError> {
        let job = &self.job;
        if !self.is_settled() {
            return Err(SnapshotError::InProgress);
        }
        let mut per_edge_data = vec![0; job.edge_count];
        let mut per_edge_dummies = vec![0; job.edge_count];
        let mut channels = vec![Vec::new(); job.edge_count];
        let nodes: Vec<NodeSnapshot> = job
            .tasks
            .iter()
            .map(|task| {
                // Tolerate poisoning: the panicked task's mutex is poisoned
                // but its state (and its rings) are still meaningful.
                let mut task = lock(task);
                task::capture_wreck(
                    &mut task,
                    &mut per_edge_data,
                    &mut per_edge_dummies,
                    &mut channels,
                )
            })
            .collect();
        let steps = nodes.iter().map(|n| n.firings).sum();
        let sink_firings = nodes.iter().map(|n| n.sink_firings).sum();
        Ok(JobSnapshot {
            version: SNAPSHOT_VERSION,
            labeled_topology: job.meta.labeled_topology,
            fingerprint: None,
            filter_signature: None,
            plan_digest: job.meta.plan_digest,
            trigger: job.meta.trigger,
            inputs: job.inputs,
            steps,
            sink_firings,
            per_edge_data,
            per_edge_dummies,
            channels,
            nodes,
        })
    }

    /// Samples the job's cumulative traffic counters while it keeps
    /// running: one brief task-mutex lock per node, no barrier, no effect
    /// on scheduling.  Callable before and after the job settles (after, it
    /// returns the final counts).  This is the drift detector's polling
    /// primitive; for a consistent cut use [`JobHandle::checkpoint`].
    pub fn observe(&self) -> FilterObservation {
        let job = &self.job;
        let mut obs = FilterObservation {
            per_node_firings: vec![0; job.tasks.len()],
            per_edge_data: vec![0; job.edge_count],
            per_edge_dummies: vec![0; job.edge_count],
        };
        for (idx, task) in job.tasks.iter().enumerate() {
            let task = lock(task);
            obs.per_node_firings[idx] = task.firings;
            for port in &task.outs {
                obs.per_edge_data[port.edge as usize] = port.data;
                obs.per_edge_dummies[port.edge as usize] = port.dummies;
            }
        }
        obs
    }

    /// Cancels the job: its verdict becomes [`JobVerdict::Cancelled`], its
    /// report (with counters as of the cancellation) is delivered to
    /// waiters, and any of its tasks still sitting in run queues are
    /// dropped on pop — the pool itself never stops.  Returns `true` if
    /// this call settled the job, `false` if it had already settled (the
    /// existing verdict stands).  This is the response ladder's retirement
    /// step: the old incarnation of a hot-swapped job is cancelled after
    /// its snapshot is taken, and a drift-cancelled job is cancelled
    /// outright.
    pub fn cancel(&self) -> bool {
        if self
            .job
            .verdict
            .compare_exchange(
                JOB_RUNNING,
                JOB_CANCELLED,
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_err()
        {
            return false;
        }
        if let Some(core) = self.core.upgrade() {
            core.deliver(&self.job);
        }
        // If the pool is already gone, its `Drop` has drained `live` and
        // delivered every job — the CAS above could not have succeeded.
        true
    }
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("nodes", &self.job.tasks.len())
            .field("verdict", &self.verdict())
            .finish()
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

struct PoolCore {
    queues: Vec<Mutex<VecDeque<TaskRef>>>,
    /// Entries across all run queues (incremented before the push so it
    /// only ever over-estimates; parking decisions must never see it low).
    queued: AtomicUsize,
    parked: AtomicUsize,
    coordinator: Mutex<()>,
    cv: Condvar,
    shutdown: AtomicBool,
    /// Jobs submitted and not yet delivered; drained on shutdown so every
    /// waiter is released with a `Cancelled` report.
    live: Mutex<Vec<Arc<JobState>>>,
    batch: u32,
    /// Container batching mode stamped on every submitted job's rings
    /// (default [`Batching::default`]; `Scalar` = one message per
    /// container).
    batching: Batching,
    /// Rotates the seeding origin so small jobs spread over all workers.
    next_seed: AtomicUsize,
    /// The pool-wide fault-injection schedule (`None` in production).
    faults: Option<Arc<FaultPlan>>,
    /// Monotonic job serial, the key [`FaultPlan::arm`] maps to a fault
    /// schedule.
    next_serial: AtomicU64,
    /// The flight recorder (`None` in production — every hook below is a
    /// never-taken branch then, leaving the hot path unchanged).
    telemetry: Option<TelemetryHandle>,
}

/// The long-lived multi-job work-stealing pool (see the module docs).
pub struct SharedPool {
    core: Arc<PoolCore>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for SharedPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedPool")
            .field("workers", &self.workers.len())
            .field("batch", &self.core.batch)
            .finish()
    }
}

impl SharedPool {
    /// Spawns a pool with `workers` worker threads (`0` = one per available
    /// hardware thread) and the default firing batch of 64.
    pub fn new(workers: usize) -> Self {
        Self::with_config(workers, 64)
    }

    /// Spawns a pool with an explicit worker count (`0` = default) and
    /// per-wake firing batch (clamped to ≥ 1).
    pub fn with_config(workers: usize, batch: u32) -> Self {
        Self::with_faults(workers, batch, None)
    }

    /// [`SharedPool::with_config`] plus a deterministic fault-injection
    /// schedule (see [`crate::faults`]).  `None` is the production
    /// configuration: jobs carry no arm and the hot path pays one
    /// predictable branch per task execution.
    pub fn with_faults(workers: usize, batch: u32, faults: Option<Arc<FaultPlan>>) -> Self {
        Self::with_telemetry(workers, batch, faults, false)
    }

    /// [`SharedPool::with_faults`] plus the flight recorder: when
    /// `telemetry` is true the pool creates one
    /// [`crate::telemetry::TelemetryHandle`] lane per worker and records
    /// firing spans, steals, parks, blocked stalls, barrier alignments,
    /// faults and job spans into it (retrieve it with
    /// [`SharedPool::telemetry_handle`]).  When false this is exactly
    /// [`SharedPool::with_faults`]: no recorder exists and every hook is a
    /// never-taken `None` branch.
    pub fn with_telemetry(
        workers: usize,
        batch: u32,
        faults: Option<Arc<FaultPlan>>,
        telemetry: bool,
    ) -> Self {
        Self::with_options(workers, batch, faults, telemetry, Batching::default())
    }

    /// The full configuration form: [`SharedPool::with_telemetry`] plus the
    /// container [`Batching`] mode applied to every job submitted to this
    /// pool.  Batching only changes how messages are packed into ring slots
    /// — verdicts, per-edge counts and snapshot wire state are identical
    /// across modes (the Kahn-network confluence argument; pinned by the
    /// engine-equivalence property tests).
    pub fn with_options(
        workers: usize,
        batch: u32,
        faults: Option<Arc<FaultPlan>>,
        telemetry: bool,
        batching: Batching,
    ) -> Self {
        let workers = NonZeroUsize::new(workers)
            .map(NonZeroUsize::get)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1)
            });
        let telemetry = telemetry.then(|| TelemetryHandle::new(workers));
        let core = Arc::new(PoolCore {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            queued: AtomicUsize::new(0),
            parked: AtomicUsize::new(0),
            coordinator: Mutex::new(()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            live: Mutex::new(Vec::new()),
            batch: batch.max(1),
            batching,
            next_seed: AtomicUsize::new(0),
            faults,
            next_serial: AtomicU64::new(0),
            telemetry,
        });
        let handles = (0..workers)
            .map(|w| {
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("fila-pool-{w}"))
                    .spawn(move || core.worker_loop(w))
                    .expect("spawn pool worker")
            })
            .collect();
        SharedPool {
            core,
            workers: handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The pool's flight recorder, if it was created with telemetry on
    /// ([`SharedPool::with_telemetry`]); `None` on production pools.
    pub fn telemetry_handle(&self) -> Option<TelemetryHandle> {
        self.core.telemetry.clone()
    }

    /// Submits a job with deadlock avoidance disabled.
    pub fn submit(&self, topology: &Topology, inputs: u64) -> JobHandle {
        self.submit_with(topology, AvoidanceMode::Disabled, inputs)
    }

    /// Submits a job under the given avoidance mode.
    pub fn submit_with(
        &self,
        topology: &Topology,
        mode: AvoidanceMode,
        inputs: u64,
    ) -> JobHandle {
        self.submit_full(topology, mode, PropagationTrigger::default(), inputs, None)
    }

    /// The full submission form: avoidance mode, Propagation trigger, and
    /// an optional settle hook invoked exactly once (on a worker thread)
    /// when the job reaches its verdict.
    pub fn submit_full(
        &self,
        topology: &Topology,
        mode: AvoidanceMode,
        trigger: PropagationTrigger,
        inputs: u64,
        on_settle: Option<SettleHook>,
    ) -> JobHandle {
        let started = Instant::now();
        let g = topology.graph();
        let node_count = g.node_count();
        if node_count == 0 {
            // Degenerate job: settle synchronously.
            let report = ExecutionReport {
                completed: true,
                inputs_offered: inputs,
                wall: started.elapsed(),
                ..Default::default()
            };
            if let Some(hook) = on_settle {
                hook(&report, JobVerdict::Completed);
            }
            let job = Arc::new(JobState {
                tasks: Vec::new(),
                states: Vec::new(),
                active: AtomicUsize::new(0),
                unfinished: AtomicUsize::new(0),
                verdict: AtomicU8::new(JOB_COMPLETED),
                delivered: AtomicBool::new(true),
                inputs,
                edge_count: 0,
                started,
                slot: Mutex::new(DoneSlot {
                    report: Some(report),
                    on_settle: None,
                }),
                done_cv: Condvar::new(),
                sources: Vec::new(),
                meta: SnapMeta::new(g, &mode, trigger),
                resumed_from: None,
                snap_pending: AtomicU64::new(0),
                snap_barrier: AtomicU64::new(0),
                snap: Mutex::new(SnapState::default()),
                snap_cv: Condvar::new(),
                fault: None,
                serial: u64::MAX,
                t_submit_ns: 0,
                failed_node: AtomicU32::new(u32::MAX),
            });
            return JobHandle { job, core: Arc::downgrade(&self.core) };
        }

        let tasks: Vec<Mutex<Task>> =
            task::build_tasks(topology, &mode, trigger, self.core.batching)
                .into_iter()
                .map(Mutex::new)
                .collect();
        let (serial, fault) = self.core.arm_next();
        let job = Arc::new(JobState {
            states: (0..node_count).map(|_| AtomicU8::new(QUEUED)).collect(),
            tasks,
            active: AtomicUsize::new(node_count),
            unfinished: AtomicUsize::new(node_count),
            verdict: AtomicU8::new(JOB_RUNNING),
            delivered: AtomicBool::new(false),
            inputs,
            edge_count: g.edge_count(),
            started,
            slot: Mutex::new(DoneSlot {
                report: None,
                on_settle,
            }),
            done_cv: Condvar::new(),
            sources: source_indices(g),
            meta: SnapMeta::new(g, &mode, trigger),
            resumed_from: None,
            snap_pending: AtomicU64::new(0),
            snap_barrier: AtomicU64::new(0),
            snap: Mutex::new(SnapState::default()),
            snap_cv: Condvar::new(),
            fault,
            serial,
            t_submit_ns: self.core.telemetry.as_ref().map_or(0, TelemetryHandle::now_ns),
            failed_node: AtomicU32::new(u32::MAX),
        });
        lock(&self.core.live).push(Arc::clone(&job));
        // Seed every task once, round-robin from a rotating origin; from
        // then on the job is scheduled purely by channel events.
        let base = self.core.next_seed.fetch_add(1, Ordering::Relaxed);
        for node in 0..node_count {
            self.core.push(
                (base + node) % self.core.queues.len(),
                TaskRef {
                    job: Arc::clone(&job),
                    node: node as u32,
                },
            );
        }
        JobHandle { job, core: Arc::downgrade(&self.core) }
    }

    /// Restores a [`JobSnapshot`] as a new job on this pool: the job picks
    /// up exactly where the snapshot was captured, and its report counts
    /// are **cumulative** — they include the pre-snapshot progress, so a
    /// killed-and-restored job's final report equals an uninterrupted
    /// run's.
    ///
    /// The snapshot is first re-validated against the topology, avoidance
    /// mode and trigger it is being resumed under; any drift (different
    /// labeled topology, different plan intervals, different trigger, or a
    /// foreign/corrupted blob) is a [`RestoreError`] — a snapshot is never
    /// silently re-planned onto a different certification.
    pub fn resume_full(
        &self,
        topology: &Topology,
        mode: AvoidanceMode,
        trigger: PropagationTrigger,
        snapshot: &JobSnapshot,
        on_settle: Option<SettleHook>,
    ) -> Result<JobHandle, RestoreError> {
        snapshot.validate_for(topology, &mode, trigger)?;
        let started = Instant::now();
        let g = topology.graph();
        let node_count = g.node_count();
        let mut tasks = task::build_tasks(topology, &mode, trigger, self.core.batching);
        for (idx, task) in tasks.iter_mut().enumerate() {
            let node = &snapshot.nodes[idx];
            task.next_source_seq = node.next_source_seq;
            task.eos_queued = node.eos_queued;
            task.done = node.done;
            task.firings = node.firings;
            task.sink_firings = node.sink_firings;
            task.wrapper.restore_gaps(&node.gaps);
            for port in &mut task.outs {
                port.data = snapshot.per_edge_data[port.edge as usize];
                port.dummies = snapshot.per_edge_dummies[port.edge as usize];
                for &message in &snapshot.channels[port.edge as usize] {
                    // `validate_for` bounds channel lengths by ring capacity,
                    // but a hostile/corrupted blob must degrade to a typed
                    // error, never a panic on the restore path.  One unit
                    // container per wire message always fits: the ring has
                    // one slot per modelled message of capacity.
                    if port.tx.push(Batch::from_message(message)).is_err() {
                        return Err(RestoreError::Corrupted(
                            "restored channel overflows ring capacity".into(),
                        ));
                    }
                }
            }
            for &(edge, message) in &node.staged {
                let port = match task.outs.iter_mut().find(|p| p.edge == edge) {
                    Some(port) => port,
                    None => {
                        return Err(RestoreError::Corrupted(
                            "staged message on an edge the node does not produce".into(),
                        ))
                    }
                };
                // Re-pack the wire-form staged list (per-port, in order)
                // into containers.  No limit here: a batched capture may
                // have staged more messages than this engine's per-push
                // limit, and delivery re-splits by ring space anyway.
                let use_second = port.queue.second.is_some();
                let slot = if use_second {
                    &mut port.queue.second
                } else {
                    &mut port.queue.first
                };
                let rejected = match slot {
                    Some(batch) => batch.try_push(usize::MAX, message).is_err(),
                    None => {
                        *slot = Some(Batch::from_message(message));
                        false
                    }
                };
                if rejected {
                    // Out of sequence order within the open container: the
                    // capture engines never produce this mid-port, so at
                    // most one fresh container absorbs it (data-then-dummy
                    // boundaries); anything further is a corrupted blob.
                    if use_second {
                        return Err(RestoreError::Corrupted(
                            "staged messages out of sequence order".into(),
                        ));
                    }
                    port.queue.second = Some(Batch::from_message(message));
                }
                task.staged += 1;
            }
        }
        let unfinished = tasks.iter().filter(|task| !task.done).count();
        let tasks: Vec<Mutex<Task>> = tasks.into_iter().map(Mutex::new).collect();
        if unfinished == 0 {
            // The snapshot caught the job fully drained (every node done):
            // settle synchronously, exactly like the empty-topology path.
            let mut report =
                task::assemble_report(&tasks, g.edge_count(), snapshot.inputs, false);
            report.completed = true;
            report.resumed_from = Some(snapshot.steps);
            report.wall = started.elapsed();
            if let Some(hook) = on_settle {
                hook(&report, JobVerdict::Completed);
            }
            let job = Arc::new(JobState {
                tasks,
                states: (0..node_count).map(|_| AtomicU8::new(IDLE)).collect(),
                active: AtomicUsize::new(0),
                unfinished: AtomicUsize::new(0),
                verdict: AtomicU8::new(JOB_COMPLETED),
                delivered: AtomicBool::new(true),
                inputs: snapshot.inputs,
                edge_count: g.edge_count(),
                started,
                slot: Mutex::new(DoneSlot {
                    report: Some(report),
                    on_settle: None,
                }),
                done_cv: Condvar::new(),
                sources: source_indices(g),
                meta: SnapMeta::new(g, &mode, trigger),
                resumed_from: Some(snapshot.steps),
                snap_pending: AtomicU64::new(0),
                snap_barrier: AtomicU64::new(0),
                snap: Mutex::new(SnapState::default()),
                snap_cv: Condvar::new(),
                fault: None,
                serial: u64::MAX,
                t_submit_ns: 0,
                failed_node: AtomicU32::new(u32::MAX),
            });
            return Ok(JobHandle { job, core: Arc::downgrade(&self.core) });
        }
        let (serial, fault) = self.core.arm_next();
        let job = Arc::new(JobState {
            states: (0..node_count).map(|_| AtomicU8::new(QUEUED)).collect(),
            tasks,
            active: AtomicUsize::new(node_count),
            unfinished: AtomicUsize::new(unfinished),
            verdict: AtomicU8::new(JOB_RUNNING),
            delivered: AtomicBool::new(false),
            inputs: snapshot.inputs,
            edge_count: g.edge_count(),
            started,
            slot: Mutex::new(DoneSlot {
                report: None,
                on_settle,
            }),
            done_cv: Condvar::new(),
            sources: source_indices(g),
            meta: SnapMeta::new(g, &mode, trigger),
            resumed_from: Some(snapshot.steps),
            snap_pending: AtomicU64::new(0),
            snap_barrier: AtomicU64::new(0),
            snap: Mutex::new(SnapState::default()),
            snap_cv: Condvar::new(),
            fault,
            serial,
            t_submit_ns: self.core.telemetry.as_ref().map_or(0, TelemetryHandle::now_ns),
            failed_node: AtomicU32::new(u32::MAX),
        });
        lock(&self.core.live).push(Arc::clone(&job));
        // Seed every task (done tasks retire themselves on first run).
        let base = self.core.next_seed.fetch_add(1, Ordering::Relaxed);
        for node in 0..node_count {
            self.core.push(
                (base + node) % self.core.queues.len(),
                TaskRef {
                    job: Arc::clone(&job),
                    node: node as u32,
                },
            );
        }
        Ok(JobHandle { job, core: Arc::downgrade(&self.core) })
    }

    /// Restores a snapshot under a **different** avoidance plan than the
    /// one it was captured under — the hot-swap path of the adaptive
    /// runtime's response ladder.
    ///
    /// [`SharedPool::resume_full`] deliberately rejects any plan drift
    /// ([`RestoreError::PlanMismatch`]); this is the one sanctioned
    /// loophole, and it is gated on an explicit [`SwapToken`] naming both
    /// the captured plan and the restore-side plan by digest.  The
    /// snapshot is rebased first ([`JobSnapshot::rebase`]): dummy-gap
    /// counters are clamped into the new plan's intervals (sound because a
    /// wrapper with gap ≥ t′−1 behaves identically to one at t′−1 — see
    /// the rebase docs) and the snapshot is re-stamped, after which the
    /// full [`JobSnapshot::validate_for`] gauntlet — including the
    /// gap-vs-interval check — runs as usual.
    pub fn resume_swapped(
        &self,
        topology: &Topology,
        mode: AvoidanceMode,
        trigger: PropagationTrigger,
        snapshot: &JobSnapshot,
        token: SwapToken,
        on_settle: Option<SettleHook>,
    ) -> Result<JobHandle, RestoreError> {
        let mut rebased = snapshot.clone();
        rebased.rebase(topology, &mode, &token)?;
        self.resume_full(topology, mode, trigger, &rebased, on_settle)
    }
}

impl Drop for SharedPool {
    /// Stops the workers and settles every still-undelivered job with
    /// [`JobVerdict::Cancelled`], so no [`JobHandle::wait`] hangs.  Workers
    /// finish at most their current task batch.
    fn drop(&mut self) {
        self.core.shutdown.store(true, Ordering::SeqCst);
        {
            let _guard = self.core.lock_coordinator();
            self.core.cv.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        let live: Vec<Arc<JobState>> = lock(&self.core.live).drain(..).collect();
        for job in live {
            let _ = job.verdict.compare_exchange(
                JOB_RUNNING,
                JOB_CANCELLED,
                Ordering::SeqCst,
                Ordering::SeqCst,
            );
            self.core.deliver(&job);
        }
    }
}

impl PoolCore {
    /// Draws the next job serial and maps it through the fault plan (if
    /// any) to the job's arm (`None` on production pools).  The serial is
    /// also the job's identity in the flight-recorder stream; it is drawn
    /// here and nowhere else, so the fault plan's serial→arm mapping stays
    /// bit-identical with or without telemetry.
    fn arm_next(&self) -> (u64, Option<Arc<FaultArm>>) {
        let serial = self.next_serial.fetch_add(1, Ordering::SeqCst);
        let arm = self.faults.as_ref().and_then(|plan| plan.arm(serial));
        (serial, arm)
    }

    fn worker_loop(&self, worker: usize) {
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            match self.pop_any(worker) {
                Some((tref, src)) => {
                    if src != worker {
                        if let Some(tele) = &self.telemetry {
                            tele.instant(
                                worker,
                                EventKind::Steal,
                                tref.job.serial,
                                tref.node,
                                src as u64,
                            );
                        }
                    }
                    self.execute(worker, tref);
                }
                None => {
                    let t_park = self.telemetry.as_ref().map(TelemetryHandle::now_ns);
                    let alive = self.park();
                    if let (Some(tele), Some(t0)) = (&self.telemetry, t_park) {
                        tele.span(worker, EventKind::Park, u64::MAX, u32::MAX, t0, 0);
                    }
                    if !alive {
                        return;
                    }
                }
            }
        }
    }

    /// Pops the next task, own queue first; returns the task and the queue
    /// index it came from (`!= worker` means a steal).
    fn pop_any(&self, worker: usize) -> Option<(TaskRef, usize)> {
        for i in 0..self.queues.len() {
            let q = (worker + i) % self.queues.len();
            let popped = lock(&self.queues[q]).pop_front();
            if let Some(tref) = popped {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                return Some((tref, q));
            }
        }
        None
    }

    fn push(&self, worker: usize, tref: TaskRef) {
        self.queued.fetch_add(1, Ordering::SeqCst);
        lock(&self.queues[worker]).push_back(tref);
        if self.parked.load(Ordering::SeqCst) > 0 {
            let _guard = self.lock_coordinator();
            self.cv.notify_one();
        }
    }

    fn lock_coordinator(&self) -> std::sync::MutexGuard<'_, ()> {
        self.coordinator
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Parks until new work or shutdown; returns false on shutdown.  Same
    /// Dekker re-check against concurrent `push` as the single-run pool —
    /// but no verdict logic: verdicts are per-job, decided by active
    /// counts, never by pool idleness.
    fn park(&self) -> bool {
        let mut guard = self.lock_coordinator();
        if self.queued.load(Ordering::SeqCst) > 0 {
            return true;
        }
        if self.shutdown.load(Ordering::SeqCst) {
            return false;
        }
        self.parked.fetch_add(1, Ordering::SeqCst);
        if self.queued.load(Ordering::SeqCst) > 0 {
            self.parked.fetch_sub(1, Ordering::SeqCst);
            return true;
        }
        loop {
            guard = self
                .cv
                .wait(guard)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if self.shutdown.load(Ordering::SeqCst)
                || self.queued.load(Ordering::SeqCst) > 0
            {
                break;
            }
        }
        self.parked.fetch_sub(1, Ordering::SeqCst);
        !self.shutdown.load(Ordering::SeqCst)
    }

    /// The channel-event wakeup for `job`'s node: identical CAS protocol to
    /// the single-run pool, except that an `IDLE → QUEUED` transition also
    /// raises the job's active count (the wake always happens *before* the
    /// waking task itself deactivates, so a job's active count can never
    /// touch zero while a wakeup is still in flight).
    fn wake(&self, worker: usize, job: &Arc<JobState>, node: u32) {
        let state = &job.states[node as usize];
        let mut current = state.load(Ordering::Acquire);
        loop {
            let (target, enqueue) = match current {
                IDLE => (QUEUED, true),
                RUNNING => (NOTIFIED, false),
                _ => return,
            };
            match state.compare_exchange(current, target, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => {
                    if enqueue {
                        if let Some(arm) = &job.fault {
                            // Chaos: a bounded budget of delayed wakeups.
                            arm.delay_wake();
                        }
                        job.active.fetch_add(1, Ordering::SeqCst);
                        self.push(
                            worker,
                            TaskRef {
                                job: Arc::clone(job),
                                node,
                            },
                        );
                    }
                    return;
                }
                Err(observed) => current = observed,
            }
        }
    }

    fn execute(&self, worker: usize, tref: TaskRef) {
        let job = &tref.job;
        let node = tref.node as usize;
        if job.verdict.load(Ordering::SeqCst) != JOB_RUNNING {
            // The job settled (failed or was cancelled) while this task sat
            // in a queue: drop it and retire its activity.
            job.states[node].store(IDLE, Ordering::Release);
            self.deactivate(job);
            return;
        }
        job.states[node].store(RUNNING, Ordering::Release);
        enum Exec {
            Normal(Outcome, bool),
            Panicked,
        }
        let exec = {
            let mut task = lock(&job.tasks[node]);
            let was_done = task.done;
            let sink = JobSnapSink {
                job: job.as_ref(),
                node,
                telemetry: self.telemetry.as_ref(),
                worker,
            };
            // Ring-full probe doubles as the slice timestamp: when this
            // worker's lane has no room, every event below would be dropped
            // anyway, so the whole slice skips instrumentation for the
            // price of two atomic loads (see `TelemetryHandle::slice_start`).
            let slice_start = self
                .telemetry
                .as_ref()
                .and_then(|tele| tele.slice_start(worker))
                .map(|t0| (t0, task.firings, task.delivered()));
            let result = catch_unwind(AssertUnwindSafe(|| {
                if let Some(arm) = &job.fault {
                    // Chaos: an armed firing crash panics here, exactly
                    // like a buggy node behaviour would.
                    arm.tick_execute();
                }
                task::run_task(
                    &mut task,
                    job.inputs,
                    self.batch,
                    &mut |n| self.wake(worker, job, n),
                    Some(&sink),
                )
            }));
            match result {
                Ok(outcome) => {
                    if let (Some(tele), Some((t0, fired_before, delivered_before))) =
                        (&self.telemetry, slice_start)
                    {
                        // The span arg is the *messages delivered* in the
                        // slice (data + dummies shipped into rings), so the
                        // firing spans of a trace sum to the job's total
                        // traffic regardless of container batching.
                        let fired = task.firings - fired_before;
                        let delivered = task.delivered() - delivered_before;
                        if fired > 0 || delivered > 0 {
                            tele.span(
                                worker,
                                EventKind::Firing,
                                job.serial,
                                tref.node,
                                t0,
                                delivered,
                            );
                        }
                        if matches!(outcome, Outcome::Blocked) {
                            if let Some(reason) = task.blocked_on() {
                                let (kind, edge) = match reason {
                                    BlockedReason::WaitingForSpace(e) => {
                                        (EventKind::BlockedSpace, e.index() as u64)
                                    }
                                    BlockedReason::WaitingForInput(e) => {
                                        (EventKind::BlockedInput, e.index() as u64)
                                    }
                                };
                                tele.instant(worker, kind, job.serial, tref.node, edge);
                            }
                        }
                    }
                    Exec::Normal(outcome, task.done && !was_done)
                }
                Err(_) => {
                    if let Some(tele) = &self.telemetry {
                        tele.instant(worker, EventKind::Fault, job.serial, tref.node, 0);
                    }
                    Exec::Panicked
                }
            }
        };
        match exec {
            Exec::Panicked => {
                // Record which node blew up (first panic wins) — the
                // provenance a partial restart re-runs downstream of.
                let _ = job.failed_node.compare_exchange(
                    u32::MAX,
                    tref.node,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
                // The behaviour blew up: fail this job only.  Peer tasks of
                // the job wind down as they block (or get dropped from the
                // queues by the verdict check above); every other job on the
                // pool is untouched.
                let _ = job.verdict.compare_exchange(
                    JOB_RUNNING,
                    JOB_FAILED,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
                job.states[node].store(IDLE, Ordering::Release);
                self.deactivate(job);
            }
            Exec::Normal(outcome, newly_done) => {
                if newly_done {
                    job.unfinished.fetch_sub(1, Ordering::SeqCst);
                }
                match outcome {
                    Outcome::Done => {
                        // Stale flag wakeups may still re-queue this task;
                        // it will no-op.
                        job.states[node].store(IDLE, Ordering::Release);
                        self.deactivate(job);
                    }
                    Outcome::Yielded => {
                        job.states[node].store(QUEUED, Ordering::Release);
                        self.push(worker, tref);
                    }
                    Outcome::Blocked => {
                        if job.states[node]
                            .compare_exchange(
                                RUNNING,
                                IDLE,
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            )
                            .is_err()
                        {
                            // A wake arrived while we ran: re-queue (the
                            // task stays active).
                            job.states[node].store(QUEUED, Ordering::Release);
                            self.push(worker, tref);
                        } else {
                            self.deactivate(job);
                        }
                    }
                }
            }
        }
    }

    /// Retires one unit of job activity; the task that drops the count to
    /// zero decides the verdict (the job is quiescent forever — see the
    /// module docs) and delivers the report.
    fn deactivate(&self, job: &Arc<JobState>) {
        if job.active.fetch_sub(1, Ordering::SeqCst) != 1 {
            return;
        }
        let verdict = if job.unfinished.load(Ordering::SeqCst) == 0 {
            JOB_COMPLETED
        } else {
            JOB_DEADLOCKED
        };
        // A Failed/Cancelled verdict set earlier wins; Completed/Deadlocked
        // only fills in a still-running slot.
        let _ = job.verdict.compare_exchange(
            JOB_RUNNING,
            verdict,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
        self.deliver(job);
    }

    /// One-shot report assembly + waiter/hook notification.
    fn deliver(&self, job: &Arc<JobState>) {
        if job.delivered.swap(true, Ordering::SeqCst) {
            return;
        }
        let verdict = match job.verdict.load(Ordering::SeqCst) {
            JOB_COMPLETED => JobVerdict::Completed,
            JOB_DEADLOCKED => JobVerdict::Deadlocked,
            JOB_FAILED => JobVerdict::Failed,
            _ => JobVerdict::Cancelled,
        };
        // A checkpoint still pending at settle time can never complete (no
        // task will ever contribute again); fulfil it with the verdict so
        // the checkpointer returns instead of hanging.
        if job.snap_pending.swap(0, Ordering::SeqCst) != 0 {
            let mut snap = lock(&job.snap);
            if snap.result.is_none() {
                snap.result = Some(Err(SnapshotError::Settled(verdict)));
            }
            job.snap_cv.notify_all();
        }
        // The job's whole-lifetime span; `deliver` may run on any thread
        // (worker, canceller, pool drop), so it goes to the control lane.
        if let Some(tele) = &self.telemetry {
            if job.serial != u64::MAX {
                let code = match verdict {
                    JobVerdict::Completed => 0,
                    JobVerdict::Deadlocked => 1,
                    JobVerdict::Failed => 2,
                    JobVerdict::Cancelled => 3,
                };
                tele.span(
                    CONTROL_LANE,
                    EventKind::Job,
                    job.serial,
                    u32::MAX,
                    job.t_submit_ns,
                    code,
                );
            }
        }
        let mut report = task::assemble_report(
            &job.tasks,
            job.edge_count,
            job.inputs,
            verdict == JobVerdict::Deadlocked,
        );
        report.completed = verdict == JobVerdict::Completed;
        report.wall = job.started.elapsed();
        report.resumed_from = job.resumed_from;
        lock(&self.live).retain(|j| !Arc::ptr_eq(j, job));
        // The hook runs BEFORE the report is published, so a returning
        // `JobHandle::wait` implies the hook's effects (e.g. the service's
        // in-flight slot release) are visible — but a panicking hook is
        // caught and discarded: it must neither hang waiters nor unwind
        // through (and kill) a worker.
        let hook = lock(&job.slot).on_settle.take();
        if let Some(hook) = hook {
            let _ = catch_unwind(AssertUnwindSafe(|| hook(&report, verdict)));
        }
        let mut slot = lock(&job.slot);
        slot.report = Some(report);
        job.done_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filters::Predicate;
    use crate::Simulator;
    use fila_avoidance::{Algorithm, Planner};
    use fila_graph::{Graph, GraphBuilder};
    use std::sync::atomic::AtomicU32;

    fn fig2(buffer: u64) -> Graph {
        let mut b = GraphBuilder::new();
        b.edge_with_capacity("A", "B", buffer).unwrap();
        b.edge_with_capacity("B", "C", buffer).unwrap();
        b.edge_with_capacity("A", "C", buffer).unwrap();
        b.build().unwrap()
    }

    fn fig2_filtered(buffer: u64) -> crate::Topology {
        let g = fig2(buffer);
        let a = g.node_by_name("A").unwrap();
        crate::Topology::from_graph(&g).with(a, || Predicate::new(2, |_seq, out| out == 0))
    }

    fn pipeline(n: usize) -> Graph {
        let names: Vec<String> = (0..n).map(|i| format!("n{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let mut b = GraphBuilder::new().default_capacity(4);
        b.chain(&refs).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn concurrent_jobs_complete_independently() {
        let pool = SharedPool::with_config(2, 16);
        let g1 = pipeline(8);
        let g2 = pipeline(3);
        let t1 = crate::Topology::from_graph(&g1);
        let t2 = crate::Topology::from_graph(&g2);
        let h1 = pool.submit(&t1, 100);
        let h2 = pool.submit(&t2, 50);
        let r1 = h1.wait();
        let r2 = h2.wait();
        assert!(r1.completed && r2.completed);
        assert_eq!(r1.data_messages, 100 * 7);
        assert_eq!(r2.data_messages, 50 * 2);
        assert_eq!(h1.verdict(), Some(JobVerdict::Completed));
        assert!(h1.is_settled());
    }

    #[test]
    fn per_job_deadlock_verdict_is_exact_while_pool_stays_busy() {
        let pool = SharedPool::new(2);
        // Job 1 deadlocks (unprotected Fig. 2 with a filtering fork);
        // job 2 is a healthy pipeline that keeps the pool busy.
        let wedged = fig2_filtered(2);
        let g2 = pipeline(64);
        let healthy = crate::Topology::from_graph(&g2);
        let h_wedged = pool.submit(&wedged, 500);
        let h_healthy = pool.submit(&healthy, 2000);
        let r = h_wedged.wait();
        assert!(r.deadlocked, "{r:?}");
        assert!(!r.blocked.is_empty());
        assert_eq!(h_wedged.verdict(), Some(JobVerdict::Deadlocked));
        let r2 = h_healthy.wait();
        assert!(r2.completed, "{r2:?}");
        // The pool is still healthy for new submissions.
        let h3 = pool.submit(&healthy, 10);
        assert!(h3.wait().completed);
    }

    #[test]
    fn planned_job_completes_with_dummies() {
        let pool = SharedPool::new(2);
        let g = fig2(2);
        let plan = Planner::new(&g)
            .algorithm(Algorithm::NonPropagation)
            .plan()
            .unwrap();
        let topo = fig2_filtered(2);
        let h = pool.submit_with(&topo, AvoidanceMode::plan(plan), 500);
        let r = h.wait();
        assert!(r.completed, "{r:?}");
        assert!(r.dummy_messages > 0);
    }

    #[test]
    fn shared_pool_matches_simulator_counts() {
        let pool = SharedPool::new(3);
        let g = fig2(4);
        let a = g.node_by_name("A").unwrap();
        let plan = Arc::new(
            Planner::new(&g)
                .algorithm(Algorithm::Propagation)
                .plan()
                .unwrap(),
        );
        let topo = crate::Topology::from_graph(&g)
            .with(a, || Predicate::new(2, |seq, out| out == 0 || seq % 4 == 0));
        let sim = Simulator::new(&topo)
            .with_shared_plan(Arc::clone(&plan))
            .run(400);
        let h = pool.submit_with(&topo, AvoidanceMode::Plan(plan), 400);
        let pooled = h.wait();
        assert!(sim.completed && pooled.completed);
        assert_eq!(sim.per_edge_data, pooled.per_edge_data);
        assert_eq!(sim.per_edge_dummies, pooled.per_edge_dummies);
        assert_eq!(sim.sink_firings, pooled.sink_firings);
    }

    #[test]
    fn panicking_behaviour_fails_only_its_job() {
        let pool = SharedPool::new(2);
        let mut b = GraphBuilder::new();
        b.chain(&["s", "m", "t"]).unwrap();
        let g = b.build().unwrap();
        let m = g.node_by_name("m").unwrap();
        let bad = crate::Topology::from_graph(&g).with(m, || {
            Predicate::new(1, |seq, _out| {
                assert!(seq < 5, "behaviour blew up at seq {seq}");
                true
            })
        });
        let g2 = pipeline(16);
        let good = crate::Topology::from_graph(&g2);
        let h_bad = pool.submit(&bad, 100);
        let h_good = pool.submit(&good, 500);
        let r_bad = h_bad.wait();
        assert_eq!(h_bad.verdict(), Some(JobVerdict::Failed));
        assert!(!r_bad.completed && !r_bad.deadlocked);
        let r_good = h_good.wait();
        assert!(r_good.completed, "{r_good:?}");
        // Workers survived the panic: the pool accepts and finishes new work.
        let h3 = pool.submit(&good, 10);
        assert!(h3.wait().completed);
    }

    #[test]
    fn many_small_jobs_share_one_pool() {
        let pool = SharedPool::with_config(4, 8);
        let graphs: Vec<Graph> = (2..34).map(pipeline).collect();
        let topos: Vec<crate::Topology> = graphs.iter().map(crate::Topology::from_graph).collect();
        let handles: Vec<JobHandle> = topos
            .iter()
            .map(|t| pool.submit(t, 40))
            .collect();
        for (i, h) in handles.iter().enumerate() {
            let r = h.wait();
            assert!(r.completed, "job {i}: {r:?}");
            assert_eq!(r.data_messages, 40 * (graphs[i].node_count() as u64 - 1));
            assert!(r.wall_time() > std::time::Duration::ZERO);
        }
    }

    #[test]
    fn settle_hook_fires_exactly_once() {
        let pool = SharedPool::new(2);
        let g = pipeline(4);
        let topo = crate::Topology::from_graph(&g);
        let count = Arc::new(AtomicU32::new(0));
        let c = Arc::clone(&count);
        let h = pool.submit_full(
            &topo,
            AvoidanceMode::Disabled,
            PropagationTrigger::default(),
            25,
            Some(Box::new(move |report, verdict| {
                assert_eq!(verdict, JobVerdict::Completed);
                assert_eq!(report.sink_firings, 25);
                c.fetch_add(1, Ordering::SeqCst);
            })),
        );
        let _ = h.wait();
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn panicking_settle_hook_neither_hangs_nor_kills_workers() {
        let pool = SharedPool::new(1);
        let g = pipeline(3);
        let topo = crate::Topology::from_graph(&g);
        let h = pool.submit_full(
            &topo,
            AvoidanceMode::Disabled,
            PropagationTrigger::default(),
            10,
            Some(Box::new(|_report, _verdict| panic!("hook blew up"))),
        );
        let r = h.wait(); // must not hang despite the panicking hook
        assert!(r.completed, "{r:?}");
        // The worker survived: new work still executes.
        let h2 = pool.submit(&topo, 5);
        assert!(h2.wait().completed);
    }

    #[test]
    fn empty_topology_settles_synchronously() {
        let pool = SharedPool::new(1);
        let topo = crate::Topology::from_graph(&Graph::new());
        let h = pool.submit(&topo, 7);
        assert!(h.is_settled());
        let r = h.wait();
        assert!(r.completed);
        assert_eq!(r.inputs_offered, 7);
    }

    #[test]
    fn dropping_the_pool_cancels_unfinished_jobs() {
        let g = pipeline(2);
        let src = g.single_source().unwrap();
        // A slow source: each firing sleeps, so the job cannot finish
        // before the pool is dropped.
        let topo = crate::Topology::from_graph(&g).with(src, || {
            Predicate::new(1, |_seq, _out| {
                std::thread::sleep(std::time::Duration::from_millis(2));
                true
            })
        });
        let handle = {
            let pool = SharedPool::with_config(1, 1);
            let h = pool.submit(&topo, 10_000);
            // `pool` dropped here: shutdown, join, cancel.
            h
        };
        let r = handle.wait();
        assert_eq!(handle.verdict(), Some(JobVerdict::Cancelled));
        assert!(!r.completed && !r.deadlocked);
    }
}
