//! A pooled work-stealing execution engine: a fixed pool of workers drives
//! every compute node as a cooperatively-scheduled task.
//!
//! [`crate::ThreadedExecutor`] devotes one OS thread to every node, which
//! caps it at a few thousand nodes (and leaves most of those threads blocked
//! in the kernel at any instant).  `PooledExecutor` decouples *workers* from
//! *operators* the way shared-memory streaming engines do: `N` workers
//! (default [`std::thread::available_parallelism`]) each own a run queue of
//! node tasks, steal from each other when their own queue runs dry, and park
//! on a condvar when the whole pool is idle.
//!
//! ## Scheduling rule
//!
//! Tasks are woken by exactly the channel-event rule of the simulator's
//! worklist scheduler: a channel becoming **non-empty** wakes its consumer
//! task, a channel becoming **non-full** wakes its producer task.  Channels
//! are the lock-free SPSC rings of [`crate::spsc`], whose waiting-flag
//! protocol (register, then re-check) makes the wakeups race-free without a
//! single lock on the message path.  A woken task drains up to a
//! configurable batch of firings before yielding its worker.  The per-task
//! stepping logic itself lives in the private `task` module, shared with
//! the multi-job [`crate::SharedPool`] engine.
//!
//! ## Exact deadlock detection
//!
//! Because every task that *can* progress is queued, running, or has a
//! waiting-flag registered on the channel that will next enable it, the pool
//! going fully idle is meaningful: when the last worker is about to park
//! while no task is queued and unfinished nodes remain, the run **is**
//! deadlocked — the same "ready set empty" argument as the simulator, so the
//! verdict is exact and immediate.  No quiet-period watchdog is involved
//! (contrast with the threaded engine, where deadlock can only be inferred
//! from prolonged silence).
//!
//! The per-node semantics (acceptance rule, dummy wrappers, per-channel
//! independent delivery) are identical to [`crate::Simulator`]'s, and a
//! property test (`tests/engine_equivalence.rs`) pins the two engines to the
//! same completion/deadlock verdicts and per-edge message counts.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use fila_avoidance::AvoidancePlan;

use crate::container::{Batch, Batching, Single};
use crate::report::ExecutionReport;
use crate::task::{self, Outcome, StepPolicy, Task};
use crate::topology::Topology;
use crate::wrapper::{AvoidanceMode, PropagationTrigger};

/// Pooled work-stealing execution engine.
#[derive(Debug, Clone)]
pub struct PooledExecutor<'t> {
    topology: &'t Topology,
    mode: AvoidanceMode,
    trigger: PropagationTrigger,
    workers: Option<NonZeroUsize>,
    batch: u32,
    batching: Batching,
}

impl<'t> PooledExecutor<'t> {
    /// Creates an executor with deadlock avoidance disabled, one worker per
    /// available hardware thread, a firing batch of 64 per task wake, and
    /// message batching on (the [`Batching`] default).
    pub fn new(topology: &'t Topology) -> Self {
        PooledExecutor {
            topology,
            mode: AvoidanceMode::Disabled,
            trigger: PropagationTrigger::default(),
            workers: None,
            batch: 64,
            batching: Batching::default(),
        }
    }

    /// Enables deadlock avoidance following `plan`.
    pub fn with_plan(mut self, plan: &AvoidancePlan) -> Self {
        self.mode = AvoidanceMode::plan(plan.clone());
        self
    }

    /// Enables deadlock avoidance following an already-shared plan without
    /// copying the interval table.
    pub fn with_shared_plan(mut self, plan: Arc<AvoidancePlan>) -> Self {
        self.mode = AvoidanceMode::Plan(plan);
        self
    }

    /// Sets the avoidance mode explicitly.
    pub fn avoidance(mut self, mode: AvoidanceMode) -> Self {
        self.mode = mode;
        self
    }

    /// Selects the Propagation-protocol trigger (see
    /// [`PropagationTrigger`]); the default is the paper's literal trigger.
    pub fn propagation_trigger(mut self, trigger: PropagationTrigger) -> Self {
        self.trigger = trigger;
        self
    }

    /// Sets the worker-pool size explicitly; passing `0` restores the
    /// default ([`std::thread::available_parallelism`]).  The pool never
    /// spawns more workers than the graph has nodes.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = NonZeroUsize::new(workers);
        self
    }

    /// Sets how many firings a woken task may drain before it yields its
    /// worker (clamped to ≥ 1).  Larger batches amortise scheduling costs;
    /// smaller ones interleave nodes more finely.
    pub fn batch(mut self, batch: u32) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Selects how messages are grouped into containers on the rings (see
    /// [`Batching`]; the default batches 64 messages per container).
    /// [`Batching::Scalar`] restores the one-message-per-slot engine bit
    /// for bit; by confluence every mode produces identical reports.
    pub fn batching(mut self, batching: Batching) -> Self {
        self.batching = batching;
        self
    }

    /// Runs the application, offering `inputs` sequence numbers at every
    /// source node, and returns the execution report.  The deadlock verdict
    /// is exact (all workers parked with unfinished nodes), never inferred
    /// from a timeout.
    pub fn run(&self, inputs: u64) -> ExecutionReport {
        match self.batching {
            Batching::Scalar => self.run_typed::<Single>(inputs),
            _ => self.run_typed::<Batch>(inputs),
        }
    }

    fn run_typed<C: StepPolicy>(&self, inputs: u64) -> ExecutionReport {
        let started = Instant::now();
        let g = self.topology.graph();
        let node_count = g.node_count();
        let edge_count = g.edge_count();
        if node_count == 0 {
            return ExecutionReport {
                completed: true,
                inputs_offered: inputs,
                wall: started.elapsed(),
                ..Default::default()
            };
        }
        let workers = self
            .workers
            .map(NonZeroUsize::get)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1)
            })
            .clamp(1, node_count);

        let tasks: Vec<Mutex<Task<C>>> =
            task::build_tasks(self.topology, &self.mode, self.trigger, self.batching)
                .into_iter()
                .map(Mutex::new)
                .collect();

        let pool = Pool {
            states: (0..node_count).map(|_| AtomicU8::new(QUEUED)).collect(),
            tasks,
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            queued: AtomicUsize::new(node_count),
            unfinished: AtomicUsize::new(node_count),
            parked_count: AtomicUsize::new(0),
            coordinator: Mutex::new(()),
            cv: Condvar::new(),
            verdict: AtomicU8::new(RUNNING_VERDICT),
            workers,
            batch: self.batch,
            inputs,
        };
        // Seed every task once, round-robin over the workers: each either
        // progresses or registers its waiting flags, after which scheduling
        // is purely event-driven.
        for (idx, q) in (0..node_count).zip((0..workers).cycle()) {
            pool.queues[q]
                .lock()
                .expect("queue lock")
                .push_back(idx as u32);
        }

        std::thread::scope(|scope| {
            for w in 0..workers {
                let pool = &pool;
                scope.spawn(move || pool.worker_loop(w));
            }
        });

        let deadlocked = pool.verdict.load(Ordering::SeqCst) == DEADLOCKED;
        let mut report = task::assemble_report(&pool.tasks, edge_count, inputs, deadlocked);
        report.wall = started.elapsed();
        report
    }
}

/// Task scheduling states (one `AtomicU8` per node).
const IDLE: u8 = 0;
/// In some worker's run queue.
const QUEUED: u8 = 1;
/// Currently executing on a worker.
const RUNNING: u8 = 2;
/// Executing, and a wake arrived meanwhile: re-queue after the run.
const NOTIFIED: u8 = 3;

/// Pool verdicts.
const RUNNING_VERDICT: u8 = 0;
const COMPLETED: u8 = 1;
const DEADLOCKED: u8 = 2;
/// A worker panicked (a node behaviour threw); peers must not wait for it.
const PANICKED: u8 = 3;

struct Pool<C: StepPolicy> {
    states: Vec<AtomicU8>,
    tasks: Vec<Mutex<Task<C>>>,
    queues: Vec<Mutex<VecDeque<u32>>>,
    /// Tasks currently sitting in some run queue (transiently an
    /// over-estimate: it is incremented before the push).
    queued: AtomicUsize,
    unfinished: AtomicUsize,
    /// Workers currently parked; mutated only under `coordinator`.
    parked_count: AtomicUsize,
    coordinator: Mutex<()>,
    cv: Condvar,
    verdict: AtomicU8,
    workers: usize,
    batch: u32,
    inputs: u64,
}

/// Aborts the pool if its worker unwinds (a node behaviour panicked):
/// without this, the panicked worker would never park, the remaining
/// workers would wait on the condvar forever, and `std::thread::scope`
/// would hang joining them.  With it, peers exit, the scope joins
/// everyone, and the scope itself re-raises the panic — so
/// [`PooledExecutor::run`] propagates behaviour panics exactly like
/// [`crate::Simulator::run`] does.
struct PanicAbort<'p, C: StepPolicy>(&'p Pool<C>);

impl<C: StepPolicy> Drop for PanicAbort<'_, C> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            let _guard = self.0.lock_coordinator();
            self.0.verdict.store(PANICKED, Ordering::SeqCst);
            self.0.cv.notify_all();
        }
    }
}

impl<C: StepPolicy> Pool<C> {
    fn worker_loop(&self, worker: usize) {
        let _abort_on_panic = PanicAbort(self);
        while self.verdict.load(Ordering::Acquire) == RUNNING_VERDICT {
            match self.pop_any(worker) {
                Some(node) => self.execute(worker, node),
                None => {
                    if !self.park() {
                        return;
                    }
                }
            }
        }
    }

    /// Pops from the worker's own queue, then round-robins the other
    /// workers' queues (work stealing).
    fn pop_any(&self, worker: usize) -> Option<u32> {
        for i in 0..self.queues.len() {
            let q = (worker + i) % self.queues.len();
            let popped = self.queues[q].lock().expect("queue lock").pop_front();
            if let Some(node) = popped {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                return Some(node);
            }
        }
        None
    }

    /// Pushes a task onto `worker`'s queue and unparks a sleeper if any.
    fn push(&self, worker: usize, node: u32) {
        // Increment before the push so `queued` only ever over-estimates;
        // parking decisions must never see it low.
        self.queued.fetch_add(1, Ordering::SeqCst);
        self.queues[worker]
            .lock()
            .expect("queue lock")
            .push_back(node);
        if self.parked_count.load(Ordering::SeqCst) > 0 {
            let _guard = self.lock_coordinator();
            self.cv.notify_one();
        }
    }

    /// The coordinator mutex guards no data (all counters are atomics), so
    /// poisoning — possible only when a peer worker panicked — carries no
    /// information; every acquisition tolerates it so surviving workers can
    /// still park, be woken, and observe the `PANICKED` verdict.
    fn lock_coordinator(&self) -> std::sync::MutexGuard<'_, ()> {
        self.coordinator
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Schedules `node` (the channel-event wakeup): idle tasks are queued on
    /// the waking worker, running tasks are flagged for re-queueing.
    fn wake(&self, worker: usize, node: u32) {
        let state = &self.states[node as usize];
        let mut current = state.load(Ordering::Acquire);
        loop {
            let (target, enqueue) = match current {
                IDLE => (QUEUED, true),
                RUNNING => (NOTIFIED, false),
                // Already queued or already flagged: nothing to do.
                _ => return,
            };
            match state.compare_exchange(
                current,
                target,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    if enqueue {
                        self.push(worker, node);
                    }
                    return;
                }
                Err(observed) => current = observed,
            }
        }
    }

    fn execute(&self, worker: usize, node: u32) {
        self.states[node as usize].store(RUNNING, Ordering::Release);
        let (outcome, newly_done) = {
            let mut task = self.tasks[node as usize].lock().expect("task lock");
            let was_done = task.done;
            let outcome = task::run_task(
                &mut task,
                self.inputs,
                self.batch,
                &mut |n| self.wake(worker, n),
                None,
            );
            (outcome, task.done && !was_done)
        };
        if newly_done {
            self.unfinished.fetch_sub(1, Ordering::SeqCst);
        }
        match outcome {
            Outcome::Done => {
                // Stale flag wakeups may still re-queue this task; it will
                // no-op (see `run_task`'s `done` check).
                self.states[node as usize].store(IDLE, Ordering::Release);
            }
            Outcome::Yielded => {
                self.states[node as usize].store(QUEUED, Ordering::Release);
                self.push(worker, node);
            }
            Outcome::Blocked => {
                if self.states[node as usize]
                    .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    // A wake arrived while we ran (state is NOTIFIED): the
                    // event may have landed before our final re-check, so the
                    // task must run again.
                    self.states[node as usize].store(QUEUED, Ordering::Release);
                    self.push(worker, node);
                }
            }
        }
    }

    /// Parks the worker until new work or a verdict.  Returns false when the
    /// run is over.  The **last** worker to park with an empty pool decides
    /// the verdict: every runnable task would be queued (the waiting-flag
    /// protocol loses no wakeups), so a fully parked pool with unfinished
    /// nodes is exactly a deadlock.
    fn park(&self) -> bool {
        let mut guard = self.lock_coordinator();
        if self.queued.load(Ordering::SeqCst) > 0 {
            return true;
        }
        if self.verdict.load(Ordering::SeqCst) != RUNNING_VERDICT {
            return false;
        }
        let parked = self.parked_count.fetch_add(1, Ordering::SeqCst) + 1;
        // Dekker re-check against a concurrent `push`: the pusher increments
        // `queued` *before* reading `parked_count` (both SeqCst), so either
        // it sees this worker as parked and notifies under the lock, or the
        // re-read here sees its task — a notify can never fall between the
        // entry check and the first wait.
        if self.queued.load(Ordering::SeqCst) > 0 {
            self.parked_count.fetch_sub(1, Ordering::SeqCst);
            return true;
        }
        if parked == self.workers {
            let verdict = if self.unfinished.load(Ordering::SeqCst) == 0 {
                COMPLETED
            } else {
                DEADLOCKED
            };
            self.verdict.store(verdict, Ordering::SeqCst);
            self.parked_count.fetch_sub(1, Ordering::SeqCst);
            self.cv.notify_all();
            return false;
        }
        loop {
            guard = self
                .cv
                .wait(guard)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if self.verdict.load(Ordering::SeqCst) != RUNNING_VERDICT
                || self.queued.load(Ordering::SeqCst) > 0
            {
                break;
            }
        }
        self.parked_count.fetch_sub(1, Ordering::SeqCst);
        self.verdict.load(Ordering::SeqCst) == RUNNING_VERDICT
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filters::{Broadcast, ModuloFilter, Predicate};
    use crate::Simulator;
    use fila_avoidance::{Algorithm, Planner};
    use fila_graph::{Graph, GraphBuilder};

    fn fig2(buffer: u64) -> Graph {
        let mut b = GraphBuilder::new();
        b.edge_with_capacity("A", "B", buffer).unwrap();
        b.edge_with_capacity("B", "C", buffer).unwrap();
        b.edge_with_capacity("A", "C", buffer).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn pipeline_completes_pooled() {
        let mut b = GraphBuilder::new();
        b.chain(&["src", "mid", "dst"]).unwrap();
        let g = b.build().unwrap();
        let topo = Topology::from_graph(&g);
        for workers in [1, 2, 4] {
            let report = PooledExecutor::new(&topo).workers(workers).run(200);
            assert!(report.completed, "workers={workers}: {report:?}");
            assert_eq!(report.data_messages, 400);
            assert_eq!(report.sink_firings, 200);
        }
    }

    #[test]
    fn fig2_deadlock_verdict_is_exact() {
        // No quiet period, no timeout: the pool parks and reports deadlock
        // with the blocked nodes, exactly like the simulator.
        let g = fig2(2);
        let a = g.node_by_name("A").unwrap();
        let topo = Topology::from_graph(&g)
            .with(a, || Predicate::new(2, |_seq, out| out == 0));
        for workers in [1, 3] {
            let report = PooledExecutor::new(&topo).workers(workers).run(500);
            assert!(report.deadlocked, "workers={workers}: {report:?}");
            assert!(!report.completed);
            assert!(!report.blocked.is_empty());
        }
    }

    #[test]
    fn fig2_completes_pooled_with_plan() {
        let g = fig2(2);
        let a = g.node_by_name("A").unwrap();
        for algorithm in [Algorithm::Propagation, Algorithm::NonPropagation] {
            let plan = Planner::new(&g).algorithm(algorithm).plan().unwrap();
            let topo = Topology::from_graph(&g)
                .with(a, || Predicate::new(2, |_seq, out| out == 0));
            let report = PooledExecutor::new(&topo)
                .with_plan(&plan)
                .workers(2)
                .run(500);
            assert!(report.completed, "{algorithm}: {report:?}");
            assert!(report.dummy_messages > 0);
        }
    }

    #[test]
    fn pooled_matches_simulator_exactly() {
        let g = fig2(4);
        let a = g.node_by_name("A").unwrap();
        let plan = Planner::new(&g).algorithm(Algorithm::Propagation).plan().unwrap();
        let topo = Topology::from_graph(&g)
            .with(a, || Predicate::new(2, |seq, out| out == 0 || seq % 4 == 0));
        let sim = Simulator::new(&topo).with_plan(&plan).run(400);
        let pooled = PooledExecutor::new(&topo).with_plan(&plan).workers(2).run(400);
        assert!(sim.completed && pooled.completed);
        assert_eq!(sim.per_edge_data, pooled.per_edge_data);
        assert_eq!(sim.per_edge_dummies, pooled.per_edge_dummies);
        assert_eq!(sim.sink_firings, pooled.sink_firings);
    }

    #[test]
    fn capacity_one_channels_work() {
        let mut b = GraphBuilder::new();
        b.edge_with_capacity("s", "m", 1).unwrap();
        b.edge_with_capacity("m", "t", 1).unwrap();
        let g = b.build().unwrap();
        let m = g.node_by_name("m").unwrap();
        let topo = Topology::from_graph(&g).with(m, || ModuloFilter::new(1, 2, 0));
        let report = PooledExecutor::new(&topo).workers(2).run(100);
        assert!(report.completed, "{report:?}");
        assert_eq!(report.sink_firings, 50);
    }

    #[test]
    fn split_join_deadlocks_and_plan_rescues_it() {
        let mut b = GraphBuilder::new();
        b.edge_with_capacity("split", "left", 4).unwrap();
        b.edge_with_capacity("split", "right", 4).unwrap();
        b.edge_with_capacity("left", "join", 4).unwrap();
        b.edge_with_capacity("right", "join", 4).unwrap();
        let g = b.build().unwrap();
        let split = g.node_by_name("split").unwrap();
        let left = g.node_by_name("left").unwrap();
        let right = g.node_by_name("right").unwrap();
        let topo = Topology::from_graph(&g)
            .with(split, || Broadcast::new(2))
            .with(left, || ModuloFilter::new(1, 5, 0))
            .with(right, || ModuloFilter::new(1, 50, 3));
        let without = PooledExecutor::new(&topo).workers(2).run(2000);
        assert!(without.deadlocked, "{without:?}");
        let plan = Planner::new(&g)
            .algorithm(Algorithm::NonPropagation)
            .plan()
            .unwrap();
        let with_plan = PooledExecutor::new(&topo).with_plan(&plan).workers(2).run(2000);
        assert!(with_plan.completed, "{with_plan:?}");
    }

    #[test]
    fn deep_pipeline_scales_past_thread_per_node_sizes() {
        // 4096 nodes on a handful of workers: far beyond what one OS thread
        // per node is meant for, trivially handled by the pool.
        let names: Vec<String> = (0..4096).map(|i| format!("n{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let mut b = GraphBuilder::new().default_capacity(4);
        b.chain(&refs).unwrap();
        let g = b.build().unwrap();
        let topo = Topology::from_graph(&g);
        let report = PooledExecutor::new(&topo).workers(4).run(8);
        assert!(report.completed, "{report:?}");
        assert_eq!(report.sink_firings, 8);
        assert_eq!(report.data_messages, 8 * 4095);
    }

    #[test]
    fn tiny_batch_still_completes() {
        let g = fig2(2);
        let a = g.node_by_name("A").unwrap();
        let plan = Planner::new(&g).algorithm(Algorithm::Propagation).plan().unwrap();
        let topo = Topology::from_graph(&g)
            .with(a, || Predicate::new(2, |_seq, out| out == 0));
        let report = PooledExecutor::new(&topo)
            .with_plan(&plan)
            .workers(3)
            .batch(1)
            .run(300);
        assert!(report.completed, "{report:?}");
    }

    #[test]
    fn zero_inputs_complete_immediately() {
        let g = fig2(2);
        let topo = Topology::from_graph(&g);
        let report = PooledExecutor::new(&topo).run(0);
        assert!(report.completed);
        assert_eq!(report.data_messages, 0);
    }

    #[test]
    fn pooled_and_threaded_agree_on_data_counts() {
        // The pool and the thread-per-node engine share the ring layer but
        // schedule completely differently; deterministic filtering must
        // still deliver identical data counts (see also
        // `tests/engine_equivalence.rs` for the full Simulator pinning).
        let g = fig2(4);
        let a = g.node_by_name("A").unwrap();
        let plan = Planner::new(&g).algorithm(Algorithm::Propagation).plan().unwrap();
        let topo = Topology::from_graph(&g)
            .with(a, || Predicate::new(2, |seq, out| out == 0 || seq % 4 == 0));
        let pooled = PooledExecutor::new(&topo).with_plan(&plan).workers(2).run(400);
        let threaded = crate::ThreadedExecutor::new(&topo).with_plan(&plan).run(400);
        assert!(pooled.completed && threaded.completed);
        assert_eq!(pooled.data_messages, threaded.data_messages);
        assert_eq!(pooled.sink_firings, threaded.sink_firings);
        assert_eq!(pooled.per_edge_data, threaded.per_edge_data);
    }

    #[test]
    fn behaviour_panic_propagates_instead_of_hanging() {
        // A panicking behaviour must fail the run like the simulator does —
        // not leave the surviving workers parked forever.
        let mut b = GraphBuilder::new();
        b.chain(&["s", "m", "t"]).unwrap();
        let g = b.build().unwrap();
        let m = g.node_by_name("m").unwrap();
        let topo = Topology::from_graph(&g).with(m, || {
            Predicate::new(1, |seq, _out| {
                assert!(seq < 5, "behaviour blew up at seq {seq}");
                true
            })
        });
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            PooledExecutor::new(&topo).workers(2).run(100)
        }));
        assert!(result.is_err(), "the panic must propagate out of run()");
    }

    #[test]
    fn wall_time_is_recorded() {
        let mut b = GraphBuilder::new();
        b.chain(&["s", "t"]).unwrap();
        let g = b.build().unwrap();
        let topo = Topology::from_graph(&g);
        let report = PooledExecutor::new(&topo).workers(1).run(64);
        assert!(report.completed);
        assert!(report.wall_time() > std::time::Duration::ZERO);
        assert!(report.messages_per_sec().expect("wall time recorded") > 0.0);
    }
}
