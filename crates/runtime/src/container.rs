//! Batched message transport: the [`Container`] abstraction.
//!
//! Every channel of the engines carries *containers* rather than raw
//! [`Message`]s.  A container is an ordered run of messages — data messages
//! interleaved with run-length-encoded dummy gaps — that travels through an
//! SPSC ring as a single slot write.  Two implementations exist:
//!
//! * [`Single`] — exactly one message per container.  This is the scalar
//!   path: every ring operation, wake check and wrapper call happens once
//!   per message, reproducing the pre-container engines byte for byte.
//! * [`Batch`] — a columnar run of messages (individual data entries plus
//!   RLE dummy segments).  One ring push ships a whole run, so the
//!   per-message cost of the atomics, the Dekker wake fences and the
//!   scheduler hand-offs is amortised across the run.
//!
//! ## The capacity-unit invariant
//!
//! Channel capacity is modelled in **messages**, never in containers: a ring
//! of capacity `c` admits containers whose message weights sum to at most
//! `c` (see [`crate::spsc::Weigh`] and [`crate::spsc::MsgCap`]).  Occupancy
//! is released per *consumed message*, not per popped container, so the
//! blocking behaviour — and therefore every deadlock verdict — is identical
//! to the scalar engines regardless of how messages are grouped.
//!
//! The confluence argument of the Kahn-network model does the rest: a
//! node's accepted-sequence stream is schedule-independent, so per-edge
//! data/dummy counts and verdicts cannot depend on the batching mode.

use std::cell::RefCell;

use crate::message::{Message, Payload};
use crate::spsc::{self, Weigh};

/// How an engine groups messages into containers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Batching {
    /// One message per container: the scalar path, byte-for-byte identical
    /// to the pre-container engines.
    Scalar,
    /// Containers carry up to this many messages (clamped to ≥ 1 and to
    /// each channel's capacity).
    Messages(u32),
    /// Containers grow without bound — in practice limited by channel
    /// capacity, since a container must fit its ring in message units.
    Unbounded,
}

impl Batching {
    /// The per-container message limit this mode implies.
    pub fn limit(self) -> usize {
        match self {
            Batching::Scalar => 1,
            Batching::Messages(n) => (n as usize).max(1),
            Batching::Unbounded => usize::MAX,
        }
    }
}

impl Default for Batching {
    /// Batching on, 64 messages per container — the pooled engines' default.
    fn default() -> Self {
        Batching::Messages(64)
    }
}

/// An ordered run of messages travelling a channel as one ring slot.
///
/// Invariants every implementation upholds (and [`Batch::try_push`]
/// enforces):
///
/// * sequence numbers are non-decreasing front to back, strictly increasing
///   except that a dummy may immediately follow a data message with the
///   *same* sequence number (the heartbeat trigger emits both);
/// * a container on a ring is never empty;
/// * nothing follows an EOS marker.
pub trait Container: Weigh + Send + 'static {
    /// Wraps one message.
    fn from_message(m: Message) -> Self;
    /// Remaining messages.
    fn len(&self) -> usize {
        self.weight()
    }
    /// True when no message remains.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// The front message.  Panics if empty.
    fn front(&self) -> Message;
    /// Removes and returns the front message.
    fn pop_front(&mut self) -> Option<Message>;
    /// Unwraps a container known to hold exactly one message.
    fn into_message(self) -> Message;
    /// Appends `m` if the container holds fewer than `limit` messages and
    /// the ordering invariant allows it; hands `m` back otherwise.
    fn try_push(&mut self, limit: usize, m: Message) -> Result<(), Message>;
    /// Remaining `(data, dummy)` message counts (EOS counts as neither).
    fn counts(&self) -> (u64, u64);
    /// Visits the remaining messages front to back (checkpoint flattening).
    fn for_each(&self, f: &mut dyn FnMut(Message));
}

// ---------------------------------------------------------------- Single --

/// The scalar container: exactly one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(transparent)]
pub struct Single(pub Message);

impl Weigh for Single {
    const UNIT: bool = true;
    fn weight(&self) -> usize {
        1
    }
}

impl Container for Single {
    fn from_message(m: Message) -> Self {
        Single(m)
    }
    fn front(&self) -> Message {
        self.0
    }
    fn pop_front(&mut self) -> Option<Message> {
        // A `Single` is popped by value via `into_message` on the scalar
        // path; the by-ref form exists only for trait completeness.
        Some(self.0)
    }
    fn into_message(self) -> Message {
        self.0
    }
    fn try_push(&mut self, _limit: usize, m: Message) -> Result<(), Message> {
        Err(m)
    }
    fn counts(&self) -> (u64, u64) {
        match self.0 {
            Message::Data { .. } => (1, 0),
            Message::Dummy { .. } => (0, 1),
            Message::Eos => (0, 0),
        }
    }
    fn for_each(&self, f: &mut dyn FnMut(Message)) {
        f(self.0);
    }
}

// ----------------------------------------------------------------- Batch --

/// One segment of a [`Batch`]: a data message, an RLE run of dummies at
/// consecutive sequence numbers, or the EOS marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Seg {
    Data { seq: u64, payload: Payload },
    Dummies { first: u64, len: u64 },
    Eos,
}

/// A view of the run at the front of a [`Batch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Run {
    /// A single data message.
    Data {
        /// Its sequence number.
        seq: u64,
        /// Its payload.
        payload: Payload,
    },
    /// `len` dummies at consecutive sequence numbers `first..first + len`.
    Dummies {
        /// Sequence number of the first dummy in the run.
        first: u64,
        /// Number of dummies in the run.
        len: u64,
    },
    /// The end-of-stream marker.
    Eos,
}

/// A columnar run of messages: data entries plus run-length-encoded dummy
/// gaps, consumed front to back.
///
/// Segments live in a plain `Vec` with a front cursor (`head`): popping
/// advances the cursor instead of shifting memory, and the vector resets
/// (retaining its allocation) whenever the batch drains.  Data/dummy counts
/// are maintained incrementally so [`Container::counts`] — called twice per
/// delivered container by the flush loop — is O(1).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Batch {
    segs: Vec<Seg>,
    /// Index of the front segment; slots below it are consumed.
    head: usize,
    /// Dummies already consumed off the front segment (only ever non-zero
    /// while the front segment is `Seg::Dummies`).
    skip: u64,
    /// Remaining messages.
    len: usize,
    /// Remaining data messages.
    data: u64,
    /// Remaining dummy messages.
    dummies: u64,
}

thread_local! {
    /// Per-thread recycling pool for [`Batch`] segment vectors.
    ///
    /// Containers are created and destroyed at message rate (one per staged
    /// run), and a worker both consumes and produces containers on every
    /// slice, so recycling the backing vectors thread-locally keeps the hot
    /// path free of allocator traffic without any cross-thread
    /// coordination.  The pool is bounded; overflow falls back to the
    /// allocator.
    static SEG_POOL: RefCell<Vec<Vec<Seg>>> = const { RefCell::new(Vec::new()) };
}

/// Segment vectors retained per thread (~2 per live edge of a slice is
/// plenty; beyond this the allocator is fast enough).
const SEG_POOL_CAP: usize = 64;

/// A segment vector from the thread's pool, or a freshly sized one.
fn pooled_segs() -> Vec<Seg> {
    SEG_POOL
        .with(|p| p.borrow_mut().pop())
        .unwrap_or_else(|| Vec::with_capacity(8))
}

impl Drop for Batch {
    fn drop(&mut self) {
        if self.segs.capacity() == 0 {
            return;
        }
        let mut segs = std::mem::take(&mut self.segs);
        segs.clear();
        // `try_with` so drops during thread teardown (after the TLS value
        // is destroyed) silently fall through to the allocator.
        let _ = SEG_POOL.try_with(|p| {
            let mut pool = p.borrow_mut();
            if pool.len() < SEG_POOL_CAP {
                pool.push(segs);
            }
        });
    }
}

impl Batch {
    /// An empty batch drawing its segment storage from the thread's
    /// recycling pool (staging starts here; empty batches never reach a
    /// ring).
    pub fn new() -> Self {
        Batch {
            segs: pooled_segs(),
            head: 0,
            skip: 0,
            len: 0,
            data: 0,
            dummies: 0,
        }
    }

    /// Consumes the front message, which the caller has just observed via
    /// [`Batch::front_run`] to be a data message.
    #[inline]
    pub(crate) fn consume_data(&mut self) {
        debug_assert!(matches!(self.segs.get(self.head), Some(Seg::Data { .. })));
        self.len -= 1;
        self.data -= 1;
        self.advance_seg();
    }

    /// The last sequence number in the batch and whether it belongs to a
    /// data message; `None` when empty.
    fn back_seq(&self) -> Option<(u64, bool)> {
        self.segs.last().map(|seg| match *seg {
            Seg::Data { seq, .. } => (seq, true),
            Seg::Dummies { first, len } => (first + (len - 1), false),
            Seg::Eos => (u64::MAX, false),
        })
    }

    /// Drops the front segment (fully consumed), resetting the vector when
    /// nothing remains so its allocation is reused by later pushes.
    #[inline]
    fn advance_seg(&mut self) {
        self.head += 1;
        self.skip = 0;
        if self.head == self.segs.len() {
            self.segs.clear();
            self.head = 0;
        }
    }

    /// The run at the front, without consuming it.
    #[inline]
    pub fn front_run(&self) -> Option<Run> {
        self.segs.get(self.head).map(|seg| match *seg {
            Seg::Data { seq, payload } => Run::Data { seq, payload },
            Seg::Dummies { first, len } => Run::Dummies {
                first: first + self.skip,
                len: len - self.skip,
            },
            Seg::Eos => Run::Eos,
        })
    }

    /// Consumes `n` dummies off the front run (which must be a dummy run of
    /// at least `n` remaining messages).
    pub fn consume_dummies(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        match self.segs.get(self.head) {
            Some(Seg::Dummies { len, .. }) => {
                let len = *len;
                let remaining = len - self.skip;
                assert!(n <= remaining, "dummy run under-run");
                self.skip += n;
                self.len -= n as usize;
                self.dummies -= n;
                if self.skip == len {
                    self.advance_seg();
                }
            }
            _ => panic!("front run is not a dummy run"),
        }
    }

    /// Appends a run of `len` dummies at consecutive sequence numbers
    /// `first..first + len`, as far as the `limit` allows; returns how many
    /// were accepted.
    pub fn push_dummy_run(&mut self, limit: usize, first: u64, len: u64) -> u64 {
        let room = (limit.saturating_sub(self.len)) as u64;
        let take = len.min(room);
        if take == 0 {
            return 0;
        }
        debug_assert!(match self.back_seq() {
            Some((last, _)) => first > last || last == u64::MAX - 1,
            None => true,
        });
        match self.segs.last_mut() {
            Some(Seg::Dummies { first: f, len: l }) if *f + *l == first => *l += take,
            _ => self.segs.push(Seg::Dummies { first, len: take }),
        }
        self.len += take as usize;
        self.dummies += take;
        take
    }
}

impl Weigh for Batch {
    const UNIT: bool = false;
    fn weight(&self) -> usize {
        self.len
    }
    fn split_front(&mut self, n: usize) -> Self {
        debug_assert!(0 < n && n < self.len);
        let mut front = Batch::new();
        let mut want = n;
        while want > 0 {
            match self.front_run().expect("len accounted") {
                Run::Data { seq, payload } => {
                    front.segs.push(Seg::Data { seq, payload });
                    front.len += 1;
                    front.data += 1;
                    self.len -= 1;
                    self.data -= 1;
                    self.advance_seg();
                    want -= 1;
                }
                Run::Dummies { first, len } => {
                    let take = (want as u64).min(len);
                    front.segs.push(Seg::Dummies { first, len: take });
                    front.len += take as usize;
                    front.dummies += take;
                    self.consume_dummies(take);
                    want -= take as usize;
                }
                Run::Eos => unreachable!("EOS is final and n < len"),
            }
        }
        front
    }
}

impl Container for Batch {
    fn from_message(m: Message) -> Self {
        let mut b = Batch::new();
        b.try_push(usize::MAX, m).expect("push into empty batch");
        b
    }

    fn front(&self) -> Message {
        match self.front_run().expect("front of empty batch") {
            Run::Data { seq, payload } => Message::Data { seq, payload },
            Run::Dummies { first, .. } => Message::Dummy { seq: first },
            Run::Eos => Message::Eos,
        }
    }

    fn pop_front(&mut self) -> Option<Message> {
        let run = self.front_run()?;
        Some(match run {
            Run::Data { seq, payload } => {
                self.len -= 1;
                self.data -= 1;
                self.advance_seg();
                Message::Data { seq, payload }
            }
            Run::Dummies { first, .. } => {
                self.consume_dummies(1);
                Message::Dummy { seq: first }
            }
            Run::Eos => {
                self.len -= 1;
                self.advance_seg();
                Message::Eos
            }
        })
    }

    fn into_message(mut self) -> Message {
        debug_assert_eq!(self.len, 1);
        self.pop_front().expect("non-empty")
    }

    fn try_push(&mut self, limit: usize, m: Message) -> Result<(), Message> {
        if self.len >= limit {
            return Err(m);
        }
        // Ordering: strictly increasing, except a dummy may share the
        // sequence number of an immediately preceding data message.
        if let Some((last, last_is_data)) = self.back_seq() {
            let ok = m.seq() > last || (m.is_dummy() && m.seq() == last && last_is_data);
            if !ok {
                return Err(m);
            }
        }
        match m {
            Message::Data { seq, payload } => {
                self.segs.push(Seg::Data { seq, payload });
                self.data += 1;
            }
            Message::Dummy { seq } => {
                match self.segs.last_mut() {
                    Some(Seg::Dummies { first, len }) if *first + *len == seq => *len += 1,
                    _ => self.segs.push(Seg::Dummies { first: seq, len: 1 }),
                }
                self.dummies += 1;
            }
            Message::Eos => self.segs.push(Seg::Eos),
        }
        self.len += 1;
        Ok(())
    }

    fn counts(&self) -> (u64, u64) {
        (self.data, self.dummies)
    }

    fn for_each(&self, f: &mut dyn FnMut(Message)) {
        for (i, seg) in self.segs[self.head..].iter().enumerate() {
            match *seg {
                Seg::Data { seq, payload } => f(Message::Data { seq, payload }),
                Seg::Dummies { first, len } => {
                    let skip = if i == 0 { self.skip } else { 0 };
                    for k in skip..len {
                        f(Message::Dummy { seq: first + k });
                    }
                }
                Seg::Eos => f(Message::Eos),
            }
        }
    }
}

// ---------------------------------------------- ring endpoint extensions --

/// Container-granular consumption on an SPSC consumer endpoint.
///
/// Message occupancy is released per *consumed message* (never per popped
/// container), which keeps ring occupancy equal to the modelled channel
/// occupancy at every instant — the invariant the deadlock verdicts rest
/// on.
pub trait ConsumeMsgs<C: Container> {
    /// Peeks the front message of the front container.
    fn front_msg(&mut self) -> Option<Message>;
    /// Peeks the front message, registering the blocked-on-empty waiting
    /// flag (with the mandatory Dekker re-peek) when the ring is empty.
    fn front_msg_or_register(&mut self) -> Option<Message>;
    /// Consumes the front message, releasing one message of capacity and
    /// freeing the slot if its container is exhausted.
    fn pop_msg(&mut self) -> Option<Message>;
}

impl<C: Container> ConsumeMsgs<C> for spsc::Consumer<C> {
    fn front_msg(&mut self) -> Option<Message> {
        self.front_mut().map(|c| c.front())
    }

    fn front_msg_or_register(&mut self) -> Option<Message> {
        if let Some(m) = self.front_msg() {
            return Some(m);
        }
        self.begin_wait();
        match self.front_msg() {
            Some(m) => {
                self.cancel_wait();
                Some(m)
            }
            None => None,
        }
    }

    fn pop_msg(&mut self) -> Option<Message> {
        if C::UNIT {
            return self.pop().map(C::into_message);
        }
        let c = self.front_mut()?;
        let m = c.pop_front();
        debug_assert!(m.is_some(), "empty container on a ring");
        let exhausted = c.is_empty();
        self.release_msgs(1);
        if exhausted {
            self.advance_exhausted();
        }
        m
    }
}

/// Container delivery on an SPSC producer endpoint: ships a staged
/// container whole when it fits the remaining message capacity, or splits
/// off the largest deliverable prefix and leaves the remainder staged.
pub trait DeliverMsgs<C: Container> {
    /// Attempts to deliver `staged`; returns the number of messages that
    /// made it onto the ring.  On partial (or zero) delivery the remainder
    /// stays in `staged`.
    fn deliver(&mut self, staged: &mut Option<C>) -> usize;
    /// [`DeliverMsgs::deliver`], registering the blocked-on-full waiting
    /// flag (with the mandatory Dekker retry) when anything stays staged.
    fn deliver_or_register(&mut self, staged: &mut Option<C>) -> usize;
}

impl<C: Container> DeliverMsgs<C> for spsc::Producer<C> {
    fn deliver(&mut self, staged: &mut Option<C>) -> usize {
        let Some(c) = staged.take() else { return 0 };
        if C::UNIT {
            return match self.push(c) {
                Ok(()) => 1,
                Err(back) => {
                    *staged = Some(back);
                    0
                }
            };
        }
        let space = self.space_msgs();
        if space == 0 {
            *staged = Some(c);
            return 0;
        }
        let w = c.weight();
        if w <= space {
            match self.push(c) {
                Ok(()) => w,
                Err(_) => {
                    // The consumer only ever frees space, so a push after a
                    // successful space check cannot fail.
                    unreachable!("push failed with {space} msgs of space")
                }
            }
        } else {
            let mut rest = c;
            let part = rest.split_front(space);
            *staged = Some(rest);
            match self.push(part) {
                Ok(()) => space,
                Err(_) => unreachable!("prefix push cannot outgrow checked space"),
            }
        }
    }

    fn deliver_or_register(&mut self, staged: &mut Option<C>) -> usize {
        let mut n = self.deliver(staged);
        if staged.is_none() {
            return n;
        }
        self.begin_wait();
        n += self.deliver(staged);
        if staged.is_none() {
            self.cancel_wait();
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spsc::MsgCap;

    fn drain(b: &Batch) -> Vec<Message> {
        let mut v = Vec::new();
        b.for_each(&mut |m| v.push(m));
        v
    }

    #[test]
    fn batch_preserves_message_order() {
        let mut b = Batch::new();
        b.try_push(64, Message::Data { seq: 0, payload: 7 }).unwrap();
        b.try_push(64, Message::Dummy { seq: 1 }).unwrap();
        b.try_push(64, Message::Dummy { seq: 2 }).unwrap();
        b.try_push(64, Message::Data { seq: 3, payload: 9 }).unwrap();
        // Heartbeat: a dummy may share a data message's sequence number.
        b.try_push(64, Message::Dummy { seq: 3 }).unwrap();
        b.try_push(64, Message::Eos).unwrap();
        assert_eq!(b.len(), 6);
        assert_eq!(b.counts(), (2, 3));
        let mut popped = Vec::new();
        let mut c = b.clone();
        while let Some(m) = c.pop_front() {
            popped.push(m);
        }
        assert_eq!(popped, drain(&b));
        assert_eq!(
            popped,
            vec![
                Message::Data { seq: 0, payload: 7 },
                Message::Dummy { seq: 1 },
                Message::Dummy { seq: 2 },
                Message::Data { seq: 3, payload: 9 },
                Message::Dummy { seq: 3 },
                Message::Eos,
            ]
        );
    }

    #[test]
    fn batch_rejects_order_violations_and_limit() {
        let mut b = Batch::new();
        b.try_push(2, Message::Data { seq: 5, payload: 0 }).unwrap();
        // Same seq data, regressions, and dummy-before-data are rejected.
        assert!(b.try_push(2, Message::Data { seq: 5, payload: 1 }).is_err());
        assert!(b.try_push(2, Message::Dummy { seq: 4 }).is_err());
        b.try_push(2, Message::Dummy { seq: 5 }).unwrap();
        assert!(b.try_push(2, Message::Dummy { seq: 6 }).is_err(), "limit");
    }

    #[test]
    fn batch_rle_merges_consecutive_dummies() {
        let mut b = Batch::new();
        for seq in 10..20 {
            b.try_push(usize::MAX, Message::Dummy { seq }).unwrap();
        }
        assert_eq!(b.segs.len(), 1, "consecutive dummies collapse to one run");
        assert_eq!(b.front_run(), Some(Run::Dummies { first: 10, len: 10 }));
        b.consume_dummies(4);
        assert_eq!(b.front_run(), Some(Run::Dummies { first: 14, len: 6 }));
        assert_eq!(b.counts(), (0, 6));
        assert_eq!(b.push_dummy_run(8, 20, 10), 2, "limit caps the extension");
        assert_eq!(b.len(), 8);
    }

    #[test]
    fn batch_split_front_preserves_order_and_weights() {
        let mut b = Batch::new();
        b.try_push(64, Message::Data { seq: 0, payload: 1 }).unwrap();
        for seq in 1..6 {
            b.try_push(64, Message::Dummy { seq }).unwrap();
        }
        b.try_push(64, Message::Data { seq: 6, payload: 2 }).unwrap();
        let all = drain(&b);
        let front = b.split_front(3);
        assert_eq!(front.weight(), 3);
        assert_eq!(b.weight(), 4);
        let mut rejoined = drain(&front);
        rejoined.extend(drain(&b));
        assert_eq!(rejoined, all);
    }

    #[test]
    fn single_matches_message_semantics() {
        let s = Single::from_message(Message::Data { seq: 3, payload: 8 });
        assert_eq!(s.len(), 1);
        assert_eq!(s.front(), Message::Data { seq: 3, payload: 8 });
        assert_eq!(s.counts(), (1, 0));
        assert_eq!(s.into_message(), Message::Data { seq: 3, payload: 8 });
        let mut d = Single::from_message(Message::Dummy { seq: 0 });
        assert!(d.try_push(64, Message::Dummy { seq: 1 }).is_err());
        assert_eq!(d.counts(), (0, 1));
    }

    #[test]
    fn ring_occupancy_is_in_messages_not_containers() {
        // Capacity 4: one 3-message batch + one 1-message batch fill it.
        let (mut tx, mut rx) = spsc::ring::<Batch>(MsgCap::new(4));
        let mut b = Batch::new();
        for seq in 0..3 {
            b.try_push(64, Message::Dummy { seq }).unwrap();
        }
        tx.push(b).unwrap();
        tx.push(Batch::from_message(Message::Dummy { seq: 3 })).unwrap();
        let overflow = Batch::from_message(Message::Dummy { seq: 4 });
        assert!(tx.push(overflow).is_err(), "4 msgs of 4 are occupied");
        // Consuming one message releases exactly one message of capacity.
        assert_eq!(rx.pop_msg(), Some(Message::Dummy { seq: 0 }));
        tx.push(Batch::from_message(Message::Dummy { seq: 4 })).unwrap();
        assert!(tx
            .push(Batch::from_message(Message::Dummy { seq: 5 }))
            .is_err());
        for seq in 1..5 {
            assert_eq!(rx.pop_msg(), Some(Message::Dummy { seq }));
        }
        tx.push(Batch::from_message(Message::Dummy { seq: 5 })).unwrap();
        assert_eq!(rx.pop_msg(), Some(Message::Dummy { seq: 5 }));
        assert_eq!(rx.pop_msg(), None);
    }

    #[test]
    fn deliver_splits_to_fit_and_registers() {
        let (mut tx, mut rx) = spsc::ring::<Batch>(MsgCap::new(4));
        let mut b = Batch::new();
        for seq in 0..6 {
            b.try_push(64, Message::Dummy { seq }).unwrap();
        }
        let mut staged = Some(b);
        assert_eq!(tx.deliver_or_register(&mut staged), 4, "prefix shipped");
        assert_eq!(staged.as_ref().map(Container::len), Some(2));
        // The producer stays registered: the consumer's pops must report it.
        assert_eq!(rx.pop_msg(), Some(Message::Dummy { seq: 0 }));
        assert!(rx.take_producer_waiting());
        // One message of space opened, so exactly one more message ships.
        assert_eq!(tx.deliver_or_register(&mut staged), 1);
        assert_eq!(staged.as_ref().map(Container::len), Some(1));
        assert_eq!(rx.pop_msg(), Some(Message::Dummy { seq: 1 }));
        assert!(rx.take_producer_waiting());
        assert_eq!(tx.deliver_or_register(&mut staged), 1);
        assert!(staged.is_none());
        for seq in 2..6 {
            assert_eq!(rx.pop_msg(), Some(Message::Dummy { seq }));
        }
    }

    #[test]
    fn front_msg_walks_containers() {
        let (mut tx, mut rx) = spsc::ring::<Batch>(MsgCap::new(8));
        let mut b = Batch::new();
        b.try_push(64, Message::Data { seq: 0, payload: 5 }).unwrap();
        b.try_push(64, Message::Dummy { seq: 1 }).unwrap();
        tx.push(b).unwrap();
        tx.push(Batch::from_message(Message::Eos)).unwrap();
        assert_eq!(rx.front_msg(), Some(Message::Data { seq: 0, payload: 5 }));
        assert_eq!(rx.pop_msg(), Some(Message::Data { seq: 0, payload: 5 }));
        assert_eq!(rx.front_msg(), Some(Message::Dummy { seq: 1 }));
        assert_eq!(rx.pop_msg(), Some(Message::Dummy { seq: 1 }));
        assert_eq!(rx.front_msg(), Some(Message::Eos));
    }
}
