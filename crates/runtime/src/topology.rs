//! A runnable topology: the application graph plus one behaviour per node.

use std::sync::Arc;

use fila_graph::{Graph, NodeId};

use crate::filters::Broadcast;
use crate::node::NodeBehavior;

/// A factory producing a fresh behaviour instance for one node.  Factories
/// are shared between runs and engines, so they must be `Send + Sync`; the
/// produced behaviours only need `Send` (each lives on a single worker).
pub type BehaviorFactory = Arc<dyn Fn() -> Box<dyn NodeBehavior> + Send + Sync>;

/// The application graph together with per-node behaviours and the number of
/// inputs each source node will offer.
#[derive(Clone)]
pub struct Topology {
    graph: Graph,
    behaviors: Vec<BehaviorFactory>,
}

impl Topology {
    /// Creates a topology where every node broadcasts to all of its outputs
    /// (no filtering anywhere).  Use [`Topology::with_behavior`] to install
    /// application logic.
    pub fn from_graph(graph: &Graph) -> Self {
        let behaviors = graph
            .node_ids()
            .map(|n| {
                let outputs = graph.out_degree(n);
                Arc::new(move || Box::new(Broadcast::new(outputs)) as Box<dyn NodeBehavior>)
                    as BehaviorFactory
            })
            .collect();
        Topology {
            graph: graph.clone(),
            behaviors,
        }
    }

    /// Replaces the behaviour factory of one node (builder style).
    pub fn with_behavior(mut self, node: NodeId, factory: BehaviorFactory) -> Self {
        self.set_behavior(node, factory);
        self
    }

    /// Replaces the behaviour factory of one node.
    pub fn set_behavior(&mut self, node: NodeId, factory: BehaviorFactory) {
        self.behaviors[node.index()] = factory;
    }

    /// Convenience wrapper around [`Topology::with_behavior`] for closures
    /// that build a behaviour.
    pub fn with<F, B>(self, node: NodeId, build: F) -> Self
    where
        F: Fn() -> B + Send + Sync + 'static,
        B: NodeBehavior + 'static,
    {
        self.with_behavior(node, Arc::new(move || Box::new(build())))
    }

    /// The underlying application graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Builds a fresh behaviour instance for `node`.
    pub fn build_behavior(&self, node: NodeId) -> Box<dyn NodeBehavior> {
        (self.behaviors[node.index()])()
    }

    /// Builds one fresh behaviour instance per node, in node-id order — the
    /// single construction point the execution engines share when they set
    /// up a run.
    pub fn build_behaviors(&self) -> Vec<Box<dyn NodeBehavior>> {
        self.behaviors.iter().map(|factory| factory()).collect()
    }
}

impl std::fmt::Debug for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Topology")
            .field("nodes", &self.graph.node_count())
            .field("edges", &self.graph.edge_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filters::ModuloFilter;
    use crate::node::FireInput;
    use fila_graph::GraphBuilder;

    fn diamond() -> Graph {
        let mut b = GraphBuilder::new();
        b.edge("a", "b").unwrap();
        b.edge("a", "c").unwrap();
        b.edge("b", "d").unwrap();
        b.edge("c", "d").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn default_behaviour_is_broadcast() {
        let g = diamond();
        let topo = Topology::from_graph(&g);
        let a = g.node_by_name("a").unwrap();
        let mut b = topo.build_behavior(a);
        let d = b.fire(&FireInput { seq: 3, data_in: &[] });
        assert_eq!(d.emitted(), 2);
    }

    #[test]
    fn behaviours_can_be_replaced() {
        let g = diamond();
        let a = g.node_by_name("a").unwrap();
        let topo = Topology::from_graph(&g).with(a, || ModuloFilter::new(2, 2, 0));
        let mut b = topo.build_behavior(a);
        assert_eq!(b.fire(&FireInput { seq: 0, data_in: &[] }).emitted(), 2);
        assert_eq!(b.fire(&FireInput { seq: 1, data_in: &[] }).emitted(), 0);
    }

    #[test]
    fn factories_produce_independent_instances() {
        let g = diamond();
        let a = g.node_by_name("a").unwrap();
        let topo = Topology::from_graph(&g)
            .with(a, || crate::filters::Bernoulli::new(2, 0.5, 42));
        let run = |topo: &Topology| {
            let mut b = topo.build_behavior(a);
            (0..20)
                .map(|s| b.fire(&FireInput { seq: s, data_in: &[] }).emitted())
                .collect::<Vec<_>>()
        };
        // Two instances from the same factory start from the same seed.
        assert_eq!(run(&topo), run(&topo));
    }

    #[test]
    fn debug_formatting_mentions_sizes() {
        let g = diamond();
        let topo = Topology::from_graph(&g);
        let s = format!("{topo:?}");
        assert!(s.contains("nodes: 4"));
    }
}
