//! Execution reports: what happened during a run.

use std::time::Duration;

use fila_graph::{EdgeId, NodeId};

/// Why a node was unable to make progress when the run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockedReason {
    /// The node is waiting for a message on an empty input channel.
    WaitingForInput(EdgeId),
    /// The node is waiting for space on a full output channel.
    WaitingForSpace(EdgeId),
}

/// One blocked node in a deadlock report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockedInfo {
    /// The blocked node.
    pub node: NodeId,
    /// What it is blocked on.
    pub reason: BlockedReason,
}

/// Summary of one execution (simulated or threaded).
#[derive(Debug, Clone, Default)]
pub struct ExecutionReport {
    /// True if every node reached end-of-stream.
    pub completed: bool,
    /// True if the run was declared deadlocked.
    pub deadlocked: bool,
    /// Number of input sequence numbers offered at each source.
    pub inputs_offered: u64,
    /// Total data messages delivered over all channels.
    pub data_messages: u64,
    /// Total dummy messages delivered over all channels.
    pub dummy_messages: u64,
    /// Data messages delivered per channel, indexed by edge id.
    pub per_edge_data: Vec<u64>,
    /// Dummy messages delivered per channel, indexed by edge id.
    pub per_edge_dummies: Vec<u64>,
    /// Number of data-bearing sequence numbers consumed by sink nodes.
    pub sink_firings: u64,
    /// Firings (accepted sequence numbers) per node, indexed by node id.
    /// Together with `per_edge_data` this is the observed filter profile of
    /// the run: node `n` emitted `per_edge_data[e] / per_node_firings[n]`
    /// data messages per accepted sequence number on each out-edge `e` —
    /// what the service's drift detector compares against the declared
    /// `FilterSpec`.  Maintained by every engine from counters the tasks
    /// already kept, so the cost is one `Vec` per report, not per firing.
    pub per_node_firings: Vec<u64>,
    /// Scheduler steps (simulator) or total firings (threaded engine).
    pub steps: u64,
    /// Nodes that were blocked when the run stopped (empty on completion).
    pub blocked: Vec<BlockedInfo>,
    /// Wall-clock time of the run, measured by the engine (submit-to-verdict
    /// for jobs on a shared pool).
    pub wall: Duration,
    /// For restored runs, the `steps` progress marker of the
    /// [`JobSnapshot`](crate::checkpoint::JobSnapshot) this run resumed
    /// from; `None` for runs started fresh.  All counters in a resumed
    /// run's report are **cumulative** across the original and resumed
    /// executions — a resumed run that finishes reports exactly what the
    /// uninterrupted run would have.
    pub resumed_from: Option<u64>,
}

impl ExecutionReport {
    /// Total messages delivered over all channels (data + dummies; the
    /// unit the throughput benchmarks report per second).
    pub fn total_messages(&self) -> u64 {
        self.data_messages + self.dummy_messages
    }

    /// Fraction of delivered messages that were dummies (0.0 when nothing
    /// was delivered).
    pub fn dummy_overhead(&self) -> f64 {
        let total = self.data_messages + self.dummy_messages;
        if total == 0 {
            0.0
        } else {
            self.dummy_messages as f64 / total as f64
        }
    }

    /// True if the run neither completed nor deadlocked (e.g. it was stopped
    /// by a step bound).
    pub fn inconclusive(&self) -> bool {
        !self.completed && !self.deadlocked
    }

    /// Wall-clock time of the run as measured by the engine.
    pub fn wall_time(&self) -> Duration {
        self.wall
    }

    /// Delivered messages (data + dummies) per wall-clock second — the unit
    /// the throughput benchmarks and the service stats report.  `None` when
    /// the engine recorded no elapsed time (a zero-duration micro-job has
    /// *no* rate — reporting 0 msg/s would poison any average or minimum
    /// computed over it).
    pub fn messages_per_sec(&self) -> Option<f64> {
        let secs = self.wall.as_secs_f64();
        (secs > 0.0).then(|| self.total_messages() as f64 / secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dummy_overhead_handles_empty_runs() {
        let r = ExecutionReport::default();
        assert_eq!(r.dummy_overhead(), 0.0);
        assert!(r.inconclusive());
    }

    #[test]
    fn dummy_overhead_ratio() {
        let r = ExecutionReport {
            data_messages: 75,
            dummy_messages: 25,
            completed: true,
            ..Default::default()
        };
        assert!((r.dummy_overhead() - 0.25).abs() < 1e-9);
        assert_eq!(r.total_messages(), 100);
        assert!(!r.inconclusive());
    }

    #[test]
    fn messages_per_sec_uses_wall_time() {
        let r = ExecutionReport {
            data_messages: 150,
            dummy_messages: 50,
            wall: Duration::from_millis(100),
            ..Default::default()
        };
        assert_eq!(r.wall_time(), Duration::from_millis(100));
        let rate = r.messages_per_sec().expect("elapsed time was recorded");
        assert!((rate - 2000.0).abs() < 1e-6);
        // No recorded time -> no rate (not a fake 0), never a division by
        // zero.
        let zero = ExecutionReport::default();
        assert_eq!(zero.messages_per_sec(), None);
    }
}
