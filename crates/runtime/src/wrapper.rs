//! The dummy-message deadlock-avoidance wrappers (the runtime side of the
//! authors' SPAA'10 protocols).
//!
//! Both protocols are implemented by the language runtime around the user's
//! node behaviour, with no participation from application code:
//!
//! * **Propagation**: only channels with a finite dummy interval originate
//!   dummies (those are exactly the outgoing channels of nodes with two
//!   outgoing edges on some undirected cycle); additionally, a node that
//!   consumed a dummy must forward dummies on every output channel it is not
//!   sending data on.
//! * **Non-Propagation**: every channel with a finite interval originates a
//!   dummy when its producer has gone `[e]` consecutive sequence numbers
//!   without sending anything on it; received dummies are consumed silently
//!   and never forwarded.
//!
//! ### Reproduction note: the Propagation trigger
//!
//! The paper summarises the Propagation trigger in one sentence: "a dummy is
//! sent on a channel whenever its source has gone too long without sending a
//! data message on the channel" (the protocol itself is defined in the
//! authors' SPAA'10 paper, which this reproduction does not have access to).
//! Two readings are implemented:
//!
//! * [`PropagationTrigger::OnFilterOnly`] (default; the literal wording):
//!   data traffic resets the gap counter, so dummies appear only after the
//!   fork has filtered `[e]` consecutive inputs on `e`.  This provably
//!   prevents the deadlocks caused by filtering *at fork nodes* — the
//!   scenario of Figs. 1–3 — but a cycle can still deadlock when an interior
//!   node of the would-be empty path does the filtering, because no dummy is
//!   ever created for the propagation rule to propagate (experiment E12b
//!   demonstrates this; the Non-Propagation protocol handles it).
//! * [`PropagationTrigger::Heartbeat`]: the fork emits a dummy on `e`
//!   whenever `[e]` sequence numbers elapse since the last dummy on `e`,
//!   regardless of data traffic.  This covers interior filtering, but the
//!   extra dummies occupy buffer slots that the interval computation assumed
//!   were available for data, so with very tight buffers it can itself
//!   deadlock; treat it as an experimental variant.
//!
//! The intervals come from an [`AvoidancePlan`] computed by
//! `fila-avoidance`; [`AvoidanceMode::Disabled`] turns the wrapper off,
//! which is how the deadlock of Fig. 2 is reproduced experimentally.

use std::sync::Arc;

use fila_avoidance::{Algorithm, AvoidancePlan, DummyInterval};
use fila_graph::{Graph, NodeId};

/// How the runtime should avoid deadlock.
///
/// The plan is held behind an [`Arc`] so that every node wrapper (and every
/// worker thread of the threaded engine) shares one copy instead of cloning
/// the whole interval table per node per run.
#[derive(Debug, Clone, Default)]
pub enum AvoidanceMode {
    /// No dummy messages are ever sent; filtering applications may deadlock.
    #[default]
    Disabled,
    /// Follow the given plan (protocol + per-channel intervals).
    Plan(Arc<AvoidancePlan>),
}

impl AvoidanceMode {
    /// Wraps a plan into the sharing mode (one allocation, shared by every
    /// node from then on).
    pub fn plan(plan: AvoidancePlan) -> Self {
        AvoidanceMode::Plan(Arc::new(plan))
    }

    /// The protocol in effect, if any.
    pub fn algorithm(&self) -> Option<Algorithm> {
        match self {
            AvoidanceMode::Disabled => None,
            AvoidanceMode::Plan(p) => Some(p.algorithm()),
        }
    }
}

/// When a Propagation-protocol fork emits interval-triggered dummies.
/// See the module documentation for the trade-off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PropagationTrigger {
    /// Emit a dummy on `e` only after `[e]` sequence numbers without a data
    /// message on `e` (the paper's literal wording; the default).
    #[default]
    OnFilterOnly,
    /// Emit a dummy on `e` every `[e]` sequence numbers regardless of data
    /// traffic (only a dummy resets the counter).  Covers interior-node
    /// filtering but consumes buffer slack; see the module documentation.
    Heartbeat,
}

/// What a run-level accept ([`DummyWrapper::on_accept_dummy_run`]) emits on
/// one output channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunDummies {
    /// No dummies for this run.
    None,
    /// One dummy per accepted sequence number of the run (the Propagation
    /// protocol forwards every consumed dummy on a non-data channel).
    All,
    /// Dummies at the 0-based run positions `first`, `first + period`,
    /// `first + 2·period`, … below the run length (the Non-Propagation
    /// interval counter crossing its threshold inside the run).
    Periodic {
        /// Position of the first threshold crossing within the run.
        first: u64,
        /// The channel's dummy-interval threshold.
        period: u64,
    },
}

/// Per-node dummy-message state: one gap counter per output channel.
///
/// All tables are resolved to dense, `out_edges`-aligned vectors at
/// construction time, and the answer buffer is owned by the wrapper, so the
/// per-firing path ([`DummyWrapper::on_accept`]) performs **no heap
/// allocations and no map lookups**.
#[derive(Debug, Clone)]
pub struct DummyWrapper {
    algorithm: Option<Algorithm>,
    trigger: PropagationTrigger,
    /// Dummy-interval threshold per output channel (aligned with
    /// `graph.out_edges(node)`); `u64::MAX` encodes an infinite interval,
    /// which a gap counter can never reach.
    threshold: Vec<u64>,
    /// Sequence numbers since the counter was last reset, per output channel.
    gap: Vec<u64>,
    /// Reusable answer buffer for [`DummyWrapper::on_accept`].
    dummies: Vec<bool>,
}

impl DummyWrapper {
    /// Builds the wrapper state for one node under the given mode, using the
    /// default Propagation trigger.
    pub fn new(graph: &Graph, node: NodeId, mode: &AvoidanceMode) -> Self {
        Self::with_trigger(graph, node, mode, PropagationTrigger::default())
    }

    /// Builds the wrapper state with an explicit Propagation trigger.
    pub fn with_trigger(
        graph: &Graph,
        node: NodeId,
        mode: &AvoidanceMode,
        trigger: PropagationTrigger,
    ) -> Self {
        let out = graph.out_edges(node);
        let to_threshold = |iv: DummyInterval| iv.finite().unwrap_or(u64::MAX);
        let (algorithm, threshold) = match mode {
            AvoidanceMode::Disabled => (None, vec![u64::MAX; out.len()]),
            AvoidanceMode::Plan(plan) => (
                Some(plan.algorithm()),
                out.iter().map(|&e| to_threshold(plan.interval(e))).collect(),
            ),
        };
        DummyWrapper {
            algorithm,
            trigger,
            threshold,
            gap: vec![0; out.len()],
            dummies: vec![false; out.len()],
        }
    }

    /// Number of output channels tracked.
    pub fn outputs(&self) -> usize {
        self.gap.len()
    }

    /// The current gap counters (sequence numbers since each counter was
    /// last reset), aligned with `graph.out_edges(node)` — the wrapper's
    /// entire checkpointable state.
    pub fn gaps(&self) -> &[u64] {
        &self.gap
    }

    /// Overwrites the gap counters with values previously captured by
    /// [`DummyWrapper::gaps`], so a restored node resumes its dummy
    /// intervals exactly where they stopped (no interval is counted twice).
    ///
    /// # Panics
    ///
    /// Panics if `gaps.len()` differs from the wrapper's output count.
    pub fn restore_gaps(&mut self, gaps: &[u64]) {
        assert_eq!(
            gaps.len(),
            self.gap.len(),
            "restored gap counters must match the node's output count"
        );
        self.gap.copy_from_slice(gaps);
    }

    /// Processes one accepted sequence number.
    ///
    /// * `consumed_dummy` — whether any of the messages consumed at this
    ///   sequence number was a dummy;
    /// * `sent_data(i)` — whether the node emits a data message on output
    ///   `i` for this sequence number (queried once per output).
    ///
    /// Returns, per output channel, whether a dummy message (with this
    /// sequence number) must also be sent.  The slice borrows the wrapper's
    /// internal buffer, so the call allocates nothing; `sent_data` is a
    /// closure so callers need not materialise a `Vec<bool>` either.
    pub fn on_accept(
        &mut self,
        consumed_dummy: bool,
        sent_data: impl Fn(usize) -> bool,
    ) -> &[bool] {
        let Some(algorithm) = self.algorithm else {
            self.dummies.fill(false);
            return &self.dummies;
        };
        for i in 0..self.gap.len() {
            let sent = sent_data(i);
            self.dummies[i] = false;
            match algorithm {
                Algorithm::Propagation => {
                    // Forward received dummies on every channel not carrying
                    // data for this sequence number.
                    if consumed_dummy && !sent {
                        self.dummies[i] = true;
                        self.gap[i] = 0;
                        continue;
                    }
                    if sent && self.trigger == PropagationTrigger::OnFilterOnly {
                        self.gap[i] = 0;
                        continue;
                    }
                    self.gap[i] += 1;
                    if self.gap[i] >= self.threshold[i] {
                        self.dummies[i] = true;
                        self.gap[i] = 0;
                    }
                }
                Algorithm::NonPropagation => {
                    if sent {
                        self.gap[i] = 0;
                        continue;
                    }
                    self.gap[i] += 1;
                    if self.gap[i] >= self.threshold[i] {
                        self.dummies[i] = true;
                        self.gap[i] = 0;
                    }
                }
            }
        }
        &self.dummies
    }

    /// Processes a run of `n` consecutive accepted sequence numbers at which
    /// the node consumed **only dummies** (so no output carries data and
    /// every acceptance had `consumed_dummy = true`), updating the gap
    /// counters by run arithmetic instead of `n` scalar calls — the
    /// threshold lookup is hoisted out of the per-message loop entirely.
    ///
    /// `emit(i, run)` is called once per output channel with what that
    /// channel must send; the result is exactly what `n` successive
    /// [`DummyWrapper::on_accept`]`(true, |_| false)` calls would have
    /// produced.
    pub fn on_accept_dummy_run(&mut self, n: u64, mut emit: impl FnMut(usize, RunDummies)) {
        debug_assert!(n > 0);
        let Some(algorithm) = self.algorithm else {
            // Disabled mode touches no state and sends nothing.
            return;
        };
        for i in 0..self.gap.len() {
            match algorithm {
                Algorithm::Propagation => {
                    // Every acceptance consumed a dummy and carried no data,
                    // so the forwarding rule fires at each of the n numbers
                    // (under either trigger) and leaves the counter reset.
                    self.gap[i] = 0;
                    emit(i, RunDummies::All);
                }
                Algorithm::NonPropagation => {
                    let t = self.threshold[i];
                    let g = self.gap[i];
                    if t == u64::MAX || g + n < t {
                        self.gap[i] = g + n;
                        emit(i, RunDummies::None);
                    } else {
                        // First crossing after t - g silent numbers, then
                        // every t; the final counter is what accumulated
                        // after the last crossing.
                        let first = t - g - 1;
                        self.gap[i] = (n - 1 - first) % t;
                        emit(i, RunDummies::Periodic { first, period: t });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fila_avoidance::interval::IntervalMap;
    use fila_avoidance::{Planner, Rounding};
    use fila_graph::GraphBuilder;

    fn fig2() -> Graph {
        // A -> B -> C plus A -> C, the deadlock example.
        let mut b = GraphBuilder::new();
        b.edge_with_capacity("A", "B", 2).unwrap();
        b.edge_with_capacity("B", "C", 2).unwrap();
        b.edge_with_capacity("A", "C", 2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn disabled_mode_never_sends_dummies() {
        let g = fig2();
        let a = g.node_by_name("A").unwrap();
        let mut w = DummyWrapper::new(&g, a, &AvoidanceMode::Disabled);
        for _ in 0..100 {
            assert!(w.on_accept(false, |_| false).iter().all(|&d| !d));
        }
    }

    #[test]
    fn interval_counter_triggers_dummies_on_filtered_channel() {
        let g = fig2();
        let a = g.node_by_name("A").unwrap();
        let plan = Planner::new(&g).algorithm(Algorithm::Propagation).plan().unwrap();
        let mut w = DummyWrapper::with_trigger(
            &g,
            a,
            &AvoidanceMode::plan(plan.clone()),
            PropagationTrigger::OnFilterOnly,
        );
        let ac_interval = plan
            .interval(g.edge_by_names("A", "C").unwrap())
            .finite()
            .unwrap();
        // Keep sending data on A->B but filtering A->C; after `ac_interval`
        // accepted inputs a dummy is due on A->C (out index 1) and under the
        // literal trigger nothing ever fires on A->B.
        let mut fired_at = None;
        for step in 1..=ac_interval + 1 {
            let dummies = w.on_accept(false, |i| i == 0);
            assert!(!dummies[0], "data-carrying channel stays silent");
            if dummies[1] {
                fired_at = Some(step);
                break;
            }
        }
        assert_eq!(fired_at, Some(ac_interval));
        // The counter resets after the dummy.
        let dummies = w.on_accept(false, |i| i == 0);
        assert!(!dummies[1]);
    }

    #[test]
    fn heartbeat_trigger_fires_even_on_data_carrying_channels() {
        let g = fig2();
        let a = g.node_by_name("A").unwrap();
        let plan = Planner::new(&g).algorithm(Algorithm::Propagation).plan().unwrap();
        let ab_interval = plan
            .interval(g.edge_by_names("A", "B").unwrap())
            .finite()
            .unwrap();
        let mut w = DummyWrapper::with_trigger(
            &g,
            a,
            &AvoidanceMode::plan(plan),
            PropagationTrigger::Heartbeat,
        );
        let mut fired_at = None;
        for step in 1..=ab_interval + 1 {
            let dummies = w.on_accept(false, |_| true);
            if dummies[0] {
                fired_at = Some(step);
                break;
            }
        }
        assert_eq!(fired_at, Some(ab_interval));
    }

    #[test]
    fn propagation_forwards_consumed_dummies() {
        let g = fig2();
        let b = g.node_by_name("B").unwrap();
        let plan = Planner::new(&g).algorithm(Algorithm::Propagation).plan().unwrap();
        let mut w = DummyWrapper::new(&g, b, &AvoidanceMode::plan(plan));
        // B consumed a dummy and produces no data: it must forward a dummy
        // even though its own interval is infinite.
        let dummies = w.on_accept(true, |_| false);
        assert_eq!(dummies, &[true]);
        // Without a consumed dummy, B's infinite interval sends nothing.
        let dummies = w.on_accept(false, |_| false);
        assert_eq!(dummies, &[false]);
    }

    #[test]
    fn nonpropagation_does_not_forward() {
        let g = fig2();
        let b = g.node_by_name("B").unwrap();
        let plan = Planner::new(&g)
            .algorithm(Algorithm::NonPropagation)
            .rounding(Rounding::Ceil)
            .plan()
            .unwrap();
        let mut w = DummyWrapper::new(&g, b, &AvoidanceMode::plan(plan.clone()));
        // Consuming a dummy does not force forwarding under Non-Propagation;
        // only B's own finite interval (if any) matters.
        let bc = g.edge_by_names("B", "C").unwrap();
        let expect_dummy = plan.interval(bc) == DummyInterval::Finite(1);
        let dummies = w.on_accept(true, |_| false);
        assert_eq!(dummies, &[expect_dummy]);
    }

    #[test]
    fn nonpropagation_data_resets_gap_counter() {
        let g = fig2();
        let a = g.node_by_name("A").unwrap();
        // Hand-made plan with interval 3 on both outputs.
        let mut m = IntervalMap::for_graph(&g);
        for e in g.out_edges(a) {
            m.set(*e, DummyInterval::Finite(3));
        }
        let plan = AvoidancePlan::new(&g, Algorithm::NonPropagation, Rounding::Ceil, m);
        let mut w = DummyWrapper::new(&g, a, &AvoidanceMode::plan(plan));
        // Filter twice, send data, filter twice more: no dummy yet (counter
        // reset by the data message), then one more filtered input fires it.
        assert!(!w.on_accept(false, |i| i == 1)[0]);
        assert!(!w.on_accept(false, |i| i == 1)[0]);
        assert!(!w.on_accept(false, |_| true)[0]);
        assert!(!w.on_accept(false, |i| i == 1)[0]);
        assert!(!w.on_accept(false, |i| i == 1)[0]);
        assert!(w.on_accept(false, |i| i == 1)[0]);
    }

    #[test]
    fn dummy_run_arithmetic_matches_scalar_calls() {
        // One run-level call must leave the counters and emissions exactly
        // where n scalar on_accept(true, no-data) calls would.
        let g = fig2();
        let a = g.node_by_name("A").unwrap();
        for algorithm in [Algorithm::Propagation, Algorithm::NonPropagation] {
            for threshold in [2u64, 3, 7] {
                let mut m = IntervalMap::for_graph(&g);
                for e in g.out_edges(a) {
                    m.set(*e, DummyInterval::Finite(threshold));
                }
                let plan = AvoidancePlan::new(&g, algorithm, Rounding::Ceil, m);
                let mode = AvoidanceMode::plan(plan);
                for warmup in 0..threshold {
                    for n in [1u64, 2, 5, 16] {
                        let mut scalar = DummyWrapper::new(&g, a, &mode);
                        let mut run = DummyWrapper::new(&g, a, &mode);
                        // Build a non-zero starting gap (warmup < threshold,
                        // so nothing fires yet).
                        for _ in 0..warmup {
                            scalar.on_accept(false, |_| false);
                            run.on_accept(false, |_| false);
                        }
                        let mut want: Vec<Vec<u64>> =
                            vec![Vec::new(); scalar.outputs()];
                        for k in 0..n {
                            let d = scalar.on_accept(true, |_| false).to_vec();
                            for (i, &fire) in d.iter().enumerate() {
                                if fire {
                                    want[i].push(k);
                                }
                            }
                        }
                        let mut got: Vec<Vec<u64>> = vec![Vec::new(); run.outputs()];
                        run.on_accept_dummy_run(n, |i, rd| match rd {
                            RunDummies::None => {}
                            RunDummies::All => got[i].extend(0..n),
                            RunDummies::Periodic { first, period } => {
                                let mut p = first;
                                while p < n {
                                    got[i].push(p);
                                    p += period;
                                }
                            }
                        });
                        assert_eq!(
                            got, want,
                            "{algorithm}: threshold={threshold} warmup={warmup} n={n}"
                        );
                        assert_eq!(
                            run.gaps(),
                            scalar.gaps(),
                            "{algorithm}: threshold={threshold} warmup={warmup} n={n}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn dummy_run_in_disabled_mode_is_inert() {
        let g = fig2();
        let a = g.node_by_name("A").unwrap();
        let mut w = DummyWrapper::new(&g, a, &AvoidanceMode::Disabled);
        w.on_accept_dummy_run(10, |_, _| panic!("disabled mode must emit nothing"));
        assert!(w.gaps().iter().all(|&g| g == 0));
    }

    #[test]
    fn infinite_intervals_never_fire() {
        let g = fig2();
        let b = g.node_by_name("B").unwrap();
        let plan = Planner::new(&g).algorithm(Algorithm::Propagation).plan().unwrap();
        // B -> C never lies first on a cycle branch out of a fork, so its
        // interval is infinite and no heartbeat is emitted.
        let mut w = DummyWrapper::new(&g, b, &AvoidanceMode::plan(plan));
        for _ in 0..1000 {
            assert_eq!(w.on_accept(false, |_| true), &[false]);
        }
    }
}
