//! The per-node task core shared by the pooled execution engines.
//!
//! A [`Task`] is everything one compute node needs to run cooperatively on a
//! worker pool: its behaviour, its dummy wrapper, the owned endpoints of its
//! input and output rings, the two-slot output staging queues, and the
//! per-node progress counters.  The stepping functions in this module mirror
//! [`crate::Simulator`]'s per-node semantics exactly (same acceptance rule,
//! same per-channel independent delivery), so every engine built on them is
//! confluent to the same terminal state as the simulator.
//!
//! Two engines share this core:
//!
//! * [`crate::PooledExecutor`] — one run, one topology, a scoped worker pool
//!   that exits when the run reaches a verdict;
//! * [`crate::SharedPool`] — a long-lived pool executing the tasks of many
//!   independent jobs side by side in the same run queues.
//!
//! The engines differ only in *scheduling policy* (how tasks are queued,
//! woken and how verdicts are detected); everything a task does while it
//! holds a worker lives here.

use std::sync::Mutex;

use fila_graph::NodeId;

use crate::checkpoint::NodeSnapshot;
use crate::message::{Message, Payload};
use crate::node::{FireDecision, FireInput, NodeBehavior};
use crate::report::{BlockedInfo, BlockedReason, ExecutionReport};
use crate::spsc;
use crate::threaded::PortQueue;
use crate::topology::Topology;
use crate::wrapper::{AvoidanceMode, DummyWrapper, PropagationTrigger};

/// One input channel of a task.
pub(crate) struct InPort {
    pub(crate) rx: spsc::Consumer<Message>,
    pub(crate) edge: u32,
    /// Node index of the channel's producer (the task to wake when a pop
    /// makes the channel non-full).
    pub(crate) producer: u32,
}

/// One output channel of a task, with its two-slot staging queue and the
/// producer-side delivery counters (each edge has exactly one producer, so
/// the counters need no atomics).
pub(crate) struct OutPort {
    pub(crate) tx: spsc::Producer<Message>,
    pub(crate) edge: u32,
    /// Node index of the channel's consumer (the task to wake when a push
    /// makes the channel non-empty).
    pub(crate) consumer: u32,
    pub(crate) queue: PortQueue,
    pub(crate) data: u64,
    pub(crate) dummies: u64,
}

/// The per-node task state: everything [`crate::Simulator`] keeps per node,
/// plus the owned channel endpoints.
pub(crate) struct Task {
    pub(crate) is_source: bool,
    pub(crate) done: bool,
    pub(crate) eos_queued: bool,
    pub(crate) next_source_seq: u64,
    /// Messages currently staged across all output port queues.
    pub(crate) staged: usize,
    pub(crate) behavior: Box<dyn NodeBehavior>,
    pub(crate) wrapper: DummyWrapper,
    pub(crate) ins: Vec<InPort>,
    pub(crate) outs: Vec<OutPort>,
    /// Reusable per-firing scratch, aligned with `ins`.
    pub(crate) data_in: Vec<Option<Payload>>,
    pub(crate) firings: u64,
    pub(crate) sink_firings: u64,
    /// Epoch of the last barrier snapshot this task contributed to (0 =
    /// never); guarded by the task mutex like the rest of the state.
    pub(crate) snap_epoch: u64,
}

impl Task {
    /// Diagnoses what this (blocked, not-done) task is waiting on: a full
    /// output channel wins over an empty input (undelivered staged messages
    /// block everything else), mirroring the deadlock report's per-node
    /// diagnosis.  `None` if neither applies (e.g. the task is done).
    pub(crate) fn blocked_on(&self) -> Option<BlockedReason> {
        if let Some(port) = self.outs.iter().find(|p| p.queue.front().is_some()) {
            return Some(BlockedReason::WaitingForSpace(edge_id(port.edge)));
        }
        self.ins
            .iter()
            .find(|p| p.rx.is_empty())
            .map(|port| BlockedReason::WaitingForInput(edge_id(port.edge)))
    }
}

/// A pending barrier snapshot, as seen from inside [`run_task`].
///
/// The [`crate::SharedPool`] implements this for its per-job snapshot
/// collection state (see `shared_pool`): `pending()` returns the epoch of
/// the snapshot being collected (0 = none — the fast path is one atomic
/// load per firing), `barrier()` the barrier sequence number `k`, and
/// `contribute` captures the task's state into the collection buffer.  The
/// caller always holds the task mutex when invoking `contribute`.
pub(crate) trait SnapSink {
    fn pending(&self) -> u64;
    fn barrier(&self) -> u64;
    fn contribute(&self, task: &mut Task);
}

/// Contributes `task` to a pending snapshot if it is *already aligned*
/// without consuming anything further: it is done, has queued its EOS
/// markers (both mean its remaining work touches no pre-barrier sequence
/// number), or is a source whose cursor reached the barrier **with nothing
/// left in its staging queues** — staged pre-barrier messages must be
/// delivered (and counted at the consumer's own alignment) before the
/// source's counters are frozen, or the restore would re-deliver them to a
/// consumer that already processed them.  Tasks aligned mid-stream are
/// caught by the acceptance-time check in [`step`] instead.
fn contribute_if_aligned(task: &mut Task, snap: &dyn SnapSink) {
    let epoch = snap.pending();
    if epoch == 0 || task.snap_epoch == epoch {
        return;
    }
    if task.done
        || task.eos_queued
        || (task.is_source && task.staged == 0 && task.next_source_seq >= snap.barrier())
    {
        task.snap_epoch = epoch;
        snap.contribute(task);
    }
}

/// Destructively captures a task's **verbatim** final state for a wreck
/// snapshot ([`crate::shared_pool::JobHandle::salvage`]): out-port delivery
/// counters, staged messages, wrapper gaps, and — unlike the aligned
/// barrier capture in [`SnapSink::contribute`] — the task's *input* rings,
/// drained message by message into the per-edge channel buffers.  No EOS
/// is inferred: a delivered EOS marker is still sitting in the consumer's
/// ring (consumers never pop EOS) and is captured literally by the drain.
///
/// The result is not a consistent cut: a job that died mid-flight has
/// tasks at unrelated sequence numbers.  It is exactly the raw material a
/// partial restart splices against a consistent base snapshot
/// ([`crate::checkpoint::JobSnapshot::splice_downstream`]).
pub(crate) fn capture_wreck(
    task: &mut Task,
    per_edge_data: &mut [u64],
    per_edge_dummies: &mut [u64],
    channels: &mut [Vec<Message>],
) -> NodeSnapshot {
    for port in &task.outs {
        per_edge_data[port.edge as usize] = port.data;
        per_edge_dummies[port.edge as usize] = port.dummies;
    }
    for port in &mut task.ins {
        let buf = &mut channels[port.edge as usize];
        while let Some(message) = port.rx.pop() {
            buf.push(message);
        }
    }
    NodeSnapshot {
        gaps: task.wrapper.gaps().to_vec(),
        next_source_seq: task.next_source_seq,
        eos_queued: task.eos_queued,
        done: task.done,
        firings: task.firings,
        sink_firings: task.sink_firings,
        staged: task
            .outs
            .iter()
            .flat_map(|port| {
                [port.queue.first, port.queue.second]
                    .into_iter()
                    .flatten()
                    .map(move |m| (port.edge, m))
            })
            .collect(),
    }
}

/// What a task run ended with.
pub(crate) enum Outcome {
    /// The node reached end-of-stream and drained its outputs.
    Done,
    /// The batch limit was hit while the task could still progress.
    Yielded,
    /// The task cannot progress until a channel event wakes it (its waiting
    /// flags are registered).
    Blocked,
}

/// Builds one [`Task`] per node of `topology`: an SPSC ring per edge with
/// the endpoints moved into the unique producing / consuming task, a fresh
/// behaviour instance per node, and the per-node dummy-wrapper state for
/// `mode`/`trigger`.
pub(crate) fn build_tasks(
    topology: &Topology,
    mode: &AvoidanceMode,
    trigger: PropagationTrigger,
) -> Vec<Task> {
    let g = topology.graph();
    let edge_count = g.edge_count();
    let mut producers: Vec<Option<spsc::Producer<Message>>> = Vec::with_capacity(edge_count);
    let mut consumers: Vec<Option<spsc::Consumer<Message>>> = Vec::with_capacity(edge_count);
    for e in g.edge_ids() {
        let (tx, rx) = spsc::ring(g.capacity(e) as usize);
        producers.push(Some(tx));
        consumers.push(Some(rx));
    }
    g.node_ids()
        .zip(topology.build_behaviors())
        .map(|(n, behavior)| {
            let ins = g
                .in_edges(n)
                .iter()
                .map(|&e| InPort {
                    rx: consumers[e.index()].take().expect("one consumer per edge"),
                    edge: e.index() as u32,
                    producer: g.tail(e).index() as u32,
                })
                .collect::<Vec<_>>();
            let outs = g
                .out_edges(n)
                .iter()
                .map(|&e| OutPort {
                    tx: producers[e.index()].take().expect("one producer per edge"),
                    edge: e.index() as u32,
                    consumer: g.head(e).index() as u32,
                    queue: PortQueue::default(),
                    data: 0,
                    dummies: 0,
                })
                .collect::<Vec<_>>();
            let data_in = vec![None; ins.len()];
            Task {
                is_source: ins.is_empty(),
                done: false,
                eos_queued: false,
                next_source_seq: 0,
                staged: 0,
                behavior,
                wrapper: DummyWrapper::with_trigger(g, n, mode, trigger),
                ins,
                outs,
                data_in,
                firings: 0,
                sink_firings: 0,
                snap_epoch: 0,
            }
        })
        .collect()
}

/// Runs one task for up to `batch` firings.  `wake` receives the node index
/// of every peer task a channel event of this run made runnable.  `snap`,
/// when present, is checked before every firing (and at acceptance time
/// inside [`step`]) so a task never crosses a pending snapshot barrier
/// without contributing its aligned state first.
pub(crate) fn run_task(
    task: &mut Task,
    inputs: u64,
    batch: u32,
    wake: &mut dyn FnMut(u32),
    snap: Option<&dyn SnapSink>,
) -> Outcome {
    let mut fired = 0;
    while fired < batch {
        if let Some(snap) = snap {
            contribute_if_aligned(task, snap);
        }
        if task.done {
            return Outcome::Done;
        }
        if !step(task, inputs, wake, snap) {
            return Outcome::Blocked;
        }
        fired += 1;
    }
    if let Some(snap) = snap {
        contribute_if_aligned(task, snap);
    }
    if task.done {
        Outcome::Done
    } else {
        Outcome::Yielded
    }
}

/// Attempts one unit of progress on a task; mirrors `Simulator`'s per-node
/// step exactly (same acceptance rule, same per-channel independent
/// delivery), so all engines are confluent to the same terminal state.
fn step(
    task: &mut Task,
    inputs: u64,
    wake: &mut dyn FnMut(u32),
    snap: Option<&dyn SnapSink>,
) -> bool {
    // Phase 1: flush staged outputs; a node with undelivered messages does
    // nothing else (mirrors a blocking send).
    if flush(task, wake) {
        return true;
    }
    if task.staged > 0 {
        // Still blocked on some full channel; `flush` registered the
        // producer waiting flags.
        return false;
    }
    if task.done {
        return false;
    }
    if task.is_source {
        return step_source(task, inputs, wake);
    }

    // Interior / sink: find the acceptance sequence number, registering a
    // waiting flag on the first empty input (if that channel never fills,
    // the node cannot progress no matter what the others do).
    let mut accept_seq = u64::MAX;
    for port in &task.ins {
        match port.rx.front_or_register() {
            Some(head) => accept_seq = accept_seq.min(head.seq()),
            None => return false,
        }
    }
    // Alignment check for interior nodes: the next acceptance would cross
    // the snapshot barrier (EOS included — its sequence number is maximal),
    // so this task's state — having consumed exactly the pre-barrier prefix
    // of every input — belongs to the snapshot *now*, before consuming.
    if let Some(snap) = snap {
        let epoch = snap.pending();
        if epoch != 0 && task.snap_epoch != epoch && accept_seq >= snap.barrier() {
            task.snap_epoch = epoch;
            snap.contribute(task);
        }
    }
    if accept_seq == u64::MAX {
        // End of stream on every input.
        for port in &mut task.outs {
            debug_assert_eq!(port.queue.len(), 0);
            port.queue.first = Some(Message::Eos);
            task.staged += 1;
        }
        task.eos_queued = true;
        flush(task, wake);
        mark_done_if_drained(task);
        return true;
    }

    // Consume every head carrying the accepted sequence number.
    task.data_in.fill(None);
    let mut consumed_dummy = false;
    for (idx, port) in task.ins.iter_mut().enumerate() {
        let head = port.rx.front().expect("all heads checked non-empty");
        if head.seq() != accept_seq {
            continue;
        }
        port.rx.pop();
        if port.rx.take_producer_waiting() {
            wake(port.producer);
        }
        match head {
            Message::Data { payload, .. } => task.data_in[idx] = Some(payload),
            Message::Dummy { .. } => consumed_dummy = true,
            Message::Eos => unreachable!("EOS has maximal sequence number"),
        }
    }

    if task.data_in.iter().any(Option::is_some) {
        if task.outs.is_empty() {
            task.sink_firings += 1;
        }
        task.firings += 1;
        let Task {
            behavior, data_in, ..
        } = task;
        let decision = behavior.fire(&FireInput {
            seq: accept_seq,
            data_in,
        });
        queue_outputs(task, accept_seq, Some(&decision), consumed_dummy);
    } else {
        // Only dummies were consumed: no behaviour call, no data out.
        queue_outputs(task, accept_seq, None, consumed_dummy);
    }
    flush(task, wake);
    mark_done_if_drained(task);
    true
}

fn step_source(task: &mut Task, inputs: u64, wake: &mut dyn FnMut(u32)) -> bool {
    if task.next_source_seq < inputs {
        let seq = task.next_source_seq;
        task.next_source_seq += 1;
        task.firings += 1;
        let decision = task.behavior.fire(&FireInput { seq, data_in: &[] });
        queue_outputs(task, seq, Some(&decision), false);
        flush(task, wake);
        return true;
    }
    if !task.eos_queued {
        task.eos_queued = true;
        for port in &mut task.outs {
            debug_assert_eq!(port.queue.len(), 0);
            port.queue.first = Some(Message::Eos);
            task.staged += 1;
        }
        flush(task, wake);
        mark_done_if_drained(task);
        return true;
    }
    mark_done_if_drained(task);
    false
}

/// Delivers as many staged outputs as ring capacities allow; FIFO per
/// channel, channels independent.  Registers the producer waiting flag
/// (with the mandatory retry) on every channel that stays full, and wakes
/// the consumer of every channel this delivery made non-empty.
fn flush(task: &mut Task, wake: &mut dyn FnMut(u32)) -> bool {
    if task.staged == 0 {
        return false;
    }
    let mut delivered = false;
    for port in &mut task.outs {
        while let Some(message) = port.queue.front() {
            if port.tx.push_or_register(message).is_err() {
                // Port still full; the registration stays active and the
                // consumer's next pop wakes this task.
                break;
            }
            port.queue.pop_front();
            task.staged -= 1;
            delivered = true;
            match message {
                Message::Data { .. } => port.data += 1,
                Message::Dummy { .. } => port.dummies += 1,
                Message::Eos => {}
            }
            if port.tx.take_consumer_waiting() {
                wake(port.consumer);
            }
        }
    }
    if delivered {
        mark_done_if_drained(task);
    }
    delivered
}

fn mark_done_if_drained(task: &mut Task) {
    if task.eos_queued && task.staged == 0 {
        task.done = true;
    }
}

/// Stages the data and dummy messages produced for one accepted sequence
/// number (`decision` is `None` when the node consumed only dummies and
/// emits no data).
fn queue_outputs(
    task: &mut Task,
    seq: u64,
    decision: Option<&FireDecision>,
    consumed_dummy: bool,
) {
    let Task {
        wrapper,
        outs,
        staged,
        ..
    } = task;
    let dummies = wrapper.on_accept(consumed_dummy, |i| {
        decision.is_some_and(|d| d.emit[i].is_some())
    });
    for (idx, port) in outs.iter_mut().enumerate() {
        debug_assert_eq!(port.queue.len(), 0);
        port.queue.first = decision
            .and_then(|d| d.emit[idx])
            .map(|payload| Message::Data { seq, payload });
        // Under the heartbeat trigger a dummy may accompany a data message
        // carrying the same sequence number.
        port.queue.second = dummies[idx].then_some(Message::Dummy { seq });
        *staged += port.queue.len();
    }
}

/// Assembles the [`ExecutionReport`] of a finished (or deadlocked) task set:
/// per-edge delivery counters, firing totals and — for deadlocks — the
/// blocked-node diagnoses, exactly as [`crate::PooledExecutor`] has always
/// reported them.
pub(crate) fn assemble_report(
    tasks: &[Mutex<Task>],
    edge_count: usize,
    inputs: u64,
    deadlocked: bool,
) -> ExecutionReport {
    let mut report = ExecutionReport {
        completed: !deadlocked,
        deadlocked,
        inputs_offered: inputs,
        per_edge_data: vec![0; edge_count],
        per_edge_dummies: vec![0; edge_count],
        per_node_firings: vec![0; tasks.len()],
        ..Default::default()
    };
    for (idx, task) in tasks.iter().enumerate() {
        // Tolerate poisoning: a panicked behaviour may have left its task
        // mutex poisoned, but the counters are still meaningful.
        let task = task
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        report.steps += task.firings;
        report.per_node_firings[idx] = task.firings;
        report.sink_firings += task.sink_firings;
        for port in &task.outs {
            report.per_edge_data[port.edge as usize] = port.data;
            report.per_edge_dummies[port.edge as usize] = port.dummies;
        }
        if deadlocked && !task.done {
            if let Some(reason) = task.blocked_on() {
                report.blocked.push(BlockedInfo {
                    node: NodeId::from_raw(idx as u32),
                    reason,
                });
            }
        }
    }
    report.data_messages = report.per_edge_data.iter().sum();
    report.dummy_messages = report.per_edge_dummies.iter().sum();
    report
}

fn edge_id(raw: u32) -> fila_graph::EdgeId {
    fila_graph::EdgeId::from_raw(raw)
}
