//! The per-node task core shared by the pooled execution engines.
//!
//! A [`Task`] is everything one compute node needs to run cooperatively on a
//! worker pool: its behaviour, its dummy wrapper, the owned endpoints of its
//! input and output rings, the two-slot output staging queues, and the
//! per-node progress counters.  The stepping functions in this module mirror
//! [`crate::Simulator`]'s per-node semantics exactly (same acceptance rule,
//! same per-channel independent delivery), so every engine built on them is
//! confluent to the same terminal state as the simulator.
//!
//! Two engines share this core:
//!
//! * [`crate::PooledExecutor`] — one run, one topology, a scoped worker pool
//!   that exits when the run reaches a verdict;
//! * [`crate::SharedPool`] — a long-lived pool executing the tasks of many
//!   independent jobs side by side in the same run queues.
//!
//! The engines differ only in *scheduling policy* (how tasks are queued,
//! woken and how verdicts are detected); everything a task does while it
//! holds a worker lives here.
//!
//! ## Containers and the two step policies
//!
//! Since the [`crate::container`] refactor a task is generic over the
//! [`Container`] its rings carry, and the run loop is chosen by
//! [`StepPolicy`]:
//!
//! * [`Single`] steps **one message at a time** — the scalar path, operation
//!   for operation the engine as it existed before containers;
//! * [`Batch`] drains **whole runs** between scheduler interactions: one
//!   acceptance scan per run, bulk consumption of RLE dummy runs with the
//!   wrapper's run arithmetic, one producer-wake check per input per run,
//!   and one ring push per staged container.
//!
//! Batching never changes semantics: capacity is accounted in *messages*
//! (see [`crate::spsc::MsgCap`]), staging is allowed only while everything
//! already staged is deliverable — preserving the scalar engine's exactly
//! one-firing overshoot on a full channel — and the Kahn-network confluence
//! of the model does the rest: verdicts, per-edge counts and checkpoint
//! barriers are identical across policies.

use std::sync::Mutex;

use fila_graph::NodeId;

use crate::checkpoint::NodeSnapshot;
use crate::container::{Batch, Batching, Container, ConsumeMsgs, DeliverMsgs, Run, Single};
use crate::message::{Message, Payload};
use crate::node::{FireInput, NodeBehavior};
use crate::report::{BlockedInfo, BlockedReason, ExecutionReport};
use crate::spsc::{self, MsgCap};
use crate::topology::Topology;
use crate::wrapper::{AvoidanceMode, DummyWrapper, PropagationTrigger, RunDummies};

/// The two-slot output staging area of one port, generalised to containers.
///
/// `first` is the older container; `second` exists only when a message could
/// not extend `first` (container at its limit, or — for [`Single`], which
/// never extends — the dummy accompanying a data message of the same
/// firing).  For `Single` this is exactly the historical data-then-dummy
/// staging pair.
pub(crate) struct Stage<C> {
    pub(crate) first: Option<C>,
    pub(crate) second: Option<C>,
}

impl<C> Default for Stage<C> {
    fn default() -> Self {
        Stage {
            first: None,
            second: None,
        }
    }
}

impl<C: Container> Stage<C> {
    /// Staged messages (not containers).
    pub(crate) fn len(&self) -> usize {
        self.first.as_ref().map_or(0, C::len) + self.second.as_ref().map_or(0, C::len)
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.first.is_none() && self.second.is_none()
    }

    /// Appends one message to the newest staged container, opening a second
    /// container when the newest cannot take it.  The run loops bound
    /// staging by `limit` *before* accepting, so the overflow chain never
    /// exceeds two containers.
    pub(crate) fn stage(&mut self, limit: usize, m: Message) {
        let m = if let Some(c) = &mut self.second {
            match c.try_push(limit, m) {
                Ok(()) => return,
                Err(_) => unreachable!("staging past the bounded overflow container"),
            }
        } else if let Some(c) = &mut self.first {
            match c.try_push(limit, m) {
                Ok(()) => return,
                Err(m) => m,
            }
        } else {
            self.first = Some(C::from_message(m));
            return;
        };
        self.second = Some(C::from_message(m));
    }

    /// Visits every staged message front to back (checkpoint flattening).
    pub(crate) fn for_each(&self, f: &mut dyn FnMut(Message)) {
        if let Some(c) = &self.first {
            c.for_each(f);
        }
        if let Some(c) = &self.second {
            c.for_each(f);
        }
    }
}

/// One input channel of a task.
pub(crate) struct InPort<C: Container> {
    pub(crate) rx: spsc::Consumer<C>,
    pub(crate) edge: u32,
    /// Node index of the channel's producer (the task to wake when a pop
    /// makes the channel non-full).
    pub(crate) producer: u32,
    /// Batched-run scratch: set when the current run consumed from this
    /// port, so the producer waiting flag is checked once per run instead of
    /// once per message (always false between runs).
    touched: bool,
}

/// One output channel of a task, with its staging queue and the
/// producer-side delivery counters (each edge has exactly one producer, so
/// the counters need no atomics).
pub(crate) struct OutPort<C: Container> {
    pub(crate) tx: spsc::Producer<C>,
    pub(crate) edge: u32,
    /// Node index of the channel's consumer (the task to wake when a push
    /// makes the channel non-empty).
    pub(crate) consumer: u32,
    pub(crate) queue: Stage<C>,
    /// Messages a staged container may hold: the batching limit clamped to
    /// the edge capacity, so a full container always fits its ring.
    pub(crate) limit: usize,
    pub(crate) data: u64,
    pub(crate) dummies: u64,
}

/// The per-node task state: everything [`crate::Simulator`] keeps per node,
/// plus the owned channel endpoints.
pub(crate) struct Task<C: Container> {
    pub(crate) is_source: bool,
    pub(crate) done: bool,
    pub(crate) eos_queued: bool,
    pub(crate) next_source_seq: u64,
    /// Messages currently staged across all output port queues.
    pub(crate) staged: usize,
    pub(crate) behavior: Box<dyn NodeBehavior>,
    pub(crate) wrapper: DummyWrapper,
    pub(crate) ins: Vec<InPort<C>>,
    pub(crate) outs: Vec<OutPort<C>>,
    /// Reusable per-firing scratch, aligned with `ins`.
    pub(crate) data_in: Vec<Option<Payload>>,
    /// Reusable per-firing decision scratch, aligned with `outs` (filled by
    /// [`NodeBehavior::fire_into`], read by the staging loop).
    pub(crate) emit: Vec<Option<Payload>>,
    pub(crate) firings: u64,
    pub(crate) sink_firings: u64,
    /// Epoch of the last barrier snapshot this task contributed to (0 =
    /// never); guarded by the task mutex like the rest of the state.
    pub(crate) snap_epoch: u64,
}

impl<C: Container> Task<C> {
    /// Diagnoses what this (blocked, not-done) task is waiting on: a full
    /// output channel wins over an empty input (undelivered staged messages
    /// block everything else), mirroring the deadlock report's per-node
    /// diagnosis.  `None` if neither applies (e.g. the task is done).
    pub(crate) fn blocked_on(&self) -> Option<BlockedReason> {
        if let Some(port) = self.outs.iter().find(|p| !p.queue.is_empty()) {
            return Some(BlockedReason::WaitingForSpace(edge_id(port.edge)));
        }
        self.ins
            .iter()
            .find(|p| p.rx.is_empty())
            .map(|port| BlockedReason::WaitingForInput(edge_id(port.edge)))
    }

    /// Total messages this task has delivered onto its output rings (EOS
    /// markers excluded) — the basis of per-slice telemetry attribution.
    pub(crate) fn delivered(&self) -> u64 {
        self.outs.iter().map(|p| p.data + p.dummies).sum()
    }
}

/// A pending barrier snapshot, as seen from inside [`run_task`].
///
/// The [`crate::SharedPool`] implements this for its per-job snapshot
/// collection state (see `shared_pool`): `pending()` returns the epoch of
/// the snapshot being collected (0 = none — the fast path is one atomic
/// load per firing), `barrier()` the barrier sequence number `k`, and
/// `contribute` captures the task's state into the collection buffer.  The
/// caller always holds the task mutex when invoking `contribute`.
pub(crate) trait SnapSink<C: Container> {
    fn pending(&self) -> u64;
    fn barrier(&self) -> u64;
    fn contribute(&self, task: &mut Task<C>);
}

/// Contributes `task` to a pending snapshot if it is *already aligned*
/// without consuming anything further: it is done, has queued its EOS
/// markers (both mean its remaining work touches no pre-barrier sequence
/// number), or is a source whose cursor reached the barrier **with nothing
/// left in its staging queues** — staged pre-barrier messages must be
/// delivered (and counted at the consumer's own alignment) before the
/// source's counters are frozen, or the restore would re-deliver them to a
/// consumer that already processed them.  Tasks aligned mid-stream are
/// caught by the acceptance-time check in [`step`] instead.
fn contribute_if_aligned<C: Container>(task: &mut Task<C>, snap: &dyn SnapSink<C>) {
    let epoch = snap.pending();
    if epoch == 0 || task.snap_epoch == epoch {
        return;
    }
    if task.done
        || task.eos_queued
        || (task.is_source && task.staged == 0 && task.next_source_seq >= snap.barrier())
    {
        task.snap_epoch = epoch;
        snap.contribute(task);
    }
}

/// Destructively captures a task's **verbatim** final state for a wreck
/// snapshot ([`crate::shared_pool::JobHandle::salvage`]): out-port delivery
/// counters, staged messages, wrapper gaps, and — unlike the aligned
/// barrier capture in [`SnapSink::contribute`] — the task's *input* rings,
/// drained (containers flattened back to messages) into the per-edge
/// channel buffers.  No EOS is inferred: a delivered EOS marker is still
/// sitting in the consumer's ring (consumers never pop EOS) and is captured
/// literally by the drain.
///
/// The result is not a consistent cut: a job that died mid-flight has
/// tasks at unrelated sequence numbers.  It is exactly the raw material a
/// partial restart splices against a consistent base snapshot
/// ([`crate::checkpoint::JobSnapshot::splice_downstream`]).
pub(crate) fn capture_wreck<C: Container>(
    task: &mut Task<C>,
    per_edge_data: &mut [u64],
    per_edge_dummies: &mut [u64],
    channels: &mut [Vec<Message>],
) -> NodeSnapshot {
    for port in &task.outs {
        per_edge_data[port.edge as usize] = port.data;
        per_edge_dummies[port.edge as usize] = port.dummies;
    }
    for port in &mut task.ins {
        let buf = &mut channels[port.edge as usize];
        while let Some(container) = port.rx.pop() {
            container.for_each(&mut |m| buf.push(m));
        }
    }
    let mut staged = Vec::new();
    for port in &task.outs {
        port.queue.for_each(&mut |m| staged.push((port.edge, m)));
    }
    NodeSnapshot {
        gaps: task.wrapper.gaps().to_vec(),
        next_source_seq: task.next_source_seq,
        eos_queued: task.eos_queued,
        done: task.done,
        firings: task.firings,
        sink_firings: task.sink_firings,
        staged,
    }
}

/// What a task run ended with.
pub(crate) enum Outcome {
    /// The node reached end-of-stream and drained its outputs.
    Done,
    /// The batch limit was hit while the task could still progress.
    Yielded,
    /// The task cannot progress until a channel event wakes it (its waiting
    /// flags are registered).
    Blocked,
}

/// Builds one [`Task`] per node of `topology`: an SPSC ring per edge with
/// the endpoints moved into the unique producing / consuming task, a fresh
/// behaviour instance per node, and the per-node dummy-wrapper state for
/// `mode`/`trigger`.  `batching` sets the per-container message limit
/// (clamped per edge to the channel capacity).
pub(crate) fn build_tasks<C: Container>(
    topology: &Topology,
    mode: &AvoidanceMode,
    trigger: PropagationTrigger,
    batching: Batching,
) -> Vec<Task<C>> {
    let g = topology.graph();
    let edge_count = g.edge_count();
    let limit = batching.limit();
    let mut producers: Vec<Option<spsc::Producer<C>>> = Vec::with_capacity(edge_count);
    let mut consumers: Vec<Option<spsc::Consumer<C>>> = Vec::with_capacity(edge_count);
    for e in g.edge_ids() {
        // Channel capacity is modelled in messages; `MsgCap` keeps the unit
        // explicit at every ring construction site.
        let (tx, rx) = spsc::ring(MsgCap::new(g.capacity(e) as usize));
        producers.push(Some(tx));
        consumers.push(Some(rx));
    }
    g.node_ids()
        .zip(topology.build_behaviors())
        .map(|(n, behavior)| {
            let ins = g
                .in_edges(n)
                .iter()
                .map(|&e| InPort {
                    rx: consumers[e.index()].take().expect("one consumer per edge"),
                    edge: e.index() as u32,
                    producer: g.tail(e).index() as u32,
                    touched: false,
                })
                .collect::<Vec<_>>();
            let outs = g
                .out_edges(n)
                .iter()
                .map(|&e| OutPort {
                    tx: producers[e.index()].take().expect("one producer per edge"),
                    edge: e.index() as u32,
                    consumer: g.head(e).index() as u32,
                    queue: Stage::default(),
                    limit: limit.min(g.capacity(e) as usize),
                    data: 0,
                    dummies: 0,
                })
                .collect::<Vec<_>>();
            let data_in = vec![None; ins.len()];
            let emit = vec![None; outs.len()];
            Task {
                is_source: ins.is_empty(),
                done: false,
                eos_queued: false,
                next_source_seq: 0,
                staged: 0,
                behavior,
                wrapper: DummyWrapper::with_trigger(g, n, mode, trigger),
                ins,
                outs,
                data_in,
                emit,
                firings: 0,
                sink_firings: 0,
                snap_epoch: 0,
            }
        })
        .collect()
}

/// How a task's run loop consumes its containers.
///
/// The scalar policy ([`Single`]) performs one message per iteration —
/// operation for operation the engine as it existed before containers; the
/// batched policy ([`Batch`]) drains whole runs between scheduler
/// interactions.  Confluence of the model makes the two produce identical
/// verdicts and per-edge counts.
pub(crate) trait StepPolicy: Container {
    fn run_slice(
        task: &mut Task<Self>,
        inputs: u64,
        batch: u32,
        wake: &mut dyn FnMut(u32),
        snap: Option<&dyn SnapSink<Self>>,
    ) -> Outcome
    where
        Self: Sized;
}

impl StepPolicy for Single {
    fn run_slice(
        task: &mut Task<Self>,
        inputs: u64,
        batch: u32,
        wake: &mut dyn FnMut(u32),
        snap: Option<&dyn SnapSink<Self>>,
    ) -> Outcome {
        run_scalar(task, inputs, batch, wake, snap)
    }
}

impl StepPolicy for Batch {
    fn run_slice(
        task: &mut Task<Self>,
        inputs: u64,
        batch: u32,
        wake: &mut dyn FnMut(u32),
        snap: Option<&dyn SnapSink<Self>>,
    ) -> Outcome {
        run_batched(task, inputs, batch, wake, snap)
    }
}

/// Runs one task for up to `batch` accepted sequence numbers.  `wake`
/// receives the node index of every peer task a channel event of this run
/// made runnable.  `snap`, when present, is checked before every firing
/// (and at acceptance time inside [`step`]) so a task never crosses a
/// pending snapshot barrier without contributing its aligned state first.
pub(crate) fn run_task<C: StepPolicy>(
    task: &mut Task<C>,
    inputs: u64,
    batch: u32,
    wake: &mut dyn FnMut(u32),
    snap: Option<&dyn SnapSink<C>>,
) -> Outcome {
    C::run_slice(task, inputs, batch, wake, snap)
}

/// The scalar run loop: one [`step`] per iteration, exactly the historical
/// engine.
fn run_scalar<C: Container>(
    task: &mut Task<C>,
    inputs: u64,
    batch: u32,
    wake: &mut dyn FnMut(u32),
    snap: Option<&dyn SnapSink<C>>,
) -> Outcome {
    let mut fired = 0;
    while fired < batch {
        if let Some(snap) = snap {
            contribute_if_aligned(task, snap);
        }
        if task.done {
            return Outcome::Done;
        }
        if !step(task, inputs, wake, snap) {
            return Outcome::Blocked;
        }
        fired += 1;
    }
    if let Some(snap) = snap {
        contribute_if_aligned(task, snap);
    }
    if task.done {
        Outcome::Done
    } else {
        Outcome::Yielded
    }
}

/// The batched run loop: flush, then drain runs while staging stays within
/// both the container limit and the deliverable space of every output (plus
/// the scalar engine's one-acceptance overshoot), so blocking behaviour —
/// and with it every deadlock verdict — matches the scalar policy exactly.
fn run_batched(
    task: &mut Task<Batch>,
    inputs: u64,
    batch: u32,
    wake: &mut dyn FnMut(u32),
    snap: Option<&dyn SnapSink<Batch>>,
) -> Outcome {
    let mut accepted: u32 = 0;
    loop {
        // Deliver leftover staged output *before* the alignment check: a
        // source only contributes with empty staging queues, and checking
        // first would let the per-message fallback below fire it past the
        // barrier right after this flush drained them — freezing its
        // counters at a cursor the restore never re-plays.  (The scalar
        // loop is safe by construction: `step` returns directly after a
        // delivering flush, so its loop-top check always runs between the
        // drain and the next firing.)
        flush(task, wake);
        mark_done_if_drained(task);
        if let Some(snap) = snap {
            contribute_if_aligned(task, snap);
        }
        if task.done {
            return Outcome::Done;
        }
        if task.staged > 0 {
            // Some channel is full; `flush` registered the waiting flags.
            return Outcome::Blocked;
        }
        if accepted >= batch {
            return Outcome::Yielded;
        }
        if let Some(snap) = snap {
            let epoch = snap.pending();
            if epoch != 0 && task.snap_epoch != epoch {
                // A snapshot is being collected: drop to the per-message
                // step for its exact acceptance-time barrier alignment.
                if !step(task, inputs, wake, Some(snap)) {
                    return Outcome::Blocked;
                }
                accepted += 1;
                continue;
            }
        }
        let progressed = if task.is_source {
            source_run(task, inputs, &mut accepted, batch)
        } else {
            let progressed = interior_run(task, &mut accepted, batch, snap);
            // One producer-wake check per consumed input for the whole run
            // (the Dekker begin-wait/retry protocol makes the deferral
            // lose no wakeups: a producer parking meanwhile re-reads the
            // indices our consumption already published).
            for port in &mut task.ins {
                if port.touched {
                    port.touched = false;
                    if port.rx.take_producer_waiting() {
                        wake(port.producer);
                    }
                }
            }
            progressed
        };
        if !progressed {
            debug_assert!(!task.is_source, "sources always progress when runnable");
            return Outcome::Blocked;
        }
    }
}

/// True while every output port can take another acceptance: its staged
/// queue is under the container limit and everything already staged is
/// deliverable right now.  The *first* acceptance after a flush always
/// passes (the queue is empty), so a full channel still receives exactly
/// one overshooting acceptance — the scalar engine's blocking shape.
fn outputs_have_room(task: &Task<Batch>) -> bool {
    task.outs.iter().all(|port| {
        let len = port.queue.len();
        len < port.limit && len <= port.tx.space_msgs()
    })
}

/// Drains acceptances for a non-source task until the budget, the staging
/// room or an input runs out.  Returns false (with a waiting flag
/// registered) only when no acceptance happened at all.
fn interior_run(
    task: &mut Task<Batch>,
    accepted: &mut u32,
    batch: u32,
    snap: Option<&dyn SnapSink<Batch>>,
) -> bool {
    let mut progressed = false;
    'run: while *accepted < batch && outputs_have_room(task) {
        // Acceptance scan: one pass over the input heads.
        let mut accept_seq = u64::MAX;
        for port in &mut task.ins {
            let head = match port.rx.front_msg() {
                Some(m) => m,
                None if progressed => break 'run,
                None => match port.rx.front_msg_or_register() {
                    Some(m) => m,
                    None => return false,
                },
            };
            accept_seq = accept_seq.min(head.seq());
        }
        // Acceptance-time barrier alignment, exactly like [`step`]'s: a
        // snapshot epoch can be published *mid-run* (the slice-top check in
        // `run_batched` precedes it), and a head with seq ≥ barrier proves
        // the publication happened-before its arrival — so it must not be
        // consumed until this task's pre-barrier state is contributed.
        let mut barrier = u64::MAX;
        if let Some(snap) = snap {
            let epoch = snap.pending();
            if epoch != 0 && task.snap_epoch != epoch {
                barrier = snap.barrier();
                if accept_seq >= barrier {
                    task.snap_epoch = epoch;
                    snap.contribute(task);
                    barrier = u64::MAX;
                }
            }
        }
        if accept_seq == u64::MAX {
            // End of stream on every input.
            for port in &mut task.outs {
                port.queue.stage(port.limit, Message::Eos);
                task.staged += 1;
            }
            task.eos_queued = true;
            progressed = true;
            break 'run;
        }

        // Bulk path: a single input whose head starts a dummy run is
        // accepted a run at a time — gap counters move by run arithmetic
        // and forwarded dummies are staged as one RLE segment.
        if task.ins.len() == 1 {
            if let Some(Run::Dummies { first, len }) = task.ins[0]
                .rx
                .front_mut()
                .expect("head checked non-empty")
                .front_run()
            {
                debug_assert_eq!(first, accept_seq);
                // A pending, uncontributed barrier splits the run: consume
                // only the pre-barrier prefix, so the next scan lands on
                // the barrier sequence and contributes before crossing.
                let mut n = len
                    .min(u64::from(batch - *accepted))
                    .min(barrier - first);
                for out in &task.outs {
                    let qlen = out.queue.len() as u64;
                    n = n
                        .min(out.limit as u64 - qlen)
                        .min((out.tx.space_msgs() as u64).saturating_sub(qlen) + 1);
                }
                debug_assert!(n >= 1, "room was checked before the scan");
                let port = &mut task.ins[0];
                let container = port.rx.front_mut().expect("head checked non-empty");
                container.consume_dummies(n);
                let exhausted = container.is_empty();
                port.rx.release_msgs(n as usize);
                if exhausted {
                    port.rx.advance_exhausted();
                }
                port.touched = true;
                let Task {
                    wrapper,
                    outs,
                    staged,
                    ..
                } = task;
                wrapper.on_accept_dummy_run(n, |i, run| {
                    let out = &mut outs[i];
                    match run {
                        RunDummies::None => {}
                        RunDummies::All => {
                            stage_dummy_run(out, first, n);
                            *staged += n as usize;
                        }
                        RunDummies::Periodic { first: p0, period } => {
                            let mut p = p0;
                            while p < n {
                                out.queue.stage(out.limit, Message::Dummy { seq: first + p });
                                *staged += 1;
                                p += period;
                            }
                        }
                    }
                });
                *accepted += n as u32;
                progressed = true;
                continue 'run;
            }
        }

        // Bulk path: a single-input node whose head starts a *data* run and
        // which stages on at most one output — a pipeline stage or a sink —
        // fires a tight burst: ring atomics (capacity release, the producer
        // wake check) and the room refresh are paid once per burst, and the
        // per-message work reduces to segment-cursor moves, the behaviour
        // call and the staging push.
        if task.ins.len() == 1 && task.outs.len() <= 1 {
            let burst = data_burst(task, accepted, batch, barrier);
            if burst > 0 {
                progressed = true;
                continue 'run;
            }
        }

        // Per-sequence path (multi-input alignment or a data head).
        task.data_in.fill(None);
        let mut consumed_dummy = false;
        for (idx, port) in task.ins.iter_mut().enumerate() {
            let head = port.rx.front_msg().expect("all heads checked non-empty");
            if head.seq() != accept_seq {
                continue;
            }
            port.rx.pop_msg();
            port.touched = true;
            match head {
                Message::Data { payload, .. } => task.data_in[idx] = Some(payload),
                Message::Dummy { .. } => consumed_dummy = true,
                Message::Eos => unreachable!("EOS has maximal sequence number"),
            }
        }
        if task.data_in.iter().any(Option::is_some) {
            if task.outs.is_empty() {
                task.sink_firings += 1;
            }
            task.firings += 1;
            let Task {
                behavior,
                data_in,
                emit,
                ..
            } = task;
            behavior.fire_into(
                &FireInput {
                    seq: accept_seq,
                    data_in,
                },
                emit,
            );
            queue_outputs(task, accept_seq, true, consumed_dummy);
        } else {
            queue_outputs(task, accept_seq, false, consumed_dummy);
        }
        *accepted += 1;
        progressed = true;
    }
    progressed
}

/// Fires the data prefix of a single-input, at-most-one-output task's head
/// container as one burst; returns the number of messages consumed (0 when
/// the head is not data — the caller falls back to the general paths).
///
/// The caller has verified the acceptance preconditions for the *first*
/// message (head non-empty, `outputs_have_room`, budget, pre-barrier);
/// every later iteration re-checks them with burst-local state: the output
/// room against a once-read `space_msgs` snapshot (stale is smaller is
/// conservative — the burst just ends early and the outer loop re-checks),
/// the barrier against each message's own sequence number.
fn data_burst(
    task: &mut Task<Batch>,
    accepted: &mut u32,
    batch: u32,
    barrier: u64,
) -> usize {
    let Task {
        ins,
        outs,
        behavior,
        wrapper,
        data_in,
        emit,
        staged,
        firings,
        sink_firings,
        ..
    } = task;
    let port = &mut ins[0];
    let space = outs.first().map_or(usize::MAX, |o| o.tx.space_msgs());
    let mut took = 0usize;
    let exhausted = {
        let container = port.rx.front_mut().expect("head checked non-empty");
        while *accepted < batch {
            if let [out] = &outs[..] {
                let len = out.queue.len();
                if !(len < out.limit && len <= space) {
                    break;
                }
            }
            let Some(Run::Data { seq, payload }) = container.front_run() else {
                break;
            };
            if seq >= barrier {
                // An uncontributed pending barrier splits the burst; the
                // next acceptance scan lands on `seq` and contributes.
                break;
            }
            container.consume_data();
            data_in[0] = Some(payload);
            *firings += 1;
            if outs.is_empty() {
                *sink_firings += 1;
            }
            behavior.fire_into(&FireInput { seq, data_in }, emit);
            stage_decision(wrapper, outs, staged, emit, seq, true, false);
            *accepted += 1;
            took += 1;
        }
        container.is_empty()
    };
    if took > 0 {
        port.rx.release_msgs(took);
        if exhausted {
            port.rx.advance_exhausted();
        }
        port.touched = true;
    }
    took
}

/// Stages a run of `n` forwarded dummies at `first..first + n` on one port
/// as a single RLE segment (the caller bounded `n` by the queue room).
fn stage_dummy_run(out: &mut OutPort<Batch>, first: u64, n: u64) {
    let slot = if out.queue.second.is_some() {
        &mut out.queue.second
    } else {
        &mut out.queue.first
    };
    let container = slot.get_or_insert_with(Batch::new);
    let took = container.push_dummy_run(out.limit, first, n);
    debug_assert_eq!(took, n, "bulk dummy staging was bounded by queue room");
}

/// Drains source firings until the budget or the staging room runs out;
/// stages the EOS markers (once, with empty staging queues, like the scalar
/// engine) when the input supply is exhausted.
fn source_run(task: &mut Task<Batch>, inputs: u64, accepted: &mut u32, batch: u32) -> bool {
    let mut progressed = false;
    while *accepted < batch && task.next_source_seq < inputs && outputs_have_room(task) {
        let seq = task.next_source_seq;
        task.next_source_seq += 1;
        task.firings += 1;
        task.behavior
            .fire_into(&FireInput { seq, data_in: &[] }, &mut task.emit);
        queue_outputs(task, seq, true, false);
        *accepted += 1;
        progressed = true;
    }
    if task.next_source_seq >= inputs && !task.eos_queued && task.staged == 0 && *accepted < batch
    {
        task.eos_queued = true;
        for port in &mut task.outs {
            port.queue.stage(port.limit, Message::Eos);
            task.staged += 1;
        }
        progressed = true;
    }
    progressed
}

/// Attempts one unit of progress on a task; mirrors `Simulator`'s per-node
/// step exactly (same acceptance rule, same per-channel independent
/// delivery), so all engines are confluent to the same terminal state.
fn step<C: Container>(
    task: &mut Task<C>,
    inputs: u64,
    wake: &mut dyn FnMut(u32),
    snap: Option<&dyn SnapSink<C>>,
) -> bool {
    // Phase 1: flush staged outputs; a node with undelivered messages does
    // nothing else (mirrors a blocking send).
    if flush(task, wake) {
        return true;
    }
    if task.staged > 0 {
        // Still blocked on some full channel; `flush` registered the
        // producer waiting flags.
        return false;
    }
    if task.done {
        return false;
    }
    if task.is_source {
        return step_source(task, inputs, wake);
    }

    // Interior / sink: find the acceptance sequence number, registering a
    // waiting flag on the first empty input (if that channel never fills,
    // the node cannot progress no matter what the others do).
    let mut accept_seq = u64::MAX;
    for port in &mut task.ins {
        match port.rx.front_msg_or_register() {
            Some(head) => accept_seq = accept_seq.min(head.seq()),
            None => return false,
        }
    }
    // Alignment check for interior nodes: the next acceptance would cross
    // the snapshot barrier (EOS included — its sequence number is maximal),
    // so this task's state — having consumed exactly the pre-barrier prefix
    // of every input — belongs to the snapshot *now*, before consuming.
    if let Some(snap) = snap {
        let epoch = snap.pending();
        if epoch != 0 && task.snap_epoch != epoch && accept_seq >= snap.barrier() {
            task.snap_epoch = epoch;
            snap.contribute(task);
        }
    }
    if accept_seq == u64::MAX {
        // End of stream on every input.
        for port in &mut task.outs {
            if C::UNIT {
                debug_assert!(port.queue.is_empty());
            }
            port.queue.stage(port.limit, Message::Eos);
            task.staged += 1;
        }
        task.eos_queued = true;
        flush(task, wake);
        mark_done_if_drained(task);
        return true;
    }

    // Consume every head carrying the accepted sequence number.
    task.data_in.fill(None);
    let mut consumed_dummy = false;
    for (idx, port) in task.ins.iter_mut().enumerate() {
        let head = port.rx.front_msg().expect("all heads checked non-empty");
        if head.seq() != accept_seq {
            continue;
        }
        port.rx.pop_msg();
        if port.rx.take_producer_waiting() {
            wake(port.producer);
        }
        match head {
            Message::Data { payload, .. } => task.data_in[idx] = Some(payload),
            Message::Dummy { .. } => consumed_dummy = true,
            Message::Eos => unreachable!("EOS has maximal sequence number"),
        }
    }

    if task.data_in.iter().any(Option::is_some) {
        if task.outs.is_empty() {
            task.sink_firings += 1;
        }
        task.firings += 1;
        let Task {
            behavior,
            data_in,
            emit,
            ..
        } = task;
        behavior.fire_into(
            &FireInput {
                seq: accept_seq,
                data_in,
            },
            emit,
        );
        queue_outputs(task, accept_seq, true, consumed_dummy);
    } else {
        // Only dummies were consumed: no behaviour call, no data out.
        queue_outputs(task, accept_seq, false, consumed_dummy);
    }
    flush(task, wake);
    mark_done_if_drained(task);
    true
}

fn step_source<C: Container>(task: &mut Task<C>, inputs: u64, wake: &mut dyn FnMut(u32)) -> bool {
    if task.next_source_seq < inputs {
        let seq = task.next_source_seq;
        task.next_source_seq += 1;
        task.firings += 1;
        task.behavior
            .fire_into(&FireInput { seq, data_in: &[] }, &mut task.emit);
        queue_outputs(task, seq, true, false);
        flush(task, wake);
        return true;
    }
    if !task.eos_queued {
        task.eos_queued = true;
        for port in &mut task.outs {
            if C::UNIT {
                debug_assert!(port.queue.is_empty());
            }
            port.queue.stage(port.limit, Message::Eos);
            task.staged += 1;
        }
        flush(task, wake);
        mark_done_if_drained(task);
        return true;
    }
    mark_done_if_drained(task);
    false
}

/// Delivers as many staged containers as ring capacities allow; FIFO per
/// channel, channels independent.  Registers the producer waiting flag
/// (with the mandatory retry) on every channel that stays full, and wakes
/// the consumer of every channel this delivery made non-empty.  The
/// delivery counters advance by the *messages* that shipped (a container
/// can deliver partially, split at the remaining message capacity).
fn flush<C: Container>(task: &mut Task<C>, wake: &mut dyn FnMut(u32)) -> bool {
    if task.staged == 0 {
        return false;
    }
    let mut delivered = false;
    for port in &mut task.outs {
        loop {
            if port.queue.first.is_none() {
                port.queue.first = port.queue.second.take();
                if port.queue.first.is_none() {
                    break;
                }
            }
            let (d0, u0) = port.queue.first.as_ref().map_or((0, 0), |c| c.counts());
            let n = port.tx.deliver_or_register(&mut port.queue.first);
            if n == 0 {
                // Port still full; the registration stays active and the
                // consumer's next pop wakes this task.
                break;
            }
            task.staged -= n;
            delivered = true;
            let (d1, u1) = port.queue.first.as_ref().map_or((0, 0), |c| c.counts());
            port.data += d0 - d1;
            port.dummies += u0 - u1;
            if port.tx.take_consumer_waiting() {
                wake(port.consumer);
            }
            if port.queue.first.is_some() {
                // Partial delivery: the remainder stays staged, registered.
                break;
            }
        }
    }
    if delivered {
        mark_done_if_drained(task);
    }
    delivered
}

fn mark_done_if_drained<C: Container>(task: &mut Task<C>) {
    if task.eos_queued && task.staged == 0 {
        task.done = true;
    }
}

/// Stages the data and dummy messages produced for one accepted sequence
/// number (`fired` is false when the node consumed only dummies and emits
/// no data; when true the decision sits in the task's `emit` scratch).
fn queue_outputs<C: Container>(task: &mut Task<C>, seq: u64, fired: bool, consumed_dummy: bool) {
    let Task {
        wrapper,
        outs,
        staged,
        emit,
        ..
    } = task;
    stage_decision(wrapper, outs, staged, emit, seq, fired, consumed_dummy);
}

/// [`queue_outputs`] on split borrows, for callers already holding other
/// task fields (the batched data-burst loop).
fn stage_decision<C: Container>(
    wrapper: &mut DummyWrapper,
    outs: &mut [OutPort<C>],
    staged: &mut usize,
    emit: &[Option<Payload>],
    seq: u64,
    fired: bool,
    consumed_dummy: bool,
) {
    let dummies = wrapper.on_accept(consumed_dummy, |i| fired && emit[i].is_some());
    for (idx, port) in outs.iter_mut().enumerate() {
        if C::UNIT {
            debug_assert!(port.queue.is_empty());
        }
        if fired {
            if let Some(payload) = emit[idx] {
                port.queue.stage(port.limit, Message::Data { seq, payload });
                *staged += 1;
            }
        }
        if dummies[idx] {
            // Under the heartbeat trigger a dummy may accompany a data
            // message carrying the same sequence number.
            port.queue.stage(port.limit, Message::Dummy { seq });
            *staged += 1;
        }
    }
}

/// Assembles the [`ExecutionReport`] of a finished (or deadlocked) task set:
/// per-edge delivery counters, firing totals and — for deadlocks — the
/// blocked-node diagnoses, exactly as [`crate::PooledExecutor`] has always
/// reported them.
pub(crate) fn assemble_report<C: Container>(
    tasks: &[Mutex<Task<C>>],
    edge_count: usize,
    inputs: u64,
    deadlocked: bool,
) -> ExecutionReport {
    let mut report = ExecutionReport {
        completed: !deadlocked,
        deadlocked,
        inputs_offered: inputs,
        per_edge_data: vec![0; edge_count],
        per_edge_dummies: vec![0; edge_count],
        per_node_firings: vec![0; tasks.len()],
        ..Default::default()
    };
    for (idx, task) in tasks.iter().enumerate() {
        // Tolerate poisoning: a panicked behaviour may have left its task
        // mutex poisoned, but the counters are still meaningful.
        let task = task
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        report.steps += task.firings;
        report.per_node_firings[idx] = task.firings;
        report.sink_firings += task.sink_firings;
        for port in &task.outs {
            report.per_edge_data[port.edge as usize] = port.data;
            report.per_edge_dummies[port.edge as usize] = port.dummies;
        }
        if deadlocked && !task.done {
            if let Some(reason) = task.blocked_on() {
                report.blocked.push(BlockedInfo {
                    node: NodeId::from_raw(idx as u32),
                    reason,
                });
            }
        }
    }
    report.data_messages = report.per_edge_data.iter().sum();
    report.dummy_messages = report.per_edge_dummies.iter().sum();
    report
}

fn edge_id(raw: u32) -> fila_graph::EdgeId {
    fila_graph::EdgeId::from_raw(raw)
}
