//! A deterministic, single-threaded executor with exact deadlock detection.
//!
//! The simulator advances one node at a time.  Two schedulers are available:
//!
//! * [`Scheduler::Worklist`] (the default) — an event-driven ready queue
//!   seeded with the source nodes.  Firing a node re-enqueues only the nodes
//!   its action could have unblocked: the consumers of channels it made
//!   non-empty and the producers of channels it made non-full.  Per-step
//!   cost is therefore proportional to the fired node's degree, and deadlock
//!   is detected exactly as "ready queue empty but not every node finished"
//!   — no sweep over the whole graph is ever needed.
//! * [`Scheduler::Scan`] — the original reference scheduler, which
//!   repeatedly round-robins over *every* node looking for one that can make
//!   progress and declares deadlock after a full unproductive pass.  It is
//!   `O(V)` per step and kept as the executable specification the worklist
//!   scheduler is property-tested against.
//!
//! Both schedulers run the same per-node `step` function, so they execute
//! the same Kahn-style deterministic semantics and produce identical message
//! counts, completion, and deadlock verdicts (the equivalence is enforced by
//! a property test over generated topologies).  When no node can progress
//! and not every node has reached end-of-stream, the run is *deadlocked* —
//! exactly the condition the paper's avoidance machinery is designed to
//! prevent — and the report records which node is blocked on which channel.
//!
//! Determinism makes the simulator the reference engine for the tests and
//! benchmarks; the multi-threaded engine ([`crate::ThreadedExecutor`])
//! exercises the same wrapper logic under real concurrency.

use std::collections::VecDeque;
use std::sync::Arc;

use fila_avoidance::AvoidancePlan;
use fila_graph::fingerprint::labeled_fingerprint;
use fila_graph::{EdgeId, Graph, NodeId};

use crate::checkpoint::{
    self, CheckpointOutcome, JobSnapshot, NodeSnapshot, RestoreError, SNAPSHOT_VERSION,
};
use crate::container::Batching;
use crate::message::{Message, Payload};
use crate::node::{FireDecision, FireInput};
use crate::report::{BlockedInfo, BlockedReason, ExecutionReport};
use crate::topology::Topology;
use crate::wrapper::{AvoidanceMode, DummyWrapper, PropagationTrigger};

/// Which scheduling strategy [`Simulator`] uses to pick the next node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// Event-driven worklist: `O(degree)` per step (the default).
    #[default]
    Worklist,
    /// Full round-robin scan: `O(V)` per step; the reference semantics.
    Scan,
}

/// Deterministic single-threaded execution engine.
#[derive(Debug, Clone)]
pub struct Simulator<'t> {
    topology: &'t Topology,
    mode: AvoidanceMode,
    trigger: PropagationTrigger,
    scheduler: Scheduler,
    max_steps: u64,
    batching: Batching,
}

impl<'t> Simulator<'t> {
    /// Creates a simulator with deadlock avoidance disabled.
    pub fn new(topology: &'t Topology) -> Self {
        Simulator {
            topology,
            mode: AvoidanceMode::Disabled,
            trigger: PropagationTrigger::default(),
            scheduler: Scheduler::default(),
            max_steps: u64::MAX,
            batching: Batching::Scalar,
        }
    }

    /// Enables deadlock avoidance following `plan`.
    pub fn with_plan(mut self, plan: &AvoidancePlan) -> Self {
        self.mode = AvoidanceMode::plan(plan.clone());
        self
    }

    /// Enables deadlock avoidance following an already-shared plan without
    /// copying the interval table.
    pub fn with_shared_plan(mut self, plan: Arc<AvoidancePlan>) -> Self {
        self.mode = AvoidanceMode::Plan(plan);
        self
    }

    /// Sets the avoidance mode explicitly.
    pub fn avoidance(mut self, mode: AvoidanceMode) -> Self {
        self.mode = mode;
        self
    }

    /// Selects the Propagation-protocol trigger (see
    /// [`PropagationTrigger`]); the default is the paper's literal trigger.
    pub fn propagation_trigger(mut self, trigger: PropagationTrigger) -> Self {
        self.trigger = trigger;
        self
    }

    /// Selects the scheduling strategy (the default is the event-driven
    /// worklist; [`Scheduler::Scan`] is the reference implementation).
    pub fn scheduler(mut self, scheduler: Scheduler) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Bounds the number of scheduler steps (a safety valve for exploratory
    /// runs; the default is effectively unbounded).
    pub fn max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Selects the batching mode: under [`Batching::Messages`] /
    /// [`Batching::Unbounded`] the worklist scheduler drains up to that many
    /// consecutive steps from a popped node before moving on, consuming
    /// message runs in place of single messages.  The default is
    /// [`Batching::Scalar`] — the simulator is the reference engine the
    /// batched pools are pinned against, and by the model's confluence every
    /// mode yields identical verdicts and counts (see
    /// `tests/engine_equivalence.rs`).
    pub fn batching(mut self, batching: Batching) -> Self {
        self.batching = batching;
        self
    }

    /// Runs the application, offering `inputs` sequence numbers at every
    /// source node, and returns the execution report.
    pub fn run(&self, inputs: u64) -> ExecutionReport {
        let started = std::time::Instant::now();
        let run = Run::new(self.topology, &self.mode, self.trigger, inputs, self.batching);
        let mut report = match self.scheduler {
            Scheduler::Worklist => run.execute_worklist(self.max_steps),
            Scheduler::Scan => run.execute_scan(self.max_steps),
        };
        report.wall = started.elapsed();
        report
    }

    /// Runs like [`Simulator::run`], but kills the run as soon as `kill_at`
    /// scheduler steps have executed and returns a [`JobSnapshot`] of the
    /// exact point of death (all channel contents, node progress and
    /// wrapper state); if the run settles first, the finished report is
    /// returned instead.  Since the simulator stops *between* steps, any
    /// cut is consistent — no barrier is needed.  Always uses the worklist
    /// scheduler (the kill step indexes its step sequence).
    pub fn run_with_checkpoint(&self, inputs: u64, kill_at: u64) -> CheckpointOutcome {
        let started = std::time::Instant::now();
        let run = Run::new(self.topology, &self.mode, self.trigger, inputs, self.batching);
        match run.worklist_until(self.max_steps, false, kill_at) {
            WorklistEnd::Report(mut report) => {
                report.wall = started.elapsed();
                CheckpointOutcome::Finished(report)
            }
            WorklistEnd::Killed(run) => CheckpointOutcome::Killed(Box::new(run.capture(
                labeled_fingerprint(self.topology.graph()),
                checkpoint::plan_digest(&self.mode),
                checkpoint::trigger_code(self.trigger),
            ))),
        }
    }

    /// Resumes a killed run from its snapshot and drives it to a verdict.
    ///
    /// The snapshot must have been taken under *this* simulator's exact
    /// topology, avoidance plan and trigger
    /// ([`JobSnapshot::validate_for`]); anything else is a [`RestoreError`],
    /// never a silent re-plan.  The returned report is **cumulative**: a
    /// resumed run that completes reports exactly the counts the
    /// uninterrupted run would have (and
    /// [`ExecutionReport::resumed_from`] records the snapshot's progress
    /// marker).  Always uses the worklist scheduler.
    pub fn resume(&self, snapshot: &JobSnapshot) -> Result<ExecutionReport, RestoreError> {
        let started = std::time::Instant::now();
        snapshot.validate_for(self.topology, &self.mode, self.trigger)?;
        let mut run = Run::new(self.topology, &self.mode, self.trigger, snapshot.inputs, self.batching);
        for (channel, contents) in run.channels.iter_mut().zip(&snapshot.channels) {
            *channel = contents.iter().copied().collect();
        }
        run.report.steps = snapshot.steps;
        run.report.sink_firings = snapshot.sink_firings;
        run.report.per_edge_data = snapshot.per_edge_data.clone();
        run.report.per_edge_dummies = snapshot.per_edge_dummies.clone();
        run.report.data_messages = snapshot.per_edge_data.iter().sum();
        run.report.dummy_messages = snapshot.per_edge_dummies.iter().sum();
        run.report.resumed_from = Some(snapshot.steps);
        for (state, ns) in run.nodes.iter_mut().zip(&snapshot.nodes) {
            state.next_source_seq = ns.next_source_seq;
            state.eos_queued = ns.eos_queued;
            state.done = ns.done;
            state.firings = ns.firings;
            state.sink_firings = ns.sink_firings;
            state.wrapper.restore_gaps(&ns.gaps);
            state.pending = ns
                .staged
                .iter()
                .map(|&(e, m)| (EdgeId::from_raw(e), m))
                .collect();
        }
        // Seed every unfinished node: unlike a fresh run, restored interior
        // nodes may already hold consumable channel contents.
        let mut report = match run.worklist_until(self.max_steps, true, u64::MAX) {
            WorklistEnd::Report(report) => report,
            WorklistEnd::Killed(_) => unreachable!("kill step is never set for resumed runs"),
        };
        report.wall = started.elapsed();
        Ok(report)
    }
}

struct NodeState {
    behavior: Box<dyn crate::node::NodeBehavior>,
    wrapper: DummyWrapper,
    pending: VecDeque<(EdgeId, Message)>,
    is_source: bool,
    next_source_seq: u64,
    eos_queued: bool,
    done: bool,
    /// Behaviour firings (source emissions + data acceptances), mirroring
    /// the pooled engines' per-task counter so snapshots carry the same
    /// per-node progress regardless of which engine captured them.
    firings: u64,
    sink_firings: u64,
}

/// How a worklist execution ended: with a verdict, or killed mid-run with
/// the whole [`Run`] handed back for checkpointing.
enum WorklistEnd<'t> {
    Report(ExecutionReport),
    Killed(Box<Run<'t>>),
}

struct Run<'t> {
    topology: &'t Topology,
    inputs: u64,
    channels: Vec<VecDeque<Message>>,
    capacities: Vec<usize>,
    nodes: Vec<NodeState>,
    report: ExecutionReport,
    /// Consecutive steps the worklist scheduler drains from a popped node
    /// (1 = scalar; see [`Simulator::batching`]).
    batch_limit: u64,
    /// Reusable per-firing scratch: consumed payloads per input channel.
    data_in: Vec<Option<Payload>>,
    /// Reusable scratch for [`Run::flush_pending`]'s full-channel set.
    blocked_scratch: Vec<EdgeId>,
    /// Channels that became non-empty during the current step (their
    /// consumers may have been unblocked).
    filled: Vec<EdgeId>,
    /// Channels that went from full to non-full during the current step
    /// (their producers may have been unblocked).
    drained: Vec<EdgeId>,
}

impl<'t> Run<'t> {
    fn new(
        topology: &'t Topology,
        mode: &AvoidanceMode,
        trigger: PropagationTrigger,
        inputs: u64,
        batching: Batching,
    ) -> Self {
        let g = topology.graph();
        let channels = vec![VecDeque::new(); g.edge_count()];
        let capacities = g
            .edge_ids()
            .map(|e| g.capacity(e) as usize)
            .collect::<Vec<_>>();
        let nodes = g
            .node_ids()
            .zip(topology.build_behaviors())
            .map(|(n, behavior)| NodeState {
                behavior,
                wrapper: DummyWrapper::with_trigger(g, n, mode, trigger),
                pending: VecDeque::new(),
                is_source: g.in_degree(n) == 0,
                next_source_seq: 0,
                eos_queued: false,
                done: false,
                firings: 0,
                sink_firings: 0,
            })
            .collect();
        let report = ExecutionReport {
            inputs_offered: inputs,
            per_edge_data: vec![0; g.edge_count()],
            per_edge_dummies: vec![0; g.edge_count()],
            ..Default::default()
        };
        Run {
            topology,
            inputs,
            batch_limit: (batching.limit() as u64).max(1),
            channels,
            capacities,
            nodes,
            report,
            data_in: Vec::new(),
            blocked_scratch: Vec::new(),
            filled: Vec::new(),
            drained: Vec::new(),
        }
    }

    /// The application graph, free of the borrow on `self` (the topology
    /// reference outlives the run, so graph-shape queries can be interleaved
    /// with mutable access to channels and node states without copying edge
    /// lists).
    fn graph(&self) -> &'t Graph {
        self.topology.graph()
    }

    /// Event-driven scheduler: a ready queue (plus an in-queue bitset)
    /// seeded with the sources.  Invariant: any node that may be able to
    /// make progress is in the queue, so an empty queue with unfinished
    /// nodes is exactly a deadlock.
    fn execute_worklist(self, max_steps: u64) -> ExecutionReport {
        match self.worklist_until(max_steps, false, u64::MAX) {
            WorklistEnd::Report(report) => report,
            WorklistEnd::Killed(_) => unreachable!("kill step is never set for plain runs"),
        }
    }

    /// The worklist scheduler body, parameterised for checkpoint/restore:
    /// `seed_all` seeds every unfinished node instead of only the sources
    /// (restored runs may hold consumable channel contents anywhere), and
    /// the run is killed — handing back the whole `Run` for state capture —
    /// once `kill_at` steps have executed (`u64::MAX` = never).
    fn worklist_until(mut self, max_steps: u64, seed_all: bool, kill_at: u64) -> WorklistEnd<'t> {
        let g = self.graph();
        let node_count = g.node_count();
        let mut queue: VecDeque<NodeId> = VecDeque::with_capacity(node_count);
        let mut in_queue = vec![false; node_count];
        // A fresh run's channels all start empty, so only the sources can
        // make the first move; everything else is woken by channel events.
        for (idx, state) in self.nodes.iter().enumerate() {
            if (state.is_source || seed_all) && !state.done {
                queue.push_back(NodeId::from_raw(idx as u32));
                in_queue[idx] = true;
            }
        }
        while let Some(node) = queue.pop_front() {
            in_queue[node.index()] = false;
            // Batching drains up to `batch_limit` consecutive steps from
            // the popped node before the ready queue moves on (run-at-a-time
            // consumption; scalar mode is a limit of one).
            let mut stepped = 0;
            while stepped < self.batch_limit {
                if self.report.steps >= kill_at {
                    return WorklistEnd::Killed(Box::new(self));
                }
                if self.report.steps >= max_steps {
                    return WorklistEnd::Report(self.finish(false, false));
                }
                if !self.step(node) {
                    break;
                }
                self.report.steps += 1;
                stepped += 1;
                if self.nodes[node.index()].done {
                    break;
                }
            }
            if stepped == 0 {
                // A node that could not progress recorded no channel events
                // and is woken again only by one.
                debug_assert!(self.filled.is_empty() && self.drained.is_empty());
                continue;
            }
            // The fired node may be able to progress again immediately …
            if !self.nodes[node.index()].done && !in_queue[node.index()] {
                in_queue[node.index()] = true;
                queue.push_back(node);
            }
            // … and so may the consumers of channels it filled and the
            // producers of channels it drained.
            while let Some(e) = self.filled.pop() {
                let consumer = g.head(e);
                if !in_queue[consumer.index()] && !self.nodes[consumer.index()].done {
                    in_queue[consumer.index()] = true;
                    queue.push_back(consumer);
                }
            }
            while let Some(e) = self.drained.pop() {
                let producer = g.tail(e);
                if !in_queue[producer.index()] && !self.nodes[producer.index()].done {
                    in_queue[producer.index()] = true;
                    queue.push_back(producer);
                }
            }
        }
        if self.nodes.iter().all(|s| s.done) {
            WorklistEnd::Report(self.finish(true, false))
        } else {
            WorklistEnd::Report(self.finish(false, true))
        }
    }

    /// Captures the run's entire state as a [`JobSnapshot`] (channels
    /// verbatim: the simulator stops between steps, where any cut is
    /// consistent).
    fn capture(&self, labeled_topology: u64, plan_digest: Option<u64>, trigger: u8) -> JobSnapshot {
        JobSnapshot {
            version: SNAPSHOT_VERSION,
            labeled_topology,
            fingerprint: None,
            filter_signature: None,
            plan_digest,
            trigger,
            inputs: self.inputs,
            steps: self.report.steps,
            sink_firings: self.report.sink_firings,
            per_edge_data: self.report.per_edge_data.clone(),
            per_edge_dummies: self.report.per_edge_dummies.clone(),
            channels: self
                .channels
                .iter()
                .map(|c| c.iter().copied().collect())
                .collect(),
            nodes: self
                .nodes
                .iter()
                .map(|state| NodeSnapshot {
                    gaps: state.wrapper.gaps().to_vec(),
                    next_source_seq: state.next_source_seq,
                    eos_queued: state.eos_queued,
                    done: state.done,
                    firings: state.firings,
                    sink_firings: state.sink_firings,
                    staged: state
                        .pending
                        .iter()
                        .map(|&(e, m)| (e.index() as u32, m))
                        .collect(),
                })
                .collect(),
        }
    }

    /// Reference scheduler: round-robin over every node, declaring deadlock
    /// after a full pass without progress.  `O(V)` per step; kept as the
    /// executable specification for [`Run::execute_worklist`].
    fn execute_scan(mut self, max_steps: u64) -> ExecutionReport {
        let node_ids: Vec<NodeId> = self.graph().node_ids().collect();
        loop {
            let mut progressed = false;
            for &n in &node_ids {
                if self.report.steps >= max_steps {
                    return self.finish(false, false);
                }
                if self.step(n) {
                    progressed = true;
                    self.report.steps += 1;
                }
                // The scan scheduler polls rather than reacting to events.
                self.filled.clear();
                self.drained.clear();
            }
            if self.nodes.iter().all(|s| s.done) {
                return self.finish(true, false);
            }
            if !progressed {
                return self.finish(false, true);
            }
        }
    }

    fn finish(mut self, completed: bool, stalled: bool) -> ExecutionReport {
        self.report.completed = completed;
        self.report.per_node_firings = self.nodes.iter().map(|s| s.firings).collect();
        if !completed && stalled {
            let g = self.graph();
            let mut blocked = Vec::new();
            for (idx, state) in self.nodes.iter().enumerate() {
                if state.done {
                    continue;
                }
                let node = NodeId::from_raw(idx as u32);
                if let Some(&(edge, _)) = state.pending.front() {
                    blocked.push(BlockedInfo {
                        node,
                        reason: BlockedReason::WaitingForSpace(edge),
                    });
                } else if let Some(&edge) = g
                    .in_edges(node)
                    .iter()
                    .find(|&&e| self.channels[e.index()].is_empty())
                {
                    blocked.push(BlockedInfo {
                        node,
                        reason: BlockedReason::WaitingForInput(edge),
                    });
                }
            }
            // A stalled run is a deadlock; hitting the step bound instead
            // leaves the report inconclusive.
            self.report.deadlocked = true;
            self.report.blocked = blocked;
        }
        self.report
    }

    /// Attempts to make progress on one node; returns whether it did.
    ///
    /// Channels made non-empty or non-full along the way are recorded in
    /// `self.filled` / `self.drained` for the worklist scheduler.
    fn step(&mut self, node: NodeId) -> bool {
        // Phase 1: flush pending outputs (a node blocked on a full channel
        // cannot do anything else, mirroring a blocking send).
        if self.flush_pending(node) {
            return true;
        }
        if !self.nodes[node.index()].pending.is_empty() {
            return false;
        }
        if self.nodes[node.index()].done {
            return false;
        }
        let g = self.graph();
        if self.nodes[node.index()].is_source {
            return self.step_source(node);
        }

        // Interior / sink node: can it accept the next sequence number?
        let in_edges = g.in_edges(node);
        if in_edges
            .iter()
            .any(|&e| self.channels[e.index()].is_empty())
        {
            return false;
        }
        let accept_seq = in_edges
            .iter()
            .map(|&e| self.channels[e.index()].front().expect("non-empty").seq())
            .min()
            .expect("nodes reaching here have inputs");

        if accept_seq == u64::MAX {
            // End of stream on every input.
            for &e in g.out_edges(node) {
                self.nodes[node.index()].pending.push_back((e, Message::Eos));
            }
            self.nodes[node.index()].eos_queued = true;
            self.flush_pending(node);
            self.mark_done_if_drained(node);
            return true;
        }

        // Consume every head carrying this sequence number into the
        // reusable `data_in` scratch buffer.
        self.data_in.clear();
        self.data_in.resize(in_edges.len(), None);
        let mut consumed_dummy = false;
        for (idx, &e) in in_edges.iter().enumerate() {
            let channel = &mut self.channels[e.index()];
            if channel.front().expect("non-empty").seq() != accept_seq {
                continue;
            }
            let was_full = channel.len() >= self.capacities[e.index()];
            match channel.pop_front().expect("non-empty") {
                Message::Data { payload, .. } => self.data_in[idx] = Some(payload),
                Message::Dummy { .. } => consumed_dummy = true,
                Message::Eos => unreachable!("EOS has maximal sequence number"),
            }
            if was_full {
                self.drained.push(e);
            }
        }

        if self.data_in.iter().any(Option::is_some) {
            if g.out_degree(node) == 0 {
                self.report.sink_firings += 1;
                self.nodes[node.index()].sink_firings += 1;
            }
            self.nodes[node.index()].firings += 1;
            let decision = self.nodes[node.index()].behavior.fire(&FireInput {
                seq: accept_seq,
                data_in: &self.data_in,
            });
            self.queue_outputs(node, accept_seq, &decision, consumed_dummy);
        } else {
            // Only dummies were consumed: the behaviour is not invoked and
            // no data is emitted, so skip building a FireDecision entirely.
            self.queue_dummies_only(node, accept_seq, consumed_dummy);
        }
        self.flush_pending(node);
        self.mark_done_if_drained(node);
        true
    }

    fn step_source(&mut self, node: NodeId) -> bool {
        let g = self.graph();
        if self.nodes[node.index()].next_source_seq < self.inputs {
            let state = &mut self.nodes[node.index()];
            let seq = state.next_source_seq;
            state.next_source_seq += 1;
            state.firings += 1;
            let decision = state.behavior.fire(&FireInput { seq, data_in: &[] });
            self.queue_outputs(node, seq, &decision, false);
            self.flush_pending(node);
            return true;
        }
        if !self.nodes[node.index()].eos_queued {
            self.nodes[node.index()].eos_queued = true;
            for &e in g.out_edges(node) {
                self.nodes[node.index()].pending.push_back((e, Message::Eos));
            }
            self.flush_pending(node);
            self.mark_done_if_drained(node);
            return true;
        }
        self.mark_done_if_drained(node);
        false
    }

    /// Queues the data and dummy messages produced for one sequence number.
    fn queue_outputs(
        &mut self,
        node: NodeId,
        seq: u64,
        decision: &FireDecision,
        consumed_dummy: bool,
    ) {
        let out_edges = self.graph().out_edges(node);
        debug_assert_eq!(decision.emit.len(), out_edges.len());
        let state = &mut self.nodes[node.index()];
        let dummies = state
            .wrapper
            .on_accept(consumed_dummy, |i| decision.emit[i].is_some());
        for (idx, &e) in out_edges.iter().enumerate() {
            if let Some(payload) = decision.emit[idx] {
                state.pending.push_back((e, Message::Data { seq, payload }));
            }
            if dummies[idx] {
                // Under the heartbeat trigger a dummy may accompany a data
                // message with the same sequence number; consumers tolerate
                // this (the dummy simply carries no new information).
                state.pending.push_back((e, Message::Dummy { seq }));
            }
        }
    }

    /// Queues the dummies for a sequence number consumed without any data
    /// (the all-`None` analogue of [`Run::queue_outputs`] that does not
    /// build a [`FireDecision`]).
    fn queue_dummies_only(&mut self, node: NodeId, seq: u64, consumed_dummy: bool) {
        let out_edges = self.graph().out_edges(node);
        let state = &mut self.nodes[node.index()];
        let dummies = state.wrapper.on_accept(consumed_dummy, |_| false);
        for (idx, &e) in out_edges.iter().enumerate() {
            if dummies[idx] {
                state.pending.push_back((e, Message::Dummy { seq }));
            }
        }
    }

    /// Delivers as many pending outputs as channel capacities allow.
    ///
    /// Delivery is FIFO *per channel* but channels do not block one another:
    /// a full channel must not delay a dummy message destined for a
    /// different, empty channel (the deadlock-avoidance guarantee relies on
    /// the dummy getting out), so each output channel behaves like an
    /// independent blocking port.
    fn flush_pending(&mut self, node: NodeId) -> bool {
        let mut delivered = false;
        let mut blocked_edges = std::mem::take(&mut self.blocked_scratch);
        blocked_edges.clear();
        let mut i = 0;
        while i < self.nodes[node.index()].pending.len() {
            let (edge, message) = self.nodes[node.index()].pending[i];
            if blocked_edges.contains(&edge) {
                i += 1;
                continue;
            }
            let channel = &mut self.channels[edge.index()];
            if channel.len() >= self.capacities[edge.index()] {
                blocked_edges.push(edge);
                i += 1;
                continue;
            }
            if channel.is_empty() {
                self.filled.push(edge);
            }
            channel.push_back(message);
            self.nodes[node.index()].pending.remove(i);
            delivered = true;
            match message {
                Message::Data { .. } => {
                    self.report.data_messages += 1;
                    self.report.per_edge_data[edge.index()] += 1;
                }
                Message::Dummy { .. } => {
                    self.report.dummy_messages += 1;
                    self.report.per_edge_dummies[edge.index()] += 1;
                }
                Message::Eos => {}
            }
        }
        self.blocked_scratch = blocked_edges;
        if delivered {
            self.mark_done_if_drained(node);
        }
        delivered
    }

    fn mark_done_if_drained(&mut self, node: NodeId) {
        let state = &mut self.nodes[node.index()];
        if state.eos_queued && state.pending.is_empty() {
            state.done = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filters::{Broadcast, ModuloFilter, Predicate};
    use fila_avoidance::{Algorithm, Planner};
    use fila_graph::{Graph, GraphBuilder};

    fn fig2(buffer: u64) -> Graph {
        let mut b = GraphBuilder::new();
        b.edge_with_capacity("A", "B", buffer).unwrap();
        b.edge_with_capacity("B", "C", buffer).unwrap();
        b.edge_with_capacity("A", "C", buffer).unwrap();
        b.build().unwrap()
    }

    fn pipeline() -> Graph {
        let mut b = GraphBuilder::new();
        b.chain(&["src", "mid", "dst"]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn pipeline_without_filtering_completes() {
        let g = pipeline();
        let topo = Topology::from_graph(&g);
        let report = Simulator::new(&topo).run(100);
        assert!(report.completed);
        assert!(!report.deadlocked);
        assert_eq!(report.data_messages, 200);
        assert_eq!(report.dummy_messages, 0);
        assert_eq!(report.sink_firings, 100);
    }

    #[test]
    fn fig2_deadlocks_without_avoidance() {
        // A filters everything it sends to C; with finite buffers the
        // application deadlocks exactly as in Fig. 2 — under both schedulers.
        let g = fig2(2);
        let a = g.node_by_name("A").unwrap();
        let topo = Topology::from_graph(&g)
            // A sends data to B always, to C never (out_edges(A) = [A->B, A->C]).
            .with(a, || Predicate::new(2, |_seq, out| out == 0));
        for scheduler in [Scheduler::Worklist, Scheduler::Scan] {
            let report = Simulator::new(&topo).scheduler(scheduler).run(1000);
            assert!(report.deadlocked, "{scheduler:?}: {report:?}");
            assert!(!report.completed);
            assert!(!report.blocked.is_empty());
        }
    }

    #[test]
    fn fig2_completes_with_propagation_plan() {
        let g = fig2(2);
        let a = g.node_by_name("A").unwrap();
        let plan = Planner::new(&g).algorithm(Algorithm::Propagation).plan().unwrap();
        let topo = Topology::from_graph(&g)
            .with(a, || Predicate::new(2, |_seq, out| out == 0));
        let report = Simulator::new(&topo).with_plan(&plan).run(1000);
        assert!(report.completed, "avoidance must prevent deadlock: {report:?}");
        assert!(!report.deadlocked);
        assert!(report.dummy_messages > 0, "dummies must actually flow");
    }

    #[test]
    fn fig2_completes_with_nonpropagation_plan() {
        let g = fig2(2);
        let a = g.node_by_name("A").unwrap();
        let plan = Planner::new(&g)
            .algorithm(Algorithm::NonPropagation)
            .plan()
            .unwrap();
        let topo = Topology::from_graph(&g)
            .with(a, || Predicate::new(2, |_seq, out| out == 0));
        let report = Simulator::new(&topo).with_plan(&plan).run(1000);
        assert!(report.completed, "{report:?}");
        assert!(report.dummy_messages > 0);
    }

    #[test]
    fn periodic_filtering_with_plan_is_safe_at_tiny_buffers() {
        let g = fig2(1);
        let a = g.node_by_name("A").unwrap();
        for algorithm in [Algorithm::Propagation, Algorithm::NonPropagation] {
            let plan = Planner::new(&g).algorithm(algorithm).plan().unwrap();
            let topo = Topology::from_graph(&g)
                .with(a, || Predicate::new(2, |seq, out| out == 0 || seq % 7 == 0));
            let report = Simulator::new(&topo).with_plan(&plan).run(500);
            assert!(report.completed, "{algorithm}: {report:?}");
        }
    }

    #[test]
    fn split_join_with_heavy_filtering_completes_with_plan() {
        // Fig. 1 style split/join where one recogniser keeps only a sliver
        // of the traffic: the classic filtering deadlock.
        let mut b = GraphBuilder::new();
        b.edge_with_capacity("split", "left", 4).unwrap();
        b.edge_with_capacity("split", "right", 4).unwrap();
        b.edge_with_capacity("left", "join", 4).unwrap();
        b.edge_with_capacity("right", "join", 4).unwrap();
        let g = b.build().unwrap();
        let split = g.node_by_name("split").unwrap();
        let left = g.node_by_name("left").unwrap();
        let right = g.node_by_name("right").unwrap();
        let topo = Topology::from_graph(&g)
            .with(split, || Broadcast::new(2))
            .with(left, || ModuloFilter::new(1, 5, 0))
            .with(right, || ModuloFilter::new(1, 50, 3));
        // Without a plan the application deadlocks.
        let without = Simulator::new(&topo).run(2000);
        assert!(without.deadlocked, "{without:?}");
        // The filtering happens at the recognisers (interior nodes of the
        // cycle), which the Non-Propagation protocol handles.
        let plan = Planner::new(&g)
            .algorithm(Algorithm::NonPropagation)
            .plan()
            .unwrap();
        let with_plan = Simulator::new(&topo).with_plan(&plan).run(2000);
        assert!(with_plan.completed, "{with_plan:?}");
    }

    #[test]
    fn interior_filtering_defeats_the_literal_propagation_trigger() {
        // Reproduction finding (see the wrapper module docs): when the
        // filtering happens at an interior node of the empty path, the
        // literal "only after filtering" trigger never creates a dummy and
        // the deadlock persists; the heartbeat trigger prevents it.
        use crate::wrapper::PropagationTrigger;
        let mut b = GraphBuilder::new();
        b.edge_with_capacity("split", "left", 4).unwrap();
        b.edge_with_capacity("split", "right", 4).unwrap();
        b.edge_with_capacity("left", "join", 4).unwrap();
        b.edge_with_capacity("right", "join", 4).unwrap();
        let g = b.build().unwrap();
        let split = g.node_by_name("split").unwrap();
        let right = g.node_by_name("right").unwrap();
        let topo = Topology::from_graph(&g)
            .with(split, || Broadcast::new(2))
            .with(right, || ModuloFilter::new(1, 64, 1));
        let plan = Planner::new(&g).algorithm(Algorithm::Propagation).plan().unwrap();
        let literal = Simulator::new(&topo)
            .with_plan(&plan)
            .propagation_trigger(PropagationTrigger::OnFilterOnly)
            .run(2000);
        assert!(literal.deadlocked, "{literal:?}");
        // The Non-Propagation protocol handles interior filtering by
        // construction.
        let np_plan = Planner::new(&g)
            .algorithm(Algorithm::NonPropagation)
            .plan()
            .unwrap();
        let np = Simulator::new(&topo).with_plan(&np_plan).run(2000);
        assert!(np.completed, "{np:?}");
    }

    #[test]
    fn dummy_traffic_is_bounded_by_data_traffic_shape() {
        // Propagation should send noticeably fewer dummies than the number
        // of filtered inputs when buffers are large.
        let g = fig2(16);
        let a = g.node_by_name("A").unwrap();
        let plan = Planner::new(&g).algorithm(Algorithm::Propagation).plan().unwrap();
        let topo = Topology::from_graph(&g)
            .with(a, || Predicate::new(2, |_seq, out| out == 0));
        let report = Simulator::new(&topo).with_plan(&plan).run(1000);
        assert!(report.completed);
        // Interval on A->C is 32 (two hops of 16), so at most ~1000/32 + 1
        // dummies on that channel.
        let ac = g.edge_by_names("A", "C").unwrap();
        assert!(report.per_edge_dummies[ac.index()] <= 1000 / 32 + 2);
    }

    #[test]
    fn max_steps_yields_inconclusive_report() {
        let g = pipeline();
        let topo = Topology::from_graph(&g);
        for scheduler in [Scheduler::Worklist, Scheduler::Scan] {
            let report = Simulator::new(&topo)
                .scheduler(scheduler)
                .max_steps(5)
                .run(1_000_000);
            assert!(report.inconclusive(), "{scheduler:?}");
        }
    }

    #[test]
    fn zero_inputs_complete_immediately() {
        let g = fig2(2);
        let topo = Topology::from_graph(&g);
        let report = Simulator::new(&topo).run(0);
        assert!(report.completed);
        assert_eq!(report.data_messages, 0);
    }

    #[test]
    fn per_edge_counters_sum_to_totals() {
        let g = fig2(4);
        let a = g.node_by_name("A").unwrap();
        let plan = Planner::new(&g).algorithm(Algorithm::Propagation).plan().unwrap();
        let topo = Topology::from_graph(&g)
            .with(a, || Predicate::new(2, |seq, out| out == 0 || seq % 3 == 0));
        let report = Simulator::new(&topo).with_plan(&plan).run(300);
        assert!(report.completed);
        assert_eq!(
            report.per_edge_data.iter().sum::<u64>(),
            report.data_messages
        );
        assert_eq!(
            report.per_edge_dummies.iter().sum::<u64>(),
            report.dummy_messages
        );
    }

    #[test]
    fn worklist_and_scan_agree_on_fig2_with_plans() {
        let g = fig2(2);
        let a = g.node_by_name("A").unwrap();
        for algorithm in [Algorithm::Propagation, Algorithm::NonPropagation] {
            let plan = Planner::new(&g).algorithm(algorithm).plan().unwrap();
            let topo = Topology::from_graph(&g)
                .with(a, || Predicate::new(2, |seq, out| out == 0 || seq % 5 == 0));
            let wl = Simulator::new(&topo).with_plan(&plan).run(500);
            let scan = Simulator::new(&topo)
                .with_plan(&plan)
                .scheduler(Scheduler::Scan)
                .run(500);
            assert_eq!(wl.completed, scan.completed, "{algorithm}");
            assert_eq!(wl.deadlocked, scan.deadlocked, "{algorithm}");
            assert_eq!(wl.per_edge_data, scan.per_edge_data, "{algorithm}");
            assert_eq!(wl.per_edge_dummies, scan.per_edge_dummies, "{algorithm}");
            assert_eq!(wl.sink_firings, scan.sink_firings, "{algorithm}");
        }
    }

    #[test]
    fn worklist_matches_scan_on_a_deep_pipeline() {
        // On an N-node pipeline the worklist only ever visits nodes that a
        // channel event marked as possibly runnable, while the scan pays an
        // O(N) sweep to find each runnable node; both must deliver exactly
        // the same messages.
        let names: Vec<String> = (0..64).map(|i| format!("n{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let mut b = GraphBuilder::new();
        b.chain(&refs).unwrap();
        let g = b.build().unwrap();
        let topo = Topology::from_graph(&g);
        let wl = Simulator::new(&topo).run(10);
        let scan = Simulator::new(&topo).scheduler(Scheduler::Scan).run(10);
        assert!(wl.completed && scan.completed);
        assert_eq!(wl.per_edge_data, scan.per_edge_data);
        assert_eq!(wl.sink_firings, scan.sink_firings);
    }

    #[test]
    fn shared_plan_runs_like_owned_plan() {
        let g = fig2(2);
        let a = g.node_by_name("A").unwrap();
        let plan = Planner::new(&g).algorithm(Algorithm::Propagation).plan().unwrap();
        let shared = std::sync::Arc::new(plan.clone());
        let topo = Topology::from_graph(&g)
            .with(a, || Predicate::new(2, |_seq, out| out == 0));
        let owned = Simulator::new(&topo).with_plan(&plan).run(400);
        let arced = Simulator::new(&topo).with_shared_plan(shared).run(400);
        assert_eq!(owned.completed, arced.completed);
        assert_eq!(owned.per_edge_data, arced.per_edge_data);
        assert_eq!(owned.per_edge_dummies, arced.per_edge_dummies);
    }
}
