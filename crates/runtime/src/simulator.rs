//! A deterministic, single-threaded executor with exact deadlock detection.
//!
//! The simulator advances one node at a time, repeatedly scanning for a node
//! that can make progress (deliver a buffered output, or accept the next
//! sequence number).  When no node can progress and not every node has
//! reached end-of-stream, the run is *deadlocked* — exactly the condition
//! the paper's avoidance machinery is designed to prevent — and the report
//! records which node is blocked on which channel.
//!
//! Determinism makes the simulator the reference engine for the tests and
//! benchmarks; the multi-threaded engine ([`crate::ThreadedExecutor`])
//! exercises the same wrapper logic under real concurrency.

use std::collections::VecDeque;

use fila_avoidance::AvoidancePlan;
use fila_graph::{EdgeId, NodeId};

use crate::message::Message;
use crate::node::{FireDecision, FireInput};
use crate::report::{BlockedInfo, BlockedReason, ExecutionReport};
use crate::topology::Topology;
use crate::wrapper::{AvoidanceMode, DummyWrapper, PropagationTrigger};

/// Deterministic single-threaded execution engine.
#[derive(Debug, Clone)]
pub struct Simulator<'t> {
    topology: &'t Topology,
    mode: AvoidanceMode,
    trigger: PropagationTrigger,
    max_steps: u64,
}

impl<'t> Simulator<'t> {
    /// Creates a simulator with deadlock avoidance disabled.
    pub fn new(topology: &'t Topology) -> Self {
        Simulator {
            topology,
            mode: AvoidanceMode::Disabled,
            trigger: PropagationTrigger::default(),
            max_steps: u64::MAX,
        }
    }

    /// Enables deadlock avoidance following `plan`.
    pub fn with_plan(mut self, plan: &AvoidancePlan) -> Self {
        self.mode = AvoidanceMode::Plan(plan.clone());
        self
    }

    /// Sets the avoidance mode explicitly.
    pub fn avoidance(mut self, mode: AvoidanceMode) -> Self {
        self.mode = mode;
        self
    }

    /// Selects the Propagation-protocol trigger (see
    /// [`PropagationTrigger`]); the default is the paper's literal trigger.
    pub fn propagation_trigger(mut self, trigger: PropagationTrigger) -> Self {
        self.trigger = trigger;
        self
    }

    /// Bounds the number of scheduler steps (a safety valve for exploratory
    /// runs; the default is effectively unbounded).
    pub fn max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Runs the application, offering `inputs` sequence numbers at every
    /// source node, and returns the execution report.
    pub fn run(&self, inputs: u64) -> ExecutionReport {
        Run::new(self.topology, &self.mode, self.trigger, inputs).execute(self.max_steps)
    }
}

struct NodeState {
    behavior: Box<dyn crate::node::NodeBehavior>,
    wrapper: DummyWrapper,
    pending: VecDeque<(EdgeId, Message)>,
    is_source: bool,
    next_source_seq: u64,
    eos_queued: bool,
    done: bool,
}

struct Run<'t> {
    topology: &'t Topology,
    inputs: u64,
    channels: Vec<VecDeque<Message>>,
    capacities: Vec<usize>,
    nodes: Vec<NodeState>,
    report: ExecutionReport,
}

impl<'t> Run<'t> {
    fn new(
        topology: &'t Topology,
        mode: &AvoidanceMode,
        trigger: PropagationTrigger,
        inputs: u64,
    ) -> Self {
        let g = topology.graph();
        let channels = vec![VecDeque::new(); g.edge_count()];
        let capacities = g
            .edge_ids()
            .map(|e| g.capacity(e) as usize)
            .collect::<Vec<_>>();
        let nodes = g
            .node_ids()
            .map(|n| NodeState {
                behavior: topology.build_behavior(n),
                wrapper: DummyWrapper::with_trigger(g, n, mode, trigger),
                pending: VecDeque::new(),
                is_source: g.in_degree(n) == 0,
                next_source_seq: 0,
                eos_queued: false,
                done: false,
            })
            .collect();
        let report = ExecutionReport {
            inputs_offered: inputs,
            per_edge_data: vec![0; g.edge_count()],
            per_edge_dummies: vec![0; g.edge_count()],
            ..Default::default()
        };
        Run {
            topology,
            inputs,
            channels,
            capacities,
            nodes,
            report,
        }
    }

    fn execute(mut self, max_steps: u64) -> ExecutionReport {
        let node_ids: Vec<NodeId> = self.topology.graph().node_ids().collect();
        loop {
            let mut progressed = false;
            for &n in &node_ids {
                if self.report.steps >= max_steps {
                    return self.finish(false, false);
                }
                if self.step(n) {
                    progressed = true;
                    self.report.steps += 1;
                }
            }
            if self.nodes.iter().all(|s| s.done) {
                return self.finish(true, false);
            }
            if !progressed {
                return self.finish(false, true);
            }
        }
    }

    fn finish(mut self, completed: bool, stalled: bool) -> ExecutionReport {
        self.report.completed = completed;
        if !completed && stalled {
            let g = self.topology.graph();
            let mut blocked = Vec::new();
            for (idx, state) in self.nodes.iter().enumerate() {
                if state.done {
                    continue;
                }
                let node = NodeId::from_raw(idx as u32);
                if let Some(&(edge, _)) = state.pending.front() {
                    blocked.push(BlockedInfo {
                        node,
                        reason: BlockedReason::WaitingForSpace(edge),
                    });
                } else if let Some(&edge) = g
                    .in_edges(node)
                    .iter()
                    .find(|&&e| self.channels[e.index()].is_empty())
                {
                    blocked.push(BlockedInfo {
                        node,
                        reason: BlockedReason::WaitingForInput(edge),
                    });
                }
            }
            // A stalled run is a deadlock; hitting the step bound instead
            // leaves the report inconclusive.
            self.report.deadlocked = true;
            self.report.blocked = blocked;
        }
        self.report
    }

    /// Attempts to make progress on one node; returns whether it did.
    fn step(&mut self, node: NodeId) -> bool {
        // Phase 1: flush pending outputs (a node blocked on a full channel
        // cannot do anything else, mirroring a blocking send).
        if self.flush_pending(node) {
            return true;
        }
        if !self.nodes[node.index()].pending.is_empty() {
            return false;
        }
        if self.nodes[node.index()].done {
            return false;
        }
        let g = self.topology.graph();
        if self.nodes[node.index()].is_source {
            return self.step_source(node);
        }

        // Interior / sink node: can it accept the next sequence number?
        let in_edges = g.in_edges(node);
        if in_edges
            .iter()
            .any(|&e| self.channels[e.index()].is_empty())
        {
            return false;
        }
        let accept_seq = in_edges
            .iter()
            .map(|&e| self.channels[e.index()].front().expect("non-empty").seq())
            .min()
            .expect("nodes reaching here have inputs");

        if accept_seq == u64::MAX {
            // End of stream on every input.
            let out: Vec<EdgeId> = g.out_edges(node).to_vec();
            for e in out {
                self.nodes[node.index()].pending.push_back((e, Message::Eos));
            }
            let state = &mut self.nodes[node.index()];
            state.eos_queued = true;
            self.flush_pending(node);
            self.mark_done_if_drained(node);
            return true;
        }

        // Consume every head carrying this sequence number.
        let mut data_in: Vec<Option<u64>> = vec![None; in_edges.len()];
        let mut consumed_dummy = false;
        for (idx, &e) in in_edges.iter().enumerate() {
            let channel = &mut self.channels[e.index()];
            let head_seq = channel.front().expect("non-empty").seq();
            if head_seq == accept_seq {
                match channel.pop_front().expect("non-empty") {
                    Message::Data { payload, .. } => data_in[idx] = Some(payload),
                    Message::Dummy { .. } => consumed_dummy = true,
                    Message::Eos => unreachable!("EOS has maximal sequence number"),
                }
            }
        }

        let out_count = g.out_degree(node);
        let decision = if data_in.iter().any(Option::is_some) {
            let input = FireInput {
                seq: accept_seq,
                data_in: &data_in,
            };
            if out_count == 0 {
                self.report.sink_firings += 1;
            }
            self.nodes[node.index()].behavior.fire(&input)
        } else {
            FireDecision::silence(out_count)
        };
        self.queue_outputs(node, accept_seq, &decision, consumed_dummy);
        self.flush_pending(node);
        self.mark_done_if_drained(node);
        true
    }

    fn step_source(&mut self, node: NodeId) -> bool {
        let g = self.topology.graph();
        let state = &mut self.nodes[node.index()];
        if state.next_source_seq < self.inputs {
            let seq = state.next_source_seq;
            state.next_source_seq += 1;
            let decision = state.behavior.fire(&FireInput { seq, data_in: &[] });
            self.queue_outputs(node, seq, &decision, false);
            self.flush_pending(node);
            return true;
        }
        if !state.eos_queued {
            state.eos_queued = true;
            let out: Vec<EdgeId> = g.out_edges(node).to_vec();
            for e in out {
                self.nodes[node.index()].pending.push_back((e, Message::Eos));
            }
            self.flush_pending(node);
            self.mark_done_if_drained(node);
            return true;
        }
        self.mark_done_if_drained(node);
        false
    }

    /// Queues the data and dummy messages produced for one sequence number.
    fn queue_outputs(
        &mut self,
        node: NodeId,
        seq: u64,
        decision: &FireDecision,
        consumed_dummy: bool,
    ) {
        let g = self.topology.graph();
        let out_edges: Vec<EdgeId> = g.out_edges(node).to_vec();
        debug_assert_eq!(decision.emit.len(), out_edges.len());
        let sent_data: Vec<bool> = decision.emit.iter().map(Option::is_some).collect();
        let dummies = self.nodes[node.index()]
            .wrapper
            .on_accept(&sent_data, consumed_dummy);
        let state = &mut self.nodes[node.index()];
        for (idx, &e) in out_edges.iter().enumerate() {
            if let Some(payload) = decision.emit[idx] {
                state.pending.push_back((e, Message::Data { seq, payload }));
            }
            if dummies[idx] {
                // Under the heartbeat trigger a dummy may accompany a data
                // message with the same sequence number; consumers tolerate
                // this (the dummy simply carries no new information).
                state.pending.push_back((e, Message::Dummy { seq }));
            }
        }
    }

    /// Delivers as many pending outputs as channel capacities allow.
    ///
    /// Delivery is FIFO *per channel* but channels do not block one another:
    /// a full channel must not delay a dummy message destined for a
    /// different, empty channel (the deadlock-avoidance guarantee relies on
    /// the dummy getting out), so each output channel behaves like an
    /// independent blocking port.
    fn flush_pending(&mut self, node: NodeId) -> bool {
        let mut delivered = false;
        let mut blocked_edges: Vec<EdgeId> = Vec::new();
        let mut i = 0;
        while i < self.nodes[node.index()].pending.len() {
            let (edge, message) = self.nodes[node.index()].pending[i];
            if blocked_edges.contains(&edge) {
                i += 1;
                continue;
            }
            let channel = &mut self.channels[edge.index()];
            if channel.len() >= self.capacities[edge.index()] {
                blocked_edges.push(edge);
                i += 1;
                continue;
            }
            channel.push_back(message);
            self.nodes[node.index()].pending.remove(i);
            delivered = true;
            match message {
                Message::Data { .. } => {
                    self.report.data_messages += 1;
                    self.report.per_edge_data[edge.index()] += 1;
                }
                Message::Dummy { .. } => {
                    self.report.dummy_messages += 1;
                    self.report.per_edge_dummies[edge.index()] += 1;
                }
                Message::Eos => {}
            }
        }
        if delivered {
            self.mark_done_if_drained(node);
        }
        delivered
    }

    fn mark_done_if_drained(&mut self, node: NodeId) {
        let state = &mut self.nodes[node.index()];
        if state.eos_queued && state.pending.is_empty() {
            state.done = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filters::{Broadcast, ModuloFilter, Predicate};
    use fila_avoidance::{Algorithm, Planner};
    use fila_graph::{Graph, GraphBuilder};

    fn fig2(buffer: u64) -> Graph {
        let mut b = GraphBuilder::new();
        b.edge_with_capacity("A", "B", buffer).unwrap();
        b.edge_with_capacity("B", "C", buffer).unwrap();
        b.edge_with_capacity("A", "C", buffer).unwrap();
        b.build().unwrap()
    }

    fn pipeline() -> Graph {
        let mut b = GraphBuilder::new();
        b.chain(&["src", "mid", "dst"]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn pipeline_without_filtering_completes() {
        let g = pipeline();
        let topo = Topology::from_graph(&g);
        let report = Simulator::new(&topo).run(100);
        assert!(report.completed);
        assert!(!report.deadlocked);
        assert_eq!(report.data_messages, 200);
        assert_eq!(report.dummy_messages, 0);
        assert_eq!(report.sink_firings, 100);
    }

    #[test]
    fn fig2_deadlocks_without_avoidance() {
        // A filters everything it sends to C; with finite buffers the
        // application deadlocks exactly as in Fig. 2.
        let g = fig2(2);
        let a = g.node_by_name("A").unwrap();
        let topo = Topology::from_graph(&g)
            // A sends data to B always, to C never (out_edges(A) = [A->B, A->C]).
            .with(a, || Predicate::new(2, |_seq, out| out == 0));
        let report = Simulator::new(&topo).run(1000);
        assert!(report.deadlocked, "expected deadlock: {report:?}");
        assert!(!report.completed);
        assert!(!report.blocked.is_empty());
    }

    #[test]
    fn fig2_completes_with_propagation_plan() {
        let g = fig2(2);
        let a = g.node_by_name("A").unwrap();
        let plan = Planner::new(&g).algorithm(Algorithm::Propagation).plan().unwrap();
        let topo = Topology::from_graph(&g)
            .with(a, || Predicate::new(2, |_seq, out| out == 0));
        let report = Simulator::new(&topo).with_plan(&plan).run(1000);
        assert!(report.completed, "avoidance must prevent deadlock: {report:?}");
        assert!(!report.deadlocked);
        assert!(report.dummy_messages > 0, "dummies must actually flow");
    }

    #[test]
    fn fig2_completes_with_nonpropagation_plan() {
        let g = fig2(2);
        let a = g.node_by_name("A").unwrap();
        let plan = Planner::new(&g)
            .algorithm(Algorithm::NonPropagation)
            .plan()
            .unwrap();
        let topo = Topology::from_graph(&g)
            .with(a, || Predicate::new(2, |_seq, out| out == 0));
        let report = Simulator::new(&topo).with_plan(&plan).run(1000);
        assert!(report.completed, "{report:?}");
        assert!(report.dummy_messages > 0);
    }

    #[test]
    fn periodic_filtering_with_plan_is_safe_at_tiny_buffers() {
        let g = fig2(1);
        let a = g.node_by_name("A").unwrap();
        for algorithm in [Algorithm::Propagation, Algorithm::NonPropagation] {
            let plan = Planner::new(&g).algorithm(algorithm).plan().unwrap();
            let topo = Topology::from_graph(&g)
                .with(a, || Predicate::new(2, |seq, out| out == 0 || seq % 7 == 0));
            let report = Simulator::new(&topo).with_plan(&plan).run(500);
            assert!(report.completed, "{algorithm}: {report:?}");
        }
    }

    #[test]
    fn split_join_with_heavy_filtering_completes_with_plan() {
        // Fig. 1 style split/join where one recogniser keeps only a sliver
        // of the traffic: the classic filtering deadlock.
        let mut b = GraphBuilder::new();
        b.edge_with_capacity("split", "left", 4).unwrap();
        b.edge_with_capacity("split", "right", 4).unwrap();
        b.edge_with_capacity("left", "join", 4).unwrap();
        b.edge_with_capacity("right", "join", 4).unwrap();
        let g = b.build().unwrap();
        let split = g.node_by_name("split").unwrap();
        let left = g.node_by_name("left").unwrap();
        let right = g.node_by_name("right").unwrap();
        let topo = Topology::from_graph(&g)
            .with(split, || Broadcast::new(2))
            .with(left, || ModuloFilter::new(1, 5, 0))
            .with(right, || ModuloFilter::new(1, 50, 3));
        // Without a plan the application deadlocks.
        let without = Simulator::new(&topo).run(2000);
        assert!(without.deadlocked, "{without:?}");
        // The filtering happens at the recognisers (interior nodes of the
        // cycle), which the Non-Propagation protocol handles.
        let plan = Planner::new(&g)
            .algorithm(Algorithm::NonPropagation)
            .plan()
            .unwrap();
        let with_plan = Simulator::new(&topo).with_plan(&plan).run(2000);
        assert!(with_plan.completed, "{with_plan:?}");
    }

    #[test]
    fn interior_filtering_defeats_the_literal_propagation_trigger() {
        // Reproduction finding (see the wrapper module docs): when the
        // filtering happens at an interior node of the empty path, the
        // literal "only after filtering" trigger never creates a dummy and
        // the deadlock persists; the heartbeat trigger prevents it.
        use crate::wrapper::PropagationTrigger;
        let mut b = GraphBuilder::new();
        b.edge_with_capacity("split", "left", 4).unwrap();
        b.edge_with_capacity("split", "right", 4).unwrap();
        b.edge_with_capacity("left", "join", 4).unwrap();
        b.edge_with_capacity("right", "join", 4).unwrap();
        let g = b.build().unwrap();
        let split = g.node_by_name("split").unwrap();
        let right = g.node_by_name("right").unwrap();
        let topo = Topology::from_graph(&g)
            .with(split, || Broadcast::new(2))
            .with(right, || ModuloFilter::new(1, 64, 1));
        let plan = Planner::new(&g).algorithm(Algorithm::Propagation).plan().unwrap();
        let literal = Simulator::new(&topo)
            .with_plan(&plan)
            .propagation_trigger(PropagationTrigger::OnFilterOnly)
            .run(2000);
        assert!(literal.deadlocked, "{literal:?}");
        // The Non-Propagation protocol handles interior filtering by
        // construction.
        let np_plan = Planner::new(&g)
            .algorithm(Algorithm::NonPropagation)
            .plan()
            .unwrap();
        let np = Simulator::new(&topo).with_plan(&np_plan).run(2000);
        assert!(np.completed, "{np:?}");
    }

    #[test]
    fn dummy_traffic_is_bounded_by_data_traffic_shape() {
        // Propagation should send noticeably fewer dummies than the number
        // of filtered inputs when buffers are large.
        let g = fig2(16);
        let a = g.node_by_name("A").unwrap();
        let plan = Planner::new(&g).algorithm(Algorithm::Propagation).plan().unwrap();
        let topo = Topology::from_graph(&g)
            .with(a, || Predicate::new(2, |_seq, out| out == 0));
        let report = Simulator::new(&topo).with_plan(&plan).run(1000);
        assert!(report.completed);
        // Interval on A->C is 32 (two hops of 16), so at most ~1000/32 + 1
        // dummies on that channel.
        let ac = g.edge_by_names("A", "C").unwrap();
        assert!(report.per_edge_dummies[ac.index()] <= 1000 / 32 + 2);
    }

    #[test]
    fn max_steps_yields_inconclusive_report() {
        let g = pipeline();
        let topo = Topology::from_graph(&g);
        let report = Simulator::new(&topo).max_steps(5).run(1_000_000);
        assert!(report.inconclusive());
    }

    #[test]
    fn zero_inputs_complete_immediately() {
        let g = fig2(2);
        let topo = Topology::from_graph(&g);
        let report = Simulator::new(&topo).run(0);
        assert!(report.completed);
        assert_eq!(report.data_messages, 0);
    }

    #[test]
    fn per_edge_counters_sum_to_totals() {
        let g = fig2(4);
        let a = g.node_by_name("A").unwrap();
        let plan = Planner::new(&g).algorithm(Algorithm::Propagation).plan().unwrap();
        let topo = Topology::from_graph(&g)
            .with(a, || Predicate::new(2, |seq, out| out == 0 || seq % 3 == 0));
        let report = Simulator::new(&topo).with_plan(&plan).run(300);
        assert!(report.completed);
        assert_eq!(
            report.per_edge_data.iter().sum::<u64>(),
            report.data_messages
        );
        assert_eq!(
            report.per_edge_dummies.iter().sum::<u64>(),
            report.dummy_messages
        );
    }
}
