//! A lock-free single-producer/single-consumer ring buffer with blocked-peer
//! notification flags — the channel substrate of [`crate::PooledExecutor`].
//!
//! Every edge of the application graph has exactly one producing node and one
//! consuming node, so its channel never needs multi-producer or multi-consumer
//! machinery: a classic Lamport ring (one atomic head owned by the consumer,
//! one atomic tail owned by the producer, both caching the opposite index)
//! gives wait-free `push`/`pop`/`front` with no locks and no allocation after
//! construction.
//!
//! ## The waiting-flag protocol
//!
//! The pooled executor schedules node *tasks*, not threads, so a task that
//! finds a channel full (or empty) cannot block — it must arrange to be
//! *woken* when the peer makes the channel non-full (non-empty) and yield its
//! worker.  Each ring therefore carries two flags:
//!
//! * the producer, after a failed `push`, calls [`Producer::begin_wait`] and
//!   **retries the push**; only if the retry also fails may it park.  The
//!   consumer checks [`Consumer::take_producer_waiting`] after every
//!   successful `pop` and wakes the producer task if it was set.
//! * symmetrically, the consumer calls [`Consumer::begin_wait`] after seeing
//!   an empty channel and re-peeks; the producer checks
//!   [`Producer::take_consumer_waiting`] after every successful `push`.
//!
//! The store-fence-load ordering on both sides (Dekker's protocol) makes a
//! lost wakeup impossible: either the parking side's re-check observes the
//! peer's operation, or the peer's flag check observes the parking side's
//! registration.  Spurious wakeups remain possible (a woken task simply finds
//! it cannot progress and re-parks), which is harmless.
//!
//! ## Index-width assumption
//!
//! Head and tail are *monotonically increasing* `usize` counters (slot =
//! `index % cap`), which is only sound while they cannot wrap: on a 64-bit
//! target a single channel would need ~5.8 centuries at 10^9 msg/s to
//! overflow, but on a 32-bit target 2^32 messages wrap the counters and
//! corrupt any ring whose capacity does not divide 2^32.  The engines only
//! target 64-bit hosts; port the indices to `u64` (or one-lap stamps à la
//! crossbeam's `ArrayQueue`) before using this module on 32-bit.

use std::cell::{Cell, UnsafeCell};
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// The message weight of a ring value.
///
/// Channel capacity is modelled in **messages**: a ring of capacity `c`
/// admits values whose weights sum to at most `c`.  Scalar payloads
/// (`UNIT = true`, weight 1 each) use the slot indices alone for the
/// occupancy check — byte-for-byte the classic Lamport ring.  Weighted
/// payloads (message containers) additionally maintain a consumed-message
/// cursor so occupancy is accounted — and released — per message, never per
/// slot; see [`crate::container`].
pub trait Weigh {
    /// True when every value of this type weighs exactly one message.
    const UNIT: bool;
    /// The current message weight (≥ 1 on a ring).
    fn weight(&self) -> usize;
    /// Splits off the first `n` messages (`0 < n <` weight).  Only invoked
    /// on weighted types during partial delivery; unit types never split.
    fn split_front(&mut self, n: usize) -> Self
    where
        Self: Sized,
    {
        let _ = n;
        unreachable!("unit-weight values never split");
    }
}

impl Weigh for crate::message::Message {
    const UNIT: bool = true;
    fn weight(&self) -> usize {
        1
    }
}

/// A channel capacity in **messages** — the unit of the paper's buffer
/// model.  The newtype exists so no ring construction site can silently
/// reinterpret "slots of containers" as "slots of messages": a ring of
/// `MsgCap(c)` allocates `c` slots (the worst case of one message per
/// container) and admits at most `c` messages regardless of how they are
/// grouped into containers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgCap(usize);

impl MsgCap {
    /// Wraps a capacity of `messages` (≥ 1).
    pub fn new(messages: usize) -> Self {
        assert!(messages >= 1, "channel capacity must be at least 1 message");
        MsgCap(messages)
    }

    /// The capacity in messages.
    pub fn messages(self) -> usize {
        self.0
    }
}

/// Pads and aligns to a cache line so the producer- and consumer-owned
/// indices do not false-share.
#[repr(align(64))]
struct CachePadded<T>(T);

struct Ring<T> {
    /// One slot per message of channel capacity (worst case: every
    /// container holds a single message).
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Channel capacity in **messages** (and slot count).
    cap: usize,
    /// Next slot to pop; written only by the consumer.
    head: CachePadded<AtomicUsize>,
    /// Next slot to push; written only by the producer.
    tail: CachePadded<AtomicUsize>,
    /// Total messages fully consumed (monotonic); written only by the
    /// consumer, and only used when `T` is weighted (`!T::UNIT`).  Kept on
    /// its own cache line for the same false-sharing reason as `head`.
    msg_head: CachePadded<AtomicUsize>,
    /// Set by the producer when it observed the ring full and intends to
    /// park; consumed by the consumer after a pop.
    producer_waiting: AtomicBool,
    /// Set by the consumer when it observed the ring empty and intends to
    /// park; consumed by the producer after a push.
    consumer_waiting: AtomicBool,
}

// The raw slots are only ever touched by the unique producer (writes at
// `tail`) and the unique consumer (reads at `head`), with the atomic indices
// ordering the hand-off; the endpoints below enforce that uniqueness by
// construction (they are not Clone).
unsafe impl<T: Send> Sync for Ring<T> {}
unsafe impl<T: Send> Send for Ring<T> {}

impl<T> Ring<T> {
    #[inline]
    fn slot(&self, index: usize) -> *mut MaybeUninit<T> {
        self.buf[index % self.cap].get()
    }
}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Endpoints are gone; drain whatever was left in the ring.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        for i in head..tail {
            unsafe { (*self.slot(i)).assume_init_drop() };
        }
    }
}

/// The producing endpoint of a [`ring`].  Not cloneable: exactly one task
/// may push.
pub struct Producer<T> {
    ring: Arc<Ring<T>>,
    /// Consumer index as of our last refresh; only ever behind the truth,
    /// so a push based on it is conservative (may refresh, never corrupts).
    cached_head: Cell<usize>,
    /// Total message weight pushed (monotonic); producer-local, only used
    /// for weighted payloads.
    msg_tail: Cell<usize>,
    /// Consumed-message cursor as of our last refresh; behind the truth,
    /// so the capacity check based on it is conservative.
    cached_msg_head: Cell<usize>,
}

/// The consuming endpoint of a [`ring`].  Not cloneable: exactly one task
/// may pop.
pub struct Consumer<T> {
    ring: Arc<Ring<T>>,
    /// Producer index as of our last refresh; only ever behind the truth.
    cached_tail: Cell<usize>,
}

impl<T> std::fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("spsc::Producer { .. }")
    }
}

impl<T> std::fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("spsc::Consumer { .. }")
    }
}

/// Creates a bounded SPSC ring of capacity `cap` **messages** (≥ 1).
pub fn ring<T: Weigh>(cap: MsgCap) -> (Producer<T>, Consumer<T>) {
    let cap = cap.messages();
    let buf = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let ring = Arc::new(Ring {
        buf,
        cap,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
        msg_head: CachePadded(AtomicUsize::new(0)),
        producer_waiting: AtomicBool::new(false),
        consumer_waiting: AtomicBool::new(false),
    });
    (
        Producer {
            ring: Arc::clone(&ring),
            cached_head: Cell::new(0),
            msg_tail: Cell::new(0),
            cached_msg_head: Cell::new(0),
        },
        Consumer {
            ring,
            cached_tail: Cell::new(0),
        },
    )
}

impl<T: Weigh> Producer<T> {
    /// Attempts to push; hands the value back if it does not fit the
    /// remaining **message** capacity (or, for weighted payloads, when no
    /// slot is free — a transient state while the consumer finishes a
    /// partially consumed front container).
    pub fn push(&mut self, value: T) -> Result<(), T> {
        let ring = &*self.ring;
        let tail = ring.tail.0.load(Ordering::Relaxed);
        // `cached_head` is only ever ≤ the true head (a reset sets it to 0),
        // so `tail - cached_head` over-approximates the occupancy: `< cap`
        // proves there is space, `>= cap` forces a refresh.
        if tail - self.cached_head.get() >= ring.cap {
            self.cached_head
                .set(ring.head.0.load(Ordering::Acquire));
            if tail - self.cached_head.get() >= ring.cap {
                return Err(value);
            }
        }
        if !T::UNIT {
            // Weighted payloads additionally account occupancy in messages:
            // a free slot alone does not prove `weight` messages of space.
            let w = value.weight();
            debug_assert!(
                (1..=ring.cap).contains(&w),
                "container weight {w} exceeds channel capacity {}",
                ring.cap
            );
            if self.msg_tail.get() + w > self.cached_msg_head.get() + ring.cap {
                self.cached_msg_head
                    .set(ring.msg_head.0.load(Ordering::Acquire));
                if self.msg_tail.get() + w > self.cached_msg_head.get() + ring.cap {
                    return Err(value);
                }
            }
            self.msg_tail.set(self.msg_tail.get() + w);
        }
        unsafe { (*ring.slot(tail)).write(value) };
        ring.tail.0.store(tail + 1, Ordering::Release);
        Ok(())
    }

    /// Messages that can be pushed right now: the remaining message
    /// capacity, or 0 when no slot is free.  Conservative (caches refresh
    /// only when the cached view says "no space"), never an over-estimate.
    pub(crate) fn space_msgs(&self) -> usize {
        let ring = &*self.ring;
        let tail = ring.tail.0.load(Ordering::Relaxed);
        if tail - self.cached_head.get() >= ring.cap {
            self.cached_head.set(ring.head.0.load(Ordering::Acquire));
            if tail - self.cached_head.get() >= ring.cap {
                return 0;
            }
        }
        if T::UNIT {
            return ring.cap - (tail - self.cached_head.get());
        }
        let mut used = self.msg_tail.get() - self.cached_msg_head.get();
        if used >= ring.cap {
            self.cached_msg_head
                .set(ring.msg_head.0.load(Ordering::Acquire));
            used = self.msg_tail.get() - self.cached_msg_head.get();
        }
        ring.cap - used.min(ring.cap)
    }

    /// Pushes, or — when the ring is full — registers this endpoint as
    /// blocked-on-full and retries once (the Dekker re-check that makes
    /// lost wakeups impossible), withdrawing the registration if the retry
    /// lands.  On `Err` the value is handed back **and the registration
    /// stays active**: the caller may park, and the consumer's next pop
    /// will report it via [`Consumer::take_producer_waiting`].
    ///
    /// This is the only correct way to give up on a full ring; a plain
    /// failed [`Producer::push`] must never be followed by parking.
    pub fn push_or_register(&mut self, value: T) -> Result<(), T> {
        match self.push(value) {
            Ok(()) => Ok(()),
            Err(back) => {
                self.begin_wait();
                match self.push(back) {
                    Ok(()) => {
                        self.cancel_wait();
                        Ok(())
                    }
                    Err(back) => Err(back),
                }
            }
        }
    }

    /// Registers this endpoint as blocked-on-full.  The caller **must retry
    /// the push** after this call and may only park if the retry fails too
    /// (the Dekker re-check that makes lost wakeups impossible).  Prefer
    /// [`Producer::push_or_register`], which performs the whole ritual.
    pub fn begin_wait(&self) {
        self.ring.producer_waiting.store(true, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        // Force the retry to re-read the consumer's true indices.
        self.cached_head.set(0);
        self.cached_msg_head.set(0);
    }

    /// Withdraws a [`Producer::begin_wait`] registration after the retry
    /// succeeded, so the consumer does not issue a stale wakeup.
    pub fn cancel_wait(&self) {
        self.ring.producer_waiting.store(false, Ordering::SeqCst);
    }

    /// After a successful push: returns whether the consumer had registered
    /// as blocked-on-empty (and clears the registration).  A `true` return
    /// obliges the caller to wake the consuming task.
    pub fn take_consumer_waiting(&self) -> bool {
        fence(Ordering::SeqCst);
        if self.ring.consumer_waiting.load(Ordering::SeqCst) {
            self.ring.consumer_waiting.swap(false, Ordering::SeqCst)
        } else {
            false
        }
    }
}

impl<T: Weigh> Consumer<T> {
    /// Number of values currently buffered (may be stale by concurrent
    /// pushes, never by pops — the consumer owns `head`).
    pub fn len(&self) -> usize {
        let head = self.ring.head.0.load(Ordering::Relaxed);
        let tail = self.ring.tail.0.load(Ordering::Acquire);
        tail - head
    }

    /// True when nothing is buffered (same staleness as [`Consumer::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempts to pop the front value, releasing its full remaining
    /// message weight.
    pub fn pop(&mut self) -> Option<T> {
        let ring = &*self.ring;
        let head = ring.head.0.load(Ordering::Relaxed);
        if !self.refresh_nonempty(head) {
            return None;
        }
        let value = unsafe { (*ring.slot(head)).assume_init_read() };
        if !T::UNIT {
            self.release_msgs(value.weight());
        }
        ring.head.0.store(head + 1, Ordering::Release);
        Some(value)
    }

    /// Exclusive access to the front value without consuming it.  Sound
    /// because the consumer owns every slot in `head..tail` until it
    /// advances `head`.
    pub(crate) fn front_mut(&mut self) -> Option<&mut T> {
        let ring = &*self.ring;
        let head = ring.head.0.load(Ordering::Relaxed);
        if !self.refresh_nonempty(head) {
            return None;
        }
        Some(unsafe { (*ring.slot(head)).assume_init_mut() })
    }

    /// Drops the fully consumed front value and frees its slot.  The caller
    /// must have drained it (weight 0) and released its messages via
    /// [`Consumer::release_msgs`].
    pub(crate) fn advance_exhausted(&mut self) {
        let ring = &*self.ring;
        let head = ring.head.0.load(Ordering::Relaxed);
        debug_assert!(self.cached_tail.get() > head, "no front value");
        unsafe { (*ring.slot(head)).assume_init_drop() };
        ring.head.0.store(head + 1, Ordering::Release);
    }

    /// Releases `n` consumed messages to the producer's capacity account.
    /// Weighted payloads only: capacity is released per consumed message so
    /// ring occupancy equals modelled channel occupancy at every instant.
    pub(crate) fn release_msgs(&self, n: usize) {
        debug_assert!(!T::UNIT);
        let cur = self.ring.msg_head.0.load(Ordering::Relaxed);
        self.ring.msg_head.0.store(cur + n, Ordering::Release);
    }

    /// Registers this endpoint as blocked-on-empty.  The caller **must
    /// re-peek** after this call and may only park if the ring is still
    /// empty.  Prefer [`Consumer::front_or_register`], which performs the
    /// whole ritual.
    pub fn begin_wait(&self) {
        self.ring.consumer_waiting.store(true, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        // Force the re-peek to re-read the producer's true index.
        self.cached_tail.set(0);
    }

    /// Withdraws a [`Consumer::begin_wait`] registration after the re-peek
    /// found a message, so the producer does not issue a stale wakeup.
    pub fn cancel_wait(&self) {
        self.ring.consumer_waiting.store(false, Ordering::SeqCst);
    }

    /// After a successful pop: returns whether the producer had registered
    /// as blocked-on-full (and clears the registration).  A `true` return
    /// obliges the caller to wake the producing task.
    pub fn take_producer_waiting(&self) -> bool {
        fence(Ordering::SeqCst);
        if self.ring.producer_waiting.load(Ordering::SeqCst) {
            self.ring.producer_waiting.swap(false, Ordering::SeqCst)
        } else {
            false
        }
    }

    /// Refreshes the cached tail if needed; true when a message is buffered
    /// at `head`.
    #[inline]
    fn refresh_nonempty(&self, head: usize) -> bool {
        if self.cached_tail.get() <= head {
            self.cached_tail
                .set(self.ring.tail.0.load(Ordering::Acquire));
        }
        self.cached_tail.get() > head
    }
}

impl<T: Copy + Weigh> Consumer<T> {
    /// Copies the front message without consuming it (the acceptance rule of
    /// §II.A needs to compare the heads of several channels before deciding
    /// which to pop).
    pub fn front(&self) -> Option<T> {
        let ring = &*self.ring;
        let head = ring.head.0.load(Ordering::Relaxed);
        if !self.refresh_nonempty(head) {
            return None;
        }
        Some(unsafe { (*ring.slot(head)).assume_init_read() })
    }

    /// Peeks the front message, or — when the ring is empty — registers
    /// this endpoint as blocked-on-empty and re-peeks once (the Dekker
    /// re-check that makes lost wakeups impossible), withdrawing the
    /// registration if the re-peek finds a message.  On `None` **the
    /// registration stays active**: the caller may park, and the
    /// producer's next push will report it via
    /// [`Producer::take_consumer_waiting`].
    ///
    /// This is the only correct way to give up on an empty ring; a plain
    /// `None` from [`Consumer::front`] must never be followed by parking.
    pub fn front_or_register(&self) -> Option<T> {
        if let Some(head) = self.front() {
            return Some(head);
        }
        self.begin_wait();
        match self.front() {
            Some(head) => {
                self.cancel_wait();
                Some(head)
            }
            None => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    impl Weigh for u64 {
        const UNIT: bool = true;
        fn weight(&self) -> usize {
            1
        }
    }

    fn ring<T: Weigh>(cap: usize) -> (Producer<T>, Consumer<T>) {
        super::ring(MsgCap::new(cap))
    }

    #[test]
    fn fifo_order_and_capacity() {
        let (mut tx, mut rx) = ring::<u64>(3);
        assert!(rx.is_empty());
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        tx.push(3).unwrap();
        assert_eq!(tx.push(4), Err(4));
        assert_eq!(rx.len(), 3);
        assert_eq!(rx.front(), Some(1));
        assert_eq!(rx.pop(), Some(1));
        tx.push(4).unwrap();
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), Some(3));
        assert_eq!(rx.pop(), Some(4));
        assert_eq!(rx.pop(), None);
        assert_eq!(rx.front(), None);
    }

    #[test]
    fn front_does_not_consume() {
        let (mut tx, mut rx) = ring::<u64>(2);
        tx.push(7).unwrap();
        assert_eq!(rx.front(), Some(7));
        assert_eq!(rx.front(), Some(7));
        assert_eq!(rx.pop(), Some(7));
    }

    #[test]
    fn waiting_flags_round_trip() {
        let (mut tx, mut rx) = ring::<u64>(1);
        // Consumer registers, producer pushes and observes the registration.
        rx.begin_wait();
        assert_eq!(rx.pop(), None);
        tx.push(1).unwrap();
        assert!(tx.take_consumer_waiting());
        assert!(!tx.take_consumer_waiting(), "flag is cleared by the take");
        // Producer registers on a full ring, consumer pops and observes it.
        assert_eq!(tx.push(2), Err(2));
        tx.begin_wait();
        assert_eq!(tx.push(2), Err(2));
        assert_eq!(rx.pop(), Some(1));
        assert!(rx.take_producer_waiting());
        assert!(!rx.take_producer_waiting());
        // cancel_wait withdraws a registration.
        rx.begin_wait();
        rx.cancel_wait();
        tx.push(3).unwrap();
        assert!(!tx.take_consumer_waiting());
    }

    #[test]
    fn ritual_helpers_register_only_on_failure() {
        let (mut tx, mut rx) = ring::<u64>(1);
        // Successful push leaves no registration behind.
        tx.push_or_register(1).unwrap();
        assert_eq!(rx.pop(), Some(1));
        assert!(!rx.take_producer_waiting());
        // Failed push leaves the producer registered.
        tx.push_or_register(2).unwrap();
        assert_eq!(tx.push_or_register(3), Err(3));
        assert_eq!(rx.pop(), Some(2));
        assert!(rx.take_producer_waiting());
        // Successful peek leaves no registration behind.
        tx.push(4).unwrap();
        assert_eq!(rx.front_or_register(), Some(4));
        assert!(!tx.take_consumer_waiting());
        // Failed peek leaves the consumer registered.
        assert_eq!(rx.pop(), Some(4));
        assert_eq!(rx.front_or_register(), None);
        tx.push(5).unwrap();
        assert!(tx.take_consumer_waiting());
    }

    #[test]
    fn leftover_messages_are_dropped_with_the_ring() {
        // A drop-counting payload: the ring must drain undelivered values.
        use std::sync::atomic::AtomicU32;
        static DROPS: AtomicU32 = AtomicU32::new(0);
        #[derive(Debug)]
        struct Token;
        impl Drop for Token {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        impl Weigh for Token {
            const UNIT: bool = true;
            fn weight(&self) -> usize {
                1
            }
        }
        let (mut tx, mut rx) = ring::<Token>(4);
        tx.push(Token).unwrap();
        tx.push(Token).unwrap();
        tx.push(Token).unwrap();
        drop(rx.pop());
        let before = DROPS.load(Ordering::SeqCst);
        assert_eq!(before, 1);
        drop(tx);
        drop(rx);
        assert_eq!(DROPS.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn cross_thread_stream_is_loss_free() {
        const N: u64 = 100_000;
        let (mut tx, mut rx) = ring::<u64>(8);
        let producer = thread::spawn(move || {
            for i in 0..N {
                let mut v = i;
                loop {
                    match tx.push(v) {
                        Ok(()) => break,
                        Err(back) => {
                            v = back;
                            thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut expected = 0u64;
        while expected < N {
            match rx.pop() {
                Some(v) => {
                    assert_eq!(v, expected);
                    expected += 1;
                }
                None => thread::yield_now(),
            }
        }
        producer.join().unwrap();
        assert!(rx.is_empty());
    }
}
