//! Flight-recorder telemetry: per-worker bounded event rings, drained into
//! job timelines and exported as Chrome `trace_event` JSON.
//!
//! The recorder is **zero-cost when off**: every hook in the execution
//! engines sits behind an `Option<TelemetryHandle>` that is `None` on
//! production pools, so the disabled hot path is the exact code path that
//! existed before telemetry — one never-taken branch per hook site.
//!
//! When enabled, each pool worker owns one single-producer ring of
//! fixed-size binary [`TraceEvent`] records ([`EventKind`] discriminant,
//! worker/job/node identity, monotonic nanosecond timestamps measured from
//! the recorder's epoch).  Recording is lock-free and wait-free: a full
//! ring **drops the newest event and counts the drop** — the flight
//! recorder never blocks or slows the worker it is observing.  Threads
//! that are not pool workers (the service control plane: recovery rungs,
//! drift responses) record through a mutex-guarded control lane; those
//! events are rare by construction.
//!
//! Draining moves ring contents into a bounded `collected` buffer (again
//! drop-and-count on overflow).  The service drains after every job
//! settles; [`JobTimeline::build`] summarises one job's slice of the
//! stream and [`chrome_trace`] renders the whole run for `chrome://tracing`
//! / Perfetto.  The JSON is emitted one event per line so downstream
//! consumers (the `fila trace` summarizer) can parse it with string
//! operations alone — no JSON library in the loop.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Lane index that routes [`TelemetryHandle::record`] to the control lane
/// (mutex-guarded, for threads that are not pool workers).
pub const CONTROL_LANE: usize = usize::MAX;

/// Worker id stamped on control-lane events (no worker thread involved).
pub const NO_WORKER: u16 = u16::MAX;

/// Default per-worker ring capacity (events), chosen so a worker can absorb
/// several full scheduling quanta between drains: 8192 records × 40 bytes ≈
/// 320 KiB per worker.
pub const DEFAULT_RING_CAPACITY: usize = 8192;

/// Cap on the post-drain `collected` buffer; beyond it events are dropped
/// and counted, exactly like a full ring.
const COLLECTED_CAP: usize = 1 << 20;

/// Cap on the control lane (service control-plane events are rare; this
/// bounds a pathological recording loop, not normal operation).
const CONTROL_CAP: usize = 1 << 16;

/// What one [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum EventKind {
    /// A task execution slice that made progress (span; `arg` = messages
    /// the slice *delivered* into its output rings — data plus dummies,
    /// EOS markers excluded — so a trace's firing spans sum to the job's
    /// total channel traffic regardless of container batching).
    #[default]
    Firing = 0,
    /// A worker popped work from another worker's queue (instant; `arg` =
    /// victim queue index).
    Steal = 1,
    /// A worker parked waiting for work (span).
    Park = 2,
    /// A task blocked on an empty input channel (instant; `arg` = edge).
    BlockedInput = 3,
    /// A task blocked on a full output channel (instant; `arg` = edge).
    BlockedSpace = 4,
    /// A task contributed to a barrier snapshot at its alignment point
    /// (instant; `arg` = snapshot epoch).
    BarrierAlign = 5,
    /// An injected (or organic) node panic was caught (instant).
    Fault = 6,
    /// One rung of the recovery ladder ran (span; `arg` = rung code:
    /// 0 = full restore, 1 = partial restart, 2 = genesis).
    RecoveryRung = 7,
    /// A drift response ran (span; `arg` = 0 hot-swap, 1 quarantine
    /// replan, 2 drift-cancel).
    DriftSwap = 8,
    /// A whole job, pool submission to settle (span; `arg` = verdict code).
    Job = 9,
}

impl EventKind {
    /// Stable lowercase name used by the Chrome-trace exporter and the
    /// `fila trace` summarizer.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Firing => "firing",
            EventKind::Steal => "steal",
            EventKind::Park => "park",
            EventKind::BlockedInput => "blocked_input",
            EventKind::BlockedSpace => "blocked_space",
            EventKind::BarrierAlign => "barrier_align",
            EventKind::Fault => "fault",
            EventKind::RecoveryRung => "recovery_rung",
            EventKind::DriftSwap => "drift_swap",
            EventKind::Job => "job",
        }
    }
}

/// One fixed-size binary flight-recorder record.
///
/// Spans carry `t_start_ns < t_end_ns`; instants carry `t_start_ns ==
/// t_end_ns`.  Timestamps are nanoseconds from the recorder's epoch
/// (monotonic, never wall-clock).  `job` is the pool's job serial
/// ([`u64::MAX`] when no job is involved), `node` the node index
/// ([`u32::MAX`] when not node-scoped), and `arg` is kind-specific (see
/// [`EventKind`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceEvent {
    /// What happened.
    pub kind: EventKind,
    /// Worker lane that recorded the event ([`NO_WORKER`] for control).
    pub worker: u16,
    /// Node index within the job, or `u32::MAX`.
    pub node: u32,
    /// Pool job serial, or `u64::MAX`.
    pub job: u64,
    /// Span start (== end for instants), ns from the recorder epoch.
    pub t_start_ns: u64,
    /// Span end, ns from the recorder epoch.
    pub t_end_ns: u64,
    /// Kind-specific argument (see [`EventKind`]).
    pub arg: u64,
}

impl TraceEvent {
    /// Span duration in nanoseconds (0 for instants).
    pub fn duration_ns(&self) -> u64 {
        self.t_end_ns.saturating_sub(self.t_start_ns)
    }
}

/// One worker's single-producer / single-consumer bounded event ring.
///
/// The owning worker is the only producer; the drainer (serialized by the
/// `collected` mutex in [`Telemetry`]) is the only consumer.  Classic
/// Lamport queue: the producer publishes a slot with a release store of
/// `head`, the consumer acquires `head` before reading and releases `tail`
/// after, and the producer acquires `tail` before deciding the ring is
/// full.  A full ring drops the **newest** record (the one being pushed)
/// and bumps `dropped` — committed records are never overwritten, so a
/// drain observes only complete, uncorrupted events.
struct EventRing {
    slots: Box<[UnsafeCell<TraceEvent>]>,
    /// Next write index (monotonic; producer-owned).
    head: AtomicUsize,
    /// Next read index (monotonic; consumer-owned).
    tail: AtomicUsize,
    dropped: AtomicU64,
}

// SAFETY: slot `i % cap` is written only by the single producer while
// `head - tail < cap` guarantees no unconsumed record occupies it, and read
// only by the single consumer for indices `< head` (acquire pairing with
// the producer's release store of `head`).
unsafe impl Sync for EventRing {}

impl EventRing {
    fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2);
        EventRing {
            slots: (0..capacity)
                .map(|_| UnsafeCell::new(TraceEvent::default()))
                .collect(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Producer side: record or drop-and-count. Never blocks.
    fn push(&self, event: TraceEvent) {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head.wrapping_sub(tail) >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // SAFETY: see the `Sync` impl — this slot is unoccupied and no
        // other thread touches it until the release store below.
        unsafe { *self.slots[head % self.slots.len()].get() = event };
        self.head.store(head.wrapping_add(1), Ordering::Release);
    }

    /// Producer-side probe: would the next push drop?
    fn is_full(&self) -> bool {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        head.wrapping_sub(tail) >= self.slots.len()
    }

    /// Consumer side (serialized by the caller): moves every committed
    /// record into `out`, in recording order.
    fn drain_into(&self, out: &mut Vec<TraceEvent>) {
        let head = self.head.load(Ordering::Acquire);
        let mut tail = self.tail.load(Ordering::Relaxed);
        while tail != head {
            // SAFETY: `tail < head` so the producer committed this slot
            // (acquire load of `head` above) and will not reuse it until
            // the release store of `tail` below.
            out.push(unsafe { *self.slots[tail % self.slots.len()].get() });
            tail = tail.wrapping_add(1);
        }
        self.tail.store(tail, Ordering::Release);
    }
}

/// The shared flight-recorder state behind a [`TelemetryHandle`].
pub struct Telemetry {
    epoch: Instant,
    rings: Vec<EventRing>,
    control: Mutex<Vec<TraceEvent>>,
    control_dropped: AtomicU64,
    /// Everything drained so far, in drain order; guarded drains make the
    /// rings' single-consumer contract hold.
    collected: Mutex<Vec<TraceEvent>>,
    collected_dropped: AtomicU64,
}

/// A cheap, clonable handle to one flight recorder.
///
/// One handle is shared by a pool (which stamps worker-lane events), the
/// service control plane (control-lane events) and whoever exports the
/// trace at the end of the run.
#[derive(Clone)]
pub struct TelemetryHandle(Arc<Telemetry>);

impl std::fmt::Debug for TelemetryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryHandle")
            .field("workers", &self.0.rings.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl TelemetryHandle {
    /// A recorder with one [`DEFAULT_RING_CAPACITY`]-slot ring per worker.
    pub fn new(workers: usize) -> Self {
        Self::with_capacity(workers, DEFAULT_RING_CAPACITY)
    }

    /// A recorder with an explicit per-worker ring capacity (clamped ≥ 2).
    pub fn with_capacity(workers: usize, capacity: usize) -> Self {
        TelemetryHandle(Arc::new(Telemetry {
            epoch: Instant::now(),
            rings: (0..workers).map(|_| EventRing::new(capacity)).collect(),
            control: Mutex::new(Vec::new()),
            control_dropped: AtomicU64::new(0),
            collected: Mutex::new(Vec::new()),
            collected_dropped: AtomicU64::new(0),
        }))
    }

    /// Number of worker lanes.
    pub fn workers(&self) -> usize {
        self.0.rings.len()
    }

    /// Nanoseconds since the recorder's epoch (monotonic).
    pub fn now_ns(&self) -> u64 {
        self.0.epoch.elapsed().as_nanos() as u64
    }

    /// Worker-lane fast-path probe taken at the top of an execution slice:
    /// `Some(now_ns)` when `lane`'s ring has room for the slice's events,
    /// `None` when it is full — then one drop is counted and the caller
    /// skips the slice's instrumentation entirely.  Every event the slice
    /// would have recorded was headed for the drop path anyway, but the
    /// timestamps and bookkeeping around them are not free, and a recorder
    /// that is losing events must not keep taxing the computation it lost
    /// them from.  Consequently [`Self::dropped`] counts a skipped slice
    /// as **one** drop (a gap indicator, not an exact event count).
    /// Out-of-range lanes always return a timestamp — the control lane
    /// has its own cap.
    pub fn slice_start(&self, lane: usize) -> Option<u64> {
        if let Some(ring) = self.0.rings.get(lane) {
            if ring.is_full() {
                ring.dropped.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        }
        Some(self.now_ns())
    }

    /// Records `event` on `lane`: a worker index routes to that worker's
    /// lock-free ring (callable only from the owning worker — the
    /// single-producer contract); any out-of-range lane (use
    /// [`CONTROL_LANE`]) routes to the mutex-guarded control lane.
    pub fn record(&self, lane: usize, event: TraceEvent) {
        match self.0.rings.get(lane) {
            Some(ring) => ring.push(event),
            None => {
                let mut control = lock(&self.0.control);
                if control.len() >= CONTROL_CAP {
                    self.0.control_dropped.fetch_add(1, Ordering::Relaxed);
                } else {
                    control.push(event);
                }
            }
        }
    }

    /// Records an instant (zero-duration) event stamped `now`.
    pub fn instant(&self, lane: usize, kind: EventKind, job: u64, node: u32, arg: u64) {
        let now = self.now_ns();
        self.record(
            lane,
            TraceEvent {
                kind,
                worker: lane_worker(lane, self.workers()),
                node,
                job,
                t_start_ns: now,
                t_end_ns: now,
                arg,
            },
        );
    }

    /// Records a span that started at `t_start_ns` (from [`Self::now_ns`])
    /// and ends now.
    pub fn span(
        &self,
        lane: usize,
        kind: EventKind,
        job: u64,
        node: u32,
        t_start_ns: u64,
        arg: u64,
    ) {
        let now = self.now_ns();
        self.record(
            lane,
            TraceEvent {
                kind,
                worker: lane_worker(lane, self.workers()),
                node,
                job,
                t_start_ns,
                t_end_ns: now.max(t_start_ns),
                arg,
            },
        );
    }

    /// Drains every ring and the control lane into the collected buffer and
    /// returns **the newly drained batch** (callers stream it into
    /// histograms; the cumulative buffer feeds the final trace export).
    pub fn drain_new(&self) -> Vec<TraceEvent> {
        let mut collected = lock(&self.0.collected);
        let mut batch = Vec::new();
        for ring in &self.0.rings {
            ring.drain_into(&mut batch);
        }
        batch.append(&mut lock(&self.0.control));
        let room = COLLECTED_CAP.saturating_sub(collected.len());
        if batch.len() > room {
            self.0
                .collected_dropped
                .fetch_add((batch.len() - room) as u64, Ordering::Relaxed);
            collected.extend_from_slice(&batch[..room]);
        } else {
            collected.extend_from_slice(&batch);
        }
        batch
    }

    /// Every event recorded so far (after a final drain), sorted by span
    /// start time.
    pub fn all_events(&self) -> Vec<TraceEvent> {
        self.drain_new();
        let mut events = lock(&self.0.collected).clone();
        events.sort_by_key(|e| (e.t_start_ns, e.t_end_ns));
        events
    }

    /// Total events dropped anywhere (full rings, full control lane, full
    /// collected buffer).  Dropped events are always *newest-first at the
    /// drop site*; committed records are never corrupted.
    pub fn dropped(&self) -> u64 {
        let rings: u64 = self
            .0
            .rings
            .iter()
            .map(|r| r.dropped.load(Ordering::Relaxed))
            .sum();
        rings
            + self.0.control_dropped.load(Ordering::Relaxed)
            + self.0.collected_dropped.load(Ordering::Relaxed)
    }
}

fn lane_worker(lane: usize, workers: usize) -> u16 {
    if lane < workers {
        lane as u16
    } else {
        NO_WORKER
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A per-job summary of the flight-recorder stream: counts and accumulated
/// span time for one job serial, plus the job's raw event slice.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobTimeline {
    /// The pool job serial this timeline was built for.
    pub job: u64,
    /// Firing spans recorded (execution slices that made progress).
    pub firings: u64,
    /// Total nanoseconds inside firing spans.
    pub firing_ns: u64,
    /// Steal events attributed to this job's tasks.
    pub steals: u64,
    /// Blocked-on-empty-input stall instants.
    pub blocked_input: u64,
    /// Blocked-on-full-output stall instants.
    pub blocked_space: u64,
    /// Barrier-alignment contributions.
    pub barrier_aligns: u64,
    /// Caught node panics.
    pub faults: u64,
    /// Recovery-ladder rungs run on behalf of this job.
    pub recovery_rungs: u64,
    /// Pool-submission→settle span in nanoseconds (0 if no job span).
    pub span_ns: u64,
    /// The job's events, in the order given to [`JobTimeline::build`].
    pub events: Vec<TraceEvent>,
}

impl JobTimeline {
    /// Summarises `events` (any mix of jobs) into the timeline of job
    /// serial `job`.
    pub fn build(job: u64, events: &[TraceEvent]) -> Self {
        let mut tl = JobTimeline {
            job,
            ..Default::default()
        };
        for &e in events.iter().filter(|e| e.job == job) {
            match e.kind {
                EventKind::Firing => {
                    tl.firings += 1;
                    tl.firing_ns += e.duration_ns();
                }
                EventKind::Steal => tl.steals += 1,
                EventKind::Park => {}
                EventKind::BlockedInput => tl.blocked_input += 1,
                EventKind::BlockedSpace => tl.blocked_space += 1,
                EventKind::BarrierAlign => tl.barrier_aligns += 1,
                EventKind::Fault => tl.faults += 1,
                EventKind::RecoveryRung => tl.recovery_rungs += 1,
                EventKind::DriftSwap => {}
                EventKind::Job => tl.span_ns = e.duration_ns(),
            }
            tl.events.push(e);
        }
        tl
    }

    /// Total blocked-stall instants (input + space).
    pub fn blocked_stalls(&self) -> u64 {
        self.blocked_input + self.blocked_space
    }
}

/// Renders events as Chrome `trace_event` JSON (the `traceEvents` array
/// form), suitable for `chrome://tracing` and Perfetto.
///
/// Spans become `ph:"X"` complete events and instants `ph:"i"`; `pid` is
/// the job serial, `tid` the worker lane, timestamps are microseconds from
/// the recorder epoch.  Exactly one event per line, so line-oriented
/// consumers (the `fila trace` summarizer) need no JSON parser.
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let ts = e.t_start_ns as f64 / 1_000.0;
        let pid = if e.job == u64::MAX { 0 } else { e.job };
        let tid = u64::from(e.worker);
        if e.t_end_ns > e.t_start_ns {
            let dur = e.duration_ns() as f64 / 1_000.0;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"fila\",\"ph\":\"X\",\"ts\":{ts:.3},\"dur\":{dur:.3},\"pid\":{pid},\"tid\":{tid},\"args\":{{\"node\":{},\"arg\":{}}}}}",
                e.kind.name(),
                e.node,
                e.arg,
            ));
        } else {
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"fila\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts:.3},\"pid\":{pid},\"tid\":{tid},\"args\":{{\"node\":{},\"arg\":{}}}}}",
                e.kind.name(),
                e.node,
                e.arg,
            ));
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, job: u64, t0: u64, t1: u64) -> TraceEvent {
        TraceEvent {
            kind,
            worker: 0,
            node: 1,
            job,
            t_start_ns: t0,
            t_end_ns: t1,
            arg: 7,
        }
    }

    #[test]
    fn ring_records_in_order_and_drains() {
        let tele = TelemetryHandle::with_capacity(1, 16);
        for i in 0..10 {
            tele.record(0, ev(EventKind::Firing, i, i, i + 1));
        }
        let batch = tele.drain_new();
        assert_eq!(batch.len(), 10);
        assert!(batch.iter().enumerate().all(|(i, e)| e.job == i as u64));
        assert_eq!(tele.dropped(), 0);
        // A second drain is empty; all_events still sees everything.
        assert!(tele.drain_new().is_empty());
        assert_eq!(tele.all_events().len(), 10);
    }

    #[test]
    fn overflow_drops_newest_and_counts() {
        let cap = 8;
        let tele = TelemetryHandle::with_capacity(1, cap);
        for i in 0..20u64 {
            tele.record(0, ev(EventKind::Steal, i, i, i));
        }
        assert_eq!(tele.dropped(), 20 - cap as u64);
        let batch = tele.drain_new();
        assert_eq!(batch.len(), cap);
        // The survivors are exactly the oldest `cap` records, uncorrupted.
        for (i, e) in batch.iter().enumerate() {
            assert_eq!(e.job, i as u64);
            assert_eq!(e.kind, EventKind::Steal);
            assert_eq!(e.arg, 7);
        }
        // After a drain there is room again.
        tele.record(0, ev(EventKind::Steal, 99, 99, 99));
        assert_eq!(tele.drain_new().len(), 1);
    }

    #[test]
    fn control_lane_accepts_out_of_range_lanes() {
        let tele = TelemetryHandle::with_capacity(2, 8);
        tele.instant(CONTROL_LANE, EventKind::RecoveryRung, 3, u32::MAX, 1);
        let batch = tele.drain_new();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].worker, NO_WORKER);
        assert_eq!(batch[0].kind, EventKind::RecoveryRung);
    }

    #[test]
    fn concurrent_producer_never_corrupts_drained_records() {
        let tele = TelemetryHandle::with_capacity(1, 32);
        let total = 50_000u64;
        std::thread::scope(|scope| {
            let producer = {
                let tele = tele.clone();
                scope.spawn(move || {
                    for i in 0..total {
                        tele.record(0, ev(EventKind::Firing, i, i, i + 1));
                    }
                })
            };
            let mut seen = 0u64;
            let mut last_job = None;
            while !producer.is_finished() || seen < total - tele.dropped() {
                for e in tele.drain_new() {
                    // Every drained record is complete and in order.
                    assert_eq!(e.kind, EventKind::Firing);
                    assert_eq!(e.t_end_ns, e.t_start_ns + 1);
                    assert_eq!(e.arg, 7);
                    if let Some(last) = last_job {
                        assert!(e.job > last);
                    }
                    last_job = Some(e.job);
                    seen += 1;
                }
                if producer.is_finished() && seen >= total - tele.dropped() {
                    break;
                }
            }
            assert_eq!(seen + tele.dropped(), total);
        });
    }

    #[test]
    fn timeline_attributes_events_to_one_job() {
        let events = vec![
            ev(EventKind::Firing, 1, 0, 100),
            ev(EventKind::Firing, 2, 0, 50),
            ev(EventKind::BlockedInput, 1, 120, 120),
            ev(EventKind::Job, 1, 0, 500),
        ];
        let tl = JobTimeline::build(1, &events);
        assert_eq!(tl.firings, 1);
        assert_eq!(tl.firing_ns, 100);
        assert_eq!(tl.blocked_stalls(), 1);
        assert_eq!(tl.span_ns, 500);
        assert_eq!(tl.events.len(), 3);
    }

    #[test]
    fn chrome_trace_emits_one_event_per_line() {
        let events = vec![
            ev(EventKind::Firing, 1, 1_000, 3_000),
            ev(EventKind::Steal, u64::MAX, 4_000, 4_000),
        ];
        let json = chrome_trace(&events);
        assert!(json.starts_with("{\"traceEvents\":[\n"));
        assert!(json.trim_end().ends_with("]}"));
        let lines: Vec<&str> = json.lines().collect();
        // Header, two events, footer.
        assert_eq!(lines.len(), 4);
        assert!(lines[1].contains("\"name\":\"firing\""));
        assert!(lines[1].contains("\"ph\":\"X\""));
        assert!(lines[1].contains("\"dur\":2.000"));
        assert!(lines[2].contains("\"name\":\"steal\""));
        assert!(lines[2].contains("\"ph\":\"i\""));
        assert!(lines[2].contains("\"pid\":0"));
    }
}
