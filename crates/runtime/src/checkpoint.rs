//! Versioned job snapshots: checkpoint/restore for the runtime engines.
//!
//! A [`JobSnapshot`] captures everything a job needs to resume exactly where
//! it stopped: per-channel in-flight messages, per-node [`DummyWrapper`]
//! gap counters, per-node input progress (source cursors, EOS flags, staged
//! but undelivered outputs) and the cumulative delivery counters — plus the
//! identity of the *certified plan* the job was running under (an exact
//! labelled topology hash, a digest of the avoidance plan's interval table,
//! and the Propagation trigger).  Restoring under anything else is a
//! [`RestoreError::PlanMismatch`], never a silent re-plan: the deadlock-
//! freedom certificate attests to one specific `(topology, plan, filter)`
//! triple, and a resumed job must provably still be the run it certifies.
//!
//! ## Consistency: sequence numbers as barrier epochs
//!
//! Two engines produce snapshots:
//!
//! * [`crate::Simulator`] stops between scheduler steps, where *any* cut is
//!   trivially consistent — channels are captured verbatim.
//! * [`crate::SharedPool`] cannot stop the world (other jobs keep running),
//!   so it takes an asynchronous barrier snapshot in the spirit of Carbone
//!   et al.'s ABS — but needs no barrier *markers*: the min-sequence Kahn
//!   acceptance rule already makes sequence numbers a global logical clock.
//!   The pool freezes the job's sources just long enough to pick a barrier
//!   sequence number `k` (the maximum source cursor), and every task
//!   contributes its state exactly once, at its own *alignment*: the moment
//!   it would first consume or produce a sequence number `≥ k`.  At a
//!   producer's alignment its delivery counters count exactly its pre-`k`
//!   deliveries, at a consumer's alignment it has consumed exactly the
//!   pre-`k` prefix of every input, and everything the ring still holds at
//!   that point carries `seq ≥ k` — produced *after* the producer's aligned
//!   state was captured, and therefore regenerated deterministically on
//!   resume.  Channels are thus recorded empty (EOS markers aside), and the
//!   restored wrapper gap counters continue exactly where they stopped: no
//!   dummy interval is ever counted twice.
//!
//! Snapshots serialise to a small, versioned, magic-tagged byte format
//! ([`JobSnapshot::to_bytes`] / [`JobSnapshot::from_bytes`]; hand-rolled,
//! no serde in this workspace); foreign or corrupted blobs are rejected,
//! not misinterpreted.
//!
//! [`DummyWrapper`]: crate::wrapper::DummyWrapper

use fila_graph::fingerprint::labeled_fingerprint;

use crate::message::Message;
use crate::report::ExecutionReport;
use crate::shared_pool::JobVerdict;
use crate::topology::Topology;
use crate::wrapper::{AvoidanceMode, PropagationTrigger};

/// The snapshot format version this build writes and accepts.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Leading magic of the byte format (`b"FILASNAP"`).
const MAGIC: [u8; 8] = *b"FILASNAP";

/// The checkpointed state of one node.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NodeSnapshot {
    /// The node's [`DummyWrapper`](crate::wrapper::DummyWrapper) gap
    /// counters, aligned with its out-edges.
    pub gaps: Vec<u64>,
    /// Next sequence number this node would emit if it is a source.
    pub next_source_seq: u64,
    /// The node has staged its end-of-stream markers.
    pub eos_queued: bool,
    /// The node reached end-of-stream and drained all outputs.
    pub done: bool,
    /// Behaviour firings so far (source emissions + data acceptances).
    pub firings: u64,
    /// Data-bearing sequence numbers consumed so far, if the node is a sink.
    pub sink_firings: u64,
    /// Outputs produced but not yet delivered to their channel, in staging
    /// order: `(edge index, message)` pairs.
    pub staged: Vec<(u32, Message)>,
}

/// A versioned, self-describing checkpoint of one job (see the module docs
/// for the consistency model).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSnapshot {
    /// Snapshot format version ([`SNAPSHOT_VERSION`] when produced by this
    /// build).
    pub version: u32,
    /// Exact labelled topology hash
    /// ([`fila_graph::fingerprint::labeled_fingerprint`]) of the graph the
    /// snapshot was taken on — the precondition for transplanting the
    /// per-edge state below onto a restore-side graph.
    pub labeled_topology: u64,
    /// The service-level job identity (structural fingerprint) the snapshot
    /// was stamped with, if it passed through
    /// `JobService::checkpoint_job`; `None` for bare runtime snapshots.
    pub fingerprint: Option<u64>,
    /// The filter signature (certification-key component) the job was
    /// certified under, if stamped by the service.
    pub filter_signature: Option<u64>,
    /// Digest of the avoidance plan the job ran under (`None` = avoidance
    /// disabled); see [`plan_digest`].
    pub plan_digest: Option<u64>,
    /// Propagation-trigger code the job ran under (see [`trigger_code`]).
    pub trigger: u8,
    /// Input sequence numbers offered at every source.
    pub inputs: u64,
    /// Progress marker at capture time: scheduler steps (simulator) or
    /// total firings (pool).  Restored runs report this as
    /// [`ExecutionReport::resumed_from`].
    pub steps: u64,
    /// Sink firings at capture time (cumulative, schedule-invariant).
    pub sink_firings: u64,
    /// Data messages delivered per channel at capture time.
    pub per_edge_data: Vec<u64>,
    /// Dummy messages delivered per channel at capture time.
    pub per_edge_dummies: Vec<u64>,
    /// In-flight messages per channel.  Simulator snapshots record channels
    /// verbatim; pool barrier snapshots record only the already-delivered
    /// EOS markers (everything else is regenerated on resume — see the
    /// module docs).
    pub channels: Vec<Vec<Message>>,
    /// Per-node state, indexed by node id.
    pub nodes: Vec<NodeSnapshot>,
}

/// Why a checkpoint request produced no snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// The job already settled with this verdict; there is no in-flight
    /// state left to capture.
    Settled(JobVerdict),
    /// Another checkpoint of the same job is still being collected.
    InProgress,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Settled(v) => write!(f, "job already settled: {v:?}"),
            SnapshotError::InProgress => write!(f, "a checkpoint of this job is already in progress"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Why a snapshot was rejected at restore time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The snapshot was written by an incompatible format version.
    VersionMismatch {
        /// Version recorded in the snapshot.
        found: u32,
        /// Version this build accepts.
        expected: u32,
    },
    /// The restore-side topology, avoidance plan or trigger differs from
    /// what the snapshot was certified under.  Resuming would silently run
    /// the job under a plan its certificate does not attest to, so the
    /// restore is rejected instead of re-planned.
    PlanMismatch(String),
    /// The snapshot is structurally inconsistent (truncated blob, counts
    /// that do not fit the topology, over-capacity channels, …).
    Corrupted(String),
    /// A node's recorded dummy-gap counter is not strictly below the
    /// restore-side plan's finite interval on that channel.  Every legally
    /// captured gap lies in `[0, interval)` (the wrapper resets on firing),
    /// so an out-of-range gap means the snapshot does not belong to this
    /// plan's interval table — e.g. a hot-swap that skipped
    /// [`JobSnapshot::rebase`], or a doctored blob.  Restoring it anyway
    /// could postpone a due dummy beyond the certified interval.
    GapExceedsInterval {
        /// Node whose wrapper state is out of range.
        node: u32,
        /// Index of the offending channel within the node's out-edges.
        out_index: u32,
        /// The recorded gap counter.
        gap: u64,
        /// The restore-side plan's finite dummy interval on that channel.
        interval: u64,
    },
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::VersionMismatch { found, expected } => {
                write!(f, "snapshot version {found} not supported (expected {expected})")
            }
            RestoreError::PlanMismatch(why) => write!(f, "plan mismatch: {why}"),
            RestoreError::Corrupted(why) => write!(f, "corrupted snapshot: {why}"),
            RestoreError::GapExceedsInterval {
                node,
                out_index,
                gap,
                interval,
            } => write!(
                f,
                "dummy-gap counter {gap} on node {node} out-channel {out_index} is not \
                 below the plan's interval {interval} (snapshot not rebased onto this plan?)"
            ),
        }
    }
}

impl std::error::Error for RestoreError {}

/// What a [`Simulator::run_with_checkpoint`](crate::Simulator::run_with_checkpoint)
/// run ended with.
#[derive(Debug)]
pub enum CheckpointOutcome {
    /// The run settled before reaching the kill step.
    Finished(ExecutionReport),
    /// The run was killed at the requested step; this snapshot resumes it.
    Killed(Box<JobSnapshot>),
}

/// The message deficit a partial restart would incur on its frontier
/// edges: messages a cone-side consumer had already consumed past the base
/// cut which its (not-rolled-back) producer will never re-send.  Produced
/// by [`JobSnapshot::splice_downstream`]; an exact recovery requires both
/// components to be zero, while an approximate recovery accepts a bounded
/// `data` deficit and reports it (Cheng et al.'s bounded-divergence trade,
/// specialised to replay cursors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpliceDivergence {
    /// Data messages consumed inside the cone since the base cut that
    /// cannot be replayed.
    pub data: u64,
    /// Dummy messages likewise lost.  Dummies carry no payload — a lost
    /// dummy only delays liveness information that the frontier producer's
    /// preserved gap counters will regenerate — so approximate mode bounds
    /// only `data`; an exact recovery still refuses any deficit.
    pub dummies: u64,
}

/// A digest of the avoidance plan a job runs under: protocol, rounding and
/// the full per-edge dummy-interval table.  `None` when avoidance is
/// disabled.  Two modes share the digest exactly when the runtime wrapper
/// behaves identically under them — the unit restore validation compares.
pub fn plan_digest(mode: &AvoidanceMode) -> Option<u64> {
    let AvoidanceMode::Plan(plan) = mode else {
        return None;
    };
    let mut h = fold(0xF11A_5A4B, match plan.algorithm() {
        fila_avoidance::Algorithm::Propagation => 1,
        fila_avoidance::Algorithm::NonPropagation => 2,
    });
    h = fold(h, match plan.rounding() {
        fila_avoidance::Rounding::Floor => 1,
        fila_avoidance::Rounding::Ceil => 2,
    });
    h = fold(h, plan.edge_count() as u64);
    for raw in 0..plan.edge_count() {
        let e = fila_graph::EdgeId::from_raw(raw as u32);
        // Finite intervals map to v+1 so interval 0 and "infinite" differ.
        h = fold(h, plan.interval(e).finite().map(|v| v + 1).unwrap_or(0));
    }
    Some(h)
}

/// An intentional plan-swap authorisation: the exact pair of plan digests a
/// hot-swap moves a snapshot between.
///
/// The "restored under the exact captured plan" rule
/// ([`RestoreError::PlanMismatch`]) has one deliberate exception: an
/// *adaptive* hot-swap, where the party that re-certified the job against
/// its observed filter profile moves the snapshot onto the new certified
/// plan.  The token names both digests, so a swap is admitted only when the
/// caller can state what the snapshot ran under **and** what it certified
/// next — a stale or mixed-up snapshot still fails closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapToken {
    /// Digest of the plan the snapshot was captured under (`None` =
    /// avoidance was disabled).
    pub from: Option<u64>,
    /// Digest of the re-certified plan the job resumes under.
    pub to: Option<u64>,
}

impl SwapToken {
    /// Authorises a swap between two avoidance modes (typically: the mode
    /// the snapshot was captured under and the freshly re-certified one).
    pub fn authorise(from: &AvoidanceMode, to: &AvoidanceMode) -> SwapToken {
        SwapToken {
            from: plan_digest(from),
            to: plan_digest(to),
        }
    }
}

/// The stable wire code of a [`PropagationTrigger`].
pub fn trigger_code(trigger: PropagationTrigger) -> u8 {
    match trigger {
        PropagationTrigger::OnFilterOnly => 0,
        PropagationTrigger::Heartbeat => 1,
    }
}

/// splitmix64-style mixing fold (same construction as the graph
/// fingerprints, different stream constant).
fn fold(h: u64, v: u64) -> u64 {
    let mut x = h ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl JobSnapshot {
    /// Validates that this snapshot can be restored onto `topology` running
    /// under `mode`/`trigger`: the format version is supported, the exact
    /// labelled topology hash, plan digest and trigger all match what the
    /// snapshot was taken under, and every recorded vector fits the graph
    /// (channel contents within capacity, wrapper state per out-degree,
    /// staged messages on real out-edges).
    pub fn validate_for(
        &self,
        topology: &Topology,
        mode: &AvoidanceMode,
        trigger: PropagationTrigger,
    ) -> Result<(), RestoreError> {
        if self.version != SNAPSHOT_VERSION {
            return Err(RestoreError::VersionMismatch {
                found: self.version,
                expected: SNAPSHOT_VERSION,
            });
        }
        let g = topology.graph();
        if self.labeled_topology != labeled_fingerprint(g) {
            return Err(RestoreError::PlanMismatch(
                "topology fingerprint drifted since the snapshot was taken".into(),
            ));
        }
        if self.plan_digest != plan_digest(mode) {
            return Err(RestoreError::PlanMismatch(
                "avoidance plan differs from the one the snapshot was certified under".into(),
            ));
        }
        if self.trigger != trigger_code(trigger) {
            return Err(RestoreError::PlanMismatch(
                "propagation trigger differs from the snapshot's".into(),
            ));
        }
        let corrupted = |why: &str| Err(RestoreError::Corrupted(why.into()));
        if self.nodes.len() != g.node_count() {
            return corrupted("node count does not match the topology");
        }
        if self.channels.len() != g.edge_count()
            || self.per_edge_data.len() != g.edge_count()
            || self.per_edge_dummies.len() != g.edge_count()
        {
            return corrupted("edge-indexed vectors do not match the topology");
        }
        for e in g.edge_ids() {
            if self.channels[e.index()].len() > g.capacity(e) as usize {
                return corrupted("channel contents exceed the channel capacity");
            }
        }
        for (idx, ns) in self.nodes.iter().enumerate() {
            let node = fila_graph::NodeId::from_raw(idx as u32);
            let outs = g.out_edges(node);
            if ns.gaps.len() != outs.len() {
                return corrupted("wrapper state does not match the node's out-degree");
            }
            if ns.staged.len() > 2 * outs.len() {
                return corrupted("more staged messages than staging slots");
            }
            for &(edge, _) in &ns.staged {
                let e = fila_graph::EdgeId::from_raw(edge);
                if !outs.contains(&e) {
                    return corrupted("staged message on an edge the node does not produce");
                }
                if ns.staged.iter().filter(|&&(se, _)| se == edge).count() > 2 {
                    return corrupted("more than two staged messages on one edge");
                }
            }
            // Dummy-gap counters must be strictly below the restore-side
            // plan's finite intervals: the wrapper resets a counter the
            // moment it reaches the threshold, so every legally captured
            // gap is in `[0, interval)`.  This is what makes a swapped
            // resume that skipped [`JobSnapshot::rebase`] fail closed
            // instead of silently stretching a certified dummy interval.
            if let AvoidanceMode::Plan(plan) = mode {
                for (out_index, (&gap, &e)) in ns.gaps.iter().zip(outs).enumerate() {
                    if let Some(interval) = plan.interval(e).finite() {
                        if gap >= interval.max(1) {
                            return Err(RestoreError::GapExceedsInterval {
                                node: idx as u32,
                                out_index: out_index as u32,
                                gap,
                                interval,
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Rebases this snapshot onto a different avoidance plan — the one
    /// deliberate exception to the exact-plan restore rule, authorised by a
    /// [`SwapToken`] naming both digests.  `token.from` must equal the
    /// digest the snapshot was captured under and `token.to` the digest of
    /// `mode`; anything else is a [`RestoreError::PlanMismatch`].
    ///
    /// The only runtime state that depends on the interval table is the
    /// per-node dummy-gap counters, and rebasing them is behaviour-
    /// preserving: a counter `g ≥ t′` under a new finite threshold `t′`
    /// acts on the next accepted sequence number exactly like `g = t′ − 1`
    /// (one dummy fires, the counter resets), so each gap is clamped to
    /// `min(g, t′ − 1)`.  After a successful rebase the snapshot carries
    /// the new plan digest and passes [`JobSnapshot::validate_for`] under
    /// `mode` — the swapped resume then goes through the ordinary restore
    /// path with full structural validation.
    pub fn rebase(
        &mut self,
        topology: &Topology,
        mode: &AvoidanceMode,
        token: &SwapToken,
    ) -> Result<(), RestoreError> {
        if token.from != self.plan_digest {
            return Err(RestoreError::PlanMismatch(
                "swap token does not name the plan the snapshot was captured under".into(),
            ));
        }
        if token.to != plan_digest(mode) {
            return Err(RestoreError::PlanMismatch(
                "swap token does not name the restore-side plan".into(),
            ));
        }
        let g = topology.graph();
        if self.nodes.len() != g.node_count() {
            return Err(RestoreError::Corrupted(
                "node count does not match the topology".into(),
            ));
        }
        if let AvoidanceMode::Plan(plan) = mode {
            for (idx, ns) in self.nodes.iter_mut().enumerate() {
                let node = fila_graph::NodeId::from_raw(idx as u32);
                let outs = g.out_edges(node);
                if ns.gaps.len() != outs.len() {
                    return Err(RestoreError::Corrupted(
                        "wrapper state does not match the node's out-degree".into(),
                    ));
                }
                for (gap, &e) in ns.gaps.iter_mut().zip(outs) {
                    if let Some(interval) = plan.interval(e).finite() {
                        *gap = (*gap).min(interval.saturating_sub(1));
                    }
                }
            }
        }
        self.plan_digest = token.to;
        Ok(())
    }

    /// Splices a **partial restart** snapshot: the nodes inside `cone`
    /// (the failed node and everything downstream of it) are rolled back
    /// to the consistent `base` cut, while every node outside the cone
    /// keeps its `wreck` state — the verbatim final state the job died in
    /// ([`JobHandle::salvage`](crate::shared_pool::JobHandle::salvage)).
    /// The base cut's per-edge cumulative counts act as replay cursors:
    /// a rolled-back producer re-sends exactly what its counter says is
    /// undelivered.
    ///
    /// `cone` is indexed by node, `cone_edges` by edge as
    /// `(tail_in_cone, head_in_cone)`.  Edge classes:
    ///
    /// * `(true, true)` — interior: both endpoints roll back; counters and
    ///   channel contents come from `base`.
    /// * `(false, false)` — exterior: untouched; everything from `wreck`.
    /// * `(false, true)` — **frontier**: the producer keeps its wreck
    ///   state, the consumer rolls back.  The wreck's ring contents and
    ///   counters are kept; anything the consumer had consumed *past the
    ///   base cut* was re-sent by nobody and counts as divergence.
    /// * `(true, false)` — the cone is not downstream-closed (a rolled-back
    ///   producer would feed a consumer that already consumed ahead):
    ///   rejected as [`RestoreError::Corrupted`].
    ///
    /// Returns the spliced snapshot plus the total [`SpliceDivergence`]
    /// across frontier edges.  Exact recovery requires a zero divergence;
    /// approximate recovery accepts a bounded data deficit.  The caller
    /// must still certify the spliced cut against the restore-side plan
    /// ([`JobSnapshot::validate_for`] / `rebase`) before staging any task.
    pub fn splice_downstream(
        base: &JobSnapshot,
        wreck: &JobSnapshot,
        cone: &[bool],
        cone_edges: &[(bool, bool)],
    ) -> Result<(JobSnapshot, SpliceDivergence), RestoreError> {
        if base.version != wreck.version {
            return Err(RestoreError::VersionMismatch {
                found: wreck.version,
                expected: base.version,
            });
        }
        if base.labeled_topology != wreck.labeled_topology
            || base.plan_digest != wreck.plan_digest
            || base.trigger != wreck.trigger
            || base.inputs != wreck.inputs
        {
            return Err(RestoreError::PlanMismatch(
                "base cut and wreck do not describe the same job".into(),
            ));
        }
        let nodes = base.nodes.len();
        let edges = base.per_edge_data.len();
        if wreck.nodes.len() != nodes
            || cone.len() != nodes
            || wreck.per_edge_data.len() != edges
            || wreck.per_edge_dummies.len() != edges
            || base.per_edge_dummies.len() != edges
            || base.channels.len() != edges
            || wreck.channels.len() != edges
            || cone_edges.len() != edges
        {
            return Err(RestoreError::Corrupted(
                "base cut and wreck shapes disagree".into(),
            ));
        }
        let mut spliced = JobSnapshot {
            version: base.version,
            labeled_topology: base.labeled_topology,
            fingerprint: None,
            filter_signature: None,
            plan_digest: base.plan_digest,
            trigger: base.trigger,
            inputs: base.inputs,
            steps: 0,
            sink_firings: 0,
            per_edge_data: vec![0; edges],
            per_edge_dummies: vec![0; edges],
            channels: vec![Vec::new(); edges],
            nodes: Vec::with_capacity(nodes),
        };
        for (idx, &in_cone) in cone.iter().enumerate() {
            let donor = if in_cone { base } else { wreck };
            spliced.nodes.push(donor.nodes[idx].clone());
        }
        let mut divergence = SpliceDivergence::default();
        for (e, &(tail_in, head_in)) in cone_edges.iter().enumerate() {
            match (tail_in, head_in) {
                (true, false) => {
                    return Err(RestoreError::Corrupted(
                        "cone is not downstream-closed: a rolled-back producer \
                         would feed an un-rolled-back consumer"
                            .into(),
                    ));
                }
                (true, true) => {
                    spliced.per_edge_data[e] = base.per_edge_data[e];
                    spliced.per_edge_dummies[e] = base.per_edge_dummies[e];
                    spliced.channels[e] = base.channels[e].clone();
                }
                (false, false) => {
                    spliced.per_edge_data[e] = wreck.per_edge_data[e];
                    spliced.per_edge_dummies[e] = wreck.per_edge_dummies[e];
                    spliced.channels[e] = wreck.channels[e].clone();
                }
                (false, true) => {
                    // Frontier: producer state and ring contents are the
                    // wreck's; the rolled-back consumer resumes consuming
                    // from that ring.  delivered − in-ring = consumed;
                    // whatever the consumer consumed beyond the base cut
                    // is gone for good.
                    let consumed = |snap: &JobSnapshot| {
                        let (mut ring_data, mut ring_dummies) = (0u64, 0u64);
                        for m in &snap.channels[e] {
                            match m {
                                Message::Data { .. } => ring_data += 1,
                                Message::Dummy { .. } => ring_dummies += 1,
                                Message::Eos => {}
                            }
                        }
                        (
                            snap.per_edge_data[e].saturating_sub(ring_data),
                            snap.per_edge_dummies[e].saturating_sub(ring_dummies),
                        )
                    };
                    let (wreck_data, wreck_dummies) = consumed(wreck);
                    let (base_data, base_dummies) = consumed(base);
                    divergence.data += wreck_data.saturating_sub(base_data);
                    divergence.dummies += wreck_dummies.saturating_sub(base_dummies);
                    spliced.per_edge_data[e] = wreck.per_edge_data[e];
                    spliced.per_edge_dummies[e] = wreck.per_edge_dummies[e];
                    spliced.channels[e] = wreck.channels[e].clone();
                }
            }
        }
        spliced.steps = spliced.nodes.iter().map(|n| n.firings).sum();
        spliced.sink_firings = spliced.nodes.iter().map(|n| n.sink_firings).sum();
        Ok((spliced, divergence))
    }

    /// Serialises the snapshot into the versioned byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            64 + 16 * self.per_edge_data.len() + 64 * self.nodes.len(),
        );
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        put_u64(&mut out, self.labeled_topology);
        put_opt(&mut out, self.fingerprint);
        put_opt(&mut out, self.filter_signature);
        put_opt(&mut out, self.plan_digest);
        out.push(self.trigger);
        put_u64(&mut out, self.inputs);
        put_u64(&mut out, self.steps);
        put_u64(&mut out, self.sink_firings);
        put_u64s(&mut out, &self.per_edge_data);
        put_u64s(&mut out, &self.per_edge_dummies);
        put_u64(&mut out, self.channels.len() as u64);
        for channel in &self.channels {
            put_u64(&mut out, channel.len() as u64);
            for &m in channel {
                put_message(&mut out, m);
            }
        }
        put_u64(&mut out, self.nodes.len() as u64);
        for node in &self.nodes {
            put_u64s(&mut out, &node.gaps);
            put_u64(&mut out, node.next_source_seq);
            out.push(node.eos_queued as u8);
            out.push(node.done as u8);
            put_u64(&mut out, node.firings);
            put_u64(&mut out, node.sink_firings);
            put_u64(&mut out, node.staged.len() as u64);
            for &(edge, m) in &node.staged {
                out.extend_from_slice(&edge.to_le_bytes());
                put_message(&mut out, m);
            }
        }
        out
    }

    /// Deserialises a snapshot, rejecting foreign blobs (bad magic),
    /// unsupported versions and truncated or inconsistent encodings.
    pub fn from_bytes(bytes: &[u8]) -> Result<JobSnapshot, RestoreError> {
        let mut r = Reader { buf: bytes, pos: 0 };
        if r.take(8)? != MAGIC {
            return Err(RestoreError::Corrupted("bad magic: not a fila snapshot".into()));
        }
        let version = u32::from_le_bytes(r.take(4)?[..4].try_into().expect("4 bytes"));
        if version != SNAPSHOT_VERSION {
            return Err(RestoreError::VersionMismatch {
                found: version,
                expected: SNAPSHOT_VERSION,
            });
        }
        let labeled_topology = r.u64()?;
        let fingerprint = r.opt()?;
        let filter_signature = r.opt()?;
        let plan_digest = r.opt()?;
        let trigger = r.u8()?;
        let inputs = r.u64()?;
        let steps = r.u64()?;
        let sink_firings = r.u64()?;
        let per_edge_data = r.u64s()?;
        let per_edge_dummies = r.u64s()?;
        let channel_count = r.len(9)?;
        let mut channels = Vec::with_capacity(channel_count);
        for _ in 0..channel_count {
            let n = r.len(1)?;
            let mut channel = Vec::with_capacity(n);
            for _ in 0..n {
                channel.push(r.message()?);
            }
            channels.push(channel);
        }
        let node_count = r.len(27)?;
        let mut nodes = Vec::with_capacity(node_count);
        for _ in 0..node_count {
            let gaps = r.u64s()?;
            let next_source_seq = r.u64()?;
            let eos_queued = r.u8()? != 0;
            let done = r.u8()? != 0;
            let firings = r.u64()?;
            let sink_firings = r.u64()?;
            let staged_count = r.len(5)?;
            let mut staged = Vec::with_capacity(staged_count);
            for _ in 0..staged_count {
                let edge = u32::from_le_bytes(r.take(4)?[..4].try_into().expect("4 bytes"));
                staged.push((edge, r.message()?));
            }
            nodes.push(NodeSnapshot {
                gaps,
                next_source_seq,
                eos_queued,
                done,
                firings,
                sink_firings,
                staged,
            });
        }
        if r.pos != bytes.len() {
            return Err(RestoreError::Corrupted("trailing bytes after snapshot".into()));
        }
        Ok(JobSnapshot {
            version,
            labeled_topology,
            fingerprint,
            filter_signature,
            plan_digest,
            trigger,
            inputs,
            steps,
            sink_firings,
            per_edge_data,
            per_edge_dummies,
            channels,
            nodes,
        })
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64s(out: &mut Vec<u8>, vs: &[u64]) {
    put_u64(out, vs.len() as u64);
    for &v in vs {
        put_u64(out, v);
    }
}

fn put_opt(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(v) => {
            out.push(1);
            put_u64(out, v);
        }
        None => out.push(0),
    }
}

fn put_message(out: &mut Vec<u8>, m: Message) {
    match m {
        Message::Data { seq, payload } => {
            out.push(0);
            put_u64(out, seq);
            put_u64(out, payload);
        }
        Message::Dummy { seq } => {
            out.push(1);
            put_u64(out, seq);
        }
        Message::Eos => out.push(2),
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], RestoreError> {
        if self.buf.len() - self.pos < n {
            return Err(RestoreError::Corrupted("truncated snapshot".into()));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, RestoreError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, RestoreError> {
        Ok(u64::from_le_bytes(self.take(8)?[..8].try_into().expect("8 bytes")))
    }

    /// Reads a declared element count, bounding it by the bytes actually
    /// remaining (each element occupies at least `min_elem` bytes) so a
    /// corrupted length can never drive an allocation.
    fn len(&mut self, min_elem: usize) -> Result<usize, RestoreError> {
        let n = self.u64()? as usize;
        match n.checked_mul(min_elem.max(1)) {
            Some(bytes) if bytes <= self.buf.len() - self.pos => Ok(n),
            _ => Err(RestoreError::Corrupted("declared length exceeds the blob".into())),
        }
    }

    fn u64s(&mut self) -> Result<Vec<u64>, RestoreError> {
        let n = self.len(8)?;
        (0..n).map(|_| self.u64()).collect()
    }

    fn opt(&mut self) -> Result<Option<u64>, RestoreError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            _ => Err(RestoreError::Corrupted("bad option tag".into())),
        }
    }

    fn message(&mut self) -> Result<Message, RestoreError> {
        match self.u8()? {
            0 => Ok(Message::Data {
                seq: self.u64()?,
                payload: self.u64()?,
            }),
            1 => Ok(Message::Dummy { seq: self.u64()? }),
            2 => Ok(Message::Eos),
            _ => Err(RestoreError::Corrupted("bad message tag".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JobSnapshot {
        JobSnapshot {
            version: SNAPSHOT_VERSION,
            labeled_topology: 0xDEAD_BEEF,
            fingerprint: Some(42),
            filter_signature: None,
            plan_digest: Some(7),
            trigger: 0,
            inputs: 100,
            steps: 12,
            sink_firings: 3,
            per_edge_data: vec![5, 0],
            per_edge_dummies: vec![0, 2],
            channels: vec![
                vec![Message::Data { seq: 9, payload: 1 }, Message::Dummy { seq: 10 }],
                vec![Message::Eos],
            ],
            nodes: vec![
                NodeSnapshot {
                    gaps: vec![1, 2],
                    next_source_seq: 11,
                    eos_queued: false,
                    done: false,
                    firings: 11,
                    sink_firings: 0,
                    staged: vec![(0, Message::Data { seq: 10, payload: 4 })],
                },
                NodeSnapshot {
                    gaps: vec![],
                    next_source_seq: 0,
                    eos_queued: true,
                    done: true,
                    firings: 3,
                    sink_firings: 3,
                    staged: vec![],
                },
            ],
        }
    }

    #[test]
    fn bytes_roundtrip_exactly() {
        let snapshot = sample();
        let bytes = snapshot.to_bytes();
        assert_eq!(JobSnapshot::from_bytes(&bytes).unwrap(), snapshot);
    }

    #[test]
    fn foreign_blob_is_rejected() {
        let r = JobSnapshot::from_bytes(b"not a snapshot at all");
        assert!(matches!(r, Err(RestoreError::Corrupted(_))), "{r:?}");
        let r = JobSnapshot::from_bytes(&[]);
        assert!(matches!(r, Err(RestoreError::Corrupted(_))), "{r:?}");
    }

    #[test]
    fn unsupported_version_is_rejected_not_misread() {
        let mut bytes = sample().to_bytes();
        bytes[8] = 99; // version little-endian low byte
        match JobSnapshot::from_bytes(&bytes) {
            Err(RestoreError::VersionMismatch { found: 99, expected }) => {
                assert_eq!(expected, SNAPSHOT_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncation_and_trailing_bytes_are_rejected() {
        let bytes = sample().to_bytes();
        for cut in [bytes.len() - 1, bytes.len() / 2, 9] {
            let r = JobSnapshot::from_bytes(&bytes[..cut]);
            assert!(matches!(r, Err(RestoreError::Corrupted(_))), "cut {cut}: {r:?}");
        }
        let mut extended = bytes.clone();
        extended.push(0);
        let r = JobSnapshot::from_bytes(&extended);
        assert!(matches!(r, Err(RestoreError::Corrupted(_))), "{r:?}");
    }

    #[test]
    fn corrupted_length_cannot_drive_allocation() {
        let mut bytes = sample().to_bytes();
        // The per_edge_data length field sits right after the fixed header;
        // blow it up to a value no blob of this size could hold.
        let offset = 8 + 4 + 8 + 2 + 9 + 9 + 1 + 8 + 8 + 8;
        bytes[offset..offset + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let r = JobSnapshot::from_bytes(&bytes);
        assert!(matches!(r, Err(RestoreError::Corrupted(_))), "{r:?}");
    }

    #[test]
    fn plan_digest_distinguishes_plans_and_disabled() {
        use fila_avoidance::{Algorithm, Planner};
        use fila_graph::GraphBuilder;
        let mut b = GraphBuilder::new();
        b.edge_with_capacity("a", "b", 2).unwrap();
        b.edge_with_capacity("b", "c", 2).unwrap();
        b.edge_with_capacity("a", "c", 2).unwrap();
        let g = b.build().unwrap();
        assert_eq!(plan_digest(&AvoidanceMode::Disabled), None);
        let prop = Planner::new(&g).algorithm(Algorithm::Propagation).plan().unwrap();
        let nonprop = Planner::new(&g)
            .algorithm(Algorithm::NonPropagation)
            .plan()
            .unwrap();
        let d_prop = plan_digest(&AvoidanceMode::plan(prop.clone()));
        let d_nonprop = plan_digest(&AvoidanceMode::plan(nonprop));
        assert!(d_prop.is_some() && d_nonprop.is_some());
        assert_ne!(d_prop, d_nonprop);
        // Same plan twice: identical digest.
        assert_eq!(d_prop, plan_digest(&AvoidanceMode::plan(prop)));
    }
}
