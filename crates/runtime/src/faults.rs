//! Deterministic, seeded fault injection — the chaos harness the
//! self-healing service is tested against.
//!
//! A [`FaultPlan`] is handed to [`SharedPool`](crate::SharedPool) at
//! construction ([`crate::SharedPool::with_faults`]).  Every submitted or
//! resumed job draws a monotonically increasing serial; the plan maps that
//! serial — via the same splitmix64 finaliser the workload generators use —
//! to an optional [`FaultArm`]: the complete, pre-decided fault schedule of
//! that one job.  Identical `(seed, kill-rate)` pairs therefore produce
//! identical fault timelines run after run, which is what lets the chaos
//! oracle (`fila storm --chaos`) cross-check every recovered job against an
//! uninterrupted reference execution.
//!
//! ## Injectable faults
//!
//! * **Worker-thread panic at firing N** — the armed job's Nth task
//!   execution panics inside the worker's `catch_unwind` region, exactly
//!   like a buggy node behaviour ([`FaultArm::tick_execute`]).
//! * **Panic during barrier alignment** — the first task of the job to
//!   contribute to a barrier of checkpoint epoch ≥ 2 panics *mid-alignment*,
//!   tearing the in-flight snapshot and failing the job while a checkpoint
//!   is being collected ([`FaultArm::trip_alignment`]).  Epoch 1 is spared
//!   on purpose: a mid-barrier crash is only interesting to recovery when a
//!   previous complete cut exists to restart from.
//! * **Delayed wakeups** — a bounded budget of channel-event wakeups each
//!   eat a short sleep before enqueueing, perturbing scheduling order
//!   without changing semantics ([`FaultArm::delay_wake`]).
//! * **Snapshot truncation / bit-flips on encode** — a deterministic subset
//!   of the job's encoded checkpoints are torn after serialisation
//!   ([`FaultArm::corrupt_encoded`]); the damage is discovered only when
//!   recovery decodes the blob, exercising the snapshot-by-snapshot
//!   fallback.
//! * **Restore-time ring-prefill corruption** — one restore attempt gets
//!   its snapshot doctored with an over-capacity channel prefill
//!   ([`FaultArm::take_restore_corruption`]), which the restore validator
//!   must refuse with a typed error (never a panic), forcing a retry.
//!
//! ## Zero cost when disabled
//!
//! A pool built without a plan stores `None` per job; the hot path pays one
//! predictable `Option` branch per task execution and per wakeup — nothing
//! per firing, no atomics, no allocation.  All per-firing bookkeeping lives
//! inside the armed job's own `FaultArm`.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Where an armed job's injected crash fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashSite {
    /// The job's `n`th task execution panics on its worker thread.
    Firing(u64),
    /// The job's first barrier-alignment contribution of checkpoint epoch
    /// ≥ 2 panics mid-alignment.
    Alignment,
}

/// What [`FaultArm::corrupt_encoded`] did to an encoded snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotDamage {
    /// The blob was truncated to this many bytes.
    Truncated(usize),
    /// One bit of the header was flipped (byte index recorded).
    BitFlipped(usize),
}

/// The pre-decided fault schedule of one armed job (see the module docs).
/// All methods are cheap and thread-safe; the one-shot crash sites latch
/// atomically so retries and re-executions never double-fire.
#[derive(Debug)]
pub struct FaultArm {
    seed: u64,
    crash: Option<CrashSite>,
    crash_fired: AtomicBool,
    /// Set (before the panic) when the alignment crash actually tripped —
    /// the recovery report uses it to tell a mid-barrier crash from a plain
    /// worker crash.
    alignment_tripped: AtomicBool,
    ticks: AtomicU64,
    wake_delays: AtomicU32,
    corrupt_encode: bool,
    corrupt_restore: AtomicBool,
}

impl FaultArm {
    /// The crash site this arm will (or would) fire, if any.
    pub fn crash_site(&self) -> Option<CrashSite> {
        self.crash
    }

    /// True once the injected crash actually fired.
    pub fn crashed(&self) -> bool {
        self.crash_fired.load(Ordering::SeqCst)
    }

    /// True once the alignment crash tripped — i.e. the job was killed
    /// *during* barrier alignment, mid-checkpoint.
    pub fn alignment_tripped(&self) -> bool {
        self.alignment_tripped.load(Ordering::SeqCst)
    }

    /// Called by the pool once per task execution of the armed job, inside
    /// the worker's `catch_unwind` region.  Panics on the scheduled firing.
    pub fn tick_execute(&self) {
        if let Some(CrashSite::Firing(n)) = self.crash {
            let tick = self.ticks.fetch_add(1, Ordering::SeqCst) + 1;
            if tick >= n && !self.crash_fired.swap(true, Ordering::SeqCst) {
                panic!("injected: worker panic at task execution {n}");
            }
        }
    }

    /// Called by the pool's snapshot sink right before a task contributes
    /// its aligned state to checkpoint `epoch`.  Panics mid-alignment (once,
    /// on epochs ≥ 2) if this arm carries the alignment crash.
    pub fn trip_alignment(&self, epoch: u64) {
        if self.crash == Some(CrashSite::Alignment)
            && epoch >= 2
            && !self.crash_fired.swap(true, Ordering::SeqCst)
        {
            self.alignment_tripped.store(true, Ordering::SeqCst);
            panic!("injected: panic during barrier alignment (epoch {epoch})");
        }
    }

    /// Called by the pool before enqueueing a wakeup of the armed job;
    /// sleeps briefly while the delay budget lasts.
    pub fn delay_wake(&self) {
        let mut left = self.wake_delays.load(Ordering::Relaxed);
        while left > 0 {
            match self.wake_delays.compare_exchange_weak(
                left,
                left - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    std::thread::sleep(Duration::from_micros(20));
                    return;
                }
                Err(observed) => left = observed,
            }
        }
    }

    /// Deterministically tears a deterministic subset of the job's encoded
    /// snapshots (roughly every other generation): either truncates the
    /// blob or flips one header bit.  Both damages are guaranteed to
    /// surface as a **typed** decode error, never as silently wrong state —
    /// the snapshot-bytes fuzz suite pins that property for arbitrary
    /// corruption.  Returns what was done, or `None` if this generation is
    /// spared (or the arm does not corrupt encodes).
    pub fn corrupt_encoded(&self, generation: u64, bytes: &mut Vec<u8>) -> Option<SnapshotDamage> {
        if !self.corrupt_encode || bytes.len() < 16 {
            return None;
        }
        let h = mix(self.seed ^ generation.wrapping_mul(0x9E37_79B9));
        if h % 2 != 0 {
            return None;
        }
        if (h >> 1) % 2 == 0 {
            let keep = 1 + (h >> 2) as usize % (bytes.len() - 1);
            bytes.truncate(keep);
            Some(SnapshotDamage::Truncated(keep))
        } else {
            // Flip a bit in the magic/version header: always a typed
            // `Corrupted`/`VersionMismatch`, never a misread payload.
            let byte = (h >> 2) as usize % 12;
            bytes[byte] ^= 1 << ((h >> 8) % 8);
            Some(SnapshotDamage::BitFlipped(byte))
        }
    }

    /// One-shot: true exactly once if this arm doctors a restore attempt
    /// (the caller then corrupts the ring prefill of the snapshot it is
    /// about to restore, and the restore validator must refuse it).
    pub fn take_restore_corruption(&self) -> bool {
        self.corrupt_restore.swap(false, Ordering::SeqCst)
    }
}

/// A deterministic, seeded fault-injection schedule for a whole pool (see
/// the module docs).  Cloneable via `Arc`; all state lives in the per-job
/// [`FaultArm`]s it hands out.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    kill_rate: f64,
}

impl FaultPlan {
    /// A plan deriving every decision from `seed` (same seed + same
    /// submission order ⇒ same faults), with a default kill-rate of 0.25.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            kill_rate: 0.25,
        }
    }

    /// Sets the fraction of jobs that get a crash injected (clamped to
    /// `[0, 1]`).  The secondary faults (snapshot corruption, restore
    /// doctoring, delayed wakeups) are derived per armed job.
    pub fn kill_rate(mut self, rate: f64) -> Self {
        self.kill_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// The seed this plan derives every decision from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Decides the fault schedule of the job with this pool serial.
    /// Deterministic: the same `(seed, kill-rate, serial)` always yields the
    /// same arm.  Returns `None` (the common case) for unarmed jobs.
    pub fn arm(&self, serial: u64) -> Option<Arc<FaultArm>> {
        let h = mix(self.seed ^ serial.wrapping_mul(0xA24B_AED4_963E_E407));
        let armed = (h as f64) < self.kill_rate * (u64::MAX as f64);
        let d = mix(self.seed ^ serial.wrapping_mul(0x9FB2_1C65_1E98_DF25) ^ 0xDE1A);
        let delays = if (d as f64) < self.kill_rate * (u64::MAX as f64) {
            32
        } else {
            0
        };
        if !armed && delays == 0 {
            return None;
        }
        let h2 = mix(h ^ 0xC4A5);
        let crash = armed.then(|| {
            if h2 % 2 == 0 {
                CrashSite::Firing(1 + (h2 >> 1) % 48)
            } else {
                CrashSite::Alignment
            }
        });
        Some(Arc::new(FaultArm {
            seed: mix(self.seed ^ serial),
            crash,
            crash_fired: AtomicBool::new(false),
            alignment_tripped: AtomicBool::new(false),
            ticks: AtomicU64::new(0),
            wake_delays: AtomicU32::new(delays),
            corrupt_encode: armed && (h2 >> 8) % 4 == 0,
            corrupt_restore: AtomicBool::new(armed && (h2 >> 10) % 4 == 0),
        }))
    }
}

/// splitmix64 finaliser — the same mixer the workload generators and the
/// storm CLI use for deterministic per-index decisions.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arming_is_deterministic_and_rate_bounded() {
        let plan = FaultPlan::seeded(0xF11A).kill_rate(0.3);
        let again = FaultPlan::seeded(0xF11A).kill_rate(0.3);
        let mut crashes = 0;
        for serial in 0..1000u64 {
            let a = plan.arm(serial);
            let b = again.arm(serial);
            assert_eq!(a.is_some(), b.is_some(), "serial {serial}");
            if let (Some(a), Some(b)) = (a, b) {
                assert_eq!(a.crash_site(), b.crash_site(), "serial {serial}");
                if a.crash_site().is_some() {
                    crashes += 1;
                }
            }
        }
        // 30% of 1000 with generous slack.
        assert!((200..=400).contains(&crashes), "{crashes} crashes armed");
    }

    #[test]
    fn zero_kill_rate_arms_nothing() {
        let plan = FaultPlan::seeded(7).kill_rate(0.0);
        assert!((0..500).all(|s| plan.arm(s).is_none()));
    }

    #[test]
    fn firing_crash_fires_exactly_once() {
        let plan = FaultPlan::seeded(1).kill_rate(1.0);
        let arm = (0..64)
            .filter_map(|s| plan.arm(s))
            .find(|a| matches!(a.crash_site(), Some(CrashSite::Firing(_))))
            .expect("some serial draws a firing crash at kill-rate 1");
        let Some(CrashSite::Firing(n)) = arm.crash_site() else {
            unreachable!()
        };
        for _ in 1..n {
            arm.tick_execute(); // must not panic before the scheduled tick
        }
        assert!(!arm.crashed());
        let err = std::panic::catch_unwind(|| arm.tick_execute());
        assert!(err.is_err(), "tick {n} must panic");
        assert!(arm.crashed());
        arm.tick_execute(); // latched: never fires twice
    }

    #[test]
    fn alignment_crash_spares_epoch_one_and_latches() {
        let plan = FaultPlan::seeded(2).kill_rate(1.0);
        let arm = (0..64)
            .filter_map(|s| plan.arm(s))
            .find(|a| a.crash_site() == Some(CrashSite::Alignment))
            .expect("some serial draws an alignment crash at kill-rate 1");
        arm.trip_alignment(1); // epoch 1 spared
        assert!(!arm.crashed());
        assert!(std::panic::catch_unwind(|| arm.trip_alignment(2)).is_err());
        assert!(arm.alignment_tripped());
        arm.trip_alignment(3); // latched
    }

    #[test]
    fn encode_corruption_is_typed_damage_and_deterministic() {
        let plan = FaultPlan::seeded(3).kill_rate(1.0);
        let arm = (0..256)
            .filter_map(|s| plan.arm(s))
            .find(|a| a.corrupt_encode)
            .expect("some serial draws encode corruption at kill-rate 1");
        let original: Vec<u8> = (0..200u8).collect();
        let mut damaged_any = false;
        for generation in 0..16u64 {
            let mut a = original.clone();
            let mut b = original.clone();
            let da = arm.corrupt_encoded(generation, &mut a);
            let db = arm.corrupt_encoded(generation, &mut b);
            assert_eq!(da, db, "generation {generation}");
            assert_eq!(a, b);
            if da.is_some() {
                damaged_any = true;
                assert_ne!(a, original);
            }
        }
        assert!(damaged_any, "no generation was ever corrupted");
    }

    #[test]
    fn restore_corruption_is_one_shot() {
        let plan = FaultPlan::seeded(4).kill_rate(1.0);
        let arm = (0..256)
            .filter_map(|s| plan.arm(s))
            .find(|a| a.corrupt_restore.load(Ordering::SeqCst))
            .expect("some serial draws restore corruption at kill-rate 1");
        assert!(arm.take_restore_corruption());
        assert!(!arm.take_restore_corruption());
    }

    #[test]
    fn wake_delay_budget_is_bounded() {
        let plan = FaultPlan::seeded(5).kill_rate(1.0);
        let arm = plan.arm(0).expect("kill-rate 1 arms serial 0");
        for _ in 0..100 {
            arm.delay_wake();
        }
        assert_eq!(arm.wake_delays.load(Ordering::Relaxed), 0);
    }
}
