//! # fila-runtime
//!
//! A streaming runtime for the filtering dataflow model of Buhler et al.
//! (PPoPP 2012): compute nodes connected by finite-buffer FIFO channels,
//! where each input carries a monotonically increasing sequence number and a
//! node may *filter* (send no output for) any input on any subset of its
//! output channels.
//!
//! With finite buffers such applications can deadlock even though the graph
//! is acyclic (Fig. 2 of the paper).  This crate implements the two
//! deadlock-avoidance protocols the paper's compile-time analysis
//! parameterises — the **Propagation** and **Non-Propagation** dummy-message
//! algorithms — as wrappers around the user's node behaviours, plus two
//! execution engines:
//!
//! * [`Simulator`] — a deterministic, single-threaded discrete-event
//!   executor with *exact* deadlock detection (it knows precisely when no
//!   node can make progress), used by the tests and benchmarks;
//! * [`ThreadedExecutor`] — one OS thread per node over crossbeam bounded
//!   channels, with a progress watchdog for deadlock detection; this is the
//!   "real" concurrent runtime exercising the same wrapper logic.
//!
//! The deliberate pairing lets every experiment be run both exactly and
//! under real concurrency.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod filters;
pub mod message;
pub mod node;
pub mod report;
pub mod simulator;
pub mod threaded;
pub mod topology;
pub mod wrapper;

pub use filters::{Bernoulli, Broadcast, Collector, ModuloFilter, RouteRoundRobin};
pub use message::{Message, Payload};
pub use node::{FireDecision, FireInput, NodeBehavior};
pub use report::{BlockedInfo, BlockedReason, ExecutionReport};
pub use simulator::{Scheduler, Simulator};
pub use threaded::ThreadedExecutor;
pub use topology::{BehaviorFactory, Topology};
pub use wrapper::{AvoidanceMode, DummyWrapper};
