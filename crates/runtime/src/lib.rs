//! # fila-runtime
//!
//! A streaming runtime for the filtering dataflow model of Buhler et al.
//! (PPoPP 2012): compute nodes connected by finite-buffer FIFO channels,
//! where each input carries a monotonically increasing sequence number and a
//! node may *filter* (send no output for) any input on any subset of its
//! output channels.
//!
//! With finite buffers such applications can deadlock even though the graph
//! is acyclic (Fig. 2 of the paper).  This crate implements the two
//! deadlock-avoidance protocols the paper's compile-time analysis
//! parameterises — the **Propagation** and **Non-Propagation** dummy-message
//! algorithms — as wrappers around the user's node behaviours, plus two
//! execution engines:
//!
//! * [`Simulator`] — a deterministic, single-threaded discrete-event
//!   executor with *exact* deadlock detection (it knows precisely when no
//!   node can make progress), used by the tests and benchmarks;
//! * [`PooledExecutor`] — the scalable concurrent engine: a fixed
//!   work-stealing worker pool drives every node as a cooperatively
//!   scheduled task over lock-free SPSC rings ([`spsc`]), with the same
//!   exact parked-pool deadlock verdict as the simulator;
//! * [`SharedPool`] — the multi-tenant engine behind the service layer: a
//!   *long-lived* work-stealing pool on which the node-tasks of many
//!   independent jobs coexist, with exact per-job completion/deadlock
//!   verdicts decided by per-job quiescence (no global idleness needed);
//! * [`ThreadedExecutor`] — one OS thread per node over the same rings,
//!   parked/unparked per channel, with a progress watchdog for deadlock
//!   detection; kept as the simplest possible concurrent engine.
//!
//! The deliberate pairing lets every experiment be run both exactly and
//! under real concurrency: the simulator is the reference both concurrent
//! engines are checked against (a property test pins the pool to the
//! simulator's verdicts and per-edge counts; unit tests cross-check the
//! two concurrent engines' data counts against each other).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod checkpoint;
pub mod container;
pub mod faults;
pub mod filters;
pub mod message;
pub mod node;
pub mod pooled;
pub mod report;
pub mod shared_pool;
pub mod simulator;
pub mod spsc;
mod task;
pub mod telemetry;
pub mod threaded;
pub mod topology;
pub mod wrapper;

pub use checkpoint::{
    CheckpointOutcome, JobSnapshot, NodeSnapshot, RestoreError, SnapshotError, SpliceDivergence,
    SwapToken,
};
pub use container::{Batch, Batching, Container, Run, Single};
pub use faults::{CrashSite, FaultArm, FaultPlan, SnapshotDamage};
pub use filters::{Bernoulli, Broadcast, Collector, ModuloFilter, RouteRoundRobin};
pub use message::{Message, Payload};
pub use node::{FireDecision, FireInput, NodeBehavior};
pub use pooled::PooledExecutor;
pub use report::{BlockedInfo, BlockedReason, ExecutionReport};
pub use shared_pool::{FilterObservation, JobHandle, JobVerdict, SettleHook, SharedPool};
pub use simulator::{Scheduler, Simulator};
pub use telemetry::{chrome_trace, EventKind, JobTimeline, TelemetryHandle, TraceEvent};
pub use threaded::ThreadedExecutor;
pub use topology::{BehaviorFactory, Topology};
pub use wrapper::{AvoidanceMode, DummyWrapper, PropagationTrigger, RunDummies};
