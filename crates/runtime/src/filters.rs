//! Reusable node behaviours: broadcasters, filters, routers and collectors.
//!
//! These cover the behaviours used by the paper's motivating applications:
//! a split node that forwards a frame to a data-dependent subset of
//! recognisers, recognisers that only occasionally report success, and join
//! nodes that merge whatever arrives (§I, Fig. 1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::message::Payload;
use crate::node::{FireDecision, FireInput, NodeBehavior};

/// Emits a data message on every output channel for every accepted input.
/// The payload is the sum of the input payloads (or the sequence number for
/// sources).
#[derive(Debug, Clone, Default)]
pub struct Broadcast {
    outputs: usize,
}

impl Broadcast {
    /// Creates a broadcaster for a node with `outputs` output channels.
    pub fn new(outputs: usize) -> Self {
        Broadcast { outputs }
    }
}

impl NodeBehavior for Broadcast {
    fn fire(&mut self, input: &FireInput<'_>) -> FireDecision {
        let payload = combined_payload(input);
        FireDecision::broadcast(self.outputs, payload)
    }

    fn fire_into(&mut self, input: &FireInput<'_>, emit: &mut [Option<Payload>]) {
        emit.fill(Some(combined_payload(input)));
    }
}

/// Independently filters each output channel with a fixed drop probability:
/// with probability `keep` the input is forwarded, otherwise it is filtered.
/// Deterministic for a given seed.
#[derive(Debug, Clone)]
pub struct Bernoulli {
    outputs: usize,
    keep: f64,
    rng: StdRng,
}

impl Bernoulli {
    /// Creates a Bernoulli filter: each output keeps an input with
    /// probability `keep` (0.0 ..= 1.0).
    pub fn new(outputs: usize, keep: f64, seed: u64) -> Self {
        Bernoulli {
            outputs,
            keep,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl NodeBehavior for Bernoulli {
    fn fire(&mut self, input: &FireInput<'_>) -> FireDecision {
        let payload = combined_payload(input);
        let emit = (0..self.outputs)
            .map(|_| {
                if self.rng.gen_bool(self.keep.clamp(0.0, 1.0)) {
                    Some(payload)
                } else {
                    None
                }
            })
            .collect();
        FireDecision { emit }
    }
}

/// Deterministic periodic filter: forwards an input to every output iff
/// `seq % period == phase`.  With `period = 1` it never filters.
#[derive(Debug, Clone)]
pub struct ModuloFilter {
    outputs: usize,
    period: u64,
    phase: u64,
}

impl ModuloFilter {
    /// Creates a periodic filter.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(outputs: usize, period: u64, phase: u64) -> Self {
        assert!(period > 0, "period must be positive");
        ModuloFilter {
            outputs,
            period,
            phase: phase % period,
        }
    }
}

impl NodeBehavior for ModuloFilter {
    fn fire(&mut self, input: &FireInput<'_>) -> FireDecision {
        if input.seq % self.period == self.phase {
            FireDecision::broadcast(self.outputs, combined_payload(input))
        } else {
            FireDecision::silence(self.outputs)
        }
    }

    fn fire_into(&mut self, input: &FireInput<'_>, emit: &mut [Option<Payload>]) {
        if input.seq % self.period == self.phase {
            emit.fill(Some(combined_payload(input)));
        } else {
            emit.fill(None);
        }
    }
}

/// A split node that routes each accepted input to exactly one output,
/// cycling through its outputs round-robin by sequence number.
#[derive(Debug, Clone)]
pub struct RouteRoundRobin {
    outputs: usize,
}

impl RouteRoundRobin {
    /// Creates a round-robin router over `outputs` channels.
    pub fn new(outputs: usize) -> Self {
        assert!(outputs > 0, "router needs at least one output");
        RouteRoundRobin { outputs }
    }
}

impl NodeBehavior for RouteRoundRobin {
    fn fire(&mut self, input: &FireInput<'_>) -> FireDecision {
        let idx = (input.seq % self.outputs as u64) as usize;
        FireDecision::only(self.outputs, idx, combined_payload(input))
    }

    fn fire_into(&mut self, input: &FireInput<'_>, emit: &mut [Option<Payload>]) {
        emit.fill(None);
        emit[(input.seq % self.outputs as u64) as usize] = Some(combined_payload(input));
    }
}

/// A sink behaviour that accumulates the payloads it consumes; useful for
/// asserting end-to-end results in tests and examples.
#[derive(Debug, Clone, Default)]
pub struct Collector;

impl NodeBehavior for Collector {
    fn fire(&mut self, _input: &FireInput<'_>) -> FireDecision {
        FireDecision::silence(0)
    }

    fn fire_into(&mut self, _input: &FireInput<'_>, emit: &mut [Option<Payload>]) {
        emit.fill(None);
    }
}

/// A behaviour defined by an arbitrary emission predicate on (sequence,
/// output index).
pub struct Predicate<F> {
    outputs: usize,
    predicate: F,
}

impl<F> Predicate<F>
where
    F: FnMut(u64, usize) -> bool + Send,
{
    /// Creates a predicate filter over `outputs` channels.
    pub fn new(outputs: usize, predicate: F) -> Self {
        Predicate { outputs, predicate }
    }
}

impl<F> NodeBehavior for Predicate<F>
where
    F: FnMut(u64, usize) -> bool + Send,
{
    fn fire(&mut self, input: &FireInput<'_>) -> FireDecision {
        let payload = combined_payload(input);
        let emit = (0..self.outputs)
            .map(|i| (self.predicate)(input.seq, i).then_some(payload))
            .collect();
        FireDecision { emit }
    }

    fn fire_into(&mut self, input: &FireInput<'_>, emit: &mut [Option<Payload>]) {
        let payload = combined_payload(input);
        for (i, slot) in emit.iter_mut().enumerate() {
            *slot = (self.predicate)(input.seq, i).then_some(payload);
        }
    }
}

fn combined_payload(input: &FireInput<'_>) -> u64 {
    let sum: u64 = input
        .data_in
        .iter()
        .filter_map(|d| *d)
        .fold(0u64, u64::wrapping_add);
    if input.data_in.is_empty() {
        input.seq
    } else {
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn source_input(seq: u64) -> FireInput<'static> {
        FireInput { seq, data_in: &[] }
    }

    #[test]
    fn broadcast_emits_everywhere() {
        let mut b = Broadcast::new(3);
        let d = b.fire(&source_input(5));
        assert_eq!(d.emitted(), 3);
        assert_eq!(d.emit[0], Some(5));
    }

    #[test]
    fn bernoulli_is_seed_deterministic_and_filters() {
        let run = |seed| {
            let mut f = Bernoulli::new(2, 0.5, seed);
            (0..100)
                .map(|s| f.fire(&source_input(s)).emitted())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        let emitted: usize = run(7).iter().sum();
        assert!(emitted > 20 && emitted < 180, "roughly half kept: {emitted}");
        // Extreme probabilities behave as expected.
        let mut never = Bernoulli::new(1, 0.0, 1);
        assert_eq!(never.fire(&source_input(0)).emitted(), 0);
        let mut always = Bernoulli::new(1, 1.0, 1);
        assert_eq!(always.fire(&source_input(0)).emitted(), 1);
    }

    #[test]
    fn modulo_filter_period() {
        let mut f = ModuloFilter::new(1, 3, 1);
        let kept: Vec<u64> = (0..9)
            .filter(|&s| f.fire(&source_input(s)).emitted() > 0)
            .collect();
        assert_eq!(kept, vec![1, 4, 7]);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn modulo_filter_rejects_zero_period() {
        let _ = ModuloFilter::new(1, 0, 0);
    }

    #[test]
    fn round_robin_routes_by_sequence() {
        let mut r = RouteRoundRobin::new(3);
        for s in 0..6 {
            let d = r.fire(&source_input(s));
            assert_eq!(d.emitted(), 1);
            assert!(d.emit[(s % 3) as usize].is_some());
        }
    }

    #[test]
    fn predicate_filter_uses_output_index() {
        let mut p = Predicate::new(2, |seq, out| (seq + out as u64) % 2 == 0);
        let d = p.fire(&source_input(4));
        assert!(d.emit[0].is_some());
        assert!(d.emit[1].is_none());
    }

    #[test]
    fn collector_consumes_without_emitting() {
        let mut c = Collector;
        let data = [Some(3), Some(4)];
        let d = c.fire(&FireInput { seq: 0, data_in: &data });
        assert_eq!(d.emitted(), 0);
    }

    #[test]
    fn combined_payload_sums_inputs() {
        let data = [Some(3), None, Some(4)];
        let input = FireInput { seq: 9, data_in: &data };
        let mut b = Broadcast::new(1);
        assert_eq!(b.fire(&input).emit[0], Some(7));
    }
}
