//! Messages exchanged over the streaming channels.

/// The payload carried by a data message.  The model only cares about
/// sequence numbers, so the payload is an opaque 64-bit value that
/// behaviours may use as they wish (examples store pixel counts, scores,
/// byte offsets, ...).
pub type Payload = u64;

/// A message travelling on a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Message {
    /// A real data message produced by the application at this sequence
    /// number.
    Data {
        /// The sequence number of the input this message derives from.
        seq: u64,
        /// Application payload.
        payload: Payload,
    },
    /// A content-free dummy message inserted by the deadlock-avoidance
    /// wrapper; its sequence number is that of an input that was filtered.
    Dummy {
        /// The sequence number of the filtered input.
        seq: u64,
    },
    /// End of stream: no message with a finite sequence number will follow.
    Eos,
}

impl Message {
    /// The sequence number of the message; `u64::MAX` for end-of-stream,
    /// which makes the "head of every channel has sequence ≥ i" firing rule
    /// uniform.
    pub fn seq(&self) -> u64 {
        match self {
            Message::Data { seq, .. } | Message::Dummy { seq } => *seq,
            Message::Eos => u64::MAX,
        }
    }

    /// True for data messages.
    pub fn is_data(&self) -> bool {
        matches!(self, Message::Data { .. })
    }

    /// True for dummy messages.
    pub fn is_dummy(&self) -> bool {
        matches!(self, Message::Dummy { .. })
    }

    /// True for the end-of-stream marker.
    pub fn is_eos(&self) -> bool {
        matches!(self, Message::Eos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_numbers() {
        assert_eq!(Message::Data { seq: 3, payload: 9 }.seq(), 3);
        assert_eq!(Message::Dummy { seq: 5 }.seq(), 5);
        assert_eq!(Message::Eos.seq(), u64::MAX);
    }

    #[test]
    fn kind_predicates() {
        assert!(Message::Data { seq: 0, payload: 0 }.is_data());
        assert!(!Message::Data { seq: 0, payload: 0 }.is_dummy());
        assert!(Message::Dummy { seq: 0 }.is_dummy());
        assert!(Message::Eos.is_eos());
        assert!(!Message::Eos.is_data());
    }

    #[test]
    fn message_is_small() {
        assert!(std::mem::size_of::<Message>() <= 24);
    }
}
