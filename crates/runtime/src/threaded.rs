//! A multi-threaded execution engine: one OS thread per compute node,
//! communicating over crossbeam bounded channels.
//!
//! The channel capacities are exactly the buffer sizes of the application
//! graph (each receiver holds one message in a local "peek" slot so that the
//! sequence-number acceptance rule of §II.A can be applied across several
//! input channels; the crossbeam channel is therefore created one slot
//! smaller).  Deadlock cannot be detected exactly in a running concurrent
//! system, so the engine uses the conventional approach: a watchdog that
//! declares deadlock when no message has been produced or consumed for a
//! configurable quiet period, after which all workers abort cleanly.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, SendTimeoutError, Sender};
use fila_avoidance::AvoidancePlan;
use fila_graph::{EdgeId, NodeId};

use crate::message::Message;
use crate::node::{FireDecision, FireInput};
use crate::report::ExecutionReport;
use crate::topology::Topology;
use crate::wrapper::{AvoidanceMode, DummyWrapper, PropagationTrigger};

/// Multi-threaded execution engine.
#[derive(Debug, Clone)]
pub struct ThreadedExecutor<'t> {
    topology: &'t Topology,
    mode: AvoidanceMode,
    trigger: PropagationTrigger,
    quiet_period: Duration,
}

impl<'t> ThreadedExecutor<'t> {
    /// Creates an executor with deadlock avoidance disabled and a 500 ms
    /// watchdog quiet period.
    pub fn new(topology: &'t Topology) -> Self {
        ThreadedExecutor {
            topology,
            mode: AvoidanceMode::Disabled,
            trigger: PropagationTrigger::default(),
            quiet_period: Duration::from_millis(500),
        }
    }

    /// Enables deadlock avoidance following `plan`.
    pub fn with_plan(mut self, plan: &AvoidancePlan) -> Self {
        self.mode = AvoidanceMode::plan(plan.clone());
        self
    }

    /// Enables deadlock avoidance following an already-shared plan without
    /// copying the interval table (all workers share the one `Arc`).
    pub fn with_shared_plan(mut self, plan: Arc<AvoidancePlan>) -> Self {
        self.mode = AvoidanceMode::Plan(plan);
        self
    }

    /// Sets the avoidance mode explicitly.
    pub fn avoidance(mut self, mode: AvoidanceMode) -> Self {
        self.mode = mode;
        self
    }

    /// Selects the Propagation-protocol trigger (see
    /// [`PropagationTrigger`]); the default is the paper's literal trigger.
    pub fn propagation_trigger(mut self, trigger: PropagationTrigger) -> Self {
        self.trigger = trigger;
        self
    }

    /// Sets how long the system must be completely quiet (no sends, no
    /// receives) before the watchdog declares a deadlock.
    pub fn quiet_period(mut self, quiet: Duration) -> Self {
        self.quiet_period = quiet;
        self
    }

    /// Runs the application, offering `inputs` sequence numbers at every
    /// source, and returns the execution report.
    pub fn run(&self, inputs: u64) -> ExecutionReport {
        let g = self.topology.graph();
        let edge_count = g.edge_count();

        // Channel per edge; capacity reduced by the receiver-side peek slot.
        let mut senders: Vec<Option<Sender<Message>>> = Vec::with_capacity(edge_count);
        let mut receivers: Vec<Option<Receiver<Message>>> = Vec::with_capacity(edge_count);
        for e in g.edge_ids() {
            let cap = (g.capacity(e) as usize).saturating_sub(1);
            let (tx, rx) = bounded(cap);
            senders.push(Some(tx));
            receivers.push(Some(rx));
        }

        let shared = Arc::new(Shared {
            abort: AtomicBool::new(false),
            progress: AtomicU64::new(0),
            finished_nodes: AtomicU64::new(0),
            data_messages: AtomicU64::new(0),
            dummy_messages: AtomicU64::new(0),
            sink_firings: AtomicU64::new(0),
            firings: AtomicU64::new(0),
            per_edge_data: (0..edge_count).map(|_| AtomicU64::new(0)).collect(),
            per_edge_dummies: (0..edge_count).map(|_| AtomicU64::new(0)).collect(),
        });

        let node_count = g.node_count() as u64;
        std::thread::scope(|scope| {
            for n in g.node_ids() {
                // Each edge has exactly one producer and one consumer, so
                // both endpoints *move* their channel handle out of the
                // shared tables — no sender is ever cloned, and channels
                // close as soon as their producing worker finishes.
                let worker = Worker {
                    topology: self.topology,
                    node: n,
                    inputs,
                    port_queue: vec![PortQueue::default(); g.out_degree(n)],
                    senders: g
                        .out_edges(n)
                        .iter()
                        .map(|&e| (e, senders[e.index()].take().expect("one producer per edge")))
                        .collect(),
                    receivers: g
                        .in_edges(n)
                        .iter()
                        .map(|&e| (e, receivers[e.index()].take().expect("one consumer per edge")))
                        .collect(),
                    wrapper: DummyWrapper::with_trigger(g, n, &self.mode, self.trigger),
                    shared: Arc::clone(&shared),
                };
                scope.spawn(move || worker.run());
            }
            drop(senders);

            // Watchdog: declare deadlock after a quiet period with no
            // progress while workers remain.
            let mut last_progress = shared.progress.load(Ordering::Relaxed);
            let mut last_change = Instant::now();
            loop {
                std::thread::sleep(Duration::from_millis(5));
                if shared.finished_nodes.load(Ordering::Relaxed) >= node_count {
                    break;
                }
                let now_progress = shared.progress.load(Ordering::Relaxed);
                if now_progress != last_progress {
                    last_progress = now_progress;
                    last_change = Instant::now();
                } else if last_change.elapsed() >= self.quiet_period {
                    shared.abort.store(true, Ordering::SeqCst);
                    break;
                }
            }
        });

        let deadlocked = shared.abort.load(Ordering::SeqCst);
        ExecutionReport {
            completed: !deadlocked,
            deadlocked,
            inputs_offered: inputs,
            data_messages: shared.data_messages.load(Ordering::Relaxed),
            dummy_messages: shared.dummy_messages.load(Ordering::Relaxed),
            per_edge_data: shared
                .per_edge_data
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            per_edge_dummies: shared
                .per_edge_dummies
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sink_firings: shared.sink_firings.load(Ordering::Relaxed),
            steps: shared.firings.load(Ordering::Relaxed),
            blocked: Vec::new(),
        }
    }
}

struct Shared {
    abort: AtomicBool,
    progress: AtomicU64,
    finished_nodes: AtomicU64,
    data_messages: AtomicU64,
    dummy_messages: AtomicU64,
    sink_firings: AtomicU64,
    firings: AtomicU64,
    per_edge_data: Vec<AtomicU64>,
    per_edge_dummies: Vec<AtomicU64>,
}

/// Per-output-port queue of at most two messages (a data message and a
/// dummy can share one accepted sequence number).  Two inline slots keep the
/// send path free of heap allocations.
#[derive(Debug, Clone, Copy, Default)]
struct PortQueue {
    first: Option<Message>,
    second: Option<Message>,
}

impl PortQueue {
    fn front(&self) -> Option<Message> {
        self.first.or(self.second)
    }

    fn pop_front(&mut self) {
        if self.first.is_some() {
            self.first = self.second.take();
        } else {
            self.second = None;
        }
    }

    fn len(&self) -> usize {
        usize::from(self.first.is_some()) + usize::from(self.second.is_some())
    }

    fn clear(&mut self) {
        self.first = None;
        self.second = None;
    }
}

struct Worker<'t> {
    topology: &'t Topology,
    node: NodeId,
    inputs: u64,
    senders: Vec<(EdgeId, Sender<Message>)>,
    receivers: Vec<(EdgeId, Receiver<Message>)>,
    wrapper: DummyWrapper,
    shared: Arc<Shared>,
    /// Reusable per-firing output staging, aligned with `senders`.
    port_queue: Vec<PortQueue>,
}

impl Worker<'_> {
    fn run(mut self) {
        let mut behavior = self.topology.build_behavior(self.node);
        if self.receivers.is_empty() {
            self.run_source(behavior.as_mut());
        } else {
            self.run_interior(behavior.as_mut());
        }
        self.shared.finished_nodes.fetch_add(1, Ordering::Relaxed);
    }

    fn run_source(&mut self, behavior: &mut dyn crate::node::NodeBehavior) {
        for seq in 0..self.inputs {
            if self.aborted() {
                return;
            }
            let decision = behavior.fire(&FireInput { seq, data_in: &[] });
            self.shared.firings.fetch_add(1, Ordering::Relaxed);
            if !self.emit(seq, Some(&decision), false) {
                return;
            }
        }
        self.broadcast_eos();
    }

    fn run_interior(&mut self, behavior: &mut dyn crate::node::NodeBehavior) {
        let n_in = self.receivers.len();
        let mut heads: Vec<Option<Message>> = vec![None; n_in];
        // Reused across firings; reset in place each round.
        let mut data_in: Vec<Option<u64>> = vec![None; n_in];
        loop {
            // Fill every empty peek slot (this is where a node blocks when
            // an upstream producer has filtered everything on that channel).
            for (idx, (_, rx)) in self.receivers.iter().enumerate() {
                if heads[idx].is_some() {
                    continue;
                }
                match self.recv(rx) {
                    Some(m) => heads[idx] = Some(m),
                    None => return,
                }
            }
            let accept_seq = heads
                .iter()
                .map(|m| m.expect("all heads filled").seq())
                .min()
                .expect("interior nodes have inputs");
            if accept_seq == u64::MAX {
                self.broadcast_eos();
                return;
            }
            data_in.fill(None);
            let mut consumed_dummy = false;
            for (idx, head) in heads.iter_mut().enumerate() {
                let m = head.expect("filled");
                if m.seq() == accept_seq {
                    match m {
                        Message::Data { payload, .. } => data_in[idx] = Some(payload),
                        Message::Dummy { .. } => consumed_dummy = true,
                        Message::Eos => unreachable!("EOS has maximal sequence"),
                    }
                    *head = None;
                    self.shared.progress.fetch_add(1, Ordering::Relaxed);
                }
            }
            let decision = if data_in.iter().any(Option::is_some) {
                if self.senders.is_empty() {
                    self.shared.sink_firings.fetch_add(1, Ordering::Relaxed);
                }
                self.shared.firings.fetch_add(1, Ordering::Relaxed);
                Some(behavior.fire(&FireInput {
                    seq: accept_seq,
                    data_in: &data_in,
                }))
            } else {
                // Only dummies were consumed: no behaviour call, no data out.
                None
            };
            if !self.emit(accept_seq, decision.as_ref(), consumed_dummy) {
                return;
            }
        }
    }

    /// Sends the data and dummy messages for one accepted sequence number
    /// (`decision` is `None` when the node consumed only dummies and emits
    /// no data).  Returns false if the run was aborted mid-send.
    ///
    /// The whole path reuses the worker's `port_queue` staging and never
    /// clones a sender or allocates.
    fn emit(&mut self, seq: u64, decision: Option<&FireDecision>, consumed_dummy: bool) -> bool {
        let Worker {
            senders,
            wrapper,
            shared,
            port_queue,
            ..
        } = self;
        let dummies = wrapper.on_accept(consumed_dummy, |i| {
            decision.is_some_and(|d| d.emit[i].is_some())
        });
        let mut remaining = 0usize;
        for (idx, slot) in port_queue.iter_mut().enumerate() {
            slot.first = decision
                .and_then(|d| d.emit[idx])
                .map(|payload| Message::Data { seq, payload });
            // Under the heartbeat trigger a dummy may accompany a data
            // message carrying the same sequence number.
            slot.second = dummies[idx].then_some(Message::Dummy { seq });
            remaining += slot.len();
        }
        // Drain all output ports concurrently: a full channel must not delay
        // the messages destined for a different channel (per-channel order
        // is still preserved), otherwise a dummy aimed at an empty channel
        // could be stuck behind a blocked data send and defeat the
        // deadlock-avoidance protocol.
        while remaining > 0 {
            if shared.abort.load(Ordering::SeqCst) {
                return false;
            }
            let mut made_progress = false;
            for (idx, (edge, tx)) in senders.iter().enumerate() {
                let slot = &mut port_queue[idx];
                let Some(message) = slot.front() else { continue };
                match tx.try_send(message) {
                    Ok(()) => {
                        slot.pop_front();
                        remaining -= 1;
                        made_progress = true;
                        shared.progress.fetch_add(1, Ordering::Relaxed);
                        match message {
                            Message::Data { .. } => {
                                shared.data_messages.fetch_add(1, Ordering::Relaxed);
                                shared.per_edge_data[edge.index()]
                                    .fetch_add(1, Ordering::Relaxed);
                            }
                            Message::Dummy { .. } => {
                                shared.dummy_messages.fetch_add(1, Ordering::Relaxed);
                                shared.per_edge_dummies[edge.index()]
                                    .fetch_add(1, Ordering::Relaxed);
                            }
                            Message::Eos => {}
                        }
                    }
                    Err(crossbeam::channel::TrySendError::Full(_)) => {}
                    Err(crossbeam::channel::TrySendError::Disconnected(_)) => {
                        remaining -= slot.len();
                        slot.clear();
                    }
                }
            }
            if !made_progress {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        true
    }

    fn broadcast_eos(&self) {
        for (_, tx) in &self.senders {
            let _ = send_blocking(tx, Message::Eos, &self.shared);
        }
    }

    fn recv(&self, rx: &Receiver<Message>) -> Option<Message> {
        loop {
            if self.aborted() {
                return None;
            }
            match rx.recv_timeout(Duration::from_millis(10)) {
                Ok(m) => {
                    self.shared.progress.fetch_add(1, Ordering::Relaxed);
                    return Some(m);
                }
                Err(RecvTimeoutError::Timeout) => continue,
                // A disconnected channel means the producer aborted early;
                // treat it as end of stream.
                Err(RecvTimeoutError::Disconnected) => return Some(Message::Eos),
            }
        }
    }

    fn aborted(&self) -> bool {
        self.shared.abort.load(Ordering::SeqCst)
    }
}

/// Sends with periodic abort checks; returns false if the run aborted.
fn send_blocking(tx: &Sender<Message>, message: Message, shared: &Shared) -> bool {
    let mut msg = message;
    loop {
        if shared.abort.load(Ordering::SeqCst) {
            return false;
        }
        match tx.send_timeout(msg, Duration::from_millis(10)) {
            Ok(()) => {
                shared.progress.fetch_add(1, Ordering::Relaxed);
                return true;
            }
            Err(SendTimeoutError::Timeout(m)) => msg = m,
            Err(SendTimeoutError::Disconnected(_)) => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filters::{ModuloFilter, Predicate};
    use fila_avoidance::{Algorithm, Planner};
    use fila_graph::{Graph, GraphBuilder};

    fn fig2(buffer: u64) -> Graph {
        let mut b = GraphBuilder::new();
        b.edge_with_capacity("A", "B", buffer).unwrap();
        b.edge_with_capacity("B", "C", buffer).unwrap();
        b.edge_with_capacity("A", "C", buffer).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn pipeline_completes_threaded() {
        let mut b = GraphBuilder::new();
        b.chain(&["src", "mid", "dst"]).unwrap();
        let g = b.build().unwrap();
        let topo = Topology::from_graph(&g);
        let report = ThreadedExecutor::new(&topo).run(200);
        assert!(report.completed, "{report:?}");
        assert_eq!(report.data_messages, 400);
        assert_eq!(report.sink_firings, 200);
    }

    #[test]
    fn fig2_deadlocks_threaded_without_avoidance() {
        let g = fig2(2);
        let a = g.node_by_name("A").unwrap();
        let topo = Topology::from_graph(&g)
            .with(a, || Predicate::new(2, |_seq, out| out == 0));
        let report = ThreadedExecutor::new(&topo)
            .quiet_period(Duration::from_millis(200))
            .run(500);
        assert!(report.deadlocked, "{report:?}");
    }

    #[test]
    fn fig2_completes_threaded_with_plan() {
        let g = fig2(2);
        let a = g.node_by_name("A").unwrap();
        for algorithm in [Algorithm::Propagation, Algorithm::NonPropagation] {
            let plan = Planner::new(&g).algorithm(algorithm).plan().unwrap();
            let topo = Topology::from_graph(&g)
                .with(a, || Predicate::new(2, |_seq, out| out == 0));
            let report = ThreadedExecutor::new(&topo)
                .with_plan(&plan)
                .quiet_period(Duration::from_millis(500))
                .run(500);
            assert!(report.completed, "{algorithm}: {report:?}");
            assert!(report.dummy_messages > 0);
        }
    }

    #[test]
    fn threaded_and_simulated_agree_on_data_counts() {
        // Deterministic filtering: both engines must deliver exactly the
        // same number of data messages (dummy counts may differ slightly
        // because thread interleaving changes when gaps are observed).
        let g = fig2(4);
        let a = g.node_by_name("A").unwrap();
        let plan = Planner::new(&g).algorithm(Algorithm::Propagation).plan().unwrap();
        let topo = Topology::from_graph(&g)
            .with(a, || Predicate::new(2, |seq, out| out == 0 || seq % 4 == 0));
        let sim = crate::Simulator::new(&topo).with_plan(&plan).run(400);
        let thr = ThreadedExecutor::new(&topo).with_plan(&plan).run(400);
        assert!(sim.completed && thr.completed);
        assert_eq!(sim.data_messages, thr.data_messages);
        assert_eq!(sim.sink_firings, thr.sink_firings);
    }

    #[test]
    fn rendezvous_capacity_one_channels_work() {
        let mut b = GraphBuilder::new();
        b.edge_with_capacity("s", "m", 1).unwrap();
        b.edge_with_capacity("m", "t", 1).unwrap();
        let g = b.build().unwrap();
        let m = g.node_by_name("m").unwrap();
        let topo = Topology::from_graph(&g).with(m, || ModuloFilter::new(1, 2, 0));
        let report = ThreadedExecutor::new(&topo).run(100);
        assert!(report.completed, "{report:?}");
        assert_eq!(report.sink_firings, 50);
    }
}
