//! A multi-threaded execution engine: one OS thread per compute node,
//! communicating over the same lock-free SPSC rings as
//! [`crate::PooledExecutor`].
//!
//! Each channel's ring has exactly the buffer size of the application graph
//! (the consumer applies the sequence-number acceptance rule of §II.A by
//! *peeking* the ring heads in place, so no extra receiver-side slot exists
//! and the in-flight bound matches the simulator's model exactly).
//!
//! Workers never spin or sleep-poll: a worker whose channel cannot progress
//! registers the ring's waiting flag, re-checks (the Dekker protocol of
//! [`crate::spsc`]), and parks its thread; the peer endpoint consumes the
//! flag after the enabling push/pop and unparks exactly that thread.
//! Deadlock still cannot be observed exactly in a running concurrent system
//! of parked threads (a pending unpark token is invisible), so the engine
//! keeps the conventional approach: a watchdog that declares deadlock when
//! no message has been produced or consumed for a configurable quiet
//! period, after which all workers abort cleanly.  The watchdog itself
//! sleeps on a condvar until its deadline — progress merely moves the
//! deadline, so a deadlock is declared between one and two quiet periods
//! after the last observed progress.  (Contrast with
//! [`crate::PooledExecutor`], whose parked-pool verdict is exact; this
//! engine is kept as the simplest possible concurrent reference.)

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::Thread;
use std::time::{Duration, Instant};

use fila_avoidance::AvoidancePlan;
use fila_graph::{EdgeId, NodeId};

use crate::message::Message;
use crate::node::{FireDecision, FireInput};
use crate::report::ExecutionReport;
use crate::spsc;
use crate::topology::Topology;
use crate::wrapper::{AvoidanceMode, DummyWrapper, PropagationTrigger};

/// Multi-threaded execution engine.
#[derive(Debug, Clone)]
pub struct ThreadedExecutor<'t> {
    topology: &'t Topology,
    mode: AvoidanceMode,
    trigger: PropagationTrigger,
    quiet_period: Duration,
}

impl<'t> ThreadedExecutor<'t> {
    /// Creates an executor with deadlock avoidance disabled and a 500 ms
    /// watchdog quiet period.
    pub fn new(topology: &'t Topology) -> Self {
        ThreadedExecutor {
            topology,
            mode: AvoidanceMode::Disabled,
            trigger: PropagationTrigger::default(),
            quiet_period: Duration::from_millis(500),
        }
    }

    /// Enables deadlock avoidance following `plan`.
    pub fn with_plan(mut self, plan: &AvoidancePlan) -> Self {
        self.mode = AvoidanceMode::plan(plan.clone());
        self
    }

    /// Enables deadlock avoidance following an already-shared plan without
    /// copying the interval table (all workers share the one `Arc`).
    pub fn with_shared_plan(mut self, plan: Arc<AvoidancePlan>) -> Self {
        self.mode = AvoidanceMode::Plan(plan);
        self
    }

    /// Sets the avoidance mode explicitly.
    pub fn avoidance(mut self, mode: AvoidanceMode) -> Self {
        self.mode = mode;
        self
    }

    /// Selects the Propagation-protocol trigger (see
    /// [`PropagationTrigger`]); the default is the paper's literal trigger.
    pub fn propagation_trigger(mut self, trigger: PropagationTrigger) -> Self {
        self.trigger = trigger;
        self
    }

    /// Sets how long the system must be completely quiet (no sends, no
    /// receives) before the watchdog declares a deadlock.
    pub fn quiet_period(mut self, quiet: Duration) -> Self {
        self.quiet_period = quiet;
        self
    }

    /// Runs the application, offering `inputs` sequence numbers at every
    /// source, and returns the execution report.
    pub fn run(&self, inputs: u64) -> ExecutionReport {
        let started = std::time::Instant::now();
        let g = self.topology.graph();
        let edge_count = g.edge_count();

        // One SPSC ring per edge, with exactly the modelled capacity; both
        // endpoints *move* into their unique worker.
        let mut producers: Vec<Option<spsc::Producer<Message>>> =
            Vec::with_capacity(edge_count);
        let mut consumers: Vec<Option<spsc::Consumer<Message>>> =
            Vec::with_capacity(edge_count);
        for e in g.edge_ids() {
            // The modelled capacity is in *messages*; `MsgCap` keeps that
            // unit explicit now that rings can also carry containers.
            let (tx, rx) = spsc::ring(spsc::MsgCap::new(g.capacity(e) as usize));
            producers.push(Some(tx));
            consumers.push(Some(rx));
        }

        let shared = Arc::new(Shared {
            abort: AtomicBool::new(false),
            progress: AtomicU64::new(0),
            finished_nodes: AtomicU64::new(0),
            threads: (0..g.node_count()).map(|_| OnceLock::new()).collect(),
            lock: Mutex::new(()),
            cv: Condvar::new(),
            data_messages: AtomicU64::new(0),
            dummy_messages: AtomicU64::new(0),
            sink_firings: AtomicU64::new(0),
            firings: AtomicU64::new(0),
            per_node_firings: (0..g.node_count()).map(|_| AtomicU64::new(0)).collect(),
            per_edge_data: (0..edge_count).map(|_| AtomicU64::new(0)).collect(),
            per_edge_dummies: (0..edge_count).map(|_| AtomicU64::new(0)).collect(),
        });

        let node_count = g.node_count() as u64;
        std::thread::scope(|scope| {
            for n in g.node_ids() {
                let worker = Worker {
                    topology: self.topology,
                    node: n,
                    inputs,
                    outs: g
                        .out_edges(n)
                        .iter()
                        .map(|&e| OutChan {
                            edge: e,
                            consumer: g.head(e),
                            tx: producers[e.index()].take().expect("one producer per edge"),
                            queue: PortQueue::default(),
                        })
                        .collect(),
                    ins: g
                        .in_edges(n)
                        .iter()
                        .map(|&e| InChan {
                            producer: g.tail(e),
                            rx: consumers[e.index()].take().expect("one consumer per edge"),
                        })
                        .collect(),
                    wrapper: DummyWrapper::with_trigger(g, n, &self.mode, self.trigger),
                    shared: Arc::clone(&shared),
                };
                scope.spawn(move || worker.run());
            }
            drop(producers);

            // Watchdog: declare deadlock after a quiet period with no
            // progress while workers remain.  It sleeps on the shared
            // condvar until its deadline (no fixed-interval polling) and is
            // woken early only by workers finishing; if progress happened
            // meanwhile, the deadline simply moves forward.
            let mut guard = shared.lock.lock().expect("shared lock");
            let mut last_progress = shared.progress.load(Ordering::SeqCst);
            let mut deadline = Instant::now() + self.quiet_period;
            loop {
                if shared.finished_nodes.load(Ordering::SeqCst) >= node_count {
                    break;
                }
                let now_progress = shared.progress.load(Ordering::SeqCst);
                let now = Instant::now();
                if now_progress != last_progress {
                    last_progress = now_progress;
                    deadline = now + self.quiet_period;
                }
                if now >= deadline {
                    shared.abort();
                    break;
                }
                let (reacquired, _timeout) = shared
                    .cv
                    .wait_timeout(guard, deadline - now)
                    .expect("shared lock");
                guard = reacquired;
            }
            drop(guard);
        });

        let deadlocked = shared.abort.load(Ordering::SeqCst);
        ExecutionReport {
            completed: !deadlocked,
            deadlocked,
            inputs_offered: inputs,
            data_messages: shared.data_messages.load(Ordering::Relaxed),
            dummy_messages: shared.dummy_messages.load(Ordering::Relaxed),
            per_edge_data: shared
                .per_edge_data
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            per_edge_dummies: shared
                .per_edge_dummies
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sink_firings: shared.sink_firings.load(Ordering::Relaxed),
            per_node_firings: shared
                .per_node_firings
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            steps: shared.firings.load(Ordering::Relaxed),
            blocked: Vec::new(),
            wall: started.elapsed(),
            resumed_from: None,
        }
    }
}

struct Shared {
    abort: AtomicBool,
    progress: AtomicU64,
    finished_nodes: AtomicU64,
    /// Each worker's thread handle, registered before its first park, so a
    /// peer that consumed a ring waiting flag can unpark exactly the right
    /// thread.
    threads: Vec<OnceLock<Thread>>,
    /// Watchdog coordination (deadline sleep + completion wakeup).
    lock: Mutex<()>,
    cv: Condvar,
    data_messages: AtomicU64,
    dummy_messages: AtomicU64,
    sink_firings: AtomicU64,
    firings: AtomicU64,
    per_node_firings: Vec<AtomicU64>,
    per_edge_data: Vec<AtomicU64>,
    per_edge_dummies: Vec<AtomicU64>,
}

impl Shared {
    /// Records one unit of progress (a send or receive) for the watchdog.
    #[inline]
    fn bump(&self) {
        self.progress.fetch_add(1, Ordering::Relaxed);
    }

    /// Unparks the worker thread of `node` (no-op before the worker has
    /// registered, which can only happen before it first parks).
    fn unpark(&self, node: NodeId) {
        if let Some(thread) = self.threads[node.index()].get() {
            thread.unpark();
        }
    }

    /// Records that one worker ran to completion and wakes the watchdog so
    /// the run's end is observed promptly.
    fn node_finished(&self) {
        self.finished_nodes.fetch_add(1, Ordering::SeqCst);
        let _guard = self.lock.lock().expect("shared lock");
        self.cv.notify_all();
    }

    /// Aborts the run: every worker re-checks the flag before parking and
    /// holds an unpark token afterwards, so none can sleep through it.
    fn abort(&self) {
        self.abort.store(true, Ordering::SeqCst);
        for thread in &self.threads {
            if let Some(thread) = thread.get() {
                thread.unpark();
            }
        }
        self.cv.notify_all();
    }
}

/// Per-output-port queue of at most two messages (a data message and a
/// dummy can share one accepted sequence number; an EOS always travels
/// alone).  Two inline slots keep the send path of both concurrent engines
/// free of heap allocations.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PortQueue {
    pub(crate) first: Option<Message>,
    pub(crate) second: Option<Message>,
}

impl PortQueue {
    pub(crate) fn front(&self) -> Option<Message> {
        self.first.or(self.second)
    }

    pub(crate) fn pop_front(&mut self) {
        if self.first.is_some() {
            self.first = self.second.take();
        } else {
            self.second = None;
        }
    }

    pub(crate) fn len(&self) -> usize {
        usize::from(self.first.is_some()) + usize::from(self.second.is_some())
    }
}

struct InChan {
    producer: NodeId,
    rx: spsc::Consumer<Message>,
}

struct OutChan {
    edge: EdgeId,
    consumer: NodeId,
    tx: spsc::Producer<Message>,
    /// Reusable per-firing output staging.
    queue: PortQueue,
}

struct Worker<'t> {
    topology: &'t Topology,
    node: NodeId,
    inputs: u64,
    outs: Vec<OutChan>,
    ins: Vec<InChan>,
    wrapper: DummyWrapper,
    shared: Arc<Shared>,
}

impl Worker<'_> {
    fn run(mut self) {
        // Register before anything that could park, so peers (and the
        // watchdog) can always unpark this thread.
        self.shared.threads[self.node.index()]
            .set(std::thread::current())
            .expect("one worker per node");
        let mut behavior = self.topology.build_behavior(self.node);
        if self.ins.is_empty() {
            self.run_source(behavior.as_mut());
        } else {
            self.run_interior(behavior.as_mut());
        }
        self.shared.node_finished();
    }

    fn run_source(&mut self, behavior: &mut dyn crate::node::NodeBehavior) {
        for seq in 0..self.inputs {
            if self.aborted() {
                return;
            }
            let decision = behavior.fire(&FireInput { seq, data_in: &[] });
            self.shared.firings.fetch_add(1, Ordering::Relaxed);
            self.shared.per_node_firings[self.node.index()].fetch_add(1, Ordering::Relaxed);
            if !self.emit(seq, Some(&decision), false) {
                return;
            }
        }
        self.broadcast_eos();
    }

    fn run_interior(&mut self, behavior: &mut dyn crate::node::NodeBehavior) {
        let n_in = self.ins.len();
        // Reused across firings; reset in place each round.
        let mut data_in: Vec<Option<u64>> = vec![None; n_in];
        loop {
            // Wait until every input ring has a head to peek (this is where
            // a node blocks when an upstream producer has filtered
            // everything on that channel).
            let mut accept_seq = u64::MAX;
            for chan in &self.ins {
                match blocking_front(&chan.rx, &self.shared) {
                    Some(head) => accept_seq = accept_seq.min(head.seq()),
                    None => return,
                }
            }
            if accept_seq == u64::MAX {
                self.broadcast_eos();
                return;
            }
            data_in.fill(None);
            let mut consumed_dummy = false;
            for (idx, chan) in self.ins.iter_mut().enumerate() {
                let head = chan.rx.front().expect("all heads checked non-empty");
                if head.seq() != accept_seq {
                    continue;
                }
                chan.rx.pop();
                if chan.rx.take_producer_waiting() {
                    self.shared.unpark(chan.producer);
                }
                self.shared.bump();
                match head {
                    Message::Data { payload, .. } => data_in[idx] = Some(payload),
                    Message::Dummy { .. } => consumed_dummy = true,
                    Message::Eos => unreachable!("EOS has maximal sequence"),
                }
            }
            let decision = if data_in.iter().any(Option::is_some) {
                if self.outs.is_empty() {
                    self.shared.sink_firings.fetch_add(1, Ordering::Relaxed);
                }
                self.shared.firings.fetch_add(1, Ordering::Relaxed);
                self.shared.per_node_firings[self.node.index()].fetch_add(1, Ordering::Relaxed);
                Some(behavior.fire(&FireInput {
                    seq: accept_seq,
                    data_in: &data_in,
                }))
            } else {
                // Only dummies were consumed: no behaviour call, no data out.
                None
            };
            if !self.emit(accept_seq, decision.as_ref(), consumed_dummy) {
                return;
            }
        }
    }

    /// Sends the data and dummy messages for one accepted sequence number
    /// (`decision` is `None` when the node consumed only dummies and emits
    /// no data).  Returns false if the run was aborted mid-send.
    ///
    /// The whole path reuses the per-port staging queues and never
    /// allocates.  Output ports drain concurrently: a full channel must not
    /// delay the messages destined for a different channel (per-channel
    /// order is still preserved), otherwise a dummy aimed at an empty
    /// channel could be stuck behind a blocked data send and defeat the
    /// deadlock-avoidance protocol.  A fruitless sweep registers the
    /// waiting flag on every still-full ring (with the mandatory re-try)
    /// and parks; the consumers' pops unpark this thread.
    fn emit(&mut self, seq: u64, decision: Option<&FireDecision>, consumed_dummy: bool) -> bool {
        let Worker {
            outs,
            wrapper,
            shared,
            ..
        } = self;
        let dummies = wrapper.on_accept(consumed_dummy, |i| {
            decision.is_some_and(|d| d.emit[i].is_some())
        });
        let mut remaining = 0usize;
        for (idx, chan) in outs.iter_mut().enumerate() {
            chan.queue.first = decision
                .and_then(|d| d.emit[idx])
                .map(|payload| Message::Data { seq, payload });
            // Under the heartbeat trigger a dummy may accompany a data
            // message carrying the same sequence number.
            chan.queue.second = dummies[idx].then_some(Message::Dummy { seq });
            remaining += chan.queue.len();
        }
        while remaining > 0 {
            if shared.abort.load(Ordering::SeqCst) {
                return false;
            }
            let mut made_progress = false;
            for chan in outs.iter_mut() {
                while let Some(message) = chan.queue.front() {
                    if chan.tx.push_or_register(message).is_err() {
                        break;
                    }
                    chan.queue.pop_front();
                    remaining -= 1;
                    made_progress = true;
                    shared.bump();
                    match message {
                        Message::Data { .. } => {
                            shared.data_messages.fetch_add(1, Ordering::Relaxed);
                            shared.per_edge_data[chan.edge.index()]
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        Message::Dummy { .. } => {
                            shared.dummy_messages.fetch_add(1, Ordering::Relaxed);
                            shared.per_edge_dummies[chan.edge.index()]
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        Message::Eos => {}
                    }
                    if chan.tx.take_consumer_waiting() {
                        shared.unpark(chan.consumer);
                    }
                }
            }
            if !made_progress {
                std::thread::park();
            }
        }
        true
    }

    fn broadcast_eos(&mut self) {
        let Worker { outs, shared, .. } = self;
        for chan in outs.iter_mut() {
            loop {
                if shared.abort.load(Ordering::SeqCst) {
                    return;
                }
                if chan.tx.push_or_register(Message::Eos).is_ok() {
                    shared.bump();
                    if chan.tx.take_consumer_waiting() {
                        shared.unpark(chan.consumer);
                    }
                    break;
                }
                std::thread::park();
            }
        }
    }

    fn aborted(&self) -> bool {
        self.shared.abort.load(Ordering::SeqCst)
    }
}

/// Peeks the ring head, parking the thread while the ring is empty.
/// Returns `None` if the run aborted.
fn blocking_front(rx: &spsc::Consumer<Message>, shared: &Shared) -> Option<Message> {
    loop {
        if shared.abort.load(Ordering::SeqCst) {
            return None;
        }
        if let Some(head) = rx.front_or_register() {
            return Some(head);
        }
        std::thread::park();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filters::{ModuloFilter, Predicate};
    use fila_avoidance::{Algorithm, Planner};
    use fila_graph::{Graph, GraphBuilder};

    fn fig2(buffer: u64) -> Graph {
        let mut b = GraphBuilder::new();
        b.edge_with_capacity("A", "B", buffer).unwrap();
        b.edge_with_capacity("B", "C", buffer).unwrap();
        b.edge_with_capacity("A", "C", buffer).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn pipeline_completes_threaded() {
        let mut b = GraphBuilder::new();
        b.chain(&["src", "mid", "dst"]).unwrap();
        let g = b.build().unwrap();
        let topo = Topology::from_graph(&g);
        let report = ThreadedExecutor::new(&topo).run(200);
        assert!(report.completed, "{report:?}");
        assert_eq!(report.data_messages, 400);
        assert_eq!(report.sink_firings, 200);
    }

    #[test]
    fn fig2_deadlocks_threaded_without_avoidance() {
        let g = fig2(2);
        let a = g.node_by_name("A").unwrap();
        let topo = Topology::from_graph(&g)
            .with(a, || Predicate::new(2, |_seq, out| out == 0));
        let report = ThreadedExecutor::new(&topo)
            .quiet_period(Duration::from_millis(200))
            .run(500);
        assert!(report.deadlocked, "{report:?}");
    }

    #[test]
    fn fig2_completes_threaded_with_plan() {
        let g = fig2(2);
        let a = g.node_by_name("A").unwrap();
        for algorithm in [Algorithm::Propagation, Algorithm::NonPropagation] {
            let plan = Planner::new(&g).algorithm(algorithm).plan().unwrap();
            let topo = Topology::from_graph(&g)
                .with(a, || Predicate::new(2, |_seq, out| out == 0));
            let report = ThreadedExecutor::new(&topo)
                .with_plan(&plan)
                .quiet_period(Duration::from_millis(500))
                .run(500);
            assert!(report.completed, "{algorithm}: {report:?}");
            assert!(report.dummy_messages > 0);
        }
    }

    #[test]
    fn threaded_and_simulated_agree_on_data_counts() {
        // Deterministic filtering: both engines must deliver exactly the
        // same number of data messages (dummy counts may differ slightly
        // because thread interleaving changes when gaps are observed).
        let g = fig2(4);
        let a = g.node_by_name("A").unwrap();
        let plan = Planner::new(&g).algorithm(Algorithm::Propagation).plan().unwrap();
        let topo = Topology::from_graph(&g)
            .with(a, || Predicate::new(2, |seq, out| out == 0 || seq % 4 == 0));
        let sim = crate::Simulator::new(&topo).with_plan(&plan).run(400);
        let thr = ThreadedExecutor::new(&topo).with_plan(&plan).run(400);
        assert!(sim.completed && thr.completed);
        assert_eq!(sim.data_messages, thr.data_messages);
        assert_eq!(sim.sink_firings, thr.sink_firings);
    }

    #[test]
    fn capacity_one_channels_work() {
        let mut b = GraphBuilder::new();
        b.edge_with_capacity("s", "m", 1).unwrap();
        b.edge_with_capacity("m", "t", 1).unwrap();
        let g = b.build().unwrap();
        let m = g.node_by_name("m").unwrap();
        let topo = Topology::from_graph(&g).with(m, || ModuloFilter::new(1, 2, 0));
        let report = ThreadedExecutor::new(&topo).run(100);
        assert!(report.completed, "{report:?}");
        assert_eq!(report.sink_firings, 50);
    }
}
