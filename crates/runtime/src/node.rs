//! The node behaviour interface: where application filtering logic lives.
//!
//! In the paper's model (§II.A) a node accepts input `i` once every input
//! channel's head has sequence number ≥ `i`; the messages with sequence `i`
//! are consumed together and may produce messages with sequence `i` on *any
//! subset* of the node's output channels — that subset is the node's
//! (possibly data-dependent) filtering decision, and it is exactly what a
//! [`NodeBehavior`] implementation returns.

use crate::message::Payload;

/// What a node sees when it fires at a sequence number.
#[derive(Debug, Clone)]
pub struct FireInput<'a> {
    /// The sequence number being consumed.
    pub seq: u64,
    /// For each input channel (in the graph's `in_edges` order), the payload
    /// of the data message consumed at this sequence number, or `None` if
    /// the channel contributed no data (the producer filtered it, or only a
    /// dummy arrived).  Empty for source nodes.
    pub data_in: &'a [Option<Payload>],
}

impl FireInput<'_> {
    /// Number of input channels that contributed data.
    pub fn data_count(&self) -> usize {
        self.data_in.iter().filter(|d| d.is_some()).count()
    }

    /// True if at least one input channel contributed data (always false for
    /// sources, which have no inputs).
    pub fn has_data(&self) -> bool {
        self.data_count() > 0
    }
}

/// A node's filtering decision for one sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FireDecision {
    /// For each output channel (in the graph's `out_edges` order), the data
    /// payload to emit, or `None` to filter this input with respect to that
    /// channel.
    pub emit: Vec<Option<Payload>>,
}

impl FireDecision {
    /// Emits the same payload on every one of `n` output channels.
    pub fn broadcast(n: usize, payload: Payload) -> Self {
        FireDecision {
            emit: vec![Some(payload); n],
        }
    }

    /// Filters the input with respect to every one of `n` output channels.
    pub fn silence(n: usize) -> Self {
        FireDecision {
            emit: vec![None; n],
        }
    }

    /// Emits `payload` only on output channel `index` out of `n`.
    pub fn only(n: usize, index: usize, payload: Payload) -> Self {
        let mut emit = vec![None; n];
        emit[index] = Some(payload);
        FireDecision { emit }
    }

    /// Number of channels that receive data.
    pub fn emitted(&self) -> usize {
        self.emit.iter().filter(|e| e.is_some()).count()
    }
}

/// Application logic of one compute node.
///
/// Behaviours are created per execution (via [`crate::topology::BehaviorFactory`]),
/// so they may carry mutable state such as RNGs, windows, or counters.
pub trait NodeBehavior: Send {
    /// Called once per accepted sequence number, in increasing order.
    ///
    /// * Source nodes are fired for every offered input sequence number with
    ///   an empty `data_in`.
    /// * Interior and sink nodes are fired whenever they consume a sequence
    ///   number for which at least one input channel contributed a data
    ///   message.  Sequence numbers consumed purely from dummies do not
    ///   reach the behaviour (the wrapper handles them).
    fn fire(&mut self, input: &FireInput<'_>) -> FireDecision;

    /// Allocation-free variant of [`NodeBehavior::fire`]: writes the
    /// decision into `emit`, a scratch slice the engine pre-sizes to the
    /// node's output count and reuses across firings.
    ///
    /// The default delegates to `fire` (correct for any behaviour);
    /// deterministic built-ins override it to skip the per-firing `Vec`.  An
    /// override must produce exactly the decision `fire` would — the engines
    /// pick whichever entry point suits their hot path and the equivalence
    /// guarantees assume the two agree.
    fn fire_into(&mut self, input: &FireInput<'_>, emit: &mut [Option<Payload>]) {
        let d = self.fire(input);
        emit.copy_from_slice(&d.emit);
    }
}

impl<F> NodeBehavior for F
where
    F: FnMut(&FireInput<'_>) -> FireDecision + Send,
{
    fn fire(&mut self, input: &FireInput<'_>) -> FireDecision {
        self(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fire_input_counts_data() {
        let data = [Some(1), None, Some(3)];
        let input = FireInput { seq: 7, data_in: &data };
        assert_eq!(input.data_count(), 2);
        assert!(input.has_data());
        let empty: [Option<Payload>; 0] = [];
        let src = FireInput { seq: 0, data_in: &empty };
        assert!(!src.has_data());
    }

    #[test]
    fn decision_constructors() {
        assert_eq!(FireDecision::broadcast(3, 9).emitted(), 3);
        assert_eq!(FireDecision::silence(2).emitted(), 0);
        let only = FireDecision::only(3, 1, 5);
        assert_eq!(only.emitted(), 1);
        assert_eq!(only.emit[1], Some(5));
    }

    #[test]
    fn closures_are_behaviours() {
        let mut count = 0u64;
        let mut behaviour = move |input: &FireInput<'_>| {
            count += 1;
            FireDecision::broadcast(1, input.seq + count)
        };
        let b: &mut dyn NodeBehavior = &mut behaviour;
        let out = b.fire(&FireInput { seq: 10, data_in: &[] });
        assert_eq!(out.emit[0], Some(11));
    }
}
