//! Mixed job workloads for the multi-tenant service layer.
//!
//! A realistic job service does not see one topology: it sees a stream of
//! heterogeneous submissions — mostly well-behaved pipeline and SP/CS4
//! templates, sprinkled with graphs it must *reject* (no efficient plan
//! exists and the exhaustive fallback would blow its cycle budget) and
//! graphs that *deadlock* because the client disabled avoidance on an
//! under-provisioned topology.  [`job_mix`] generates exactly that traffic,
//! deterministically per seed, as engine-agnostic [`JobShape`]s: a graph,
//! per-node periodic-filter periods (the canonical filter convention of
//! [`crate::generators::periodic_filtered_topology`]), an input count and
//! an avoidance flag.  The service crate converts shapes into its `JobSpec`
//! submissions; tests replay the same shapes through the reference
//! [`fila_runtime::Simulator`] to pin per-job verdicts.

use fila_avoidance::{Algorithm, Planner};
use fila_graph::{Graph, GraphBuilder};
use fila_runtime::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::generators::{
    periodic_filtered_topology, pipeline_graph, random_ladder, random_sp_dag, GeneratorConfig,
    LadderConfig,
};

/// What a generated job is expected to exercise in the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// A linear pipeline with interior filtering: cannot deadlock, runs
    /// without a plan.
    Pipeline,
    /// A random series-parallel DAG with fork filtering, protected by a
    /// plan.
    SpDag,
    /// A random CS4 ladder with fork filtering, protected by a plan.
    Ladder,
    /// A split/join shape whose declared spec lets *interior* nodes
    /// filter, submitted with a **Propagation** request: admission
    /// certification must reject the Propagation plan (the literal trigger
    /// cannot protect interior filtering) and fall back to
    /// Non-Propagation — the service's fallback chain, exercised end to
    /// end by realistic traffic.
    InteriorFiltered,
    /// A dense general graph whose exhaustive planning exceeds any sane
    /// cycle budget: the service must reject it as unplannable.
    Unplannable,
    /// An under-provisioned filtering topology submitted with avoidance
    /// disabled: admitted, then deadlocks at runtime.
    Deadlocker,
    /// A job whose *executed* filter profile is stricter than its declared
    /// one ([`JobShape::actual_periods`]): admitted and certified for the
    /// declaration, it drifts at runtime and exercises the service's drift
    /// detector and response ladder.  Planned drifters (SP DAG / ladder
    /// conversions) re-certify their observed profile and hot-swap; the
    /// bare dense drifters ([`dense_drifter`]) are unplannable at any
    /// budget and land in the ladder's cancel rung.
    Drifting,
}

/// One generated job: a topology shape plus its runtime configuration.
#[derive(Debug, Clone)]
pub struct JobShape {
    /// Human-readable label (kind + index), used in reports and the CLI.
    pub label: String,
    /// What the shape exercises.
    pub kind: JobKind,
    /// The application graph.
    pub graph: Graph,
    /// Per-node filter periods aligned with node ids (1 = broadcast).
    pub periods: Vec<u64>,
    /// Input sequence numbers offered at every source.
    pub inputs: u64,
    /// The protocol the submission requests a plan for, or `None` to run
    /// bare (deadlocks become runtime verdicts).  The service may still
    /// *execute* a different protocol when certification falls back.
    pub avoidance: Option<Algorithm>,
    /// Filter-drift injection: when set, the job *executes* these per-node
    /// periods while declaring (and being certified for) `periods`.  Only
    /// [`JobKind::Drifting`] shapes set this, and always strictly heavier
    /// filtering than declared (drift in the dangerous direction).
    pub actual_periods: Option<Vec<u64>>,
    /// Tenant tag for the service's per-tenant metrics: one fixed tenant
    /// per kind (a template is "one client's pipeline"), derived without
    /// consuming the generator RNG so existing mixes stay bit-for-bit
    /// identical per seed.
    pub tenant: &'static str,
}

impl JobKind {
    /// The fixed tenant tag of every shape of this kind (see
    /// [`JobShape::tenant`]).
    pub fn tenant(self) -> &'static str {
        match self {
            JobKind::Pipeline => "pipelines-inc",
            JobKind::SpDag => "spdag-co",
            JobKind::Ladder => "ladder-corp",
            JobKind::InteriorFiltered => "interior-labs",
            JobKind::Unplannable => "dense-org",
            JobKind::Deadlocker => "wedge-co",
            JobKind::Drifting => "drift-lab",
        }
    }
}

impl JobShape {
    /// Builds the *declared* topology: the canonical periodic filter of
    /// [`periodic_filtered_topology`] with this shape's per-node periods.
    pub fn topology(&self) -> Topology {
        let periods = self.periods.clone();
        periodic_filtered_topology(&self.graph, move |n| periods[n.index()])
    }

    /// Builds the topology the job actually executes: the declared one
    /// unless this is a drifting shape, in which case
    /// [`JobShape::actual_periods`] substitutes.
    pub fn executed_topology(&self) -> Topology {
        let periods = self.actual_periods.as_ref().unwrap_or(&self.periods).clone();
        periodic_filtered_topology(&self.graph, move |n| periods[n.index()])
    }
}

/// A dense two-terminal general graph (complete bipartite core `K(3, m)`):
/// neither SP nor CS4, with an undirected-cycle count that grows
/// combinatorially in `m` — the canonical "reject me" submission for any
/// bounded exhaustive planner.
pub fn dense_unplannable(m: usize) -> Graph {
    dense_bipartite(m, 2)
}

/// The plannability-hostile shape of [`dense_unplannable`] with buffers
/// deep enough that a *bare* filtered run never builds back-pressure: with
/// `capacity ≥ inputs` nothing ever blocks on a full edge, so the run
/// completes even though the fork's staggered filtering starves every join
/// until end-of-stream.  This is the deterministic cancel-rung drifter of
/// [`job_mix_with_drift`]: it runs (and drifts) long enough to be
/// detected, but no cycle budget — escalated or not — can plan it.
pub fn dense_drifter(m: usize, capacity: u64) -> Graph {
    dense_bipartite(m, capacity.max(2))
}

fn dense_bipartite(m: usize, capacity: u64) -> Graph {
    let m = m.max(2);
    let mut b = GraphBuilder::new().default_capacity(capacity);
    for l in 0..3 {
        b.edge("x", &format!("l{l}")).unwrap();
    }
    for r in 0..m {
        let right = format!("r{r}");
        for l in 0..3 {
            b.edge(&format!("l{l}"), &right).unwrap();
        }
        b.edge(&right, "y").unwrap();
    }
    b.build().expect("dense bipartite graph is a valid two-terminal DAG")
}

/// An under-provisioned shape that *provably* deadlocks without a plan: a
/// random SP DAG with tight buffers whose every node filters with the
/// given `period` (interior filtering starves join nodes on cycles faster
/// than the narrow buffers can absorb; a Non-Propagation plan rescues it).
///
/// Not every random SP spec contains a cycle (an all-series draw is just a
/// pipeline), so candidate seeds are screened with the reference
/// [`fila_runtime::Simulator`] until one *wedges bare* — generation stays
/// deterministic per seed and the returned shape carries a guaranteed
/// deadlock verdict for `inputs` ≥ 256.
///
/// There is deliberately **no** "a plan rescues it" screen any more.  The
/// pre-E17 generator had one, because on a few capacity-1-heavy draws with
/// odd periods the paper's `L/h` Non-Propagation intervals did not survive
/// aggressive interior filtering (the SP sibling of the ladder bug).  That
/// screen was bug compensation: with the filtering-robust bound, *every*
/// deadlocking draw is rescued by its plan, and
/// `deadlocker_actually_deadlocks_and_plan_rescues_it` pins exactly that as
/// a regression test instead of quietly generating around it.
pub fn underprovisioned_sp(seed: u64, period: u64) -> (Graph, Vec<u64>) {
    let period = period.max(2);
    for attempt in 0..64u64 {
        let (g, _) = random_sp_dag(&GeneratorConfig {
            target_edges: 12,
            max_fanout: 3,
            capacity_range: (1, 2),
            seed: seed.wrapping_add(attempt.wrapping_mul(0x9E37_79B9)),
        });
        // A tree-shaped draw cannot deadlock; skip it without simulating.
        if g.edge_count() < g.node_count() {
            continue;
        }
        let topo = periodic_filtered_topology(&g, |_| period);
        if fila_runtime::Simulator::new(&topo).run(256).deadlocked {
            let periods = g.node_ids().map(|_| period).collect();
            return (g, periods);
        }
    }
    unreachable!("no deadlocking SP draw in 64 attempts (seed {seed}, period {period})")
}

/// A split/join shape plus a filter profile that exercises the service's
/// certification **fallback chain**: interior recognisers filter while the
/// fork broadcasts, so the literal-trigger Propagation plan cannot protect
/// it (no dummy is ever originated for the propagation rule to forward) —
/// certification rejects Propagation and falls back to Non-Propagation.
///
/// Candidate draws are screened with `Planner::certify` until one actually
/// takes the fallback (deterministic per seed): the Propagation candidate
/// fails certification and a later candidate passes.
pub fn interior_filtered_fallback(seed: u64) -> (Graph, Vec<u64>) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1F17);
    for _ in 0..64 {
        // A k-way split/join with randomised capacities: every branch is an
        // interior recogniser between fork and join.
        let branches = rng.gen_range(2..=4usize);
        let mut b = GraphBuilder::new();
        for i in 0..branches {
            let mid = format!("rec{i}");
            b.edge_with_capacity("split", &mid, rng.gen_range(2..=6)).unwrap();
            b.edge_with_capacity(&mid, "join", rng.gen_range(2..=6)).unwrap();
        }
        let g = b.build().expect("split/join is a valid two-terminal DAG");
        let mut periods = vec![1u64; g.node_count()];
        for i in 0..branches {
            let rec = g.node_by_name(&format!("rec{i}")).unwrap();
            periods[rec.index()] = rng.gen_range(2..=6);
        }
        match Planner::new(&g).algorithm(Algorithm::Propagation).certify(&periods) {
            Ok(certified) if certified.fell_back => return (g, periods),
            _ => continue,
        }
    }
    unreachable!("no fallback-exercising split/join draw in 64 attempts (seed {seed})")
}

/// Periods vector filtering only at the (unique) source with `period`;
/// every other node broadcasts.
fn fork_periods(g: &Graph, period: u64) -> Vec<u64> {
    let source = g.single_source().expect("generated shapes are two-terminal");
    g.node_ids()
        .map(|n| if n == source { period } else { 1 })
        .collect()
}

/// Shape templates per kind: a storm of hundreds of jobs draws from this
/// many distinct graphs of each kind, mirroring production traffic where a
/// handful of client pipeline *templates* account for nearly all
/// submissions (and letting the service's structural plan cache actually
/// amortise — every repeat of a template is a cache hit).
pub const TEMPLATES_PER_KIND: usize = 3;

/// Generates `count` mixed jobs, deterministically for a given `seed`.
///
/// Roughly 1 in 12 jobs is [`JobKind::Unplannable`], 1 in 12 a
/// [`JobKind::Deadlocker`] and 1 in 12 an [`JobKind::InteriorFiltered`]
/// fallback-exerciser; the rest rotate over pipelines, SP DAGs and
/// ladders.  Each kind cycles through [`TEMPLATES_PER_KIND`] fixed shape
/// templates (graph + capacities + filter periods derived from a
/// template-local RNG) while the per-job input count still varies, so
/// repeated submissions of one template are the plan cache's hit case and
/// distinct templates its misses.
pub fn job_mix(seed: u64, count: usize) -> Vec<JobShape> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Build each template once up front and clone per job — the
    // deadlocker templates in particular run a simulator screening loop
    // that must not repeat for every one of hundreds of submissions.
    let template = |salt: u64, tmpl: usize| {
        StdRng::seed_from_u64(seed ^ (salt << 32) ^ tmpl as u64)
    };
    let unplannables: Vec<Graph> = (0..TEMPLATES_PER_KIND)
        .map(|t| dense_unplannable(8 + t))
        .collect();
    let deadlockers: Vec<(Graph, Vec<u64>)> = (0..TEMPLATES_PER_KIND)
        .map(|t| {
            let mut trng = template(0xDE, t);
            underprovisioned_sp(trng.gen_range(0..=u64::MAX), trng.gen_range(2..=4))
        })
        .collect();
    let pipelines: Vec<(Graph, Vec<u64>)> = (0..TEMPLATES_PER_KIND)
        .map(|t| {
            let mut trng = template(0x71, t);
            let n = trng.gen_range(3..=12);
            let cap = trng.gen_range(2..=6);
            let g = pipeline_graph(n, cap, false);
            let period = trng.gen_range(1..=4);
            // Interior filtering is safe on a pipeline (no undirected
            // cycles), so no plan is needed.
            let periods = g.node_ids().map(|_| period).collect();
            (g, periods)
        })
        .collect();
    let spdags: Vec<(Graph, Vec<u64>)> = (0..TEMPLATES_PER_KIND)
        .map(|t| {
            let mut trng = template(0x5D, t);
            let (g, _) = random_sp_dag(&GeneratorConfig {
                target_edges: trng.gen_range(8..=20),
                max_fanout: 3,
                capacity_range: (2, 6),
                seed: trng.gen_range(0..=u64::MAX),
            });
            let periods = fork_periods(&g, trng.gen_range(2..=6));
            (g, periods)
        })
        .collect();
    let ladders: Vec<(Graph, Vec<u64>)> = (0..TEMPLATES_PER_KIND)
        .map(|t| {
            let mut trng = template(0x1A, t);
            let g = random_ladder(&LadderConfig {
                rungs: trng.gen_range(2..=6),
                capacity_range: (2, 6),
                reverse_probability: 0.3,
                seed: trng.gen_range(0..=u64::MAX),
            });
            let periods = fork_periods(&g, trng.gen_range(2..=6));
            (g, periods)
        })
        .collect();
    let interiors: Vec<(Graph, Vec<u64>)> = (0..TEMPLATES_PER_KIND)
        .map(|t| {
            let mut trng = template(0xFA, t);
            interior_filtered_fallback(trng.gen_range(0..=u64::MAX))
        })
        .collect();
    (0..count)
        .map(|i| {
            // Per-job variation (advances for every job so the stream is
            // not template-periodic in its inputs).
            let inputs = rng.gen_range(64..=256);
            let tmpl = (i / 12) % TEMPLATES_PER_KIND;
            let roll = i % 12;
            match roll {
                5 => {
                    let g = unplannables[tmpl].clone();
                    let periods = fork_periods(&g, 2);
                    JobShape {
                        label: format!("unplannable-{i}"),
                        kind: JobKind::Unplannable,
                        tenant: JobKind::Unplannable.tenant(),
                        periods,
                        inputs: 64,
                        avoidance: Some(Algorithm::NonPropagation),
                        actual_periods: None,
                        graph: g,
                    }
                }
                8 => {
                    let (g, periods) = interiors[tmpl].clone();
                    JobShape {
                        label: format!("interior-{i}"),
                        kind: JobKind::InteriorFiltered,
                        tenant: JobKind::InteriorFiltered.tenant(),
                        periods,
                        inputs,
                        avoidance: Some(Algorithm::Propagation),
                        actual_periods: None,
                        graph: g,
                    }
                }
                11 => {
                    let (g, periods) = deadlockers[tmpl].clone();
                    JobShape {
                        label: format!("deadlocker-{i}"),
                        kind: JobKind::Deadlocker,
                        tenant: JobKind::Deadlocker.tenant(),
                        periods,
                        inputs: 256,
                        avoidance: None,
                        actual_periods: None,
                        graph: g,
                    }
                }
                r if r % 3 == 0 => {
                    let (g, periods) = pipelines[tmpl].clone();
                    JobShape {
                        label: format!("pipeline-{i}"),
                        kind: JobKind::Pipeline,
                        tenant: JobKind::Pipeline.tenant(),
                        periods,
                        inputs,
                        avoidance: None,
                        actual_periods: None,
                        graph: g,
                    }
                }
                r if r % 3 == 1 => {
                    let (g, periods) = spdags[tmpl].clone();
                    JobShape {
                        label: format!("spdag-{i}"),
                        kind: JobKind::SpDag,
                        tenant: JobKind::SpDag.tenant(),
                        periods,
                        inputs,
                        avoidance: Some(Algorithm::NonPropagation),
                        actual_periods: None,
                        graph: g,
                    }
                }
                _ => {
                    let (g, periods) = ladders[tmpl].clone();
                    JobShape {
                        label: format!("ladder-{i}"),
                        kind: JobKind::Ladder,
                        tenant: JobKind::Ladder.tenant(),
                        periods,
                        inputs,
                        avoidance: Some(Algorithm::NonPropagation),
                        actual_periods: None,
                        graph: g,
                    }
                }
            }
        })
        .collect()
}

/// [`job_mix`] with **filter-drift fault injection**: roughly `drift_rate`
/// of the jobs (deterministically per seed, independent of the base mix's
/// RNG stream) are converted to [`JobKind::Drifting`] shapes whose
/// executed profile filters more heavily than the declared one:
///
/// - Planned SP-DAG / ladder jobs keep their declaration but *execute*
///   with every filtering period doubled — the hot-swap path: their
///   observed profile still certifies under Non-Propagation, so the
///   service's response ladder migrates them live onto a new plan.  Their
///   input counts are raised so detection reliably beats completion (a
///   Non-Propagation plan keeps a drifting job running, never wedged).
/// - Pipeline jobs are *replaced* by bare [`dense_drifter`] submissions
///   (declared broadcast, executed fork-filtering, buffers ≥ inputs so the
///   bare run never deadlocks): detected drifters whose graph no cycle
///   budget can plan — the deterministic cancel rung.
///
/// `drift_rate ≤ 0` returns the base mix unchanged (bit-for-bit), so every
/// pinned [`job_mix`] expectation holds for the zero-rate call.
pub fn job_mix_with_drift(seed: u64, count: usize, drift_rate: f64) -> Vec<JobShape> {
    let mut shapes = job_mix(seed, count);
    if drift_rate <= 0.0 {
        return shapes;
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD21F_7ED0);
    // One dense cancel-path template per mix, built lazily: inputs stay at
    // or below the edge capacity so the bare filtered run cannot wedge.
    const DENSE_INPUTS: u64 = 4096;
    let mut dense: Option<Graph> = None;
    for (i, shape) in shapes.iter_mut().enumerate() {
        if !rng.gen_bool(drift_rate.clamp(0.0, 1.0)) {
            continue;
        }
        match shape.kind {
            JobKind::SpDag | JobKind::Ladder => {
                let actual = shape
                    .periods
                    .iter()
                    .map(|&p| if p > 1 { p * 2 } else { 1 })
                    .collect();
                shape.label = format!("drifting-{i}");
                shape.kind = JobKind::Drifting;
                shape.tenant = JobKind::Drifting.tenant();
                shape.actual_periods = Some(actual);
                shape.inputs = shape.inputs.max(4096);
            }
            JobKind::Pipeline => {
                let g = dense
                    .get_or_insert_with(|| dense_drifter(16, DENSE_INPUTS))
                    .clone();
                let declared = vec![1; g.node_count()];
                let actual = fork_periods(&g, 2);
                *shape = JobShape {
                    label: format!("drifting-dense-{i}"),
                    kind: JobKind::Drifting,
                    tenant: JobKind::Drifting.tenant(),
                    periods: declared,
                    inputs: DENSE_INPUTS,
                    avoidance: None,
                    actual_periods: Some(actual),
                    graph: g,
                };
            }
            _ => {}
        }
    }
    shapes
}

#[cfg(test)]
mod tests {
    use super::*;
    use fila_avoidance::{classify, GraphClass};
    use fila_runtime::Simulator;

    #[test]
    fn mix_is_deterministic_and_covers_all_kinds() {
        let a = job_mix(42, 48);
        let b = job_mix(42, 48);
        assert_eq!(a.len(), 48);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.graph, y.graph, "{}", x.label);
            assert_eq!(x.periods, y.periods);
            assert_eq!(x.inputs, y.inputs);
            assert_eq!(x.avoidance, y.avoidance);
        }
        for kind in [
            JobKind::Pipeline,
            JobKind::SpDag,
            JobKind::Ladder,
            JobKind::InteriorFiltered,
            JobKind::Unplannable,
            JobKind::Deadlocker,
        ] {
            assert!(a.iter().any(|s| s.kind == kind), "{kind:?} missing");
        }
    }

    #[test]
    fn interior_filtered_shapes_exercise_the_fallback_chain() {
        let mut seen = 0;
        for shape in job_mix(11, 36) {
            if shape.kind != JobKind::InteriorFiltered {
                continue;
            }
            seen += 1;
            assert_eq!(shape.avoidance, Some(Algorithm::Propagation), "{}", shape.label);
            let certified = Planner::new(&shape.graph)
                .algorithm(Algorithm::Propagation)
                .certify(&shape.periods)
                .unwrap_or_else(|e| panic!("{}: {e}", shape.label));
            assert!(certified.fell_back, "{}", shape.label);
            assert_eq!(certified.used, Algorithm::NonPropagation, "{}", shape.label);
            // And the fallback plan really completes the declared job.
            let report = Simulator::new(&shape.topology())
                .with_plan(&certified.plan)
                .run(shape.inputs);
            assert!(report.completed, "{}: {report:?}", shape.label);
        }
        assert!(seen >= 3, "mix of 36 should contain ≥ 3 interior-filtered jobs, got {seen}");
    }

    #[test]
    fn dense_unplannable_exceeds_a_modest_cycle_budget() {
        let g = dense_unplannable(8);
        assert_eq!(classify(&g).unwrap(), GraphClass::General);
        assert!(Planner::new(&g).cycle_bound(512).plan().is_err());
    }

    #[test]
    fn deadlocker_actually_deadlocks_and_plan_rescues_it() {
        // Every Deadlocker shape in a mix must truly deadlock unprotected,
        // and a Non-Propagation plan must rescue the same topology.  The
        // generator no longer screens for rescuability (that screen was
        // compensation for the pre-E17 interior-filtering unsoundness), so
        // this assertion is the regression test for the fixed bound: any
        // deadlocking under-provisioned draw a plan cannot rescue fails
        // here.
        let mut seen = 0;
        for shape in job_mix(3, 48) {
            if shape.kind != JobKind::Deadlocker {
                continue;
            }
            seen += 1;
            let report = Simulator::new(&shape.topology()).run(shape.inputs);
            assert!(report.deadlocked, "{}: {report:?}", shape.label);
            let plan = Planner::new(&shape.graph)
                .algorithm(Algorithm::NonPropagation)
                .plan()
                .unwrap();
            let rescued = Simulator::new(&shape.topology())
                .with_plan(&plan)
                .run(shape.inputs);
            assert!(rescued.completed, "{}: {rescued:?}", shape.label);
        }
        assert!(seen >= 4, "mix of 48 should contain ≥ 4 deadlockers, got {seen}");
    }

    #[test]
    fn planned_shapes_complete_under_nonpropagation() {
        // Every SP-DAG / ladder shape in a small mix must complete when
        // given its Non-Propagation plan (fork-only filtering is protected
        // on every graph class).
        for shape in job_mix(7, 24) {
            if !matches!(shape.kind, JobKind::SpDag | JobKind::Ladder) {
                continue;
            }
            let plan = Planner::new(&shape.graph)
                .algorithm(Algorithm::NonPropagation)
                .plan()
                .unwrap_or_else(|e| panic!("{}: {e}", shape.label));
            let report = Simulator::new(&shape.topology())
                .with_plan(&plan)
                .run(shape.inputs);
            assert!(report.completed, "{}: {report:?}", shape.label);
        }
    }

    #[test]
    fn zero_drift_rate_is_the_base_mix_bit_for_bit() {
        let base = job_mix(42, 36);
        let zero = job_mix_with_drift(42, 36, 0.0);
        assert_eq!(base.len(), zero.len());
        for (x, y) in base.iter().zip(&zero) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.graph, y.graph);
            assert_eq!(x.periods, y.periods);
            assert_eq!(x.actual_periods, y.actual_periods);
        }
    }

    #[test]
    fn drift_mix_injects_both_ladder_paths() {
        let shapes = job_mix_with_drift(42, 72, 0.9);
        let drifters: Vec<_> = shapes.iter().filter(|s| s.kind == JobKind::Drifting).collect();
        // Hot-swap path: planned drifters whose executed profile strictly
        // tightens the declared one.
        let planned: Vec<_> = drifters.iter().filter(|s| s.avoidance.is_some()).collect();
        assert!(!planned.is_empty(), "no planned drifters at rate 0.9");
        for s in &planned {
            let actual = s.actual_periods.as_ref().expect("drifters carry an executed profile");
            assert!(s.periods.iter().zip(actual).all(|(d, a)| a >= d));
            assert!(s.periods.iter().zip(actual).any(|(d, a)| a > d), "{}", s.label);
            assert!(s.inputs >= 4096, "{}: detection must beat completion", s.label);
        }
        // Cancel path: bare dense drifters no cycle budget can plan, with
        // buffers deep enough that the bare run cannot wedge.
        let dense: Vec<_> = drifters.iter().filter(|s| s.avoidance.is_none()).collect();
        assert!(!dense.is_empty(), "no bare dense drifters at rate 0.9");
        for s in &dense {
            assert!(Planner::new(&s.graph).cycle_bound(4096).plan().is_err(), "{}", s.label);
            assert!(s.graph.edge_ids().all(|e| s.graph.capacity(e) >= s.inputs), "{}", s.label);
        }
        // Non-convertible kinds survive untouched.
        for kind in [JobKind::Unplannable, JobKind::Deadlocker, JobKind::InteriorFiltered] {
            assert!(shapes.iter().any(|s| s.kind == kind), "{kind:?} missing");
        }
    }

    #[test]
    fn drifting_shapes_run_safely_and_detectably() {
        // The two load-bearing runtime claims behind the response ladder:
        // a planned drifter never wedges under its (declared-profile) plan,
        // and a bare dense drifter completes without any plan at all — so
        // in both cases detection only has to beat *completion*, never a
        // deadlock.  Checked on the reference simulator with the executed
        // (drifted) topology but modest inputs to keep the test quick.
        let shapes = job_mix_with_drift(5, 48, 0.9);
        let mut planned = 0;
        let mut dense = 0;
        for shape in shapes.iter().filter(|s| s.kind == JobKind::Drifting) {
            match shape.avoidance {
                Some(algorithm) => {
                    planned += 1;
                    let plan = Planner::new(&shape.graph).algorithm(algorithm).plan().unwrap();
                    let report = Simulator::new(&shape.executed_topology())
                        .with_plan(&plan)
                        .run(512);
                    assert!(report.completed, "{}: {report:?}", shape.label);
                }
                None => {
                    if dense > 0 {
                        continue; // every dense drifter clones one template
                    }
                    dense += 1;
                    let report = Simulator::new(&shape.executed_topology()).run(shape.inputs);
                    assert!(report.completed, "{}: {report:?}", shape.label);
                }
            }
        }
        assert!(planned >= 1 && dense >= 1, "planned {planned}, dense {dense}");
    }

    #[test]
    fn pipelines_complete_without_plans() {
        for shape in job_mix(9, 12) {
            if shape.kind != JobKind::Pipeline {
                continue;
            }
            let report = Simulator::new(&shape.topology()).run(shape.inputs);
            assert!(report.completed, "{}: {report:?}", shape.label);
        }
    }
}
