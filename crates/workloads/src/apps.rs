//! Runnable application topologies modelled on the paper's motivating
//! examples (§I and the case studies of reference \[14\]).

use fila_graph::Graph;
use fila_runtime::filters::Predicate;
use fila_runtime::{Bernoulli, Broadcast, ModuloFilter, Topology};

use crate::figures;

/// The object-recognition application of Fig. 1: a segmentation split node
/// forwards each video frame to two recognisers, each recogniser reports a
/// success message only for the frames it recognises, and a join node merges
/// the reports.
///
/// * `keep_left` / `keep_right` — recognition probabilities of the two
///   recognisers (their filtering rates are `1 - keep`);
/// * `buffer` — channel capacity;
/// * `seed` — RNG seed for the recognisers.
pub fn object_recognition(buffer: u64, keep_left: f64, keep_right: f64, seed: u64) -> (Graph, Topology) {
    let g = figures::fig1_split_join(buffer);
    let split = g.node_by_name("A").expect("split node");
    let left = g.node_by_name("B").expect("left recogniser");
    let right = g.node_by_name("C").expect("right recogniser");
    let topo = Topology::from_graph(&g)
        .with(split, || Broadcast::new(2))
        .with(left, move || Bernoulli::new(1, keep_left, seed))
        .with(right, move || Bernoulli::new(1, keep_right, seed.wrapping_add(1)));
    (g, topo)
}

/// A biosequence-search style pipeline in the Fig. 2 shape: the front end
/// streams every read to the alignment stage (`A -> B -> C`) but forwards a
/// read's metadata directly to the aggregator (`A -> C`) only for the rare
/// reads flagged by its cheap pre-filter — exactly the filtering-at-the-fork
/// pattern that deadlocks without avoidance.
///
/// * `hit_period` — one read in `hit_period` is flagged by the pre-filter.
pub fn biosequence_pipeline(buffer: u64, hit_period: u64) -> (Graph, Topology) {
    let g = figures::fig2_triangle(buffer);
    let frontend = g.node_by_name("A").expect("front end");
    let aligner = g.node_by_name("B").expect("aligner");
    let period = hit_period.max(1);
    let topo = Topology::from_graph(&g)
        // out_edges(A) = [A->B, A->C]: every read goes to the aligner, only
        // flagged reads go straight to the aggregator.
        .with(frontend, move || {
            Predicate::new(2, move |seq, out| out == 0 || seq % period == 0)
        })
        .with(aligner, || Broadcast::new(1));
    (g, topo)
}

/// A cross-coupled monitoring pipeline on the Fig. 4 (left) CS4 topology:
/// the primary analysis path `X -> a -> Y` occasionally hands work to the
/// secondary path via the cross channel `a -> b`, and the secondary path
/// reports only its alarms.
pub fn crosslinked_monitor(buffer: u64, alarm_period: u64) -> (Graph, Topology) {
    let g = figures::fig4_crosslink(buffer);
    let src = g.node_by_name("X").expect("source");
    let primary = g.node_by_name("a").expect("primary");
    let secondary = g.node_by_name("b").expect("secondary");
    let period = alarm_period.max(1);
    let topo = Topology::from_graph(&g)
        .with(src, || Broadcast::new(2))
        // out_edges(a) = [a->Y, a->b]: always report downstream, escalate to
        // the secondary path once per `period`.
        .with(primary, move || {
            Predicate::new(2, move |seq, out| out == 0 || seq % period == 0)
        })
        // The secondary path reports only every fourth escalation.
        .with(secondary, || ModuloFilter::new(1, 4, 0));
    (g, topo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fila_avoidance::{Algorithm, Planner};
    use fila_runtime::Simulator;

    #[test]
    fn object_recognition_runs_safely_with_a_plan() {
        let (g, topo) = object_recognition(4, 0.3, 0.1, 7);
        let plan = Planner::new(&g).algorithm(Algorithm::NonPropagation).plan().unwrap();
        let report = Simulator::new(&topo).with_plan(&plan).run(5_000);
        assert!(report.completed, "{report:?}");
        assert!(report.sink_firings > 0);
        // Heavy filtering means the join sees far fewer frames than offered.
        assert!(report.sink_firings < 5_000);
    }

    #[test]
    fn object_recognition_deadlocks_without_a_plan() {
        let (_, topo) = object_recognition(4, 0.05, 0.05, 11);
        let report = Simulator::new(&topo).run(5_000);
        assert!(report.deadlocked, "{report:?}");
    }

    #[test]
    fn biosequence_pipeline_completes_with_either_protocol() {
        let (g, topo) = biosequence_pipeline(8, 100);
        for algorithm in [Algorithm::Propagation, Algorithm::NonPropagation] {
            let plan = Planner::new(&g).algorithm(algorithm).plan().unwrap();
            let report = Simulator::new(&topo).with_plan(&plan).run(10_000);
            assert!(report.completed, "{algorithm}: {report:?}");
        }
        let unprotected = Simulator::new(&topo).run(10_000);
        assert!(unprotected.deadlocked);
    }

    #[test]
    fn crosslinked_monitor_runs_on_the_cs4_plan() {
        let (g, topo) = crosslinked_monitor(4, 16);
        let plan = Planner::new(&g).algorithm(Algorithm::NonPropagation).plan().unwrap();
        let report = Simulator::new(&topo).with_plan(&plan).run(5_000);
        assert!(report.completed, "{report:?}");
        assert!(report.dummy_messages > 0);
    }
}
