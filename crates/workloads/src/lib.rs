//! # fila-workloads
//!
//! Workloads for exercising and evaluating the deadlock-avoidance stack:
//!
//! * [`figures`] — the exact graphs drawn in the paper (Figs. 1–6), with the
//!   buffer capacities used in the worked examples;
//! * [`generators`] — seeded random topology generators (SP-DAGs by
//!   recursive composition, SP-ladders with a configurable rung count,
//!   parallel-chain stress graphs for the exponential baseline, and layered
//!   general DAGs);
//! * [`apps`] — runnable application topologies modelled on the paper's
//!   motivating examples (an object-recognition split/join with data
//!   dependent recognisers and a biosequence filtering pipeline), expressed
//!   as [`fila_runtime::Topology`] values ready to execute;
//! * [`jobs`] — mixed job-service workloads: streams of heterogeneous
//!   submissions (pipelines, SP DAGs, ladders, unplannable and
//!   deliberately deadlocking shapes) for exercising the multi-tenant
//!   service layer.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod apps;
pub mod figures;
pub mod generators;
pub mod jobs;

pub use generators::{GeneratorConfig, LadderConfig};
pub use jobs::{job_mix, job_mix_with_drift, JobKind, JobShape};
