//! The exact graphs of the paper's figures.
//!
//! Node names follow the paper's labels so that tests and examples can refer
//! to edges by name (for example `g.edge_by_names("a", "b")` on the Fig. 3
//! cycle).

use fila_graph::{Graph, GraphBuilder};

/// Fig. 1: the simple split/join topology `A -> {B, C} -> D`.
///
/// Buffer capacities are uniform (`buffer` messages per channel).
pub fn fig1_split_join(buffer: u64) -> Graph {
    let mut b = GraphBuilder::new().default_capacity(buffer);
    b.edge("A", "B").unwrap();
    b.edge("A", "C").unwrap();
    b.edge("B", "D").unwrap();
    b.edge("C", "D").unwrap();
    b.build().expect("fig1 is a valid two-terminal DAG")
}

/// Fig. 2: the three-node deadlock example `A -> B -> C` with the bypass
/// channel `A -> C`.
pub fn fig2_triangle(buffer: u64) -> Graph {
    let mut b = GraphBuilder::new().default_capacity(buffer);
    b.edge("A", "B").unwrap();
    b.edge("B", "C").unwrap();
    b.edge("A", "C").unwrap();
    b.build().expect("fig2 is a valid two-terminal DAG")
}

/// Fig. 3: the six-node cycle used to illustrate interval computation, with
/// the buffer capacities printed in the figure (`ab=2, be=5, ef=1, ac=3,
/// cd=1, df=2`).
///
/// The paper's worked results: Propagation `[ab] = 6`, `[ac] = 8`, all other
/// edges unbounded; Non-Propagation `[ab] = [be] = [ef] = 2` and
/// `[ac] = [cd] = [df] = 3` (rounded up).
pub fn fig3_cycle() -> Graph {
    let mut b = GraphBuilder::new();
    b.edge_with_capacity("a", "b", 2).unwrap();
    b.edge_with_capacity("b", "e", 5).unwrap();
    b.edge_with_capacity("e", "f", 1).unwrap();
    b.edge_with_capacity("a", "c", 3).unwrap();
    b.edge_with_capacity("c", "d", 1).unwrap();
    b.edge_with_capacity("d", "f", 2).unwrap();
    b.build().expect("fig3 is a valid two-terminal DAG")
}

/// Fig. 4 (left): the simplest two-terminal DAG that is not series-parallel
/// — a split/join `X -> {a, b} -> Y` augmented with the cross channel
/// `a -> b`.  It is CS4.
pub fn fig4_crosslink(buffer: u64) -> Graph {
    let mut b = GraphBuilder::new().default_capacity(buffer);
    b.edge("X", "a").unwrap();
    b.edge("X", "b").unwrap();
    b.edge("a", "Y").unwrap();
    b.edge("b", "Y").unwrap();
    b.edge("a", "b").unwrap();
    b.build().expect("fig4 left is a valid two-terminal DAG")
}

/// Fig. 4 (right): the "butterfly" used for FFT-style decompositions.  Its
/// cycle `a-c-b-d` has two sources and two sinks, so the graph is not CS4.
pub fn fig4_butterfly(buffer: u64) -> Graph {
    let mut b = GraphBuilder::new().default_capacity(buffer);
    for (s, t) in [
        ("X", "a"), ("X", "b"),
        ("a", "c"), ("a", "d"), ("b", "c"), ("b", "d"),
        ("c", "Y"), ("d", "Y"),
    ] {
        b.edge(s, t).unwrap();
    }
    b.build().expect("butterfly is a valid two-terminal DAG")
}

/// The conclusion's CS4 rewrite of the butterfly: the direct channel
/// `b -> c` is re-routed through `d` (data from `b` to `c` takes an extra
/// hop), yielding an SP-ladder with cross-links `a -> d` and `d -> c`.
pub fn butterfly_rewritten(buffer: u64) -> Graph {
    let mut b = GraphBuilder::new().default_capacity(buffer);
    for (s, t) in [
        ("X", "a"), ("X", "b"),
        ("a", "c"), ("a", "d"), ("b", "d"),
        ("d", "c"),
        ("c", "Y"), ("d", "Y"),
    ] {
        b.edge(s, t).unwrap();
    }
    b.build().expect("rewritten butterfly is a valid two-terminal DAG")
}

/// Fig. 5: the thirteen-node SP-ladder whose decomposition is drawn in the
/// paper (outer cycle `b-a-f-j-m-k` after contraction, with the diamond
/// `c/d/e` and the chord structure `g/h/i/l` absorbed into SP constituents).
pub fn fig5_ladder(buffer: u64) -> Graph {
    let mut b = GraphBuilder::new().default_capacity(buffer);
    // Left outer path a -> b -> ... -> m and right outer path a -> f -> j -> m,
    // following the figure's lettering: `a` is the source, `m` the sink.
    // left rail with a decorated diamond between b and k.
    b.edge("a", "b").unwrap();
    b.edge("b", "c").unwrap();
    b.edge("c", "d").unwrap();
    b.edge("c", "e").unwrap();
    b.edge("d", "k").unwrap();
    b.edge("e", "k").unwrap();
    b.edge("k", "m").unwrap();
    // right rail a -> f -> g/h -> i -> j -> m (an SP segment between f and j).
    b.edge("a", "f").unwrap();
    b.edge("f", "g").unwrap();
    b.edge("f", "h").unwrap();
    b.edge("g", "i").unwrap();
    b.edge("h", "i").unwrap();
    b.edge("i", "j").unwrap();
    b.edge("j", "m").unwrap();
    // cross-links: b -> f (upper rung) and j -> k (lower rung, right-to-left),
    // plus the mid-ladder link l hanging between the rails.
    b.edge("b", "f").unwrap();
    b.edge("j", "l").unwrap();
    b.edge("l", "k").unwrap();
    b.build().expect("fig5 is a valid two-terminal DAG")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fila_avoidance::{classify, GraphClass};
    use fila_avoidance::cs4::is_cs4_by_cycle_enumeration;
    use fila_spdag::recognize;

    #[test]
    fn fig1_is_series_parallel() {
        let g = fig1_split_join(4);
        assert_eq!(classify(&g).unwrap(), GraphClass::SeriesParallel);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn fig2_is_series_parallel_with_three_edges() {
        let g = fig2_triangle(2);
        assert_eq!(classify(&g).unwrap(), GraphClass::SeriesParallel);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn fig3_capacities_match_the_figure() {
        let g = fig3_cycle();
        assert_eq!(g.capacity(g.edge_by_names("a", "b").unwrap()), 2);
        assert_eq!(g.capacity(g.edge_by_names("b", "e").unwrap()), 5);
        assert_eq!(g.capacity(g.edge_by_names("e", "f").unwrap()), 1);
        assert_eq!(g.capacity(g.edge_by_names("a", "c").unwrap()), 3);
        assert_eq!(g.capacity(g.edge_by_names("c", "d").unwrap()), 1);
        assert_eq!(g.capacity(g.edge_by_names("d", "f").unwrap()), 2);
        assert!(recognize(&g).unwrap().is_sp());
    }

    #[test]
    fn fig4_classifications_match_the_paper() {
        let left = fig4_crosslink(2);
        assert!(!recognize(&left).unwrap().is_sp());
        assert_eq!(classify(&left).unwrap(), GraphClass::Cs4);
        let butterfly = fig4_butterfly(2);
        assert_eq!(classify(&butterfly).unwrap(), GraphClass::General);
        assert!(!is_cs4_by_cycle_enumeration(&butterfly));
    }

    #[test]
    fn rewritten_butterfly_is_cs4() {
        let g = butterfly_rewritten(2);
        assert_eq!(classify(&g).unwrap(), GraphClass::Cs4);
        assert!(is_cs4_by_cycle_enumeration(&g));
    }

    #[test]
    fn fig5_is_cs4_but_not_sp() {
        let g = fig5_ladder(3);
        assert!(!recognize(&g).unwrap().is_sp());
        assert_eq!(classify(&g).unwrap(), GraphClass::Cs4);
        assert!(is_cs4_by_cycle_enumeration(&g));
    }
}
