//! Seeded random topology generators used by tests and the benchmark
//! harness.
//!
//! All generators are deterministic for a given seed so that benchmark
//! sweeps and property tests are reproducible.

use fila_graph::{Graph, GraphBuilder, NodeId};
use fila_runtime::filters::Predicate;
use fila_runtime::Topology;
use fila_spdag::{build_sp, SpDecomposition, SpSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for the random SP-DAG generator.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Target number of edges (the result has at least this many).
    pub target_edges: usize,
    /// Maximum children per composition node.
    pub max_fanout: usize,
    /// Buffer capacities are drawn uniformly from this inclusive range.
    pub capacity_range: (u64, u64),
    /// RNG seed.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            target_edges: 64,
            max_fanout: 4,
            capacity_range: (1, 8),
            seed: 0xF11A,
        }
    }
}

/// Generates a random [`SpSpec`] with roughly `config.target_edges` edges by
/// recursively choosing series or parallel compositions.
pub fn random_sp_spec(config: &GeneratorConfig) -> SpSpec {
    let mut rng = StdRng::seed_from_u64(config.seed);
    grow_spec(&mut rng, config, config.target_edges, 0)
}

fn grow_spec(rng: &mut StdRng, config: &GeneratorConfig, budget: usize, depth: usize) -> SpSpec {
    let cap = rng.gen_range(config.capacity_range.0..=config.capacity_range.1);
    if budget <= 1 || depth > 24 {
        return SpSpec::Edge(cap);
    }
    let fanout = rng.gen_range(2..=config.max_fanout.max(2));
    let mut children = Vec::with_capacity(fanout);
    let mut remaining = budget;
    for i in 0..fanout {
        let share = if i + 1 == fanout {
            remaining
        } else {
            let upper = remaining.saturating_sub(fanout - i - 1).max(1);
            rng.gen_range(1..=upper)
        };
        remaining = remaining.saturating_sub(share);
        children.push(grow_spec(rng, config, share, depth + 1));
        if remaining == 0 {
            break;
        }
    }
    if children.len() < 2 {
        return children.pop().unwrap_or(SpSpec::Edge(cap));
    }
    if rng.gen_bool(0.5) {
        SpSpec::Series(children)
    } else {
        SpSpec::Parallel(children)
    }
}

/// Generates a random SP-DAG together with its ground-truth decomposition.
pub fn random_sp_dag(config: &GeneratorConfig) -> (Graph, SpDecomposition) {
    build_sp(&random_sp_spec(config))
}

/// Parameters for the random SP-ladder generator.
#[derive(Debug, Clone)]
pub struct LadderConfig {
    /// Number of cross-links (rungs).
    pub rungs: usize,
    /// Buffer capacities are drawn uniformly from this inclusive range.
    pub capacity_range: (u64, u64),
    /// Probability that a rung runs right-to-left instead of left-to-right.
    pub reverse_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LadderConfig {
    fn default() -> Self {
        LadderConfig {
            rungs: 8,
            capacity_range: (1, 8),
            reverse_probability: 0.3,
            seed: 0x1ADD,
        }
    }
}

/// Generates a random SP-ladder: two rails of `rungs + 1` segments each and
/// `rungs` non-crossing cross-links at increasing depths.
///
/// The result is CS4 but not series-parallel (for `rungs >= 1`).
pub fn random_ladder(config: &LadderConfig) -> Graph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = GraphBuilder::new();
    let caps = |rng: &mut StdRng| {
        rng.gen_range(config.capacity_range.0..=config.capacity_range.1)
    };
    let k = config.rungs.max(1);
    // Rails: X -> u1 -> ... -> uk -> Y and X -> v1 -> ... -> vk -> Y.
    let left: Vec<String> = (1..=k).map(|i| format!("u{i}")).collect();
    let right: Vec<String> = (1..=k).map(|i| format!("v{i}")).collect();
    let mut prev = "X".to_string();
    for u in &left {
        let c = caps(&mut rng);
        b.edge_with_capacity(&prev, u, c).unwrap();
        prev = u.clone();
    }
    b.edge_with_capacity(&prev, "Y", caps(&mut rng)).unwrap();
    let mut prev = "X".to_string();
    for v in &right {
        let c = caps(&mut rng);
        b.edge_with_capacity(&prev, v, c).unwrap();
        prev = v.clone();
    }
    b.edge_with_capacity(&prev, "Y", caps(&mut rng)).unwrap();
    // Rungs: u_i <-> v_i, direction chosen per rung (same index keeps them
    // non-crossing).
    for i in 1..=k {
        let c = caps(&mut rng);
        if rng.gen_bool(config.reverse_probability) {
            b.edge_with_capacity(&format!("v{i}"), &format!("u{i}"), c).unwrap();
        } else {
            b.edge_with_capacity(&format!("u{i}"), &format!("v{i}"), c).unwrap();
        }
    }
    b.build().expect("generated ladder is a valid two-terminal DAG")
}

/// Generates a linear pipeline of `n` nodes with uniform channel
/// `capacity`.  With `reversed = true` the nodes are *declared* against the
/// flow direction, so node ids are anti-topological — the adversarial case
/// for any scheduler that visits nodes in id order (the worklist scheduler
/// and the pooled engine are insensitive to declaration order; the scan
/// scheduler degrades to one hop per `O(n)` sweep).
///
/// This is the scaling workload of the engine benchmarks: it is trivially
/// deadlock-free at any filter rate (no undirected cycles), so it isolates
/// pure scheduling and message-passing cost at node counts far beyond what
/// thread-per-node execution can reach.
pub fn pipeline_graph(n: usize, capacity: u64, reversed: bool) -> Graph {
    let n = n.max(2);
    let names: Vec<String> = (0..n).map(|i| format!("n{i}")).collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let mut b = GraphBuilder::new().default_capacity(capacity);
    if reversed {
        for name in refs.iter().rev() {
            b.node(name);
        }
    }
    b.chain(&refs).unwrap();
    b.build().expect("pipeline is a valid two-terminal DAG")
}

/// Generates the exponential-baseline stress topology: `k` parallel two-hop
/// chains between a common source and sink, which has `k (k - 1) / 2`
/// undirected simple cycles.
pub fn parallel_chains(k: usize, capacity: u64) -> Graph {
    let mut b = GraphBuilder::new().default_capacity(capacity);
    for i in 0..k.max(1) {
        let mid = format!("m{i}");
        b.edge("S", &mid).unwrap();
        b.edge(&mid, "T").unwrap();
    }
    b.build().expect("parallel chains are a valid two-terminal DAG")
}

/// Generates a layered random DAG that is in general neither SP nor CS4:
/// `layers` layers of `width` nodes, each node wired to 1–3 random nodes of
/// the next layer, with a shared source and sink.
pub fn layered_dag(layers: usize, width: usize, capacity: u64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new().default_capacity(capacity);
    let layers = layers.max(1);
    let width = width.max(1);
    for l in 0..layers {
        for w in 0..width {
            b.node(&format!("n{l}_{w}"));
        }
    }
    for w in 0..width {
        b.edge("S", &format!("n0_{w}")).unwrap();
        b.edge(&format!("n{}_{w}", layers - 1), "T").unwrap();
    }
    for l in 0..layers - 1 {
        for w in 0..width {
            let fanout = rng.gen_range(1..=3usize.min(width));
            let mut targets: Vec<usize> = (0..width).collect();
            for _ in 0..fanout {
                let pick = rng.gen_range(0..targets.len());
                let t = targets.swap_remove(pick);
                b.edge(&format!("n{l}_{w}"), &format!("n{}_{t}", l + 1)).unwrap();
            }
        }
    }
    b.build().expect("layered DAG is valid")
}

/// Installs the canonical deterministic periodic filter on every node of `g`
/// that has outputs: output `j` carries sequence number `s` iff
/// `(s + j) % period_of(node) == 0` (period 1 = broadcast, no filtering;
/// periods are clamped to ≥ 1).
///
/// This is the *shared* filtering convention of the scheduler-equivalence
/// property test and the `throughput` benchmark, kept in one place so the
/// workload the equivalence proof covers is exactly the workload the bench
/// measures.
pub fn periodic_filtered_topology(g: &Graph, period_of: impl Fn(NodeId) -> u64) -> Topology {
    let mut topo = Topology::from_graph(g);
    for n in g.node_ids() {
        let outs = g.out_degree(n);
        if outs == 0 {
            continue;
        }
        let period = period_of(n).max(1);
        topo = topo.with(n, move || {
            Predicate::new(outs, move |seq, out| (seq + out as u64) % period == 0)
        });
    }
    topo
}

#[cfg(test)]
mod tests {
    use super::*;
    use fila_avoidance::{classify, GraphClass};
    use fila_graph::cycles;
    use fila_spdag::recognize;
    use fila_spdag::validate::validate_decomposition;

    #[test]
    fn random_sp_dags_are_recognised_and_consistent() {
        for seed in 0..8 {
            let config = GeneratorConfig {
                target_edges: 40,
                seed,
                ..Default::default()
            };
            let (g, d) = random_sp_dag(&config);
            assert!(g.edge_count() >= 40, "seed {seed}");
            validate_decomposition(&g, &d).unwrap();
            assert!(recognize(&g).unwrap().is_sp(), "seed {seed}");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = GeneratorConfig::default();
        let (g1, _) = random_sp_dag(&config);
        let (g2, _) = random_sp_dag(&config);
        assert_eq!(g1, g2);
    }

    #[test]
    fn random_ladders_are_cs4_not_sp() {
        for seed in 0..6 {
            let config = LadderConfig { rungs: 5, seed, ..Default::default() };
            let g = random_ladder(&config);
            assert!(!recognize(&g).unwrap().is_sp(), "seed {seed}");
            assert_eq!(classify(&g).unwrap(), GraphClass::Cs4, "seed {seed}");
        }
    }

    #[test]
    fn ladder_size_scales_with_rungs() {
        let small = random_ladder(&LadderConfig { rungs: 2, ..Default::default() });
        let large = random_ladder(&LadderConfig { rungs: 20, ..Default::default() });
        assert!(large.edge_count() > small.edge_count());
        assert_eq!(large.edge_count(), 3 * 20 + 2);
    }

    #[test]
    fn parallel_chains_cycle_count_is_quadratic() {
        for k in [2usize, 4, 6] {
            let g = parallel_chains(k, 1);
            assert_eq!(cycles::count_cycles(&g), k * (k - 1) / 2);
        }
    }

    #[test]
    fn pipeline_graph_shape_and_reversal() {
        let fwd = pipeline_graph(16, 4, false);
        assert_eq!(fwd.node_count(), 16);
        assert_eq!(fwd.edge_count(), 15);
        let rev = pipeline_graph(16, 4, true);
        assert_eq!(rev.edge_count(), 15);
        // Reversed declaration: the source has the highest node id.
        let src = rev.single_source().unwrap();
        assert_eq!(src.index(), 15);
        let src_fwd = fwd.single_source().unwrap();
        assert_eq!(src_fwd.index(), 0);
    }

    #[test]
    fn layered_dags_are_valid_two_terminal() {
        let g = layered_dag(4, 3, 2, 99);
        g.validate_two_terminal().unwrap();
        assert!(g.edge_count() >= 4 * 3);
    }

    #[test]
    fn periodic_filter_period_one_broadcasts_and_period_two_halves() {
        use fila_runtime::node::FireInput;
        let mut b = GraphBuilder::new();
        b.chain(&["s", "m", "t"]).unwrap();
        let g = b.build().unwrap();
        let s = g.node_by_name("s").unwrap();
        let topo = periodic_filtered_topology(&g, |n| if n == s { 2 } else { 1 });
        let mut src = topo.build_behavior(s);
        assert_eq!(src.fire(&FireInput { seq: 0, data_in: &[] }).emitted(), 1);
        assert_eq!(src.fire(&FireInput { seq: 1, data_in: &[] }).emitted(), 0);
        let m = g.node_by_name("m").unwrap();
        let mut mid = topo.build_behavior(m);
        for seq in 0..4 {
            assert_eq!(mid.fire(&FireInput { seq, data_in: &[Some(1)] }).emitted(), 1);
        }
    }
}
