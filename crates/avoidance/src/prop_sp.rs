//! Propagation-algorithm intervals on SP-DAGs (§IV.A of the paper).
//!
//! Two implementations are provided:
//!
//! * [`setivals`] — Algorithm 1 of the paper: a single top-down traversal of
//!   the SP component tree carrying the inherited bound `V`, running in
//!   `O(|G|)`;
//! * [`propagation_intervals_naive`] — the straightforward post-order
//!   formulation sketched before Algorithm 1, which revisits every edge of a
//!   component when the component is processed and therefore costs
//!   `O(|G|²)`.  It exists as the ablation baseline for experiment E6 and as
//!   an independent implementation to cross-check `SETIVALS` against.
//!
//! Both compute, for every edge `e`, the minimum over all undirected simple
//! cycles `C` that leave `e`'s tail through `e` and through another edge of
//! the tail, of the buffer length of the opposite directed branch of `C`.

use fila_graph::Graph;
use fila_spdag::{CompId, SpDecomposition, SpForest, SpKind, SpMetrics};

use crate::interval::{DummyInterval, IntervalMap};

/// Computes Propagation-algorithm dummy intervals for an SP-DAG in `O(|G|)`
/// using the `SETIVALS` top-down traversal.
pub fn setivals(g: &Graph, d: &SpDecomposition) -> IntervalMap {
    let metrics = SpMetrics::compute(g, &d.forest);
    let mut intervals = IntervalMap::for_graph(g);
    setivals_into(
        &d.forest,
        &metrics,
        d.root,
        DummyInterval::Infinite,
        &mut intervals,
    );
    intervals
}

/// The reusable core of `SETIVALS`: processes the subtree rooted at `root`
/// with the inherited bound `initial`, tightening `intervals` in place.
///
/// The CS4 planner calls this once per contracted skeleton component (each
/// of which is an SP-DAG) with `initial = Infinite`, then applies the
/// ladder-level updates on top.
pub fn setivals_into(
    forest: &SpForest,
    metrics: &SpMetrics,
    root: CompId,
    initial: DummyInterval,
    intervals: &mut IntervalMap,
) {
    // Iterative traversal: deep alternating series/parallel nestings would
    // otherwise overflow the stack on the benchmark-sized graphs.
    let mut stack: Vec<(CompId, DummyInterval)> = vec![(root, initial)];
    while let Some((comp, v)) = stack.pop() {
        match &forest.component(comp).kind {
            SpKind::Leaf(e) => {
                // Base case.  In the paper the base case is a multi-edge and
                // `[e]` additionally considers the sibling edges of the
                // bundle; with single-edge leaves those siblings are the
                // other children of the enclosing parallel node and are
                // already folded into `v` by the parallel case below.
                intervals.tighten(*e, v);
            }
            SpKind::Series(children) => {
                // Only the first child shares the component's source, so only
                // it inherits `v`; the sources of the remaining children are
                // articulation points with no external cycles through their
                // outgoing edges (Claim IV.1).
                for (i, &c) in children.iter().enumerate() {
                    let inherited = if i == 0 { v } else { DummyInterval::Infinite };
                    stack.push((c, inherited));
                }
            }
            SpKind::Parallel(children) => {
                // Child i additionally sees the cycles closed through every
                // sibling branch; the tightest of those is the sibling with
                // the smallest L.
                let prefix_suffix = sibling_min_l(metrics, children);
                for (i, &c) in children.iter().enumerate() {
                    let sibling = DummyInterval::from_length(prefix_suffix[i]);
                    stack.push((c, v.min(sibling)));
                }
            }
        }
    }
}

/// For each child position `i`, the minimum `L` over all *other* children.
pub(crate) fn sibling_min_l(metrics: &SpMetrics, children: &[CompId]) -> Vec<u64> {
    let n = children.len();
    debug_assert!(n >= 2);
    let mut prefix = vec![u64::MAX; n + 1];
    let mut suffix = vec![u64::MAX; n + 1];
    for i in 0..n {
        prefix[i + 1] = prefix[i].min(metrics.l(children[i]));
    }
    for i in (0..n).rev() {
        suffix[i] = suffix[i + 1].min(metrics.l(children[i]));
    }
    (0..n).map(|i| prefix[i].min(suffix[i + 1])).collect()
}

/// The naive `O(|G|²)` post-order computation of Propagation intervals
/// (the "update every edge of the component" formulation of §IV.A).
pub fn propagation_intervals_naive(g: &Graph, d: &SpDecomposition) -> IntervalMap {
    let metrics = SpMetrics::compute(g, &d.forest);
    let mut intervals = IntervalMap::for_graph(g);
    for comp in d.forest.post_order(d.root) {
        let component = d.forest.component(comp);
        let SpKind::Parallel(children) = &component.kind else {
            // Case 1 (single edges) is subsumed by the parallel handling of
            // multi-edge bundles; Case 2 (series) changes nothing.
            continue;
        };
        let source = component.source;
        let sibling = sibling_min_l(&metrics, children);
        for (i, &child) in children.iter().enumerate() {
            let bound = DummyInterval::from_length(sibling[i]);
            // Case 3: only edges leaving the shared source X are affected by
            // the cycles this composition introduces (Lemma III.2).
            for e in d.forest.edges_in(child) {
                if g.tail(e) == source {
                    intervals.tighten(e, bound);
                }
            }
        }
    }
    intervals
}

#[cfg(test)]
mod tests {
    use super::*;
    use fila_graph::GraphBuilder;
    use fila_spdag::{build_sp, reduce, SpSpec};

    fn fig3() -> (Graph, SpDecomposition) {
        let mut b = GraphBuilder::new();
        b.edge_with_capacity("a", "b", 2).unwrap();
        b.edge_with_capacity("b", "e", 5).unwrap();
        b.edge_with_capacity("e", "f", 1).unwrap();
        b.edge_with_capacity("a", "c", 3).unwrap();
        b.edge_with_capacity("c", "d", 1).unwrap();
        b.edge_with_capacity("d", "f", 2).unwrap();
        let g = b.build().unwrap();
        let d = reduce(&g).unwrap().into_decomposition().unwrap();
        (g, d)
    }

    #[test]
    fn fig3_propagation_intervals() {
        let (g, d) = fig3();
        let ivals = setivals(&g, &d);
        let e = |s: &str, t: &str| g.edge_by_names(s, t).unwrap();
        // Paper: [ab] = 3 + 1 + 2 = 6, [ac] = 2 + 5 + 1 = 8, others ∞.
        assert_eq!(ivals.get(e("a", "b")), DummyInterval::Finite(6));
        assert_eq!(ivals.get(e("a", "c")), DummyInterval::Finite(8));
        for (s, t) in [("b", "e"), ("e", "f"), ("c", "d"), ("d", "f")] {
            assert_eq!(ivals.get(e(s, t)), DummyInterval::Infinite, "[{s}{t}]");
        }
    }

    #[test]
    fn naive_matches_setivals_on_fig3() {
        let (g, d) = fig3();
        assert_eq!(setivals(&g, &d), propagation_intervals_naive(&g, &d));
    }

    #[test]
    fn pipeline_needs_no_dummies() {
        let (g, d) = build_sp(&SpSpec::pipeline(&[3, 1, 4, 1, 5]));
        let ivals = setivals(&g, &d);
        assert_eq!(ivals.finite_count(), 0);
    }

    #[test]
    fn multi_edge_uses_smallest_sibling_capacity() {
        let (g, d) = build_sp(&SpSpec::MultiEdge(vec![4, 7, 9]));
        let ivals = setivals(&g, &d);
        let caps: Vec<u64> = g.edge_ids().map(|e| g.capacity(e)).collect();
        for (e, iv) in ivals.iter() {
            let min_other = g
                .edge_ids()
                .filter(|&o| o != e)
                .map(|o| g.capacity(o))
                .min()
                .unwrap();
            assert_eq!(iv, DummyInterval::Finite(min_other), "caps {caps:?}");
        }
    }

    #[test]
    fn nested_parallel_inherits_outer_bound() {
        // Outer parallel: a short direct edge (cap 2) against a long branch
        // that itself contains an inner split.  Edges leaving the source of
        // the *inner* split are bounded by the inner sibling, but edges
        // leaving the global source are bounded by the outer sibling; the
        // outer bound also applies to the inner edges if smaller... it does
        // not, because the inner split's source is not the global source.
        let spec = SpSpec::Parallel(vec![
            SpSpec::Edge(2),
            SpSpec::Series(vec![
                SpSpec::Edge(10),
                SpSpec::Parallel(vec![SpSpec::Edge(7), SpSpec::Edge(9)]),
            ]),
        ]);
        let (g, d) = build_sp(&spec);
        let ivals = setivals(&g, &d);
        // Identify edges by capacity (all distinct).
        let by_cap = |c: u64| {
            g.edge_ids()
                .find(|&e| g.capacity(e) == c)
                .unwrap_or_else(|| panic!("edge with capacity {c}"))
        };
        // Edge 2 leaves the global source: bounded by the other branch's
        // shortest length 10 + min(7, 9) = 17.
        assert_eq!(ivals.get(by_cap(2)), DummyInterval::Finite(17));
        // Edge 10 leaves the global source too: bounded by sibling branch 2.
        assert_eq!(ivals.get(by_cap(10)), DummyInterval::Finite(2));
        // Edges 7 and 9 leave the inner split node: the inner cycle bounds
        // them by the sibling capacity (9 and 7), and no external cycle
        // through that node exists, so V = ∞ on entry.
        assert_eq!(ivals.get(by_cap(7)), DummyInterval::Finite(9));
        assert_eq!(ivals.get(by_cap(9)), DummyInterval::Finite(7));
    }

    #[test]
    fn naive_matches_setivals_on_nested_specs() {
        let specs = vec![
            SpSpec::Parallel(vec![
                SpSpec::pipeline(&[1, 2, 3]),
                SpSpec::Edge(4),
                SpSpec::MultiEdge(vec![2, 2]),
            ]),
            SpSpec::Series(vec![
                SpSpec::Parallel(vec![SpSpec::Edge(5), SpSpec::pipeline(&[1, 1])]),
                SpSpec::Parallel(vec![
                    SpSpec::Series(vec![
                        SpSpec::MultiEdge(vec![3, 4]),
                        SpSpec::Parallel(vec![SpSpec::Edge(2), SpSpec::Edge(6)]),
                    ]),
                    SpSpec::Edge(1),
                ]),
            ]),
        ];
        for spec in specs {
            let (g, d) = build_sp(&spec);
            assert_eq!(
                setivals(&g, &d),
                propagation_intervals_naive(&g, &d),
                "spec {spec:?}"
            );
        }
    }

    #[test]
    fn setivals_agrees_with_recognised_decomposition() {
        // Intervals must not depend on whether the tree came from the
        // composer or the recogniser.
        let spec = SpSpec::Series(vec![
            SpSpec::Parallel(vec![SpSpec::Edge(3), SpSpec::pipeline(&[1, 4])]),
            SpSpec::MultiEdge(vec![2, 5]),
        ]);
        let (g, d_truth) = build_sp(&spec);
        let d_rec = reduce(&g).unwrap().into_decomposition().unwrap();
        assert_eq!(setivals(&g, &d_truth), setivals(&g, &d_rec));
    }
}
