//! Non-Propagation-algorithm intervals on SP-DAGs (§IV.B of the paper).
//!
//! The Non-Propagation protocol lets every node send dummies on its own
//! output channels, but a dummy is consumed at the next node and never
//! forwarded.  The interval for edge `e` therefore divides the slack of the
//! opposite branch of each cycle by the number of hops on `e`'s own branch:
//!
//! ```text
//! [e] = min over cycles C containing e of  L(C, e) / h(C, e)
//! ```
//!
//! On the SP component tree this becomes, for every parallel composition
//! `Pc(H1, H2)` and every edge `e ∈ H1` (symmetrically for `H2`):
//!
//! ```text
//! [e] ← min([e], L(H2) / h(H1, e))
//! ```
//!
//! The per-ancestor recomputation of `h(H, e)` makes this `O(|G|²)` overall,
//! exactly as analysed in the paper.

use fila_graph::Graph;
use fila_spdag::{SpDecomposition, SpForest, SpKind, SpMetrics};

use crate::interval::{DummyInterval, IntervalMap, Rounding};

/// Computes Non-Propagation dummy intervals for an SP-DAG in `O(|G|²)`.
pub fn nonprop_intervals(g: &Graph, d: &SpDecomposition, rounding: Rounding) -> IntervalMap {
    let metrics = SpMetrics::compute(g, &d.forest);
    let mut intervals = IntervalMap::for_graph(g);
    nonprop_into(&d.forest, &metrics, d.root, rounding, &mut intervals);
    intervals
}

/// The reusable core: processes the subtree rooted at `root`, tightening
/// `intervals` in place.  Used by the CS4 planner once per contracted
/// skeleton component.
pub fn nonprop_into(
    forest: &SpForest,
    metrics: &SpMetrics,
    root: fila_spdag::CompId,
    rounding: Rounding,
    intervals: &mut IntervalMap,
) {
    for comp in forest.post_order(root) {
        let SpKind::Parallel(children) = &forest.component(comp).kind else {
            // Leaves introduce no cycles on their own (with single-edge
            // leaves the multi-edge base case is expressed as a parallel
            // node), and series compositions introduce no new cycles.
            continue;
        };
        let sibling = crate::prop_sp::sibling_min_l(metrics, children);
        for (i, &child) in children.iter().enumerate() {
            let l_other = sibling[i];
            // Recompute h(child, e) for every edge of this child relative to
            // this composition; this is the step that makes the whole
            // algorithm quadratic.
            for (e, h_e) in metrics.h_per_edge(forest, child) {
                intervals.tighten(e, DummyInterval::from_ratio(l_other, h_e, rounding));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fila_graph::GraphBuilder;
    use fila_spdag::{build_sp, reduce, SpSpec};

    fn fig3() -> (Graph, SpDecomposition) {
        let mut b = GraphBuilder::new();
        b.edge_with_capacity("a", "b", 2).unwrap();
        b.edge_with_capacity("b", "e", 5).unwrap();
        b.edge_with_capacity("e", "f", 1).unwrap();
        b.edge_with_capacity("a", "c", 3).unwrap();
        b.edge_with_capacity("c", "d", 1).unwrap();
        b.edge_with_capacity("d", "f", 2).unwrap();
        let g = b.build().unwrap();
        let d = reduce(&g).unwrap().into_decomposition().unwrap();
        (g, d)
    }

    #[test]
    fn fig3_nonprop_intervals_with_ceiling() {
        let (g, d) = fig3();
        let ivals = nonprop_intervals(&g, &d, Rounding::Ceil);
        let e = |s: &str, t: &str| g.edge_by_names(s, t).unwrap();
        // Paper: [ab] = [be] = [ef] = 6/3 = 2; [ac] = [cd] = [df] = ⌈8/3⌉ = 3.
        for (s, t) in [("a", "b"), ("b", "e"), ("e", "f")] {
            assert_eq!(ivals.get(e(s, t)), DummyInterval::Finite(2), "[{s}{t}]");
        }
        for (s, t) in [("a", "c"), ("c", "d"), ("d", "f")] {
            assert_eq!(ivals.get(e(s, t)), DummyInterval::Finite(3), "[{s}{t}]");
        }
    }

    #[test]
    fn fig3_nonprop_intervals_with_floor() {
        let (g, d) = fig3();
        let ivals = nonprop_intervals(&g, &d, Rounding::Floor);
        let e = |s: &str, t: &str| g.edge_by_names(s, t).unwrap();
        for (s, t) in [("a", "c"), ("c", "d"), ("d", "f")] {
            assert_eq!(ivals.get(e(s, t)), DummyInterval::Finite(2), "[{s}{t}]");
        }
    }

    #[test]
    fn pipeline_needs_no_dummies() {
        let (g, d) = build_sp(&SpSpec::pipeline(&[2, 2, 2]));
        let ivals = nonprop_intervals(&g, &d, Rounding::Ceil);
        assert_eq!(ivals.finite_count(), 0);
    }

    #[test]
    fn multi_edge_matches_propagation_base_case() {
        // For a bundle of parallel single edges h = 1, so the Non-Propagation
        // interval equals the Propagation one.
        let (g, d) = build_sp(&SpSpec::MultiEdge(vec![4, 7, 9]));
        let np = nonprop_intervals(&g, &d, Rounding::Ceil);
        let p = crate::prop_sp::setivals(&g, &d);
        assert_eq!(np, p);
    }

    #[test]
    fn nonprop_is_never_larger_than_propagation() {
        // h(H, e) >= 1, so dividing by it can only shrink the interval.
        let spec = SpSpec::Series(vec![
            SpSpec::Parallel(vec![
                SpSpec::pipeline(&[3, 1, 2]),
                SpSpec::Edge(4),
                SpSpec::Series(vec![SpSpec::MultiEdge(vec![2, 6]), SpSpec::Edge(5)]),
            ]),
            SpSpec::Parallel(vec![SpSpec::Edge(8), SpSpec::pipeline(&[1, 1, 1, 1])]),
        ]);
        let (g, d) = build_sp(&spec);
        let np = nonprop_intervals(&g, &d, Rounding::Floor);
        let p = crate::prop_sp::setivals(&g, &d);
        for (e, np_iv) in np.iter() {
            assert!(np_iv <= p.get(e), "edge {e}: nonprop {np_iv} vs prop {}", p.get(e));
        }
    }

    #[test]
    fn deep_branch_divides_by_hop_count() {
        // Two branches: a 1-hop edge (cap 12) and a 4-hop chain.  Edges of
        // the 4-hop chain get interval 12 / 4 = 3; the 1-hop edge gets the
        // chain's total length 4 / 1 = 4.
        let spec = SpSpec::Parallel(vec![SpSpec::Edge(12), SpSpec::pipeline(&[1, 1, 1, 1])]);
        let (g, d) = build_sp(&spec);
        let ivals = nonprop_intervals(&g, &d, Rounding::Ceil);
        for e in g.edge_ids() {
            if g.capacity(e) == 12 {
                assert_eq!(ivals.get(e), DummyInterval::Finite(4));
            } else {
                assert_eq!(ivals.get(e), DummyInterval::Finite(3));
            }
        }
    }

    #[test]
    fn intervals_do_not_depend_on_decomposition_source() {
        let spec = SpSpec::Parallel(vec![
            SpSpec::pipeline(&[2, 3]),
            SpSpec::Series(vec![SpSpec::Edge(1), SpSpec::MultiEdge(vec![5, 6])]),
        ]);
        let (g, d_truth) = build_sp(&spec);
        let d_rec = reduce(&g).unwrap().into_decomposition().unwrap();
        assert_eq!(
            nonprop_intervals(&g, &d_truth, Rounding::Ceil),
            nonprop_intervals(&g, &d_rec, Rounding::Ceil)
        );
    }
}
