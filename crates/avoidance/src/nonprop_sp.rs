//! Non-Propagation-algorithm intervals on SP-DAGs (§IV.B of the paper),
//! with the **filtering-robust** bound of the E17 postmortem.
//!
//! The Non-Propagation protocol lets every node send dummies on its own
//! output channels, but a dummy is consumed at the next node and never
//! forwarded.  The paper bounds edge `e` by dividing the slack of the
//! opposite branch of each cycle by the number of hops on `e`'s own branch
//! (`[e] = L(C, e) / h(C, e)`).  That division is only sound when every
//! interior node of the run re-emits the data it receives: a node's gap
//! counter ticks once per *accepted input*, so when interior nodes filter,
//! the inter-message gap along a run **multiplies** per hop (each hop
//! relays at most one message per `[e]` messages reaching it) instead of
//! adding, and `L/h` plans deadlock (DESIGN.md, "Resolved: interior
//! filtering vs Non-Propagation").  The robust bound keeps the worst-case
//! product of the run's intervals within the opposite slack:
//!
//! ```text
//! [e] = min over cycles C containing e of  ⌊ L(C, e) ^ (1 / h(C, e)) ⌋
//! ```
//!
//! On the SP component tree this becomes, for every parallel composition
//! `Pc(H1, H2)` and every edge `e ∈ H1` (symmetrically for `H2`):
//!
//! ```text
//! [e] ← min([e], ⌊ L(H2) ^ (1 / h(H1, e)) ⌋)
//! ```
//!
//! Exactness w.r.t. the (equally fixed) cycle-level definition is
//! preserved: the bound is monotone increasing in `L` and decreasing in
//! `h`, and the minimum-`L` sibling path and maximum-`h` own path live in
//! different children of the parallel composition, so a single cycle
//! realises both extremes — the same argument as the paper's Claim IV.1.
//! The per-ancestor recomputation of `h(H, e)` makes this `O(|G|²)`
//! overall, exactly as analysed in the paper.

use fila_graph::Graph;
use fila_spdag::{SpDecomposition, SpForest, SpKind, SpMetrics};

use crate::interval::{DummyInterval, IntervalMap, Rounding};

/// Computes Non-Propagation dummy intervals for an SP-DAG in `O(|G|²)`.
///
/// `_rounding` is retained for API stability: the robust integer-root bound
/// is exact and rounding-free (see [`Rounding`]).
pub fn nonprop_intervals(g: &Graph, d: &SpDecomposition, _rounding: Rounding) -> IntervalMap {
    let metrics = SpMetrics::compute(g, &d.forest);
    let mut intervals = IntervalMap::for_graph(g);
    nonprop_into(&d.forest, &metrics, d.root, _rounding, &mut intervals);
    intervals
}

/// The reusable core: processes the subtree rooted at `root`, tightening
/// `intervals` in place.  Used by the CS4 planner once per contracted
/// skeleton component.  `_rounding` is inert (see [`nonprop_intervals`]).
pub fn nonprop_into(
    forest: &SpForest,
    metrics: &SpMetrics,
    root: fila_spdag::CompId,
    _rounding: Rounding,
    intervals: &mut IntervalMap,
) {
    for comp in forest.post_order(root) {
        let SpKind::Parallel(children) = &forest.component(comp).kind else {
            // Leaves introduce no cycles on their own (with single-edge
            // leaves the multi-edge base case is expressed as a parallel
            // node), and series compositions introduce no new cycles.
            continue;
        };
        let sibling = crate::prop_sp::sibling_min_l(metrics, children);
        for (i, &child) in children.iter().enumerate() {
            let l_other = sibling[i];
            // Recompute h(child, e) for every edge of this child relative to
            // this composition; this is the step that makes the whole
            // algorithm quadratic.
            for (e, h_e) in metrics.h_per_edge(forest, child) {
                intervals.tighten(e, DummyInterval::from_run_budget(l_other, h_e));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fila_graph::GraphBuilder;
    use fila_spdag::{build_sp, reduce, SpSpec};

    fn fig3() -> (Graph, SpDecomposition) {
        let mut b = GraphBuilder::new();
        b.edge_with_capacity("a", "b", 2).unwrap();
        b.edge_with_capacity("b", "e", 5).unwrap();
        b.edge_with_capacity("e", "f", 1).unwrap();
        b.edge_with_capacity("a", "c", 3).unwrap();
        b.edge_with_capacity("c", "d", 1).unwrap();
        b.edge_with_capacity("d", "f", 2).unwrap();
        let g = b.build().unwrap();
        let d = reduce(&g).unwrap().into_decomposition().unwrap();
        (g, d)
    }

    #[test]
    fn fig3_nonprop_intervals_are_the_robust_tightening_of_the_paper() {
        let (g, d) = fig3();
        let ivals = nonprop_intervals(&g, &d, Rounding::Ceil);
        let e = |s: &str, t: &str| g.edge_by_names(s, t).unwrap();
        // Paper (re-emission model): [ab] = [be] = [ef] = 6/3 = 2 and
        // [ac] = [cd] = [df] = ⌈8/3⌉ = 3.  Robust (accepted-input model):
        // the product of a 3-hop run must fit in the opposite slack, so
        // ⌊6^(1/3)⌋ = 1 and ⌊8^(1/3)⌋ = 2.
        for (s, t) in [("a", "b"), ("b", "e"), ("e", "f")] {
            assert_eq!(ivals.get(e(s, t)), DummyInterval::Finite(1), "[{s}{t}]");
        }
        for (s, t) in [("a", "c"), ("c", "d"), ("d", "f")] {
            assert_eq!(ivals.get(e(s, t)), DummyInterval::Finite(2), "[{s}{t}]");
        }
        // Never looser than the paper's published Fig. 3 values.
        for ((s, t), paper) in [(("a", "b"), 2), (("a", "c"), 3)] {
            assert!(ivals.get(e(s, t)) <= DummyInterval::Finite(paper), "[{s}{t}]");
        }
    }

    #[test]
    fn rounding_no_longer_changes_nonprop_plans() {
        // The integer-root bound is exact; the historical Ceil/Floor
        // ablation collapsed with the robustness fix (a mode may never
        // loosen an interval again — that was part of the bug surface).
        let (g, d) = fig3();
        assert_eq!(
            nonprop_intervals(&g, &d, Rounding::Ceil),
            nonprop_intervals(&g, &d, Rounding::Floor)
        );
    }

    #[test]
    fn pipeline_needs_no_dummies() {
        let (g, d) = build_sp(&SpSpec::pipeline(&[2, 2, 2]));
        let ivals = nonprop_intervals(&g, &d, Rounding::Ceil);
        assert_eq!(ivals.finite_count(), 0);
    }

    #[test]
    fn multi_edge_matches_propagation_base_case() {
        // For a bundle of parallel single edges h = 1, so the Non-Propagation
        // interval equals the Propagation one.
        let (g, d) = build_sp(&SpSpec::MultiEdge(vec![4, 7, 9]));
        let np = nonprop_intervals(&g, &d, Rounding::Ceil);
        let p = crate::prop_sp::setivals(&g, &d);
        assert_eq!(np, p);
    }

    #[test]
    fn nonprop_is_never_larger_than_propagation() {
        // h(H, e) >= 1, so dividing by it can only shrink the interval.
        let spec = SpSpec::Series(vec![
            SpSpec::Parallel(vec![
                SpSpec::pipeline(&[3, 1, 2]),
                SpSpec::Edge(4),
                SpSpec::Series(vec![SpSpec::MultiEdge(vec![2, 6]), SpSpec::Edge(5)]),
            ]),
            SpSpec::Parallel(vec![SpSpec::Edge(8), SpSpec::pipeline(&[1, 1, 1, 1])]),
        ]);
        let (g, d) = build_sp(&spec);
        let np = nonprop_intervals(&g, &d, Rounding::Floor);
        let p = crate::prop_sp::setivals(&g, &d);
        for (e, np_iv) in np.iter() {
            assert!(np_iv <= p.get(e), "edge {e}: nonprop {np_iv} vs prop {}", p.get(e));
        }
    }

    #[test]
    fn deep_branch_takes_the_hop_count_root() {
        // Two branches: a 1-hop edge (cap 12) and a 4-hop chain.  Edges of
        // the 4-hop chain get interval ⌊12^(1/4)⌋ = 1 (their worst-case
        // relayed gap is the product over 4 hops, and 2⁴ = 16 > 12); the
        // 1-hop edge gets the chain's total length ⌊4^(1/1)⌋ = 4.
        let spec = SpSpec::Parallel(vec![SpSpec::Edge(12), SpSpec::pipeline(&[1, 1, 1, 1])]);
        let (g, d) = build_sp(&spec);
        let ivals = nonprop_intervals(&g, &d, Rounding::Ceil);
        for e in g.edge_ids() {
            if g.capacity(e) == 12 {
                assert_eq!(ivals.get(e), DummyInterval::Finite(4));
            } else {
                assert_eq!(ivals.get(e), DummyInterval::Finite(1));
            }
        }
    }

    #[test]
    fn intervals_do_not_depend_on_decomposition_source() {
        let spec = SpSpec::Parallel(vec![
            SpSpec::pipeline(&[2, 3]),
            SpSpec::Series(vec![SpSpec::Edge(1), SpSpec::MultiEdge(vec![5, 6])]),
        ]);
        let (g, d_truth) = build_sp(&spec);
        let d_rec = reduce(&g).unwrap().into_decomposition().unwrap();
        assert_eq!(
            nonprop_intervals(&g, &d_truth, Rounding::Ceil),
            nonprop_intervals(&g, &d_rec, Rounding::Ceil)
        );
    }
}
