//! Deadlock-avoidance plans: the output of the compile-time analysis.

use std::fmt;

use fila_graph::{EdgeId, Graph};

use crate::interval::{DummyInterval, IntervalMap, Rounding};

/// Which of the two runtime deadlock-avoidance protocols the plan targets.
///
/// Both protocols are defined in the authors' earlier SPAA'10 paper and are
/// implemented by `fila-runtime`; this paper's contribution is computing
/// their per-edge intervals efficiently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Algorithm {
    /// Only nodes with two outgoing edges on some undirected cycle send
    /// dummies; dummies are forwarded on every output channel of any node
    /// they reach.
    #[default]
    Propagation,
    /// Every node may send dummies on its own channels; dummies are consumed
    /// at the receiving node and never forwarded.
    NonPropagation,
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Algorithm::Propagation => write!(f, "Propagation"),
            Algorithm::NonPropagation => write!(f, "Non-Propagation"),
        }
    }
}

/// A complete deadlock-avoidance plan for one graph: the target protocol and
/// the per-edge dummy intervals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AvoidancePlan {
    algorithm: Algorithm,
    rounding: Rounding,
    intervals: IntervalMap,
    /// Number of edges of the graph the plan was computed for, used to catch
    /// accidental application to a different graph.
    edge_count: usize,
}

impl AvoidancePlan {
    /// Wraps a computed interval map into a plan.
    pub fn new(
        g: &Graph,
        algorithm: Algorithm,
        rounding: Rounding,
        intervals: IntervalMap,
    ) -> Self {
        assert_eq!(
            intervals.len(),
            g.edge_count(),
            "interval map must cover every edge of the graph"
        );
        AvoidancePlan {
            algorithm,
            rounding,
            intervals,
            edge_count: g.edge_count(),
        }
    }

    /// The protocol this plan parameterises.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The rounding mode used for Non-Propagation ratios.
    pub fn rounding(&self) -> Rounding {
        self.rounding
    }

    /// The dummy interval for a channel.
    pub fn interval(&self, e: EdgeId) -> DummyInterval {
        self.intervals.get(e)
    }

    /// The full per-edge interval table.
    pub fn intervals(&self) -> &IntervalMap {
        &self.intervals
    }

    /// Number of edges covered by the plan.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of channels that require dummy messages at all.
    pub fn channels_needing_dummies(&self) -> usize {
        self.intervals.finite_count()
    }

    /// Renders a human-readable table of the plan, using node names.
    pub fn render(&self, g: &Graph) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# {} plan: {} / {} channels need dummies",
            self.algorithm,
            self.channels_needing_dummies(),
            self.edge_count
        );
        for (e, iv) in self.intervals.iter() {
            let (s, d) = g.endpoints(e);
            let _ = writeln!(
                out,
                "  [{} -> {}] (cap {}) : {}",
                g.node(s).name,
                g.node(d).name,
                g.capacity(e),
                iv
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fila_graph::GraphBuilder;

    fn tiny() -> Graph {
        let mut b = GraphBuilder::new();
        b.edge_with_capacity("a", "b", 2).unwrap();
        b.edge_with_capacity("a", "b", 3).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn plan_wraps_interval_map() {
        let g = tiny();
        let mut m = IntervalMap::for_graph(&g);
        m.set(EdgeId::from_raw(0), DummyInterval::Finite(3));
        let plan = AvoidancePlan::new(&g, Algorithm::Propagation, Rounding::Ceil, m);
        assert_eq!(plan.interval(EdgeId::from_raw(0)), DummyInterval::Finite(3));
        assert_eq!(plan.interval(EdgeId::from_raw(1)), DummyInterval::Infinite);
        assert_eq!(plan.channels_needing_dummies(), 1);
        assert_eq!(plan.edge_count(), 2);
        assert_eq!(plan.algorithm(), Algorithm::Propagation);
    }

    #[test]
    fn render_mentions_node_names_and_intervals() {
        let g = tiny();
        let mut m = IntervalMap::for_graph(&g);
        m.set(EdgeId::from_raw(0), DummyInterval::Finite(3));
        let plan = AvoidancePlan::new(&g, Algorithm::NonPropagation, Rounding::Ceil, m);
        let text = plan.render(&g);
        assert!(text.contains("Non-Propagation"));
        assert!(text.contains("a -> b"));
        assert!(text.contains(": 3"));
        assert!(text.contains(": ∞"));
    }

    #[test]
    #[should_panic(expected = "cover every edge")]
    fn plan_rejects_mismatched_map() {
        let g = tiny();
        let m = IntervalMap::all_infinite(5);
        let _ = AvoidancePlan::new(&g, Algorithm::Propagation, Rounding::Ceil, m);
    }

    #[test]
    fn algorithm_display() {
        assert_eq!(Algorithm::Propagation.to_string(), "Propagation");
        assert_eq!(Algorithm::NonPropagation.to_string(), "Non-Propagation");
    }
}
